#!/usr/bin/env bash
# Sanitizer sweep: configure a dedicated build tree with ASan+UBSan and
# run the full test suite under it.  Usage: scripts/check.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build-sanitize}"

cmake -B "$build" -S "$repo" -DLEGION_SANITIZE=address,undefined
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
