#!/usr/bin/env bash
# Sanitizer sweep: configure a dedicated build tree with sanitizers on
# and run the full test suite under it.  The sanitizer set defaults to
# ASan+UBSan; set LEGION_SANITIZE to override (e.g. LEGION_SANITIZE=thread
# for the TSan job).  Usage: [LEGION_SANITIZE=...] scripts/check.sh [build-dir]
set -euo pipefail

die() { echo "check.sh: $*" >&2; exit 1; }

command -v cmake >/dev/null || die "cmake not found on PATH"
command -v ctest >/dev/null || die "ctest not found on PATH"

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitize="${LEGION_SANITIZE:-address,undefined}"
# Default to one build tree per sanitizer set so switching sets does not
# force a full reconfigure+rebuild of the other's tree.
build="${1:-$repo/build-sanitize-${sanitize//,/-}}"

# Refuse a pre-existing directory that is not a CMake build tree: we are
# about to configure into it and would clobber whatever lives there.
if [[ -d "$build" && ! -f "$build/CMakeCache.txt" ]]; then
  die "$build exists but is not a CMake build tree (no CMakeCache.txt)"
fi

# Reuse the generator an existing tree was configured with; a mismatch
# makes `cmake -B` fail with a confusing error mid-CI.
generator_args=()
if [[ -f "$build/CMakeCache.txt" ]]; then
  generator="$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$build/CMakeCache.txt")"
  [[ -n "$generator" ]] || die "cannot read CMAKE_GENERATOR from $build/CMakeCache.txt"
  generator_args=(-G "$generator")
fi

cmake -B "$build" -S "$repo" "${generator_args[@]}" \
  -DLEGION_SANITIZE="$sanitize"
cmake --build "$build" -j "$(nproc)"
ctest --test-dir "$build" --output-on-failure -j "$(nproc)"
