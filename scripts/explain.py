#!/usr/bin/env python3
"""Reconstruct a placement story from a decision-audit JSONL export.

Reads the AUDIT_*.jsonl file a DecisionLog exports (one JSON object per
record: seq, t, kind, then the record's fields in order) and prints the
same report as C++ `DecisionLog::ExplainMapping(negotiation, index)`:
the scheduler decisions that aimed the mapping (candidate counts,
suspect skips, rationale), every reservation-lifecycle transition in
execution order, and the final outcome.

Usage:
  scripts/explain.py AUDIT_obs_overhead.jsonl <negotiation-id> [slot]
  scripts/explain.py --list AUDIT_obs_overhead.jsonl

With --list, prints one line per negotiation (id, outcome, record
count) so you can find the story you are after.  Stdlib only; the
output is deterministic and byte-comparable against the C++ report.
"""

import json
import sys


def load(path):
    records = []
    with open(path, "r", encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def field(record, key):
    # seq/t/kind are structural; everything else is an audit field.
    if key in ("seq", "t", "kind"):
        return None
    value = record.get(key)
    return value if isinstance(value, str) else None


def line(record):
    """"t=<us> <kind> key=value ..." with the correlation id elided."""
    parts = ["t=" + str(record["t"]), record["kind"]]
    for key, value in record.items():
        if key in ("seq", "t", "kind", "nid"):
            continue
        parts.append(key + "=" + value)
    return " ".join(parts) + "\n"


def explain(records, negotiation, index):
    nid = str(negotiation)
    slot_key = str(index) if index >= 0 else None

    # Every host the slot (or, unscoped, the negotiation) ever aimed at.
    hosts = set()
    for record in records:
        if field(record, "nid") != nid:
            continue
        slot = field(record, "slot")
        if slot_key is not None and slot is not None and slot != slot_key:
            continue
        host = field(record, "host")
        if host is not None:
            hosts.add(host)

    out = "== negotiation " + nid
    if slot_key is not None:
        out += " slot " + slot_key
    out += " ==\n-- scheduler decisions --\n"
    for record in records:
        if field(record, "nid") is not None:
            continue
        kind = record["kind"]
        if not kind.startswith("sched_"):
            continue
        if kind == "sched_choice" and slot_key is not None:
            host = field(record, "host")
            if host is not None and host not in hosts:
                continue
        out += line(record)

    out += "-- lifecycle --\n"
    outcome = "unresolved"
    for record in records:
        if field(record, "nid") != nid:
            continue
        slot = field(record, "slot")
        if slot_key is not None and slot is not None and slot != slot_key:
            continue
        out += line(record)
        kind = record["kind"]
        host = field(record, "host") or "?"
        if kind == "reserve_granted" and slot is not None:
            outcome = "granted on " + host
        elif kind == "reserve_failed" and slot is not None:
            outcome = "failed (" + (field(record, "code") or "?") + ") on " + host
        elif kind == "reservation_cancelled" and slot is not None:
            outcome = "cancelled on " + host

    out += "-- outcome --\n"
    if slot_key is not None:
        out += "slot " + slot_key + ": " + outcome + "\n"
    for record in records:
        if field(record, "nid") != nid:
            continue
        if record["kind"] in ("negotiation_success", "negotiation_failed"):
            out += line(record)
    return out


def list_negotiations(records):
    order = []
    outcomes = {}
    counts = {}
    for record in records:
        nid = field(record, "nid")
        if nid is None:
            continue
        if nid not in counts:
            order.append(nid)
            counts[nid] = 0
            outcomes[nid] = "unresolved"
        counts[nid] += 1
        if record["kind"] == "negotiation_success":
            outcomes[nid] = "success"
        elif record["kind"] == "negotiation_failed":
            outcomes[nid] = "failed (" + (field(record, "code") or "?") + ")"
    for nid in order:
        print(f"negotiation {nid}: {outcomes[nid]} ({counts[nid]} records)")


def main(argv):
    args = [a for a in argv[1:] if a != "--list"]
    listing = len(args) != len(argv) - 1
    if listing and len(args) == 1:
        list_negotiations(load(args[0]))
        return 0
    if len(args) not in (2, 3):
        sys.stderr.write(__doc__)
        return 2
    records = load(args[0])
    negotiation = int(args[1])
    index = int(args[2]) if len(args) == 3 else -1
    sys.stdout.write(explain(records, negotiation, index))
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main(sys.argv))
    except BrokenPipeError:  # e.g. piped into head
        sys.exit(0)
