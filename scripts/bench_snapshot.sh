#!/usr/bin/env bash
# Benchmark snapshot: builds (if needed) and runs the query-engine,
# throughput, and federation harnesses, leaving their JSON mirrors next
# to the repo root (BENCH_collection.json, BENCH_collection_parallel.json,
# BENCH_throughput.json, BENCH_throughput_batch.json,
# BENCH_federation.json) for diffing across commits.
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail

die() { echo "bench_snapshot.sh: $*" >&2; exit 1; }

command -v cmake >/dev/null || die "cmake not found on PATH"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ -d "$build" && ! -f "$build/CMakeCache.txt" ]]; then
  die "$build exists but is not a CMake build tree (no CMakeCache.txt)"
fi

generator_args=()
if [[ -f "$build/CMakeCache.txt" ]]; then
  generator="$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$build/CMakeCache.txt")"
  [[ -n "$generator" ]] || die "cannot read CMAKE_GENERATOR from $build/CMakeCache.txt"
  generator_args=(-G "$generator")
fi

cmake -B "$build" -S "$repo" "${generator_args[@]}" >/dev/null
cmake --build "$build" -j "$(nproc)" \
  --target bench_collection bench_throughput bench_federation

[[ -x "$build/bench/bench_collection" ]] || die "bench_collection did not build"
[[ -x "$build/bench/bench_throughput" ]] || die "bench_throughput did not build"
[[ -x "$build/bench/bench_federation" ]] || die "bench_federation did not build"

# The Table JSON mirror writes BENCH_<experiment>.json into the cwd.
cd "$repo"
"$build/bench/bench_collection"
"$build/bench/bench_throughput"
"$build/bench/bench_federation"

ls -l BENCH_collection.json BENCH_collection_parallel.json \
  BENCH_throughput.json BENCH_throughput_batch.json BENCH_federation.json
