#!/usr/bin/env bash
# Benchmark snapshot: builds (if needed) and runs the query-engine and
# throughput harnesses, leaving their JSON mirrors next to the repo root
# (BENCH_collection.json, BENCH_collection_parallel.json,
# BENCH_throughput.json) for diffing across commits.
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

cmake -B "$build" -S "$repo" >/dev/null
cmake --build "$build" -j "$(nproc)" --target bench_collection bench_throughput

# The Table JSON mirror writes BENCH_<experiment>.json into the cwd.
cd "$repo"
"$build/bench/bench_collection"
"$build/bench/bench_throughput"

ls -l BENCH_collection.json BENCH_collection_parallel.json BENCH_throughput.json
