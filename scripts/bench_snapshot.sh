#!/usr/bin/env bash
# Benchmark snapshot: builds (if needed) and runs the query-engine,
# throughput, federation, and flight-recorder harnesses, leaving their
# JSON mirrors next to the repo root (BENCH_collection.json,
# BENCH_throughput.json, BENCH_throughput_batch.json,
# BENCH_federation.json, BENCH_obs_overhead.json) for diffing across
# commits.  bench_obs_overhead additionally exports the observability v2
# artifacts: TIMELINE_obs_overhead.json (recorder timeline),
# TRACE_obs_overhead.json (Chrome trace counter tracks -- load into
# chrome://tracing or Perfetto), PROFILE_obs_overhead.json (kernel
# profiler dump), AUDIT_obs_overhead.jsonl (decision audit; feed to
# scripts/explain.py), and EXPLAIN_obs_overhead.txt (one reconstructed
# placement story).
# Usage: scripts/bench_snapshot.sh [build-dir]
set -euo pipefail

die() { echo "bench_snapshot.sh: $*" >&2; exit 1; }

command -v cmake >/dev/null || die "cmake not found on PATH"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ -d "$build" && ! -f "$build/CMakeCache.txt" ]]; then
  die "$build exists but is not a CMake build tree (no CMakeCache.txt)"
fi

generator_args=()
if [[ -f "$build/CMakeCache.txt" ]]; then
  generator="$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$build/CMakeCache.txt")"
  [[ -n "$generator" ]] || die "cannot read CMAKE_GENERATOR from $build/CMakeCache.txt"
  generator_args=(-G "$generator")
fi

benches=(collection throughput federation obs_overhead)

cmake -B "$build" -S "$repo" "${generator_args[@]}" >/dev/null
cmake --build "$build" -j "$(nproc)" \
  --target "${benches[@]/#/bench_}"

for bench in "${benches[@]}"; do
  [[ -x "$build/bench/bench_$bench" ]] || die "bench_$bench did not build"
done

# The Table JSON mirror (and the flight-recorder exports) write into cwd.
cd "$repo"
for bench in "${benches[@]}"; do
  "$build/bench/bench_$bench"
done

ls -l BENCH_collection.json BENCH_throughput.json \
  BENCH_throughput_batch.json BENCH_federation.json \
  BENCH_obs_overhead.json TIMELINE_obs_overhead.json \
  TRACE_obs_overhead.json PROFILE_obs_overhead.json \
  AUDIT_obs_overhead.jsonl EXPLAIN_obs_overhead.txt
