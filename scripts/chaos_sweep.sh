#!/usr/bin/env bash
# Chaos sweep: builds bench_chaos, runs the deterministic fault sweep
# (loss rate x partition schedule x retry policy), and verifies that two
# same-seed runs produce byte-identical BENCH_chaos.json -- the
# determinism guarantee the whole simulation rests on.
# Usage: scripts/chaos_sweep.sh [build-dir]
# Honors LEGION_BENCH_PRESET=smoke for the reduced CI sweep.
set -euo pipefail

die() { echo "chaos_sweep.sh: $*" >&2; exit 1; }

command -v cmake >/dev/null || die "cmake not found on PATH"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ -d "$build" && ! -f "$build/CMakeCache.txt" ]]; then
  die "$build exists but is not a CMake build tree (no CMakeCache.txt)"
fi

generator_args=()
if [[ -f "$build/CMakeCache.txt" ]]; then
  generator="$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$build/CMakeCache.txt")"
  [[ -n "$generator" ]] || die "cannot read CMAKE_GENERATOR from $build/CMakeCache.txt"
  generator_args=(-G "$generator")
fi

cmake -B "$build" -S "$repo" "${generator_args[@]}" >/dev/null
cmake --build "$build" -j "$(nproc)" --target bench_chaos
[[ -x "$build/bench/bench_chaos" ]] || die "bench_chaos did not build"

cd "$repo"
"$build/bench/bench_chaos"
[[ -f BENCH_chaos.json ]] || die "bench_chaos did not write BENCH_chaos.json"

# Determinism check: a second same-seed run must be byte-identical.
first="$(mktemp)"
trap 'rm -f "$first"' EXIT
cp BENCH_chaos.json "$first"
"$build/bench/bench_chaos" >/dev/null
cmp -s BENCH_chaos.json "$first" ||
  die "two same-seed sweep runs produced different BENCH_chaos.json"
echo "chaos_sweep.sh: determinism check passed (two runs byte-identical)"
