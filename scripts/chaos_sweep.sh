#!/usr/bin/env bash
# Chaos sweep: builds bench_chaos and bench_federation, runs the
# deterministic fault sweeps (loss rate x partition schedule x retry
# policy for the negotiation path; domains x push period x WAN loss for
# the federated Collection hierarchy, whose loss cells drop delta-push
# batches on the wire), and verifies that two same-seed runs produce
# byte-identical BENCH_chaos.json / BENCH_federation.json -- the
# determinism guarantee the whole simulation rests on.
# Usage: scripts/chaos_sweep.sh [build-dir]
# Honors LEGION_BENCH_PRESET=smoke for the reduced CI sweep.
set -euo pipefail

die() { echo "chaos_sweep.sh: $*" >&2; exit 1; }

command -v cmake >/dev/null || die "cmake not found on PATH"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ -d "$build" && ! -f "$build/CMakeCache.txt" ]]; then
  die "$build exists but is not a CMake build tree (no CMakeCache.txt)"
fi

generator_args=()
if [[ -f "$build/CMakeCache.txt" ]]; then
  generator="$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$build/CMakeCache.txt")"
  [[ -n "$generator" ]] || die "cannot read CMAKE_GENERATOR from $build/CMakeCache.txt"
  generator_args=(-G "$generator")
fi

cmake -B "$build" -S "$repo" "${generator_args[@]}" >/dev/null
cmake --build "$build" -j "$(nproc)" --target bench_chaos bench_federation
[[ -x "$build/bench/bench_chaos" ]] || die "bench_chaos did not build"
[[ -x "$build/bench/bench_federation" ]] || die "bench_federation did not build"

cd "$repo"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

# Determinism check: a second same-seed run must be byte-identical.
for name in chaos federation; do
  "$build/bench/bench_$name"
  [[ -f "BENCH_$name.json" ]] ||
    die "bench_$name did not write BENCH_$name.json"
  cp "BENCH_$name.json" "$scratch/BENCH_$name.json"
  "$build/bench/bench_$name" >/dev/null
  cmp -s "BENCH_$name.json" "$scratch/BENCH_$name.json" ||
    die "two same-seed sweep runs produced different BENCH_$name.json"
done
echo "chaos_sweep.sh: determinism check passed (two runs byte-identical)"
