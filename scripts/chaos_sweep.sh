#!/usr/bin/env bash
# Chaos sweep: builds bench_chaos, bench_federation, and
# bench_throughput, runs the deterministic sweeps (loss rate x partition
# schedule x retry policy for the negotiation path; domains x push
# period x WAN loss for the federated Collection hierarchy, whose loss
# cells drop delta-push batches on the wire; scheduler scaling and the
# batched-reservation cap sweep for the throughput harness), and
# verifies that two same-seed runs produce byte-identical
# BENCH_chaos.json / BENCH_federation.json / BENCH_throughput*.json --
# the determinism guarantee the whole simulation rests on.
# Usage: scripts/chaos_sweep.sh [build-dir]
# Honors LEGION_BENCH_PRESET=smoke for the reduced CI sweep.
set -euo pipefail

die() { echo "chaos_sweep.sh: $*" >&2; exit 1; }

command -v cmake >/dev/null || die "cmake not found on PATH"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ -d "$build" && ! -f "$build/CMakeCache.txt" ]]; then
  die "$build exists but is not a CMake build tree (no CMakeCache.txt)"
fi

generator_args=()
if [[ -f "$build/CMakeCache.txt" ]]; then
  generator="$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$build/CMakeCache.txt")"
  [[ -n "$generator" ]] || die "cannot read CMAKE_GENERATOR from $build/CMakeCache.txt"
  generator_args=(-G "$generator")
fi

cmake -B "$build" -S "$repo" "${generator_args[@]}" >/dev/null
cmake --build "$build" -j "$(nproc)" \
  --target bench_chaos bench_federation bench_throughput
for bench in chaos federation throughput; do
  [[ -x "$build/bench/bench_$bench" ]] || die "bench_$bench did not build"
done

cd "$repo"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

# Determinism check: a second same-seed run must be byte-identical.
# bench_throughput mirrors two experiments (BENCH_throughput.json and
# BENCH_throughput_batch.json); both are held to the same bar.
for name in chaos federation throughput; do
  "$build/bench/bench_$name"
  jsons=("BENCH_$name".json "BENCH_$name"_*.json)
  [[ -f "BENCH_$name.json" ]] ||
    die "bench_$name did not write BENCH_$name.json"
  for json in "${jsons[@]}"; do
    [[ -f "$json" ]] && cp "$json" "$scratch/$json"
  done
  "$build/bench/bench_$name" >/dev/null
  for json in "${jsons[@]}"; do
    [[ -f "$scratch/$json" ]] || continue
    cmp -s "$json" "$scratch/$json" ||
      die "two same-seed sweep runs produced different $json"
  done
done
echo "chaos_sweep.sh: determinism check passed (two runs byte-identical)"
