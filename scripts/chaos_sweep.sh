#!/usr/bin/env bash
# Chaos sweep: builds the deterministic bench harnesses, runs them, and
# verifies that two same-seed runs produce byte-identical JSON mirrors
# -- the determinism guarantee the whole simulation rests on.
#
# Covered: every bench that writes a BENCH_*.json mirror (chaos,
# federation, throughput incl. the batch-cap sweep, collection, and the
# flight-recorder overhead harness) plus the observability v2 exports
# bench_obs_overhead writes in its full-instrumentation cell
# (TIMELINE_*.json timeline, TRACE_*.json Chrome counter tracks,
# PROFILE_*.json profiler dump, AUDIT_*.jsonl decision audit).  Wall
# timings never enter any compared file: bench tables print them but
# record only deterministic columns (see bench_util.h RecordRow), and
# the kernel's WallClock stays pinned.
# Usage: scripts/chaos_sweep.sh [build-dir]
# Honors LEGION_BENCH_PRESET=smoke for the reduced CI sweep.
set -euo pipefail

die() { echo "chaos_sweep.sh: $*" >&2; exit 1; }

command -v cmake >/dev/null || die "cmake not found on PATH"

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

if [[ -d "$build" && ! -f "$build/CMakeCache.txt" ]]; then
  die "$build exists but is not a CMake build tree (no CMakeCache.txt)"
fi

generator_args=()
if [[ -f "$build/CMakeCache.txt" ]]; then
  generator="$(sed -n 's/^CMAKE_GENERATOR:INTERNAL=//p' "$build/CMakeCache.txt")"
  [[ -n "$generator" ]] || die "cannot read CMAKE_GENERATOR from $build/CMakeCache.txt"
  generator_args=(-G "$generator")
fi

benches=(chaos federation throughput collection obs_overhead)

cmake -B "$build" -S "$repo" "${generator_args[@]}" >/dev/null
cmake --build "$build" -j "$(nproc)" \
  --target "${benches[@]/#/bench_}"
for bench in "${benches[@]}"; do
  [[ -x "$build/bench/bench_$bench" ]] || die "bench_$bench did not build"
done

cd "$repo"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

# Determinism check: a second same-seed run must be byte-identical, for
# every JSON artifact each bench writes.  bench_throughput mirrors two
# experiments (BENCH_throughput.json and BENCH_throughput_batch.json);
# bench_obs_overhead also exports the flight-recorder artifacts; all are
# held to the same bar.
for name in "${benches[@]}"; do
  "$build/bench/bench_$name"
  jsons=("BENCH_$name".json "BENCH_$name"_*.json
         "TIMELINE_$name".json "TRACE_$name".json "PROFILE_$name".json
         "AUDIT_$name".jsonl "EXPLAIN_$name".txt)
  [[ -f "BENCH_$name.json" ]] ||
    die "bench_$name did not write BENCH_$name.json"
  for json in "${jsons[@]}"; do
    [[ -f "$json" ]] && cp "$json" "$scratch/$json"
  done
  "$build/bench/bench_$name" >/dev/null
  for json in "${jsons[@]}"; do
    [[ -f "$scratch/$json" ]] || continue
    cmp -s "$json" "$scratch/$json" ||
      die "two same-seed sweep runs produced different $json"
  done
done
# The flight-recorder exports must actually exist (regression guard for
# the bench's full-instrumentation cell going silent).
for artifact in TIMELINE_obs_overhead.json TRACE_obs_overhead.json \
                PROFILE_obs_overhead.json AUDIT_obs_overhead.jsonl \
                EXPLAIN_obs_overhead.txt; do
  [[ -f "$artifact" ]] || die "bench_obs_overhead did not write $artifact"
done
# scripts/explain.py must reproduce the C++ ExplainMapping report
# byte-for-byte from the JSONL export.
if command -v python3 >/dev/null; then
  python3 scripts/explain.py AUDIT_obs_overhead.jsonl 2 0 |
    cmp -s - EXPLAIN_obs_overhead.txt ||
    die "explain.py diverged from the C++ ExplainMapping report"
fi
echo "chaos_sweep.sh: determinism check passed (two runs byte-identical)"
