// Quickstart: build a small metacomputer, schedule an application onto it
// with the IRS scheduler, and watch the full paper pipeline run --
// Collection population (step 1), Collection query (steps 2-3),
// reservation negotiation (steps 4-6), and enactment through the class
// objects (steps 7-11).
#include <cstdio>
#include <fstream>

#include "core/schedulers/irs_scheduler.h"
#include "workload/executor.h"
#include "workload/metacomputer.h"

using namespace legion;

namespace {
bool WriteFile(const char* path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary);
  out << contents;
  return static_cast<bool>(out);
}
}  // namespace

int main() {
  // A deterministic simulated metacomputer: 2 administrative domains,
  // 4 hosts and 2 vaults each, heterogeneous platforms, WAN between the
  // domains.
  SimKernel kernel;
  // Record the full causal trace of everything that follows; dumped as
  // Chrome trace_event JSON at the end (open in chrome://tracing or
  // https://ui.perfetto.dev).
  kernel.trace().Enable();
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 4;
  config.vaults_per_domain = 2;
  config.seed = 7;
  Metacomputer metacomputer(&kernel, config);

  std::printf("metacomputer: %zu hosts, %zu vaults, %zu domains\n",
              metacomputer.hosts().size(), metacomputer.vaults().size(),
              config.domains);

  // Step 1: populate the Collection (hosts push their attribute records).
  metacomputer.PopulateCollection();
  std::printf("collection populated: %zu records\n",
              metacomputer.collection()->record_count());

  // A user class that runs on every platform in the topology.
  ClassObject* klass = metacomputer.MakeUniversalClass("my-app", 64, 1.0);

  // An IRS scheduler (figures 8-9): master + variant schedules, feedback
  // driven retries.
  auto* scheduler = kernel.AddActor<IrsScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid(),
      /*nsched=*/4, /*seed=*/11);

  // Place 4 instances.
  PlacementRequest request{{klass->loid(), 4}};
  bool finished = false;
  RunOutcome outcome;
  scheduler->ScheduleAndEnact(request, RunOptions{3, 2},
                              [&](Result<RunOutcome> r) {
                                finished = true;
                                if (r.ok()) outcome = *r;
                              });
  kernel.Run();

  if (!finished || !outcome.success) {
    std::printf("placement FAILED after %d schedule attempts\n",
                outcome.sched_attempts);
    return 1;
  }

  std::printf("placement succeeded (schedule attempts: %d, enact attempts: %d)\n",
              outcome.sched_attempts, outcome.enact_attempts);
  for (std::size_t i = 0; i < outcome.feedback.reserved_mappings.size(); ++i) {
    const ObjectMapping& mapping = outcome.feedback.reserved_mappings[i];
    const Result<Loid>& instance = outcome.enacted.instances[i];
    std::printf("  instance %zu: %s on %s (vault %s)\n", i,
                instance.ok() ? instance.value().ToString().c_str() : "?",
                mapping.host.ToString().c_str(),
                mapping.vault.ToString().c_str());
  }

  // What did that placement buy us?  Estimate the makespan of a small
  // parameter study over those hosts.
  ApplicationSpec app = MakeParameterStudy(4, /*work=*/5000.0);
  MakespanBreakdown breakdown = EstimateMakespan(
      kernel, app, HostsOfMappings(outcome.feedback.reserved_mappings));
  std::printf("estimated makespan: %.2f s (max host load %.2f)\n",
              breakdown.makespan.seconds(), breakdown.max_host_load);

  const KernelStats& stats = kernel.stats();
  std::printf("kernel: %llu events, %llu messages (%llu dropped), %llu RPCs\n",
              static_cast<unsigned long long>(stats.events_run),
              static_cast<unsigned long long>(stats.messages_sent),
              static_cast<unsigned long long>(stats.messages_dropped),
              static_cast<unsigned long long>(stats.rpcs_started));

  // Dump the observability artifacts: the causal trace of the whole run
  // (both Chrome trace_event JSON and raw JSONL) and a metrics snapshot.
  const bool wrote =
      WriteFile("quickstart.trace.json", kernel.trace().ToChromeJson()) &&
      WriteFile("quickstart.trace.jsonl", kernel.trace().ToJsonl()) &&
      WriteFile("quickstart.metrics.json", kernel.metrics().SnapshotJson());
  if (wrote) {
    std::printf(
        "wrote quickstart.trace.json (%zu trace events), "
        "quickstart.trace.jsonl, quickstart.metrics.json\n",
        kernel.trace().events().size());
  } else {
    std::printf("warning: could not write observability artifacts here\n");
  }
  return 0;
}
