// The paper's motivating specialized application (section 4.3): an
// MPI-style ocean simulation with nearest-neighbour communication on a
// 2-D grid, scheduled with application knowledge.
//
// Builds a 3-domain metacomputer, places an 8x8 stencil with (a) the
// figure-7 random default and (b) the specialized StencilScheduler, and
// compares the resulting placements: inter-domain halo edges, estimated
// makespan, and where each grid row landed.
#include <cstdio>

#include "core/schedulers/random_scheduler.h"
#include "core/schedulers/stencil_scheduler.h"
#include "workload/executor.h"
#include "workload/metacomputer.h"

using namespace legion;

namespace {

struct Placement {
  bool success = false;
  std::vector<ObjectMapping> mappings;
};

Placement PlaceWith(SimKernel& kernel, SchedulerObject* scheduler,
                    ClassObject* klass, std::size_t instances) {
  Placement placement;
  scheduler->ScheduleAndEnact(
      {{klass->loid(), instances}}, RunOptions{3, 2},
      [&](Result<RunOutcome> outcome) {
        if (outcome.ok() && outcome->success) {
          placement.success = true;
          placement.mappings = outcome->feedback.reserved_mappings;
        }
      });
  kernel.RunFor(Duration::Minutes(5));
  return placement;
}

void PrintGrid(SimKernel& kernel, const Placement& placement,
               std::size_t rows, std::size_t cols) {
  for (std::size_t r = 0; r < rows; ++r) {
    std::printf("    row %zu: ", r);
    for (std::size_t c = 0; c < cols; ++c) {
      auto domain =
          kernel.network().DomainOf(placement.mappings[r * cols + c].host);
      std::printf("%c", domain.has_value()
                            ? static_cast<char>('A' + *domain)
                            : '?');
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const std::size_t rows = 8, cols = 8;
  SimKernel kernel;
  MetacomputerConfig config;
  config.domains = 3;
  config.hosts_per_domain = 8;
  config.vaults_per_domain = 2;
  config.heterogeneous = false;
  config.seed = 77;
  config.load.volatility = 0.1;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();

  // The ocean model: one class, rows*cols instances, 256 KiB halos.
  // Cells timeshare (0.25 CPU) so even the random default can fit 64
  // instances on 24 machines.
  ClassObject* ocean =
      metacomputer.MakeUniversalClass("ocean-cell", 48, 0.25);
  // Comm-heavy regime (ocean models exchange fat halos every step).
  ApplicationSpec app =
      MakeStencil2D(rows, cols, /*work=*/20.0, /*halo=*/512 * 1024,
                    /*iterations=*/100);
  std::printf("ocean simulation: %zux%zu grid, %zu halo edges, %zu domains\n",
              rows, cols, app.edges.size(), config.domains);

  auto* random = kernel.AddActor<RandomScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid(),
      /*seed=*/5);
  auto* stencil = kernel.AddActor<StencilScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid(),
      rows, cols);

  for (auto& [scheduler, label] :
       std::vector<std::pair<SchedulerObject*, const char*>>{
           {random, "random default (figure 7)"},
           {stencil, "specialized stencil (section 4.3)"}}) {
    Placement placement = PlaceWith(kernel, scheduler, ocean, rows * cols);
    if (!placement.success) {
      std::printf("%s: placement FAILED\n", label);
      return 1;
    }
    MakespanBreakdown breakdown = EstimateMakespan(
        kernel, app, HostsOfMappings(placement.mappings));
    std::printf("\n%s:\n", label);
    std::printf("  inter-domain halo edges: %zu / %zu\n",
                breakdown.inter_domain_edges, breakdown.total_edges);
    std::printf("  estimated makespan: %.1f s (comm %.1f s)\n",
                breakdown.makespan.seconds(), breakdown.comm_time.seconds());
    std::printf("  grid by administrative domain (A..C):\n");
    PrintGrid(kernel, placement, rows, cols);
    // Free the hosts for the next scheduler's run.
    for (const ObjectMapping& mapping : placement.mappings) {
      if (auto* host = metacomputer.FindHost(mapping.host)) {
        for (const Loid& instance : ocean->instances()) {
          host->FinishObject(instance);
        }
      }
    }
  }
  return 0;
}
