// Federating queue-managed machines (paper sections 3.1 and 5): a
// metacomputer mixing interactive Unix workstations, batch machines
// behind Condor-/LoadLeveler-style queues, and a Maui-style machine with
// native reservations.  Demonstrates:
//   * uniform reservation negotiation across all host kinds,
//   * advance reservations passed through to the Maui calendar,
//   * the "unavoidable potential for conflict" on the non-reservation
//     queue, and
//   * monitor-driven migration away from a host whose owner returned.
#include <cstdio>

#include "core/migration.h"
#include "core/monitor.h"
#include "core/schedulers/ranked_scheduler.h"
#include "workload/metacomputer.h"

using namespace legion;

int main() {
  SimKernel kernel;
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 6;
  config.heterogeneous = false;
  config.batch_fraction = 0.4;
  config.maui_fraction = 0.2;
  config.seed = 97;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();

  int unix_hosts = 0, batch_hosts = 0, maui_hosts = 0;
  for (auto* host : metacomputer.hosts()) {
    if (dynamic_cast<MauiHost*>(host) != nullptr) {
      ++maui_hosts;
    } else if (dynamic_cast<BatchQueueHost*>(host) != nullptr) {
      ++batch_hosts;
    } else {
      ++unix_hosts;
    }
  }
  std::printf("federation: %d unix, %d batch, %d maui hosts\n", unix_hosts,
              batch_hosts, maui_hosts);

  // 1. Uniform negotiation: reserve one slot on each kind of host.
  ClassObject* job = metacomputer.MakeUniversalClass("job", 64, 1.0);
  std::printf("\nadvance reservations (+10 min, 1 h) across host kinds:\n");
  for (auto* host : metacomputer.hosts()) {
    ReservationRequest request;
    request.vault = ParseLoid(host->attributes()
                                  .Get("compatible_vaults")
                                  ->as_list()
                                  .front()
                                  .as_string())
                        .value();
    request.start = kernel.Now() + Duration::Minutes(10);
    request.duration = Duration::Hours(1);
    request.type = ReservationType::OneShotTimesharing();
    request.requester = Loid(LoidSpace::kService, 0, 1);
    request.memory_mb = 64;
    request.cpu_fraction = 1.0;
    std::string verdict = "pending";
    host->MakeReservation(request, [&](Result<ReservationToken> token) {
      verdict = token.ok() ? "granted" : token.status().ToString();
    });
    kernel.RunFor(Duration::Millis(10));
    std::printf("  %-22s [%-11s] -> %s\n", host->spec().name.c_str(),
                host->attributes().Get("host_kind")->as_string().c_str(),
                verdict.c_str());
  }

  // 2. Place interactive work with a load-aware scheduler; batch hosts
  //    advertise queue lengths the scheduler can weigh.
  auto* scheduler = kernel.AddActor<LoadAwareScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid());
  RunOutcome outcome;
  scheduler->ScheduleAndEnact({{job->loid(), 6}}, RunOptions{2, 2},
                              [&](Result<RunOutcome> r) {
                                if (r.ok()) outcome = *r;
                              });
  kernel.RunFor(Duration::Minutes(5));
  std::printf("\nload-aware placement of 6 jobs: %s\n",
              outcome.success ? "succeeded" : "FAILED");
  if (!outcome.success) return 1;

  // 3. A workstation owner returns: trigger -> monitor -> migrate.
  const Loid victim = outcome.enacted.instances[0].value();
  auto* victim_object =
      dynamic_cast<LegionObject*>(kernel.FindActor(victim));
  HostObject* origin = metacomputer.FindHost(victim_object->host());
  MonitorObject* monitor = metacomputer.monitor();
  monitor->WatchLoadThreshold(origin, 2.0);
  monitor->SetRescheduleHandler([&](const RgeEvent& event) {
    HostObject* target = nullptr;
    for (auto* candidate : metacomputer.hosts()) {
      if (candidate->loid() == event.source) continue;
      if (dynamic_cast<BatchQueueHost*>(candidate) != nullptr) continue;
      if (target == nullptr ||
          candidate->CurrentLoad() < target->CurrentLoad()) {
        target = candidate;
      }
    }
    const Loid vault = ParseLoid(target->attributes()
                                     .Get("compatible_vaults")
                                     ->as_list()
                                     .front()
                                     .as_string())
                           .value();
    MigrateObject(&kernel, monitor->loid(), victim, target->loid(), vault,
                  [&, target](Result<MigrationOutcome> migration) {
                    if (migration.ok() && migration->success) {
                      std::printf(
                          "  migrated %s -> %s in %.0f ms\n",
                          migration->from_host.ToString().c_str(),
                          target->spec().name.c_str(),
                          migration->elapsed.millis());
                    }
                  });
  });
  std::printf("\nowner returns to %s (load spike):\n",
              origin->spec().name.c_str());
  origin->SpikeLoad(3.0);
  kernel.RunFor(Duration::Minutes(2));
  std::printf("victim now on %s (%s)\n",
              victim_object->host().ToString().c_str(),
              victim_object->active() ? "active" : "inactive");
  return 0;
}
