// A parameter-space study (paper section 4.3) placed with "k out of n"
// scheduling (section 3.3): ask for k=12 runs over an equivalence class
// of n=20 hosts, some of which refuse outside placements -- any k that
// grant reservations will do, and the cost-aware ranking keeps the bill
// down.
#include <cstdio>

#include "core/schedulers/k_of_n_scheduler.h"
#include "core/schedulers/ranked_scheduler.h"
#include "workload/executor.h"
#include "workload/metacomputer.h"

using namespace legion;

int main() {
  SimKernel kernel;
  MetacomputerConfig config;
  config.domains = 4;
  config.hosts_per_domain = 6;
  config.heterogeneous = false;
  config.seed = 31;
  Metacomputer metacomputer(&kernel, config);
  // A quarter of the hosts enforce an autonomy policy that refuses our
  // domain -- the Collection doesn't know that; the Enactor finds out.
  Rng rng(8);
  std::size_t refusing = 0;
  for (auto* host : metacomputer.hosts()) {
    if (rng.Bernoulli(0.25)) {
      host->SetPolicy(std::make_unique<DomainRefusalPolicy>(
          std::vector<std::uint32_t>{0}));
      ++refusing;
    }
  }
  metacomputer.PopulateCollection();
  std::printf("metacomputer: %zu hosts (%zu will refuse us), 4 domains\n",
              metacomputer.hosts().size(), refusing);

  ClassObject* point = metacomputer.MakeUniversalClass("sweep-point", 32, 1.0);
  point->SetEstimatedRuntime(Duration::Minutes(45));

  const std::size_t k = 12, n = 20;
  auto* scheduler = kernel.AddActor<KOfNScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid(), n);

  std::printf("requesting %zu runs out of an equivalence class of %zu...\n",
              k, n);
  RunOutcome outcome;
  scheduler->ScheduleAndEnact({{point->loid(), k}}, RunOptions{2, 2},
                              [&](Result<RunOutcome> r) {
                                if (r.ok()) outcome = *r;
                              });
  kernel.RunFor(Duration::Minutes(5));
  if (!outcome.success) {
    std::printf("placement FAILED\n");
    return 1;
  }

  const auto& winner = *outcome.feedback.winner;
  std::printf("placed: master schedule + %zu variant substitutions\n",
              winner.variant_indices.size());
  const EnactorStats& stats = metacomputer.enactor()->stats();
  std::printf("negotiation: %llu reservation requests, %llu refused, "
              "%llu thrash remakes\n",
              static_cast<unsigned long long>(stats.reservations_requested),
              static_cast<unsigned long long>(stats.reservations_failed),
              static_cast<unsigned long long>(stats.rereservations));

  ApplicationSpec app = MakeParameterStudy(k, /*work=*/30000.0);
  MakespanBreakdown breakdown = EstimateMakespan(
      kernel, app, HostsOfMappings(outcome.feedback.reserved_mappings));
  std::printf("estimated sweep makespan: %.1f s, cost $%.4f\n",
              breakdown.makespan.seconds(), breakdown.dollars);
  for (std::size_t i = 0; i < outcome.feedback.reserved_mappings.size();
       ++i) {
    const auto& mapping = outcome.feedback.reserved_mappings[i];
    auto* host = metacomputer.FindHost(mapping.host);
    std::printf("  point %2zu -> %-12s (load %.2f, $%.4f/cpu-s)\n", i,
                host->spec().name.c_str(), host->CurrentLoad(),
                host->spec().cost_per_cpu_second);
  }
  return 0;
}
