// Federated Collection sweep (DESIGN.md §10): domains x delta-push
// period x WAN loss -> query latency / staleness / message volume,
// federated hierarchy vs the flat single-Collection baseline.
//
// The paper (§3.2) lets Collections "be organized in a hierarchy" so no
// single attribute database must describe the whole grid.  This harness
// quantifies what the hierarchy buys at fixed grid size (total hosts
// constant while the domain count grows):
//
//   scoped_ms    mean sim-latency of a domain-restricted query.  Flat:
//                every query crosses the WAN to the central Collection.
//                Federated: the owning sub-Collection answers on
//                intra-domain links, independent of grid size.
//   global_ms    mean sim-latency of a grid-wide query against the
//                aggregate (the root's bounded-staleness answer).  Stays
//                flat as domains grow -- the sub-linear claim.
//   staleness    root mean record age at end of run: bounded by the
//                push period plus a WAN hop, degrading gracefully (not
//                collapsing) when loss eats delta batches.
//   deltas/...   federation delta traffic: batches pushed (heartbeats
//                included), records carried (retransmits included), and
//                the bounded-staleness machinery's refresh pulls and
//                stale answers.
//
// Everything is seeded; two same-seed runs must produce byte-identical
// BENCH_federation.json (scripts/chaos_sweep.sh enforces this).
#include "bench_util.h"

namespace legion::bench {
namespace {

struct FederationCell {
  std::size_t records = 0;
  double scoped_ms = 0.0;
  double global_ms = 0.0;
  int scoped_ok = 0;
  int global_ok = 0;
  double staleness_ms = 0.0;
  std::uint64_t delta_pushes = 0;
  std::uint64_t delta_records = 0;
  std::uint64_t refresh_pulls = 0;
  std::uint64_t stale_answers = 0;
  std::uint64_t messages = 0;
  std::uint64_t kbytes = 0;
};

FederationCell RunCell(bool federated, std::size_t domains,
                       std::size_t total_hosts, double push_s, double loss,
                       int queries) {
  NetworkParams net = QuietNet();
  net.inter_domain_loss = loss;
  net.seed = 7300;
  MetacomputerConfig config;
  config.domains = domains;
  config.hosts_per_domain = total_hosts / domains;
  config.vaults_per_domain = 1;
  config.seed = 9100;
  config.load.volatility = 0.0;
  config.start_reassessment = true;
  config.federated = federated;
  config.delta_push_period = Duration::Seconds(push_s > 0 ? push_s : 5);
  World world = MakeWorld(config, net);
  SimKernel& kernel = *world.kernel;
  CollectionObject* root = world->collection();

  // The prober lives in the last domain: the worst case for a flat
  // centralized Collection (every query crosses the WAN to domain 0) and
  // the common case for a federated one (the owning sub is local).
  const auto probe_domain = static_cast<DomainId>(domains - 1);
  const Loid prober = kernel.minter().Mint(LoidSpace::kService, probe_domain);
  kernel.network().RegisterEndpoint(prober, probe_domain);
  CollectionObject* scoped_target =
      federated ? world->federation()->sub(probe_domain) : root;

  // Measurement window starts after populate: snapshot the shared
  // {component=collection} cells and the kernel counters, report the
  // difference.
  world->ResetAllStats();
  const std::uint64_t pushes0 = root->delta_pushes();
  const std::uint64_t records0 = root->delta_records();
  const std::uint64_t pulls0 = root->refresh_pulls();
  const std::uint64_t stale0 = root->stale_answers();

  FederationCell cell;
  const std::string query = "$host_load < 10.0";
  for (int q = 0; q < queries; ++q) {
    const bool global = (q % 2) == 1;
    QueryOptions options;
    options.order_by = "host_load";
    options.max_results = 8;
    if (!global) options.domain_scope = probe_domain;
    if (global && federated) {
      options.max_staleness = Duration::Seconds(2 * push_s);
    }
    const Loid target = global ? root->loid() : scoped_target->loid();
    const SimTime started = kernel.Now();
    bool ok = false;
    SimTime finished = started;
    CallOn<CollectionData, CollectionObject>(
        &kernel, prober, target, kSmallMessage, kLargeMessage,
        Duration::Seconds(10),
        [query, options](CollectionObject& collection,
                         Callback<CollectionData> reply) {
          collection.QueryCollection(query, options, std::move(reply));
        },
        [&](Result<CollectionData> hosts) {
          ok = hosts.ok() && !hosts->empty();
          finished = kernel.Now();
        },
        "bench_query");
    kernel.RunFor(Duration::Seconds(1));
    if (!ok) continue;
    const double ms = (finished - started).millis();
    if (global) {
      ++cell.global_ok;
      cell.global_ms += ms;
    } else {
      ++cell.scoped_ok;
      cell.scoped_ms += ms;
    }
  }
  // Drain stragglers so message counts cover complete exchanges.
  kernel.RunFor(Duration::Seconds(5));

  cell.records = root->record_count();
  if (cell.scoped_ok > 0) cell.scoped_ms /= cell.scoped_ok;
  if (cell.global_ok > 0) cell.global_ms /= cell.global_ok;
  cell.staleness_ms = root->MeanRecordAge().millis();
  cell.delta_pushes = root->delta_pushes() - pushes0;
  cell.delta_records = root->delta_records() - records0;
  cell.refresh_pulls = root->refresh_pulls() - pulls0;
  cell.stale_answers = root->stale_answers() - stale0;
  const KernelStats& stats = kernel.stats();
  cell.messages = stats.messages_sent;
  cell.kbytes = stats.bytes_sent / 1024;
  return cell;
}

void RunExperiment() {
  const bool smoke = SmokePreset();
  const std::size_t total_hosts = smoke ? 32 : 64;
  const int queries = smoke ? 20 : 60;
  const std::vector<std::size_t> domain_counts =
      smoke ? std::vector<std::size_t>{2, 8}
            : std::vector<std::size_t>{2, 4, 8, 16};
  const std::vector<double> push_periods =
      smoke ? std::vector<double>{2.0} : std::vector<double>{2.0, 10.0};
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0} : std::vector<double>{0.0, 0.2};

  Table table(
      "Federated Collection sweep -- flat vs hierarchical at fixed grid "
      "size, domain-scoped + global queries from the far domain",
      "mode       domains  push_s  loss%  records  scoped_ms  global_ms  "
      "scoped_ok  global_ok  stale_ms  pushes  drecords  pulls  "
      "stale_ans  msgs  kbytes");
  table.EnableJson(
      "federation",
      {"mode", "domains", "push_s", "loss_pct", "records", "scoped_ms",
       "global_ms", "scoped_ok", "global_ok", "staleness_ms", "delta_pushes",
       "delta_records", "refresh_pulls", "stale_answers", "messages",
       "kbytes"});
  table.Begin();
  for (std::size_t domains : domain_counts) {
    for (double loss : losses) {
      FederationCell flat =
          RunCell(false, domains, total_hosts, 0.0, loss, queries);
      table.Row("%-9s  %7zu  %6.0f  %5.0f  %7zu  %9.2f  %9.2f  %9d  %9d  "
                "%8.0f  %6llu  %8llu  %5llu  %9llu  %4llu  %6llu",
                {"flat", domains, 0.0, loss * 100.0, flat.records,
                 flat.scoped_ms, flat.global_ms, flat.scoped_ok,
                 flat.global_ok, flat.staleness_ms, flat.delta_pushes,
                 flat.delta_records, flat.refresh_pulls, flat.stale_answers,
                 flat.messages, flat.kbytes});
      for (double push_s : push_periods) {
        FederationCell fed =
            RunCell(true, domains, total_hosts, push_s, loss, queries);
        table.Row("%-9s  %7zu  %6.0f  %5.0f  %7zu  %9.2f  %9.2f  %9d  %9d  "
                  "%8.0f  %6llu  %8llu  %5llu  %9llu  %4llu  %6llu",
                  {"federated", domains, push_s, loss * 100.0, fed.records,
                   fed.scoped_ms, fed.global_ms, fed.scoped_ok, fed.global_ok,
                   fed.staleness_ms, fed.delta_pushes, fed.delta_records,
                   fed.refresh_pulls, fed.stale_answers, fed.messages,
                   fed.kbytes});
      }
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
