// Experiment E5: push/pull freshness vs placement quality.
//
// The Data Collection Daemon polls hosts on a period and pushes into the
// Collection; between polls the records go stale.  A load-aware
// scheduler choosing from stale records picks hosts that *were* idle.
// Sweep the poll period against volatile background load and report the
// mean record age and the placement regret (actual load of the chosen
// host minus the minimum actual load at decision time).  Expected shape:
// regret grows monotonically with the poll period; the function-injected
// forecast_load() recovers part of the gap.
#include "bench_util.h"
#include "core/dcd.h"
#include "core/schedulers/ranked_scheduler.h"

namespace legion::bench {
namespace {

struct StalenessResult {
  double mean_age_s = 0.0;
  double mean_regret = 0.0;
  int placements = 0;
};

StalenessResult RunCell(Duration poll_period, bool use_forecast) {
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 8;
  config.heterogeneous = false;
  config.seed = 4242;
  // Volatile but autocorrelated background load; per-host means differ
  // so the forecaster has structure to learn.
  config.load.volatility = 0.25;
  config.load.reversion = 0.15;
  config.randomize_load_mean = true;
  config.reassess_period = Duration::Seconds(5);
  config.start_reassessment = true;
  World world = MakeWorld(config);
  // Pull-only configuration: hosts keep reassessing (their load models
  // evolve and their local attributes stay fresh) but push nowhere; the
  // DCD is the only conduit into the Collection, so its poll period
  // controls record freshness.
  for (auto* host : world->hosts()) host->ClearCollections();

  DcdOptions dcd_options;
  dcd_options.poll_period = poll_period;
  auto* dcd = world.kernel->AddActor<DataCollectionDaemon>(
      world.kernel->minter().Mint(LoidSpace::kService, 0), dcd_options);
  for (auto* host : world->hosts()) dcd->WatchResource(host->loid());
  dcd->AddCollection(world->collection());
  dcd->InstallForecastFunction(world->collection());
  dcd->Start();

  ClassObject* klass = world->MakeUniversalClass("probe", 16, 0.01);
  auto* scheduler = world.kernel->AddActor<LoadAwareScheduler>(
      world.kernel->minter().Mint(LoidSpace::kService, 0),
      world->collection()->loid(), world->enactor()->loid(), use_forecast);

  StalenessResult result;
  double age_accum = 0.0;
  int age_samples = 0;
  // Warm the history, then place repeatedly and measure regret.
  world.kernel->RunFor(Duration::Minutes(5));
  for (int round = 0; round < 20; ++round) {
    world.kernel->RunFor(Duration::Seconds(37));
    bool done = false;
    Loid chosen;
    scheduler->ComputeSchedule(
        {{klass->loid(), 1}},
        [&](Result<ScheduleRequestList> schedule) {
          done = true;
          if (schedule.ok() && !schedule->masters.empty() &&
              !schedule->masters[0].mappings.empty()) {
            chosen = schedule->masters[0].mappings[0].host;
          }
        });
    world.kernel->RunFor(Duration::Seconds(20));
    if (!done || !chosen.valid()) continue;
    // Regret against ground truth *now*.
    double chosen_load = 0.0, min_load = 1e18;
    for (auto* host : world->hosts()) {
      const double load = host->CurrentLoad();
      min_load = std::min(min_load, load);
      if (host->loid() == chosen) chosen_load = load;
    }
    result.mean_regret += chosen_load - min_load;
    ++result.placements;
    age_accum += world->collection()->MeanRecordAge().seconds();
    ++age_samples;
  }
  if (result.placements > 0) result.mean_regret /= result.placements;
  if (age_samples > 0) result.mean_age_s = age_accum / age_samples;
  return result;
}

void RunExperiment() {
  Table table("E5 Collection staleness -- DCD poll period vs load-aware "
              "placement regret (16 hosts, volatile load)",
              "poll_period_s  forecast  mean_record_age_s  mean_regret");
  table.Begin();
  for (double period_s : {5.0, 15.0, 60.0, 180.0}) {
    for (bool forecast : {false, true}) {
      StalenessResult cell =
          RunCell(Duration::Seconds(period_s), forecast);
      table.Row("%13.0f  %8s  %17.1f  %11.3f", period_s,
                forecast ? "yes" : "no", cell.mean_age_s, cell.mean_regret);
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
