// Experiment E2 (claim C3): "Our default Schedulers and Enactor work
// together to structure the variant schedules so as to avoid reservation
// thrashing (the canceling and subsequent remaking of the same
// reservation).  Our data structure includes a bitmap field ... which
// allows the Enactor to efficiently select the next variant schedule to
// try."
//
// Under contention (single-CPU hosts with no oversubscription, several
// of them refusing outside placements), the bitmap-guided Enactor keeps
// the reservations variants don't touch, while the naive baseline
// cancels everything on any failure and remakes identical reservations.
// Reported: reservation requests, cancels, and the thrash count
// (re-reservations of an identical mapping) per negotiation.
#include "bench_util.h"
#include "core/schedulers/irs_scheduler.h"
#include "core/schedulers/k_of_n_scheduler.h"

namespace legion::bench {
namespace {

struct Totals {
  std::uint64_t requested = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t rethrash = 0;
  int successes = 0;
  int trials = 0;
};

Totals RunMode(bool use_bitmaps, std::size_t refusing, std::size_t instances,
               int trials) {
  Totals totals;
  for (int trial = 0; trial < trials; ++trial) {
    MetacomputerConfig config;
    config.domains = 2;
    config.hosts_per_domain = 8;
    config.vaults_per_domain = 2;
    config.heterogeneous = false;
    config.seed = 5000 + trial;
    config.load.volatility = 0.0;
    World world = MakeWorld(config);
    world->enactor()->options().use_variant_bitmaps = use_bitmaps;
    // Some hosts enforce an autonomy policy that refuses the enactor's
    // domain -- the scheduler can't see that in the Collection, so its
    // master schedules regularly name them.
    for (std::size_t i = 0; i < refusing && i < world->hosts().size(); ++i) {
      world->hosts()[i * 2]->SetPolicy(
          std::make_unique<DomainRefusalPolicy>(
              std::vector<std::uint32_t>{0}));
    }
    ClassObject* klass = world->MakeUniversalClass("contended");
    auto* scheduler = world.kernel->AddActor<IrsScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(),
        /*nsched=*/6, /*seed=*/900 + trial);
    bool success = false;
    scheduler->ScheduleAndEnact({{klass->loid(), instances}},
                                RunOptions{1, 1},
                                [&](Result<RunOutcome> outcome) {
                                  success =
                                      outcome.ok() && outcome->success;
                                });
    world.kernel->RunFor(Duration::Minutes(5));
    const EnactorStats& stats = world->enactor()->stats();
    totals.requested += stats.reservations_requested;
    totals.cancelled += stats.reservations_cancelled;
    totals.rethrash += stats.rereservations;
    totals.successes += success ? 1 : 0;
    ++totals.trials;
  }
  return totals;
}

// Second scenario: schedules whose variants each replace a *single*
// mapping (the k-of-n shape, and the structure the paper's discussion
// assumes).  Here the contrast is structural: the bitmap path never
// touches the k-1 healthy reservations, while cancel-all remakes the
// identical reservations on every retry round.
Totals RunSingleBitMode(bool use_bitmaps, std::size_t refusing,
                        std::size_t k, int trials) {
  Totals totals;
  for (int trial = 0; trial < trials; ++trial) {
    MetacomputerConfig config;
    config.domains = 2;
    config.hosts_per_domain = 8;
    config.vaults_per_domain = 2;
    config.heterogeneous = false;
    config.seed = 5100 + trial;
    config.load.volatility = 0.0;
    World world = MakeWorld(config);
    world->enactor()->options().use_variant_bitmaps = use_bitmaps;
    for (std::size_t i = 0; i < refusing && i < world->hosts().size(); ++i) {
      world->hosts()[i * 2]->SetPolicy(
          std::make_unique<DomainRefusalPolicy>(
              std::vector<std::uint32_t>{0}));
    }
    ClassObject* klass = world->MakeUniversalClass("replica");
    auto* scheduler = world.kernel->AddActor<KOfNScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(),
        /*n=*/k + 6);
    bool success = false;
    scheduler->ScheduleAndEnact({{klass->loid(), k}}, RunOptions{1, 1},
                                [&](Result<RunOutcome> outcome) {
                                  success =
                                      outcome.ok() && outcome->success;
                                });
    world.kernel->RunFor(Duration::Minutes(5));
    const EnactorStats& stats = world->enactor()->stats();
    totals.requested += stats.reservations_requested;
    totals.cancelled += stats.reservations_cancelled;
    totals.rethrash += stats.rereservations;
    totals.successes += success ? 1 : 0;
    ++totals.trials;
  }
  return totals;
}

void RunExperiment() {
  const int trials = 20;
  {
    Table table("E2a reservation thrashing -- bitmap-guided variants vs "
                "naive cancel-all (IRS n=6, 16 hosts, 20 trials each)",
                "mode    refusing  k   success%  reqs/run  cancels/run  "
                "thrash/run");
    table.Begin();
    for (std::size_t refusing : {2UL, 4UL, 6UL}) {
      for (std::size_t instances : {4UL, 8UL}) {
        for (bool bitmaps : {true, false}) {
          Totals totals = RunMode(bitmaps, refusing, instances, trials);
          table.Row("%-6s  %8zu  %zu  %7.0f%%  %8.1f  %11.1f  %10.2f",
                    bitmaps ? "bitmap" : "naive", refusing, instances,
                    100.0 * totals.successes / totals.trials,
                    static_cast<double>(totals.requested) / totals.trials,
                    static_cast<double>(totals.cancelled) / totals.trials,
                    static_cast<double>(totals.rethrash) / totals.trials);
        }
      }
    }
  }
  {
    Table table("E2b same, with single-replacement variant schedules "
                "(k-of-n shape, n = k+6)",
                "mode    refusing  k   success%  reqs/run  cancels/run  "
                "thrash/run");
    table.Begin();
    for (std::size_t refusing : {2UL, 4UL, 6UL}) {
      for (std::size_t instances : {4UL, 8UL}) {
        for (bool bitmaps : {true, false}) {
          Totals totals =
              RunSingleBitMode(bitmaps, refusing, instances, trials);
          table.Row("%-6s  %8zu  %zu  %7.0f%%  %8.1f  %11.1f  %10.2f",
                    bitmaps ? "bitmap" : "naive", refusing, instances,
                    100.0 * totals.successes / totals.trials,
                    static_cast<double>(totals.requested) / totals.trials,
                    static_cast<double>(totals.cancelled) / totals.trials,
                    static_cast<double>(totals.rethrash) / totals.trials);
        }
      }
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
