// Flight-recorder overhead (DESIGN.md §12): the same chaos workload run
// with the observability v2 layers off and on.
//
// The design claim is that the recorder, the kernel profiler, and the
// decision audit log are *observers*: enabling them changes nothing the
// simulation computes.  The table makes that auditable -- events,
// messages, RPCs, and placements must be identical down the column --
// and reports what each layer captured (samples, audit records,
// profiled handler labels, high-water marks).  Wall-clock overhead is
// printed after the table but deliberately NOT recorded into the JSON
// mirror: wall time is nondeterministic and every BENCH_*.json must be
// byte-identical across same-seed runs (scripts/chaos_sweep.sh).
//
// The full-instrumentation cell also exports the flight-recorder
// artifacts (timeline, Chrome counter tracks, profile, audit JSONL) --
// deterministic because the kernel's WallClock stays pinned -- which the
// sweep holds to the same byte-identity bar and CI uploads.
#include <chrono>
#include <cstdio>

#include "bench_util.h"
#include "core/schedulers/irs_scheduler.h"

namespace legion::bench {
namespace {

struct Mode {
  const char* name;
  bool recorder;
  bool audit;
  bool profiler;
};

struct ObsCell {
  std::uint64_t events = 0;
  std::uint64_t messages = 0;
  std::uint64_t rpcs = 0;
  int placements_ok = 0;
  std::size_t samples = 0;
  std::size_t audit_records = 0;
  std::size_t profiled_labels = 0;
  std::size_t queue_hwm = 0;
  std::size_t rpc_hwm = 0;
  double wall_ms = 0.0;  // printed, never recorded (nondeterministic)
};

void WriteFile(const char* path, const std::string& contents) {
  if (std::FILE* f = std::fopen(path, "w")) {
    std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
    std::printf("[wrote %s]\n", path);
  }
}

ObsCell RunCell(const Mode& mode, int placements, bool export_artifacts) {
  NetworkParams net = QuietNet();
  net.inter_domain_loss = 0.05;
  net.seed = 7300;
  MetacomputerConfig config;
  config.domains = 4;
  config.hosts_per_domain = 4;
  config.heterogeneous = false;
  config.seed = 9500;
  config.load.volatility = 0.0;
  World world = MakeWorld(config, net);
  SimKernel& kernel = *world.kernel;

  EnactorOptions& opts = world->enactor()->options();
  opts.rpc_timeout = Duration::Seconds(2);
  opts.retry.max_attempts = 4;
  opts.retry.base_delay = Duration::Millis(500);
  opts.retry.max_delay = Duration::Seconds(4);
  HealthOptions& health = world->enactor()->health().options();
  health.host_failure_threshold = 3;
  health.domain_failure_threshold = 8;
  health.host_cooldown = Duration::Seconds(30);
  health.domain_cooldown = Duration::Seconds(45);
  // Domain 3 cut off mid-run so breakers open and the audit log records
  // suspect-skips, retries, and fast-fails.
  kernel.network().AddPartition(0, 3, kernel.Now() + Duration::Seconds(20),
                                kernel.Now() + Duration::Seconds(80));

  if (mode.recorder) {
    obs::TimeSeriesRecorder& recorder = kernel.recorder();
    recorder.options().sample_period = Duration::Seconds(1);
    const obs::Labels kernel_labels = {{"component", "kernel"}};
    recorder.WatchCounter("kernel/messages_sent",
                          kernel.metrics().GetCounter("messages_sent",
                                                      kernel_labels));
    recorder.WatchCounter("kernel/rpcs_started",
                          kernel.metrics().GetCounter("rpcs_started",
                                                      kernel_labels));
    recorder.WatchCounter(
        "enactor/reservations_granted",
        kernel.metrics().GetCounter("reservations_granted",
                                    {{"component", "enactor"}}));
    recorder.Watch("kernel/event_queue_depth",
                   [&kernel] { return static_cast<double>(kernel.queue_size()); },
                   /*cumulative=*/false);
    recorder.Start(kernel.Now());
  }
  if (mode.audit) kernel.audit().Enable();
  if (mode.profiler) kernel.profiler().Enable();

  ClassObject* klass = world->MakeUniversalClass("obs_app", 16, 0.1);
  auto* scheduler = world.kernel->AddActor<IrsScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      world->collection()->loid(), world->enactor()->loid(), 4, 4500);

  ObsCell cell;
  const auto wall_start = std::chrono::steady_clock::now();
  for (int p = 0; p < placements; ++p) {
    bool success = false;
    scheduler->ScheduleAndEnact({{klass->loid(), 4}}, RunOptions{2, 2},
                                [&](Result<RunOutcome> outcome) {
                                  success = outcome.ok() && outcome->success;
                                });
    kernel.RunFor(Duration::Seconds(30));
    if (success) ++cell.placements_ok;
  }
  cell.wall_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - wall_start)
                     .count();

  const KernelStats& stats = kernel.stats();
  cell.events = stats.events_run;
  cell.messages = stats.messages_sent;
  cell.rpcs = stats.rpcs_started;
  cell.samples = kernel.recorder().samples("kernel/messages_sent").size();
  cell.audit_records = kernel.audit().size();
  cell.profiled_labels = kernel.profiler().entries().size();
  cell.queue_hwm = kernel.profiler().queue_depth_high_water();
  cell.rpc_hwm = kernel.profiler().rpc_inflight_high_water();

  if (export_artifacts) {
    WriteFile("TIMELINE_obs_overhead.json", kernel.recorder().ToJson());
    WriteFile("TRACE_obs_overhead.json", kernel.recorder().ToChromeJson());
    WriteFile("PROFILE_obs_overhead.json", kernel.profiler().ToJson());
    WriteFile("AUDIT_obs_overhead.jsonl", kernel.audit().ToJsonl());
    // The C++ explain report for one negotiation; scripts/explain.py
    // must reproduce it byte-for-byte from the JSONL (chaos_sweep.sh
    // cross-checks the two).
    WriteFile("EXPLAIN_obs_overhead.txt",
              kernel.audit().ExplainMapping(2, 0));
  }
  return cell;
}

void RunExperiment() {
  const int placements = SmokePreset() ? 4 : 8;
  const Mode modes[] = {
      {"baseline", false, false, false},
      {"recorder", true, false, false},
      {"audit", false, true, false},
      {"full", true, true, true},
  };

  Table table(
      "Flight-recorder overhead -- same chaos workload, observability "
      "off vs on (4 domains x 4 hosts, partition mid-run)",
      "mode      events  messages   rpcs  placed  samples  audit_recs  "
      "prof_labels  queue_hwm  rpc_hwm");
  table.EnableJson("obs_overhead",
                   {"mode", "events", "messages", "rpcs", "placements_ok",
                    "samples", "audit_records", "profiled_labels",
                    "queue_high_water", "rpc_inflight_high_water"});
  table.Begin();
  std::vector<ObsCell> cells;
  for (const Mode& mode : modes) {
    const bool full = std::string_view(mode.name) == "full";
    ObsCell cell = RunCell(mode, placements, /*export_artifacts=*/full);
    table.Row("%-8s  %6zu  %8zu  %5zu  %6d  %7zu  %10zu  %11zu  %9zu  %7zu",
              {mode.name, cell.events, cell.messages, cell.rpcs,
               cell.placements_ok, cell.samples, cell.audit_records,
               cell.profiled_labels, cell.queue_hwm, cell.rpc_hwm});
    cells.push_back(cell);
  }
  // Observer guarantee: every mode must have computed the same simulation.
  for (const ObsCell& cell : cells) {
    if (cell.events != cells.front().events ||
        cell.messages != cells.front().messages ||
        cell.placements_ok != cells.front().placements_ok) {
      std::fprintf(stderr,
                   "PERTURBATION: observability changed the simulation\n");
      std::exit(1);
    }
  }
  // Wall overhead, text only: nondeterministic, so it must never enter
  // the JSON mirror the sweep byte-compares.
  std::printf("\nwall_ms (not recorded): ");
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s=%.1f", i == 0 ? "" : "  ", modes[i].name,
                cells[i].wall_ms);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
