// Experiment E10 (paper 3.3): "k out of n" scheduling.
//
// The scheduler names an equivalence class of n hosts and asks the
// Enactor to start k instances on any of them.  Sweep the slack (n-k)
// against the fraction of hosts that refuse placements; report success
// rate and negotiation effort.  Expected shape: success rises steeply
// with slack; effort (reservation requests per success) stays modest
// because single-bit variants never disturb positions that already hold
// reservations.
#include "bench_util.h"
#include "core/schedulers/k_of_n_scheduler.h"

namespace legion::bench {
namespace {

struct KOfNResult {
  double success = 0.0;
  double reservations = 0.0;
  double rethrash = 0.0;
};

KOfNResult RunCell(std::size_t k, std::size_t n, double refuse_fraction,
                   int trials) {
  KOfNResult result;
  for (int trial = 0; trial < trials; ++trial) {
    MetacomputerConfig config;
    config.domains = 2;
    config.hosts_per_domain = 8;
    config.heterogeneous = false;
    config.seed = 9900 + trial;
    config.load.volatility = 0.05;
    World world = MakeWorld(config);
    Rng rng(400 + trial);
    for (auto* host : world->hosts()) {
      if (rng.Bernoulli(refuse_fraction)) {
        host->SetPolicy(std::make_unique<DomainRefusalPolicy>(
            std::vector<std::uint32_t>{0}));
      }
    }
    ClassObject* klass = world->MakeUniversalClass("replica", 16, 0.2);
    auto* scheduler = world.kernel->AddActor<KOfNScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(), n);
    bool success = false;
    scheduler->ScheduleAndEnact({{klass->loid(), k}}, RunOptions{1, 1},
                                [&](Result<RunOutcome> outcome) {
                                  success =
                                      outcome.ok() && outcome->success;
                                });
    world.kernel->RunFor(Duration::Minutes(5));
    result.success += success ? 1.0 : 0.0;
    result.reservations +=
        static_cast<double>(world->enactor()->stats().reservations_requested);
    result.rethrash +=
        static_cast<double>(world->enactor()->stats().rereservations);
  }
  result.success = 100.0 * result.success / trials;
  result.reservations /= trials;
  result.rethrash /= trials;
  return result;
}

void RunExperiment() {
  const int trials = 20;
  const std::size_t k = 4;
  Table table("E10 k-of-n scheduling -- k=4 replicas, 16 hosts, 20 trials",
              "n   slack  refuse%  success%  reservations/run  thrash/run");
  table.Begin();
  for (std::size_t n : {4UL, 5UL, 6UL, 8UL, 12UL}) {
    for (double refuse : {0.2, 0.4}) {
      KOfNResult cell = RunCell(k, n, refuse, trials);
      table.Row("%-2zu  %5zu  %7.0f  %7.0f%%  %16.1f  %10.2f", n, n - k,
                refuse * 100.0, cell.success, cell.reservations,
                cell.rethrash);
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
