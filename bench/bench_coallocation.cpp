// Experiment E7 (claim C7): co-allocation across administrative domains.
//
// "Note that this may require the Enactor to negotiate with several
// resources from different administrative domains to perform
// co-allocation."  Sweep the number of domains a schedule spans and the
// inter-domain RTT; report negotiation latency (the co-allocation is
// atomic: it completes when the slowest domain answers) and success
// under WAN message loss.  Expected shape: latency tracks the max RTT,
// not the sum; loss degrades success for wide spans faster.
#include <algorithm>

#include "bench_util.h"

namespace legion::bench {
namespace {

struct CoAllocationResult {
  double latency_ms = 0.0;
  double success = 0.0;
};

CoAllocationResult RunCell(std::size_t span_domains, Duration wan_latency,
                           double loss, int rounds) {
  CoAllocationResult result;
  for (int round = 0; round < rounds; ++round) {
    NetworkParams net = QuietNet();
    net.inter_domain_latency = wan_latency;
    net.inter_domain_loss = loss;
    net.seed = 300 + round;
    MetacomputerConfig config;
    config.domains = 8;
    config.hosts_per_domain = 2;
    config.heterogeneous = false;
    config.seed = 6200 + round;
    config.load.volatility = 0.0;
    World world = MakeWorld(config, net);
    world->enactor()->options().rpc_timeout = Duration::Seconds(10);
    ClassObject* klass = world->MakeUniversalClass("spread", 16, 0.1);

    // One mapping in each of `span_domains` domains (domain 0 first: the
    // enactor lives there).
    ScheduleRequestList request;
    MasterSchedule master;
    for (std::size_t d = 0; d < span_domains; ++d) {
      for (auto* host : world->hosts()) {
        if (host->spec().domain != d) continue;
        ObjectMapping mapping;
        mapping.class_loid = klass->loid();
        mapping.host = host->loid();
        // first vault of that domain
        mapping.vault =
            world->vaults()[d * config.vaults_per_domain]->loid();
        master.mappings.push_back(mapping);
        break;
      }
    }
    request.masters.push_back(master);

    const SimTime started = world.kernel->Now();
    bool success = false;
    SimTime finished = started;
    world->enactor()->MakeReservations(
        request, [&](Result<ScheduleFeedback> feedback) {
          success = feedback.ok() && feedback->success;
          finished = world.kernel->Now();
        });
    world.kernel->RunFor(Duration::Minutes(2));
    result.latency_ms += (finished - started).millis();
    result.success += success ? 1.0 : 0.0;
  }
  result.latency_ms /= rounds;
  result.success = 100.0 * result.success / rounds;
  return result;
}

void RunExperiment() {
  const int rounds = 10;
  Table table("E7 co-allocation across domains -- one reservation per "
              "domain, atomic commit (10 rounds)",
              "domains  wan_rtt_ms  loss%  success%  negotiate_ms");
  table.Begin();
  for (std::size_t span : {1UL, 2UL, 4UL, 8UL}) {
    for (double wan_ms : {10.0, 50.0, 200.0}) {
      for (double loss : {0.0, 0.05}) {
        CoAllocationResult cell =
            RunCell(span, Duration::Millis(static_cast<int64_t>(wan_ms)),
                    loss, rounds);
        table.Row("%7zu  %10.0f  %5.0f  %7.0f%%  %12.1f", span, wan_ms,
                  loss * 100.0, cell.success, cell.latency_ms);
      }
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
