// Experiment E4: Collection query throughput.
//
// The Collection is on every scheduler's critical path.  This harness
// times the query engine (google-benchmark) over record counts from 1e2
// to 1e5, with three query shapes -- cheap field equality, the paper's
// regexp match(), and a compound expression -- on both the serial and
// the sharded-parallel evaluation paths.  Expected shape: cost linear in
// records; regexp a constant factor over equality; the parallel path
// overtaking serial somewhere in the 1e4-record range.
#include <benchmark/benchmark.h>

#include "bench_util.h"

namespace legion::bench {
namespace {

std::unique_ptr<SimKernel> g_kernel;

CollectionObject* BuildCollection(std::size_t records) {
  static std::map<std::size_t, CollectionObject*> cache;
  auto it = cache.find(records);
  if (it != cache.end()) return it->second;
  if (!g_kernel) g_kernel = std::make_unique<SimKernel>(QuietNet());
  auto* collection = g_kernel->AddActor<CollectionObject>(
      g_kernel->minter().Mint(LoidSpace::kService, 0));
  Rng rng(records * 31 + 7);
  const auto& platforms = KnownPlatforms();
  for (std::size_t i = 0; i < records; ++i) {
    const Platform& platform = platforms[rng.Index(platforms.size())];
    AttributeDatabase attrs;
    attrs.Set("host_name", "host" + std::to_string(i));
    attrs.Set("host_arch", platform.arch);
    attrs.Set("host_os_name", platform.os_name);
    attrs.Set("host_os_version", platform.os_version);
    attrs.Set("host_load", rng.Uniform(0.0, 2.0));
    attrs.Set("host_cpus", rng.UniformInt(1, 16));
    attrs.Set("host_memory_mb", rng.UniformInt(128, 4096));
    collection->JoinCollection(Loid(LoidSpace::kHost, 0, i + 1), attrs,
                               [](Result<bool>) {});
  }
  cache[records] = collection;
  return collection;
}

const char* QueryText(int shape) {
  switch (shape) {
    case 0:  // equality
      return "$host_arch == \"x86\"";
    case 1:  // the paper's regexp matching
      return "match($host_os_name, \"IRIX\") and "
             "match(\"5\\..*\", $host_os_version)";
    default:  // compound
      return "($host_arch == \"x86\" or $host_arch == \"alpha\") and "
             "$host_load < 1.0 and $host_memory_mb >= 512 and "
             "defined($host_cpus)";
  }
}

void BM_QuerySerial(benchmark::State& state) {
  CollectionObject* collection =
      BuildCollection(static_cast<std::size_t>(state.range(0)));
  auto query = query::CompiledQuery::Compile(
      QueryText(static_cast<int>(state.range(1))));
  for (auto _ : state) {
    auto result = collection->QueryLocal(*query);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_QueryParallel(benchmark::State& state) {
  CollectionObject* collection =
      BuildCollection(static_cast<std::size_t>(state.range(0)));
  auto query = query::CompiledQuery::Compile(
      QueryText(static_cast<int>(state.range(1))));
  const unsigned threads = static_cast<unsigned>(state.range(2));
  for (auto _ : state) {
    auto result = collection->QueryLocalParallel(*query, threads);
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_QueryCompile(benchmark::State& state) {
  const char* text = QueryText(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto query = query::CompiledQuery::Compile(text);
    benchmark::DoNotOptimize(query);
  }
}

BENCHMARK(BM_QuerySerial)
    ->ArgsProduct({{100, 1000, 10000, 100000}, {0, 1, 2}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryParallel)
    ->ArgsProduct({{10000, 100000}, {0, 1, 2}, {2, 4, 8}})
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_QueryCompile)->DenseRange(0, 2)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace legion::bench

BENCHMARK_MAIN();
