// Experiment E4: Collection query engine -- scan vs index vs top-k.
//
// The Collection is on every scheduler's critical path.  This harness
// ablates the query execution layer over growing record counts: the same
// compiled query evaluated (a) by full scan (force_scan), (b) through
// the attribute indexes, and (c) through the indexes with the
// schedulers' bounded-pool options (order_by + max_results).  Expected
// shape: scan linear in records; indexed point/range queries roughly
// flat; regexp match() non-sargable, so identical in all modes.  A
// second table locates the serial-vs-parallel crossover for the
// non-sargable scan that motivates kParallelFanoutThreshold.
//
// Every indexed cell is checked byte-for-byte against the scan result
// before timing (the planner-equivalence contract).
#include <chrono>
#include <cstdlib>

#include "bench_util.h"

namespace legion::bench {
namespace {

struct QueryCase {
  const char* name;
  std::string text;
};

std::vector<QueryCase> Cases() {
  return {
      {"point", "$host_name == \"host7\""},
      {"arch+os", "$host_arch == \"x86\" and $host_os_name == \"Linux\""},
      {"range", "$host_load < 0.1"},
      {"compound",
       "($host_arch == \"x86\" or $host_arch == \"alpha\") and "
       "$host_load < 0.2"},
      {"regex", "match($host_os_name, \"IRIX\") and "
                "match(\"5\\\\..*\", $host_os_version)"},
  };
}

std::unique_ptr<SimKernel> g_kernel;

CollectionObject* BuildCollection(std::size_t records) {
  if (!g_kernel) g_kernel = std::make_unique<SimKernel>(QuietNet());
  auto* collection = g_kernel->AddActor<CollectionObject>(
      g_kernel->minter().Mint(LoidSpace::kService, 0));
  Rng rng(records * 31 + 7);
  const auto& platforms = KnownPlatforms();
  for (std::size_t i = 0; i < records; ++i) {
    const Platform& platform = platforms[rng.Index(platforms.size())];
    AttributeDatabase attrs;
    attrs.Set("host_name", "host" + std::to_string(i));
    attrs.Set("host_arch", platform.arch);
    attrs.Set("host_os_name", platform.os_name);
    attrs.Set("host_os_version", platform.os_version);
    attrs.Set("host_load", rng.Uniform(0.0, 2.0));
    attrs.Set("host_cpus", rng.UniformInt(1, 16));
    attrs.Set("host_memory_mb", rng.UniformInt(128, 4096));
    collection->JoinCollection(Loid(LoidSpace::kHost, 0, i + 1), attrs,
                               [](Result<bool>) {});
  }
  return collection;
}

// Microseconds per call, timed over enough iterations to swamp clock
// noise (at least ~25 ms of work per cell).
template <typename Fn>
double TimeUs(Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  fn();  // warm up
  std::size_t iterations = 1;
  for (;;) {
    const auto start = Clock::now();
    for (std::size_t i = 0; i < iterations; ++i) fn();
    const double us =
        std::chrono::duration<double, std::micro>(Clock::now() - start)
            .count();
    if (us >= 25'000.0 || iterations >= 1u << 20) {
      return us / static_cast<double>(iterations);
    }
    iterations *= 4;
  }
}

bool SameMembers(const CollectionData& a, const CollectionData& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!(a[i].member == b[i].member)) return false;
  }
  return true;
}

void RunAblation() {
  Table table("E4 query engine ablation -- scan vs index vs index+top-k "
              "(us/query)",
              "records  query     matches  scan_us  index_us  topk_us  "
              "idx_speedup  topk_speedup  path");
  // The JSON mirror records only the deterministic columns (the wall
  // timings print in the text table but would break the sweep's
  // double-run byte-identity check).
  table.EnableJson("collection", {"records", "query", "matches", "path"});
  table.Begin();

  for (std::size_t records : {2000u, 10000u, 50000u}) {
    CollectionObject* collection = BuildCollection(records);
    for (const QueryCase& qc : Cases()) {
      auto query = query::CompiledQuery::Compile(qc.text);
      if (!query) {
        std::fprintf(stderr, "compile failed: %s\n", qc.text.c_str());
        std::exit(1);
      }
      QueryOptions scan;
      scan.force_scan = true;
      QueryOptions indexed;  // defaults
      QueryOptions topk;
      topk.max_results = 16;
      topk.order_by = "host_load";

      // Equivalence check before timing: the index path must reproduce
      // the scan byte-for-byte.
      const auto scan_result = *collection->QueryLocal(*query, scan);
      const auto index_result = *collection->QueryLocal(*query, indexed);
      if (!SameMembers(scan_result, index_result)) {
        std::fprintf(stderr, "MISMATCH scan vs index: %s at %zu records\n",
                     qc.name, records);
        std::exit(1);
      }

      const std::uint64_t hits_before = collection->index_hits();
      (void)collection->QueryLocal(*query, indexed);
      const bool used_index = collection->index_hits() > hits_before;

      const double scan_us =
          TimeUs([&] { (void)collection->QueryLocal(*query, scan); });
      const double index_us =
          TimeUs([&] { (void)collection->QueryLocal(*query, indexed); });
      const double topk_us =
          TimeUs([&] { (void)collection->QueryLocal(*query, topk); });

      const char* path = used_index ? "index" : "scan";
      table.Row("%7zu  %-8s  %7zu  %7.1f  %8.1f  %7.1f  %10.1fx  %11.1fx  %s",
                records, qc.name, scan_result.size(), scan_us, index_us,
                topk_us, scan_us / index_us, scan_us / topk_us, path);
      table.RecordRow({records, qc.name, scan_result.size(), path});
    }
  }
}

void RunParallelCrossover() {
  Table table("E4b serial vs parallel scan (non-sargable regexp), us/query",
              "records  serial_us  par2_us  par4_us  par8_us");
  // No JSON mirror: every measured column is wall time, so there is
  // nothing deterministic to record (see the sweep's byte-identity bar).
  table.Begin();
  const std::string text = "match($host_os_name, \"IRIX\") and "
                           "match(\"5\\\\..*\", $host_os_version)";
  auto query = query::CompiledQuery::Compile(text);
  for (std::size_t records : {2000u, 8000u, 32000u, 100000u}) {
    CollectionObject* collection = BuildCollection(records);
    QueryOptions scan;
    scan.force_scan = true;
    const double serial_us =
        TimeUs([&] { (void)collection->QueryLocal(*query, scan); });
    std::vector<Cell> cells = {records, serial_us};
    for (unsigned threads : {2u, 4u, 8u}) {
      cells.push_back(TimeUs([&] {
        (void)collection->QueryLocalParallel(*query, threads, scan);
      }));
    }
    table.Row("%7zu  %9.1f  %7.1f  %7.1f  %7.1f", std::move(cells));
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunAblation();
  legion::bench::RunParallelCrossover();
  return 0;
}
