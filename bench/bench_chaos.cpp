// Chaos sweep (DESIGN.md §9): placement under injected faults, naive vs
// resilient negotiation.
//
// The paper's robustness claim -- "our Legion objects are built to
// accommodate failure at any step in the scheduling process" (§3.1) --
// is only credible under a systematic fault sweep (GridSim's lesson).
// This harness sweeps message-loss rate x partition schedule x retry
// policy over a fixed 4-domain metacomputer and reports, per cell:
//
//   success%          placements that fully enacted
//   time_to_place_ms  mean wall-clock (sim) of successful placements
//   wasted            reservations granted-then-cancelled or failed on
//                     the wire (work the negotiation threw away)
//   retries           transient-failure retries the Enactor issued
//   breaker_open      reservation attempts short-circuited by an open
//                     breaker (no RPC round trip paid)
//
// Policies:
//   naive      RetryPolicy{max_attempts=1}, health tracking off -- the
//              pre-resilience Enactor.
//   resilient  max_attempts=4 with exponential backoff, breaker
//              thresholds tuned for the 2s rpc timeout.
//
// Everything is seeded; two same-seed runs must produce byte-identical
// BENCH_chaos.json (scripts/chaos_sweep.sh enforces this).
#include "bench_util.h"
#include "core/schedulers/irs_scheduler.h"

namespace legion::bench {
namespace {

struct ChaosCell {
  double success_pct = 0.0;
  double time_to_place_ms = 0.0;
  double wasted = 0.0;        // mean per trial
  double retries = 0.0;       // mean per trial
  double breaker_open = 0.0;  // mean per trial
};

ChaosCell RunCell(bool resilient, double loss, bool partition, int trials,
                  int placements) {
  ChaosCell cell;
  int successes = 0;
  int attempts = 0;
  double success_ms = 0.0;
  for (int trial = 0; trial < trials; ++trial) {
    NetworkParams net = QuietNet();
    net.inter_domain_loss = loss;
    net.seed = 7100 + trial;
    MetacomputerConfig config;
    config.domains = 4;
    config.hosts_per_domain = 4;
    config.heterogeneous = false;
    config.seed = 9300 + trial;
    config.load.volatility = 0.0;
    World world = MakeWorld(config, net);

    EnactorOptions& opts = world->enactor()->options();
    opts.rpc_timeout = Duration::Seconds(2);
    if (resilient) {
      opts.retry.max_attempts = 4;
      opts.retry.base_delay = Duration::Millis(500);
      opts.retry.max_delay = Duration::Seconds(4);
      // Thresholds sized so a partitioned domain trips within one
      // placement but uncorrelated loss (retried successfully) does not.
      HealthOptions& health = world->enactor()->health().options();
      health.host_failure_threshold = 3;
      health.domain_failure_threshold = 8;
      health.host_cooldown = Duration::Seconds(30);
      health.domain_cooldown = Duration::Seconds(45);
    } else {
      opts.retry.max_attempts = 1;
      opts.use_health = false;
    }
    if (partition) {
      // Domain 3 severed from the service domain for a minute in the
      // middle of the run: reservations into it time out, then heal.
      world.kernel->network().AddPartition(
          0, 3, world.kernel->Now() + Duration::Seconds(20),
          world.kernel->Now() + Duration::Seconds(80));
    }

    ClassObject* klass = world->MakeUniversalClass("chaos_app", 16, 0.1);
    auto* scheduler = world.kernel->AddActor<IrsScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(), 4,
        4400 + trial);
    world->ResetAllStats();

    // A stream of placements paced across the fault window.
    for (int p = 0; p < placements; ++p) {
      bool success = false;
      const SimTime started = world.kernel->Now();
      SimTime finished = started;
      scheduler->ScheduleAndEnact({{klass->loid(), 4}}, RunOptions{2, 2},
                                  [&](Result<RunOutcome> outcome) {
                                    success = outcome.ok() && outcome->success;
                                    finished = world.kernel->Now();
                                  });
      world.kernel->RunFor(Duration::Seconds(30));
      ++attempts;
      if (success) {
        ++successes;
        success_ms += (finished - started).millis();
      }
    }
    const EnactorStats& stats = world->enactor()->stats();
    cell.wasted += static_cast<double>(stats.reservations_cancelled +
                                       stats.reservations_failed);
    cell.retries += static_cast<double>(stats.retries);
    cell.breaker_open += static_cast<double>(stats.breaker_open);
  }
  cell.success_pct = 100.0 * successes / attempts;
  cell.time_to_place_ms = successes > 0 ? success_ms / successes : 0.0;
  cell.wasted /= trials;
  cell.retries /= trials;
  cell.breaker_open /= trials;
  return cell;
}

void RunExperiment() {
  const bool smoke = SmokePreset();
  const int trials = smoke ? 2 : 6;
  const int placements = smoke ? 3 : 6;
  const std::vector<double> losses =
      smoke ? std::vector<double>{0.0, 0.05}
            : std::vector<double>{0.0, 0.05, 0.10};
  const std::vector<bool> partitions =
      smoke ? std::vector<bool>{false} : std::vector<bool>{false, true};

  Table table("Chaos sweep -- placement under loss/partitions, naive vs "
              "resilient negotiation (4 domains x 4 hosts, k=4)",
              "policy     loss%  partition  success%  time_to_place_ms  "
              "wasted/run  retries/run  breaker_open/run");
  table.EnableJson("chaos",
                   {"policy", "loss_pct", "partition", "success_pct",
                    "time_to_place_ms", "wasted_per_run", "retries_per_run",
                    "breaker_open_per_run"});
  table.Begin();
  for (double loss : losses) {
    for (bool partition : partitions) {
      for (bool resilient : {false, true}) {
        ChaosCell cell =
            RunCell(resilient, loss, partition, trials, placements);
        table.Row("%-9s  %5.0f  %9s  %7.1f%%  %16.1f  %10.1f  %11.1f  %16.1f",
                  {resilient ? "resilient" : "naive", loss * 100.0,
                   partition ? "mid-run" : "none", cell.success_pct,
                   cell.time_to_place_ms, cell.wasted, cell.retries,
                   cell.breaker_open});
      }
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
