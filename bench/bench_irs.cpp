// Experiment E3 (claim C4): "The Scheduler could just as easily build n
// schedules through calls to the original generator function, but IRS
// does fewer lookups in the Collection" -- and negative-feedback-driven
// variants raise the placement success rate under failures.
//
// Sweep the candidate count n.  "random xN" reproduces the paper's
// alternative (N independent figure-7 schedules, retried by the wrapper);
// IRS generates the same N candidates from one Collection snapshot.
#include "bench_util.h"
#include "core/schedulers/irs_scheduler.h"
#include "core/schedulers/random_scheduler.h"

namespace legion::bench {
namespace {

struct Outcome {
  int successes = 0;
  std::uint64_t lookups = 0;
  std::uint64_t reservation_requests = 0;
};

World ContendedWorld(int trial, std::size_t refusing) {
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 6;
  config.heterogeneous = false;
  config.seed = 7000 + trial;
  config.load.volatility = 0.0;
  World world = MakeWorld(config);
  for (std::size_t i = 0; i < refusing && i < world->hosts().size(); ++i) {
    world->hosts()[i * 2]->SetPolicy(std::make_unique<DomainRefusalPolicy>(
        std::vector<std::uint32_t>{0}));
  }
  return world;
}

Outcome RunIrs(std::size_t n, std::size_t refusing, int trials) {
  Outcome outcome;
  for (int trial = 0; trial < trials; ++trial) {
    World world = ContendedWorld(trial, refusing);
    ClassObject* klass = world->MakeUniversalClass("app");
    auto* irs = world.kernel->AddActor<IrsScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(), n,
        100 + trial);
    bool success = false;
    irs->ScheduleAndEnact({{klass->loid(), 4}}, RunOptions{1, 1},
                          [&](Result<RunOutcome> r) {
                            success = r.ok() && r->success;
                          });
    world.kernel->RunFor(Duration::Minutes(5));
    outcome.successes += success ? 1 : 0;
    outcome.lookups += irs->collection_lookups();
    outcome.reservation_requests +=
        world->enactor()->stats().reservations_requested;
  }
  return outcome;
}

Outcome RunRepeatedRandom(std::size_t n, std::size_t refusing, int trials) {
  // N schedule attempts through the figure-7 generator: the wrapper's
  // SchedTryLimit plays the role of n.
  Outcome outcome;
  for (int trial = 0; trial < trials; ++trial) {
    World world = ContendedWorld(trial, refusing);
    ClassObject* klass = world->MakeUniversalClass("app");
    auto* random = world.kernel->AddActor<RandomScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(), 100 + trial);
    bool success = false;
    random->ScheduleAndEnact({{klass->loid(), 4}},
                             RunOptions{static_cast<int>(n), 1},
                             [&](Result<RunOutcome> r) {
                               success = r.ok() && r->success;
                             });
    world.kernel->RunFor(Duration::Minutes(5));
    outcome.successes += success ? 1 : 0;
    outcome.lookups += random->collection_lookups();
    outcome.reservation_requests +=
        world->enactor()->stats().reservations_requested;
  }
  return outcome;
}

void RunExperiment() {
  const int trials = 30;
  Table table("E3 IRS vs repeated Random -- k=4 instances, 12 hosts, 4 "
              "refusing, 30 trials",
              "scheduler  n   success%  lookups/run  reservations/run");
  table.Begin();
  for (std::size_t n : {1UL, 2UL, 4UL, 8UL}) {
    Outcome irs = RunIrs(n, /*refusing=*/4, trials);
    Outcome random = RunRepeatedRandom(n, /*refusing=*/4, trials);
    table.Row("irs        %zu  %7.0f%%  %11.2f  %16.1f", n,
              100.0 * irs.successes / trials,
              static_cast<double>(irs.lookups) / trials,
              static_cast<double>(irs.reservation_requests) / trials);
    table.Row("random xN  %zu  %7.0f%%  %11.2f  %16.1f", n,
              100.0 * random.successes / trials,
              static_cast<double>(random.lookups) / trials,
              static_cast<double>(random.reservation_requests) / trials);
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
