// Experiment E1 (claim C2): "Legion provides simple, generic default
// Schedulers that offer the classic '90%' solution -- they do an adequate
// job, but can easily be outperformed by Schedulers with specialized
// algorithms or knowledge of the application."
//
// For each scheduler, place a structured application (2-D stencil, the
// paper's MPI ocean-simulation shape) and an unstructured one (parameter
// study) on a heterogeneous multi-domain metacomputer, then report the
// estimated makespan, communication structure, and dollar cost of the
// resulting placement.  Expected shape: specialized (stencil) < ranked
// (load/cost-aware) < random/round-robin on the stencil makespan; the
// gap narrows for the unstructured workload.
#include "bench_util.h"
#include "core/schedulers/irs_scheduler.h"
#include "core/schedulers/k_of_n_scheduler.h"
#include "core/schedulers/random_scheduler.h"
#include "core/schedulers/ranked_scheduler.h"
#include "core/schedulers/stencil_scheduler.h"
#include "workload/executor.h"

namespace legion::bench {
namespace {

struct CellResult {
  bool success = false;
  MakespanBreakdown breakdown;
  Duration place_latency;
};

enum class Policy { kRandom, kIrs, kRoundRobin, kLoadAware, kCostAware,
                    kStencil };

const char* Name(Policy policy) {
  switch (policy) {
    case Policy::kRandom: return "random";
    case Policy::kIrs: return "irs";
    case Policy::kRoundRobin: return "round-robin";
    case Policy::kLoadAware: return "load-aware";
    case Policy::kCostAware: return "cost-aware";
    case Policy::kStencil: return "stencil";
  }
  return "?";
}

SchedulerObject* Make(Policy policy, World& world, std::size_t rows,
                      std::size_t cols) {
  SimKernel* kernel = world.kernel.get();
  const Loid loid = kernel->minter().Mint(LoidSpace::kService, 0);
  const Loid collection = world->collection()->loid();
  const Loid enactor = world->enactor()->loid();
  switch (policy) {
    case Policy::kRandom:
      return kernel->AddActor<RandomScheduler>(loid, collection, enactor, 7);
    case Policy::kIrs:
      return kernel->AddActor<IrsScheduler>(loid, collection, enactor, 4, 7);
    case Policy::kRoundRobin:
      return kernel->AddActor<RoundRobinScheduler>(loid, collection, enactor);
    case Policy::kLoadAware:
      return kernel->AddActor<LoadAwareScheduler>(loid, collection, enactor);
    case Policy::kCostAware:
      return kernel->AddActor<CostAwareScheduler>(loid, collection, enactor);
    case Policy::kStencil:
      return kernel->AddActor<StencilScheduler>(loid, collection, enactor,
                                                rows, cols);
  }
  return nullptr;
}

CellResult RunCell(Policy policy, const ApplicationSpec& app,
                   std::size_t rows, std::size_t cols, std::size_t domains,
                   std::size_t hosts_per_domain) {
  MetacomputerConfig config;
  config.domains = domains;
  config.hosts_per_domain = hosts_per_domain;
  config.vaults_per_domain = 2;
  config.heterogeneous = false;  // keep every host eligible
  config.seed = 1234;
  config.load.initial = 0.3;
  config.load.mean = 0.3;
  config.load.volatility = 0.15;
  World world = MakeWorld(config);
  // Let background load diversify so load-aware has signal.
  for (auto* host : world->hosts()) host->ReassessState();
  world->PopulateCollection();

  ClassObject* klass = world->MakeUniversalClass(
      app.name, app.memory_mb_per_instance, app.cpu_fraction_per_instance);
  SchedulerObject* scheduler = Make(policy, world, rows, cols);

  CellResult result;
  const SimTime started = world.kernel->Now();
  scheduler->ScheduleAndEnact(
      {{klass->loid(), app.instances}}, RunOptions{3, 2},
      [&](Result<RunOutcome> outcome) {
        if (!outcome.ok() || !outcome->success) return;
        result.success = true;
        result.breakdown = EstimateMakespan(
            *world.kernel, app,
            HostsOfMappings(outcome->feedback.reserved_mappings));
      });
  world.kernel->RunFor(Duration::Minutes(5));
  result.place_latency = world.kernel->Now() - started;
  return result;
}

void RunExperiment() {
  const std::size_t rows = 6, cols = 6;
  ApplicationSpec stencil =
      MakeStencil2D(rows, cols, /*work=*/50.0, /*halo=*/256 * 1024,
                    /*iters=*/50);
  ApplicationSpec study = MakeParameterStudy(rows * cols, /*work=*/4000.0);

  for (const auto& [app, label] :
       std::vector<std::pair<ApplicationSpec, const char*>>{
           {stencil, "stencil 6x6 (comm-heavy)"},
           {study, "parameter study n=36 (compute-only)"}}) {
    for (std::size_t hosts : {16UL, 48UL}) {
      const std::size_t domains = 4;
      Table table(std::string("E1 scheduler quality -- ") + label + ", " +
                      std::to_string(hosts) + " hosts / " +
                      std::to_string(domains) + " domains",
                  "scheduler     ok  makespan_s  comm_s  xdom_edges  "
                  "max_load  dollars");
      table.Begin();
      for (Policy policy :
           {Policy::kRandom, Policy::kIrs, Policy::kRoundRobin,
            Policy::kLoadAware, Policy::kCostAware, Policy::kStencil}) {
        if (policy == Policy::kStencil && app.edges.empty()) continue;
        CellResult cell =
            RunCell(policy, app, rows, cols, domains, hosts / domains);
        table.Row("%-12s  %2s  %10.2f  %6.2f  %10zu  %8.2f  %7.4f",
                  Name(policy), cell.success ? "y" : "N",
                  cell.breakdown.makespan.seconds(),
                  cell.breakdown.comm_time.seconds(),
                  cell.breakdown.inter_domain_edges,
                  cell.breakdown.max_host_load, cell.breakdown.dollars);
      }
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
