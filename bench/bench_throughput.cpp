// Experiment E11: system throughput and turnaround under offered load.
//
// The paper's opening claim: managing metacomputer resources "is
// necessary to efficiently and economically execute user programs" (§1),
// with users optimizing "application throughput, turnaround time, or
// cost".  This harness offers a Poisson stream of small parallel
// applications at increasing rates and compares schedulers on the
// user-visible outcomes: acceptance, mean/p95 turnaround, and dollars.
// Expected shape: at low load all schedulers are equivalent; as load
// approaches capacity the state-aware scheduler sustains acceptance and
// bounded turnaround longer than the random default (which keeps
// colliding with already-full hosts).
#include "bench_util.h"
#include "core/schedulers/random_scheduler.h"
#include "core/schedulers/ranked_scheduler.h"
#include "workload/arrivals.h"
#include "workload/session.h"

namespace legion::bench {
namespace {

SessionStats RunCell(bool load_aware, double arrivals_per_minute) {
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 8;
  config.heterogeneous = false;
  config.seed = 321;
  config.load.initial = 0.1;
  config.load.mean = 0.1;
  config.load.volatility = 0.05;
  World world = MakeWorld(config);

  SchedulerObject* scheduler;
  if (load_aware) {
    scheduler = world.kernel->AddActor<LoadAwareScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid());
  } else {
    scheduler = world.kernel->AddActor<RandomScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(), 17);
  }
  WorkloadSession session(world.metacomputer.get(), scheduler);

  // Each app: 4 instances x ~2000 MIPS-s, full-CPU -- a few minutes of
  // work on mid-range hosts.
  ApplicationSpec app = MakeParameterStudy(4, 2000.0);
  app.cpu_fraction_per_instance = 1.0;
  Rng rng(1000 + static_cast<std::uint64_t>(arrivals_per_minute * 10));
  const Duration horizon = Duration::Hours(2);
  auto arrivals = PoissonArrivals(rng, arrivals_per_minute / 60.0,
                                  world.kernel->Now(), horizon);
  // Refresh records periodically so the load-aware scheduler sees state.
  for (auto* host : world->hosts()) host->StartReassessment();
  session.SubmitAt(app, arrivals);
  world.kernel->RunFor(horizon + Duration::Hours(1));

  return session.Stats(horizon);
}

// ---- E12: flat vs batched reservation negotiation -------------------------
//
// The batched pipeline (DESIGN.md §11) coalesces a round's same-host
// reservation requests into ReserveBatch RPCs.  This sweep places a
// large round-robin master schedule directly through the Enactor and
// compares RPC count, wire bytes, and simulated time-to-feedback across
// batch caps, with sender-uplink serialization on so a flood of small
// RPCs actually pays for its burst.
struct BatchCellResult {
  bool ok = false;
  double place_s = 0.0;        // sim seconds, MakeReservations -> feedback
  std::uint64_t rpcs = 0;      // kernel rpcs_started
  std::uint64_t bytes = 0;     // kernel bytes_sent
  std::uint64_t batches = 0;   // enactor batches_sent (0 on the flat path)
  std::uint64_t parked = 0;    // slots parked by backpressure
};

BatchCellResult RunBatchCell(std::size_t objects, std::size_t cap,
                             int wan_ms) {
  MetacomputerConfig config;
  config.domains = 4;
  config.hosts_per_domain = 16;
  config.vaults_per_domain = 1;
  config.heterogeneous = false;
  config.seed = 777;
  config.load.initial = 0.0;
  config.load.mean = 0.0;
  config.load.volatility = 0.0;
  config.reservation_batch_cap = cap;
  config.max_outstanding_batches = 32;
  NetworkParams net = QuietNet();
  net.serialize_uplink = true;
  net.inter_domain_latency = Duration::Millis(wan_ms);
  World world = MakeWorld(config, net);

  // Tiny timeshared instances so thousands fit: 1 MB, 2% of a CPU.
  ClassObject* klass = world->MakeUniversalClass("bulk", 1, 0.02);

  // Round-robin master schedule over every host, each mapping using the
  // host's domain vault.
  const auto& hosts = world->hosts();
  std::vector<Loid> domain_vault(config.domains);
  for (auto* vault : world->vaults()) {
    domain_vault[vault->spec().domain] = vault->loid();
  }
  ScheduleRequestList request;
  request.masters.emplace_back();
  MasterSchedule& master = request.masters.back();
  for (std::size_t i = 0; i < objects; ++i) {
    HostObject* host = hosts[i % hosts.size()];
    ObjectMapping mapping;
    mapping.class_loid = klass->loid();
    mapping.host = host->loid();
    mapping.vault = domain_vault[host->spec().domain];
    master.mappings.push_back(mapping);
  }

  world->ResetAllStats();
  BatchCellResult result;
  const SimTime t0 = world.kernel->Now();
  SimTime t1 = t0;
  world->enactor()->MakeReservations(
      request, [&](Result<ScheduleFeedback> feedback) {
        result.ok = feedback.ok() && feedback->success;
        t1 = world.kernel->Now();
      });
  world.kernel->RunFor(Duration::Minutes(10));

  result.place_s = (t1 - t0).seconds();
  const KernelStats& kstats = world.kernel->stats();
  result.rpcs = kstats.rpcs_started;
  result.bytes = kstats.bytes_sent;
  const EnactorStats& estats = world->enactor()->stats();
  result.batches = estats.batches_sent;
  result.parked = estats.requests_parked;
  return result;
}

void RunBatchExperiment() {
  Table table("E12 flat vs batched reservation negotiation -- round-robin "
              "placement over 64 hosts in 4 domains, serialized uplinks",
              "objects  batch_cap  wan_ms  ok  place_s  rpcs  kbytes  "
              "batches  parked");
  table.EnableJson("throughput_batch",
                   {"objects", "batch_cap", "wan_ms", "ok", "place_s", "rpcs",
                    "kbytes", "batches", "parked"});
  table.Begin();
  const std::vector<std::size_t> object_counts =
      SmokePreset() ? std::vector<std::size_t>{2000}
                    : std::vector<std::size_t>{2000, 10000};
  const std::vector<std::size_t> caps =
      SmokePreset() ? std::vector<std::size_t>{1, 64, 256}
                    : std::vector<std::size_t>{1, 16, 64, 256};
  const std::vector<int> wans =
      SmokePreset() ? std::vector<int>{30} : std::vector<int>{30, 120};
  for (std::size_t objects : object_counts) {
    for (int wan_ms : wans) {
      for (std::size_t cap : caps) {
        const BatchCellResult r = RunBatchCell(objects, cap, wan_ms);
        table.Row("%7zu  %9zu  %6d  %2s  %7.3f  %5zu  %6zu  %7zu  %6zu",
                  {objects, cap, wan_ms, r.ok ? "y" : "n", r.place_s, r.rpcs,
                   r.bytes / 1024, r.batches, r.parked});
      }
    }
  }
}

void RunExperiment() {
  Table table("E11 throughput under offered load -- 4x2000 MIPS-s apps, "
              "16 hosts, 2 h of Poisson arrivals",
              "scheduler   arrivals/min  offered  placed%  mean_tat_s  "
              "p95_tat_s  done/hour  dollars");
  table.EnableJson("throughput",
                   {"scheduler", "arrivals_per_min", "offered", "placed_pct",
                    "mean_turnaround_s", "p95_turnaround_s", "done_per_hour",
                    "dollars"});
  table.Begin();
  for (double rate : {0.5, 1.0, 2.0, 4.0}) {
    for (bool load_aware : {false, true}) {
      const SessionStats stats = RunCell(load_aware, rate);
      table.Row("%-10s  %12.1f  %7zu  %6.0f%%  %10.1f  %9.1f  %9.1f  %7.3f",
                {load_aware ? "load-aware" : "random", rate, stats.offered,
                 stats.offered > 0
                     ? 100.0 * static_cast<double>(stats.placed) /
                           static_cast<double>(stats.offered)
                     : 0.0,
                 stats.mean_turnaround_s, stats.p95_turnaround_s,
                 stats.throughput_per_hour, stats.total_dollars});
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  legion::bench::RunBatchExperiment();
  return 0;
}
