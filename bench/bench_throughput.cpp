// Experiment E11: system throughput and turnaround under offered load.
//
// The paper's opening claim: managing metacomputer resources "is
// necessary to efficiently and economically execute user programs" (§1),
// with users optimizing "application throughput, turnaround time, or
// cost".  This harness offers a Poisson stream of small parallel
// applications at increasing rates and compares schedulers on the
// user-visible outcomes: acceptance, mean/p95 turnaround, and dollars.
// Expected shape: at low load all schedulers are equivalent; as load
// approaches capacity the state-aware scheduler sustains acceptance and
// bounded turnaround longer than the random default (which keeps
// colliding with already-full hosts).
#include "bench_util.h"
#include "core/schedulers/random_scheduler.h"
#include "core/schedulers/ranked_scheduler.h"
#include "workload/arrivals.h"
#include "workload/session.h"

namespace legion::bench {
namespace {

SessionStats RunCell(bool load_aware, double arrivals_per_minute) {
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 8;
  config.heterogeneous = false;
  config.seed = 321;
  config.load.initial = 0.1;
  config.load.mean = 0.1;
  config.load.volatility = 0.05;
  World world = MakeWorld(config);

  SchedulerObject* scheduler;
  if (load_aware) {
    scheduler = world.kernel->AddActor<LoadAwareScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid());
  } else {
    scheduler = world.kernel->AddActor<RandomScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(), 17);
  }
  WorkloadSession session(world.metacomputer.get(), scheduler);

  // Each app: 4 instances x ~2000 MIPS-s, full-CPU -- a few minutes of
  // work on mid-range hosts.
  ApplicationSpec app = MakeParameterStudy(4, 2000.0);
  app.cpu_fraction_per_instance = 1.0;
  Rng rng(1000 + static_cast<std::uint64_t>(arrivals_per_minute * 10));
  const Duration horizon = Duration::Hours(2);
  auto arrivals = PoissonArrivals(rng, arrivals_per_minute / 60.0,
                                  world.kernel->Now(), horizon);
  // Refresh records periodically so the load-aware scheduler sees state.
  for (auto* host : world->hosts()) host->StartReassessment();
  session.SubmitAt(app, arrivals);
  world.kernel->RunFor(horizon + Duration::Hours(1));

  return session.Stats(horizon);
}

void RunExperiment() {
  Table table("E11 throughput under offered load -- 4x2000 MIPS-s apps, "
              "16 hosts, 2 h of Poisson arrivals",
              "scheduler   arrivals/min  offered  placed%  mean_tat_s  "
              "p95_tat_s  done/hour  dollars");
  table.EnableJson("throughput",
                   {"scheduler", "arrivals_per_min", "offered", "placed_pct",
                    "mean_turnaround_s", "p95_turnaround_s", "done_per_hour",
                    "dollars"});
  table.Begin();
  for (double rate : {0.5, 1.0, 2.0, 4.0}) {
    for (bool load_aware : {false, true}) {
      const SessionStats stats = RunCell(load_aware, rate);
      table.Row("%-10s  %12.1f  %7zu  %6.0f%%  %10.1f  %9.1f  %9.1f  %7.3f",
                {load_aware ? "load-aware" : "random", rate, stats.offered,
                 stats.offered > 0
                     ? 100.0 * static_cast<double>(stats.placed) /
                           static_cast<double>(stats.offered)
                     : 0.0,
                 stats.mean_turnaround_s, stats.p95_turnaround_s,
                 stats.throughput_per_hour, stats.total_dollars});
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
