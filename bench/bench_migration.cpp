// Experiment E8 (claim C8): trigger -> Monitor -> migration
// responsiveness.
//
// A host's load spikes (the workstation owner sits down); the RGE
// trigger fires at the next reassessment, the Monitor's outcall crosses
// the network, and the reschedule handler migrates the victim object to
// the least-loaded host.  Sweep the reassessment (trigger evaluation)
// period and the OPR size; report time-to-migrate from the spike.
// Expected shape: responsiveness tracks the reassessment period (the
// detection term dominates); OPR size adds the vault-to-vault transfer
// term.
#include "bench_util.h"
#include "core/migration.h"
#include "core/monitor.h"

namespace legion::bench {
namespace {

// A user object with a fat body, to weigh the OPR.
class PayloadObject : public LegionObject {
 public:
  PayloadObject(SimKernel* kernel, Loid loid, Loid class_loid,
                std::size_t payload_bytes)
      : LegionObject(kernel, loid, class_loid),
        payload_(payload_bytes, 0x5A) {}

 protected:
  void SerializeBody(ByteWriter& writer) const override {
    writer.WriteU32(static_cast<std::uint32_t>(payload_.size()));
    for (std::uint8_t b : payload_) writer.WriteU8(b);
  }
  Status DeserializeBody(ByteReader& reader) override {
    auto n = reader.ReadU32();
    if (!n) return n.status();
    payload_.assign(*n, 0);
    for (std::uint32_t i = 0; i < *n; ++i) {
      auto b = reader.ReadU8();
      if (!b) return b.status();
      payload_[i] = *b;
    }
    return Status::Ok();
  }

 private:
  std::vector<std::uint8_t> payload_;
};

struct MigrationResult {
  double detect_ms = 0.0;    // spike -> monitor notification
  double migrate_ms = 0.0;   // spike -> object active elsewhere
  double success = 0.0;
};

MigrationResult RunCell(Duration reassess_period, std::size_t opr_bytes,
                        int rounds) {
  MigrationResult result;
  for (int round = 0; round < rounds; ++round) {
    MetacomputerConfig config;
    config.domains = 2;
    config.hosts_per_domain = 4;
    config.heterogeneous = false;
    config.seed = 8800 + round;
    config.load.volatility = 0.0;
    config.load.initial = 0.2;
    config.load.mean = 0.2;
    config.reassess_period = reassess_period;
    config.start_reassessment = true;
    World world = MakeWorld(config);

    ClassObject* klass = world->MakeUniversalClass("victim", 64, 1.0);
    const Loid class_loid = klass->loid();
    // Place the victim (with a payload body) on host 0.
    HostObject* origin = world->hosts()[0];
    StartObjectRequest request;
    request.class_loid = class_loid;
    request.instances.push_back(
        world.kernel->minter().Mint(LoidSpace::kObject, 0));
    request.vault = world->vaults()[0]->loid();
    request.memory_mb = 64;
    request.cpu_fraction = 1.0;
    request.factory = [class_loid, opr_bytes](SimKernel* kernel,
                                              const Loid& instance) {
      return std::make_unique<PayloadObject>(kernel, instance, class_loid,
                                             opr_bytes);
    };
    const Loid object = request.instances[0];
    bool started = false;
    origin->StartObject(request, [&](Result<std::vector<Loid>> r) {
      started = r.ok();
    });
    world.kernel->RunFor(Duration::Seconds(1));
    if (!started) continue;

    MonitorObject* monitor = world->monitor();
    monitor->WatchLoadThreshold(origin, 2.0);
    SimTime spike_time;
    SimTime detect_time;
    SimTime done_time;
    bool migrated = false;
    monitor->SetRescheduleHandler([&](const RgeEvent&) {
      detect_time = world.kernel->Now();
      // Move to host 4 (other domain) and its vault.
      MigrateObject(world.kernel.get(), monitor->loid(), object,
                    world->hosts()[4]->loid(), world->vaults()[2]->loid(),
                    [&](Result<MigrationOutcome> outcome) {
                      migrated = outcome.ok() && outcome->success;
                      done_time = world.kernel->Now();
                    });
    });
    // Spike the background load *without* triggering an immediate
    // reassessment: detection waits for the periodic trigger pass.
    world.kernel->RunFor(Duration::Seconds(2));
    spike_time = world.kernel->Now();
    origin->mutable_attributes().Set("marker", 1);  // no-op touch
    // Raise load directly on the model; next ReassessState exports it.
    origin->SpikeLoadQuietly(3.0);
    world.kernel->RunFor(reassess_period + Duration::Minutes(2));
    if (!migrated) continue;
    result.detect_ms += (detect_time - spike_time).millis();
    result.migrate_ms += (done_time - spike_time).millis();
    result.success += 1.0;
  }
  const double n = std::max(result.success, 1.0);
  result.detect_ms /= n;
  result.migrate_ms /= n;
  result.success = 100.0 * result.success / rounds;
  return result;
}

void RunExperiment() {
  const int rounds = 5;
  Table table("E8 trigger-to-migration responsiveness (8 hosts, spike on "
              "host 0, 5 rounds)",
              "reassess_s  opr_kb  success%  detect_ms  migrate_ms");
  table.Begin();
  for (double reassess_s : {1.0, 5.0, 15.0, 60.0}) {
    for (std::size_t opr_kb : {4UL, 1024UL}) {
      MigrationResult cell =
          RunCell(Duration::Seconds(reassess_s), opr_kb * 1024, rounds);
      table.Row("%10.0f  %6zu  %7.0f%%  %9.1f  %10.1f", reassess_s, opr_kb,
                cell.success, cell.detect_ms, cell.migrate_ms);
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
