// Experiment E9 (claim C5): reservation semantics across host substrates.
//
// "Host Object support for reservations is provided irrespective of
// underlying system support for reservations": the Unix host keeps a
// table itself, the plain batch host does the same in front of a queue
// that knows nothing about it (the paper's "unavoidable potential for
// conflict"), and the Maui-like host passes reservations through to a
// calendar-aware queue.  Each host kind receives future-window
// reservations while a competing batch backlog arrives; report grant
// rate, on-time start rate, and conflicts.  Expected shape: grants
// identical across kinds (the interface is uniform); on-time starts near
// 100% for unix and maui; the plain batch host conflicts as backlog
// grows.
#include "bench_util.h"

namespace legion::bench {
namespace {

struct ReservationOutcome {
  int granted = 0;
  int on_time = 0;
  int conflicts = 0;
};

enum class Kind { kUnix, kBatchFifo, kMaui };
const char* Name(Kind kind) {
  switch (kind) {
    case Kind::kUnix: return "unix";
    case Kind::kBatchFifo: return "batch-fifo";
    case Kind::kMaui: return "batch-maui";
  }
  return "?";
}

ReservationOutcome RunCell(Kind kind, int backlog_jobs, int reservations) {
  SimKernel kernel(QuietNet());
  VaultSpec vault_spec;
  vault_spec.domain = 0;
  auto* vault = kernel.AddActor<VaultObject>(
      kernel.minter().Mint(LoidSpace::kVault, 0), vault_spec);

  HostSpec spec;
  spec.name = "probe";
  spec.cpus = 4;
  spec.memory_mb = 8192;
  spec.oversubscription = 1.0;
  spec.load.initial = 0.0;
  spec.load.mean = 0.0;
  spec.load.volatility = 0.0;
  HostObject* host = nullptr;
  switch (kind) {
    case Kind::kUnix:
      host = kernel.AddActor<HostObject>(
          kernel.minter().Mint(LoidSpace::kHost, 0), spec, 11);
      break;
    case Kind::kBatchFifo: {
      auto* batch = kernel.AddActor<BatchQueueHost>(
          kernel.minter().Mint(LoidSpace::kHost, 0), spec, 12,
          std::make_unique<FifoQueue>(4.0), Duration::Seconds(15));
      batch->StartQueuePolling();
      host = batch;
      break;
    }
    case Kind::kMaui: {
      auto* maui = kernel.AddActor<MauiHost>(
          kernel.minter().Mint(LoidSpace::kHost, 0), spec, 13,
          Duration::Seconds(15));
      maui->StartQueuePolling();
      host = maui;
      break;
    }
  }
  host->AddCompatibleVault(vault->loid());

  auto* klass = kernel.AddActor<ClassObject>(
      Loid(LoidSpace::kClass, 0, 500), "job",
      std::vector<Implementation>{});
  kernel.network().RegisterEndpoint(klass->loid(), 0);

  auto submit_job = [&](ReservationToken token, Duration runtime) {
    StartObjectRequest request;
    request.class_loid = klass->loid();
    request.instances.push_back(
        kernel.minter().Mint(LoidSpace::kObject, 0));
    request.token = token;
    request.vault = vault->loid();
    request.memory_mb = 32;
    request.cpu_fraction = 1.0;
    request.estimated_runtime = runtime;
    request.factory = klass->factory();
    const Loid instance = request.instances[0];
    host->StartObject(request, [](Result<std::vector<Loid>>) {});
    return instance;
  };

  // Backlog: long competing jobs without reservations.
  std::vector<Loid> backlog;
  for (int i = 0; i < backlog_jobs; ++i) {
    backlog.push_back(submit_job(ReservationToken{}, Duration::Hours(2)));
  }
  kernel.RunFor(Duration::Seconds(30));

  // Reserved work: each reservation opens in 5 minutes for 30 minutes.
  ReservationOutcome outcome;
  std::vector<std::pair<Loid, SimTime>> reserved;  // instance, window end
  for (int i = 0; i < reservations; ++i) {
    ReservationRequest request;
    request.vault = vault->loid();
    request.start = kernel.Now() + Duration::Minutes(5);
    request.duration = Duration::Minutes(30);
    request.type = ReservationType::OneShotTimesharing();
    request.requester = Loid(LoidSpace::kService, 0, 1);
    request.memory_mb = 32;
    request.cpu_fraction = 1.0;
    Result<ReservationToken> granted(ReservationToken{});
    host->MakeReservation(request,
                          [&](Result<ReservationToken> r) {
                            granted = std::move(r);
                          });
    if (!granted.ok()) continue;
    ++outcome.granted;
    const Loid instance = submit_job(*granted, Duration::Minutes(30));
    reserved.emplace_back(instance,
                          granted->start + granted->duration);
  }

  // Let the windows open; then check who actually started on time.
  kernel.RunFor(Duration::Minutes(10));
  for (const auto& [instance, window_end] : reserved) {
    auto* object = dynamic_cast<LegionObject*>(kernel.FindActor(instance));
    if (object != nullptr && object->active()) ++outcome.on_time;
  }
  // Run past the backlog so late starts register as conflicts.
  kernel.RunFor(Duration::Hours(3));
  if (auto* batch = dynamic_cast<BatchQueueHost*>(host)) {
    outcome.conflicts = static_cast<int>(batch->reservation_conflicts());
  }
  return outcome;
}

void RunExperiment() {
  const int reservations = 3;
  Table table("E9 reservation uniformity across host substrates "
              "(4 CPUs, 3 reservations opening at +5min)",
              "host_kind   backlog  granted  started_on_time  conflicts");
  table.Begin();
  for (Kind kind : {Kind::kUnix, Kind::kBatchFifo, Kind::kMaui}) {
    for (int backlog : {0, 4, 12}) {
      ReservationOutcome cell = RunCell(kind, backlog, reservations);
      table.Row("%-10s  %7d  %7d  %15d  %9d", Name(kind), backlog,
                cell.granted, cell.on_time, cell.conflicts);
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
