// Experiment E6 (figure 2 / claim C1): the cost of each resource
// management layering.
//
// The same logical placement (k random instances) is driven under the
// four layerings of figure 2.  Reported per placement: messages, bytes,
// and latency.  Expected shape: (a) cheapest, (c) = (a) + one service
// round trip, (d) dearest -- "cost that scales with capability", rising
// smoothly as modules are separated.
#include "bench_util.h"
#include "core/layering.h"
#include "core/schedulers/random_scheduler.h"

namespace legion::bench {
namespace {

struct LayeringCost {
  double messages = 0.0;
  double kbytes = 0.0;
  double latency_ms = 0.0;
  double success = 0.0;
};

LayeringCost RunCell(Layering layering, std::size_t instances, int rounds) {
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 8;
  config.heterogeneous = false;
  config.seed = 6100;
  config.load.volatility = 0.0;
  World world = MakeWorld(config);
  ClassObject* klass = world->MakeUniversalClass("app", 16, 0.05);
  // Keep the comparison about *control* messages: layering (d) selects
  // implementations (so starts pull the class binary) while the
  // application-side layerings do not; a tiny binary removes that
  // asymmetry from the data-volume column.
  klass->SetBinaryBytes(1024);

  auto* scheduler = world.kernel->AddActor<RandomScheduler>(
      world.kernel->minter().Mint(LoidSpace::kService, 0),
      world->collection()->loid(), world->enactor()->loid(), 61);
  ApplicationCoordinator::Wiring wiring;
  wiring.collection = world->collection()->loid();
  wiring.enactor = world->enactor()->loid();
  wiring.scheduler = scheduler->loid();
  auto* combined = world.kernel->AddActor<ApplicationCoordinator>(
      world.kernel->minter().Mint(LoidSpace::kService, 0),
      Layering::kApplicationDoesAll, wiring, 62);
  wiring.combined_service = combined->loid();
  auto* app = world.kernel->AddActor<ApplicationCoordinator>(
      world.kernel->minter().Mint(LoidSpace::kService, 0), layering, wiring,
      63);

  LayeringCost cost;
  for (int round = 0; round < rounds; ++round) {
    world->ResetAllStats();
    PlacementTrace trace;
    app->Place({{klass->loid(), instances}},
               [&](Result<PlacementTrace> r) {
                 if (r.ok()) trace = *r;
               });
    world.kernel->RunFor(Duration::Minutes(2));
    const KernelStats& stats = world.kernel->stats();
    cost.messages += static_cast<double>(stats.messages_sent);
    cost.kbytes += static_cast<double>(stats.bytes_sent) / 1024.0;
    cost.latency_ms += trace.latency.millis();
    cost.success += trace.success ? 1.0 : 0.0;
  }
  cost.messages /= rounds;
  cost.kbytes /= rounds;
  cost.latency_ms /= rounds;
  cost.success = 100.0 * cost.success / rounds;
  return cost;
}

void RunExperiment() {
  const int rounds = 10;
  for (std::size_t instances : {2UL, 8UL}) {
    Table table("E6 layering cost (figure 2) -- k=" +
                    std::to_string(instances) +
                    " instances, 16 hosts / 2 domains, 10 placements",
                "layering             success%  msgs/placement  "
                "kb/placement  latency_ms");
    table.Begin();
    for (Layering layering :
         {Layering::kApplicationDoesAll, Layering::kApplicationPlusRm,
          Layering::kCombinedModule, Layering::kSeparateModules}) {
      LayeringCost cost = RunCell(layering, instances, rounds);
      table.Row("%-19s  %7.0f%%  %14.1f  %12.1f  %10.1f",
                ToString(layering), cost.success, cost.messages, cost.kbytes,
                cost.latency_ms);
    }
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunExperiment();
  return 0;
}
