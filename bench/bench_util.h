// Shared scaffolding for the experiment harnesses (see DESIGN.md §5 and
// EXPERIMENTS.md).  Each bench binary prints one experiment's table.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "workload/metacomputer.h"

namespace legion::bench {

inline NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.05;
  params.seed = 99;
  return params;
}

// A fresh deterministic world for one experiment cell.
struct World {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<Metacomputer> metacomputer;

  Metacomputer* operator->() const { return metacomputer.get(); }
};

inline World MakeWorld(MetacomputerConfig config,
                       NetworkParams net = QuietNet()) {
  World world;
  world.kernel = std::make_unique<SimKernel>(net);
  world.metacomputer =
      std::make_unique<Metacomputer>(world.kernel.get(), config);
  world.metacomputer->PopulateCollection();
  return world;
}

// Minimal table printer: header once, then printf-style rows.
class Table {
 public:
  Table(std::string title, std::string header)
      : title_(std::move(title)), header_(std::move(header)) {}

  void Begin() const {
    std::printf("\n=== %s ===\n%s\n", title_.c_str(), header_.c_str());
    for (std::size_t i = 0; i < header_.size(); ++i) std::putchar('-');
    std::putchar('\n');
  }

  __attribute__((format(printf, 2, 3))) void Row(const char* fmt, ...) const {
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::putchar('\n');
  }

 private:
  std::string title_;
  std::string header_;
};

}  // namespace legion::bench
