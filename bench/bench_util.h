// Shared scaffolding for the experiment harnesses (see DESIGN.md §5 and
// EXPERIMENTS.md).  Each bench binary prints one experiment's table.
#pragma once

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "obs/json.h"
#include "workload/metacomputer.h"

namespace legion::bench {

// True when the caller asked for the reduced CI preset
// (LEGION_BENCH_PRESET=smoke): fewer trials and sweep cells, same code
// paths, so the smoke job finishes fast but still exercises everything.
inline bool SmokePreset() {
  const char* preset = std::getenv("LEGION_BENCH_PRESET");
  return preset != nullptr && std::string_view(preset) == "smoke";
}

inline NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.05;
  params.seed = 99;
  return params;
}

// A fresh deterministic world for one experiment cell.
struct World {
  std::unique_ptr<SimKernel> kernel;
  std::unique_ptr<Metacomputer> metacomputer;

  Metacomputer* operator->() const { return metacomputer.get(); }
};

inline World MakeWorld(MetacomputerConfig config,
                       NetworkParams net = QuietNet()) {
  World world;
  world.kernel = std::make_unique<SimKernel>(net);
  world.metacomputer =
      std::make_unique<Metacomputer>(world.kernel.get(), config);
  world.metacomputer->PopulateCollection();
  return world;
}

// One value in a machine-readable table row: a number or a label.
struct Cell {
  template <typename T, std::enable_if_t<std::is_arithmetic_v<T>, int> = 0>
  Cell(T value) : is_number(true), num(static_cast<double>(value)) {}
  Cell(const char* value) : text(value) {}
  Cell(const std::string& value) : text(value) {}

  bool is_number = false;
  double num = 0.0;
  std::string text;
};

// Applies one printf-style format to a cell list: each conversion spec
// consumes the next cell.  Length modifiers in the spec are replaced so
// the caller can keep the exact format string of the printed table
// (e.g. "%7zu" works against a numeric cell).
inline std::string FormatCells(const char* fmt,
                               const std::vector<Cell>& cells) {
  std::string out;
  std::size_t next = 0;
  for (const char* p = fmt; *p != '\0'; ++p) {
    if (*p != '%') {
      out.push_back(*p);
      continue;
    }
    if (p[1] == '%') {
      out.push_back('%');
      ++p;
      continue;
    }
    // %[flags][width][.precision][length]conversion
    std::string spec = "%";
    ++p;
    while (*p != '\0' && std::strchr("-+ #0", *p) != nullptr) spec += *p++;
    while (*p != '\0' && std::isdigit(static_cast<unsigned char>(*p)))
      spec += *p++;
    if (*p == '.') {
      spec += *p++;
      while (*p != '\0' && std::isdigit(static_cast<unsigned char>(*p)))
        spec += *p++;
    }
    while (*p != '\0' && std::strchr("hljzt", *p) != nullptr) ++p;  // drop
    const char conv = *p;
    if (conv == '\0' || next >= cells.size()) break;
    const Cell& cell = cells[next++];
    char buf[256];
    switch (conv) {
      case 'd':
      case 'i':
        spec += "lld";
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<long long>(cell.num));
        break;
      case 'u':
      case 'o':
      case 'x':
      case 'X':
        spec += "ll";
        spec += conv;
        std::snprintf(buf, sizeof buf, spec.c_str(),
                      static_cast<unsigned long long>(cell.num));
        break;
      case 's':
        spec += 's';
        std::snprintf(buf, sizeof buf, spec.c_str(), cell.text.c_str());
        break;
      default:  // e E f F g G
        spec += conv;
        std::snprintf(buf, sizeof buf, spec.c_str(), cell.num);
        break;
    }
    out += buf;
  }
  return out;
}

// Minimal table printer: header once, then printf-style rows.  A table
// may additionally mirror its rows into BENCH_<experiment>.json (written
// on destruction) so results are machine-readable alongside the printed
// text -- see EnableJson().
class Table {
 public:
  Table(std::string title, std::string header)
      : title_(std::move(title)), header_(std::move(header)) {}

  ~Table() { WriteJson(); }

  // Opt this table into the JSON mirror.  `columns` names the cells that
  // each cell-based Row() call will supply, in order.
  void EnableJson(std::string experiment, std::vector<std::string> columns) {
    experiment_ = std::move(experiment);
    columns_ = std::move(columns);
  }

  void Begin() const {
    std::printf("\n=== %s ===\n%s\n", title_.c_str(), header_.c_str());
    for (std::size_t i = 0; i < header_.size(); ++i) std::putchar('-');
    std::putchar('\n');
  }

  __attribute__((format(printf, 2, 3))) void Row(const char* fmt, ...) const {
    va_list args;
    va_start(args, fmt);
    std::vprintf(fmt, args);
    va_end(args);
    std::putchar('\n');
  }

  // Cell-based row: prints through the same format string as the text
  // table and records the raw values for the JSON mirror.
  void Row(const char* fmt, std::vector<Cell> cells) {
    std::printf("%s\n", FormatCells(fmt, cells).c_str());
    rows_.push_back(std::move(cells));
  }

  // Records cells into the JSON mirror without printing.  For tables
  // whose printed lines mix deterministic values with wall-clock
  // measurements: print the full line with the printf-only Row(), then
  // record just the deterministic subset here, so every BENCH_*.json
  // stays byte-identical across same-seed runs (scripts/chaos_sweep.sh
  // double-run check).
  void RecordRow(std::vector<Cell> cells) { rows_.push_back(std::move(cells)); }

 private:
  void WriteJson() const {
    if (experiment_.empty()) return;
    std::string json = "{\"experiment\":" + obs::JsonString(experiment_) +
                       ",\"title\":" + obs::JsonString(title_) +
                       ",\"columns\":[";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i != 0) json += ',';
      json += obs::JsonString(columns_[i]);
    }
    json += "],\"rows\":[";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      if (r != 0) json += ',';
      json += '[';
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c != 0) json += ',';
        const Cell& cell = rows_[r][c];
        json += cell.is_number ? obs::JsonNumber(cell.num)
                               : obs::JsonString(cell.text);
      }
      json += ']';
    }
    json += "]}\n";
    const std::string path = "BENCH_" + experiment_ + ".json";
    if (std::FILE* f = std::fopen(path.c_str(), "w")) {
      std::fwrite(json.data(), 1, json.size(), f);
      std::fclose(f);
      std::printf("[wrote %s]\n", path.c_str());
    }
  }

  std::string title_;
  std::string header_;
  std::string experiment_;
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace legion::bench
