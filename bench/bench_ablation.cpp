// Ablations of the design choices DESIGN.md calls out:
//   A1  variant depth (IRS nsched): how much schedule redundancy buys
//       success under contention, and what it costs in reservations;
//   A2  timesharing oversubscription: admission headroom vs the
//       multiplexing slowdown running objects actually experience;
//   A3  confirmation timeout: too short and reservations expire before
//       enactment, too long and unconfirmed reservations squat on
//       capacity that other applications want;
//   A4  implementation caches (paper §2 service objects): cold vs warm
//       start latency, cache on vs off.
#include "bench_util.h"
#include "core/impl_cache.h"
#include "core/schedulers/irs_scheduler.h"
#include "workload/executor.h"

namespace legion::bench {
namespace {

// ---- A1: variant depth --------------------------------------------------------

void RunVariantDepth() {
  Table table("A1 variant depth (IRS nsched) under contention "
              "(16 hosts, 6 refusing, k=6, 25 trials)",
              "nsched  success%  reservations/run  variants_applied/run");
  table.Begin();
  const int trials = 25;
  for (std::size_t nsched : {1UL, 2UL, 3UL, 4UL, 6UL, 10UL}) {
    int successes = 0;
    std::uint64_t reservations = 0;
    std::uint64_t variants_applied = 0;
    for (int trial = 0; trial < trials; ++trial) {
      MetacomputerConfig config;
      config.domains = 2;
      config.hosts_per_domain = 8;
      config.heterogeneous = false;
      config.seed = 11000 + trial;
      config.load.volatility = 0.0;
      World world = MakeWorld(config);
      for (std::size_t i = 0; i < 6; ++i) {
        world->hosts()[i]->SetPolicy(std::make_unique<DomainRefusalPolicy>(
            std::vector<std::uint32_t>{0}));
      }
      ClassObject* klass = world->MakeUniversalClass("app");
      auto* scheduler = world.kernel->AddActor<IrsScheduler>(
          world.kernel->minter().Mint(LoidSpace::kService, 0),
          world->collection()->loid(), world->enactor()->loid(), nsched,
          500 + trial);
      bool success = false;
      std::size_t applied = 0;
      scheduler->ScheduleAndEnact(
          {{klass->loid(), 6}}, RunOptions{1, 1},
          [&](Result<RunOutcome> outcome) {
            success = outcome.ok() && outcome->success;
            if (success && outcome->feedback.winner.has_value()) {
              applied = outcome->feedback.winner->variant_indices.size();
            }
          });
      world.kernel->RunFor(Duration::Minutes(5));
      successes += success ? 1 : 0;
      variants_applied += applied;
      reservations += world->enactor()->stats().reservations_requested;
    }
    table.Row("%6zu  %7.0f%%  %16.1f  %20.2f", nsched,
              100.0 * successes / trials,
              static_cast<double>(reservations) / trials,
              static_cast<double>(variants_applied) / trials);
  }
}

// ---- A2: oversubscription -----------------------------------------------------

void RunOversubscription() {
  Table table("A2 timesharing oversubscription -- admission vs effective "
              "speed (1 host, 4 CPUs, 12 one-CPU applicants)",
              "oversub  admitted  effective_speed_frac");
  table.Begin();
  for (double oversub : {1.0, 2.0, 3.0, 4.0}) {
    SimKernel kernel(QuietNet());
    VaultSpec vault_spec;
    auto* vault = kernel.AddActor<VaultObject>(
        kernel.minter().Mint(LoidSpace::kVault, 0), vault_spec);
    HostSpec spec;
    spec.cpus = 4;
    spec.memory_mb = 8192;
    spec.oversubscription = oversub;
    spec.speed_mips = 100.0;
    spec.load.initial = 0.0;
    spec.load.mean = 0.0;
    spec.load.volatility = 0.0;
    auto* host = kernel.AddActor<HostObject>(
        kernel.minter().Mint(LoidSpace::kHost, 0), spec, 3);
    host->AddCompatibleVault(vault->loid());
    auto* klass = kernel.AddActor<ClassObject>(
        Loid(LoidSpace::kClass, 0, 600), "job",
        std::vector<Implementation>{});
    kernel.network().RegisterEndpoint(klass->loid(), 0);

    int admitted = 0;
    for (int i = 0; i < 12; ++i) {
      StartObjectRequest request;
      request.class_loid = klass->loid();
      request.instances.push_back(
          kernel.minter().Mint(LoidSpace::kObject, 0));
      request.vault = vault->loid();
      request.memory_mb = 32;
      request.cpu_fraction = 1.0;
      request.factory = klass->factory();
      host->StartObject(request, [&](Result<std::vector<Loid>> started) {
        if (started.ok()) ++admitted;
      });
    }
    table.Row("%7.1f  %8d  %20.2f", oversub, admitted,
              host->EffectiveSpeedPerObject() / spec.speed_mips);
  }
}

// ---- A3: confirmation timeout ---------------------------------------------------

void RunConfirmTimeout() {
  Table table("A3 confirmation timeout -- enactment delayed 3 min after "
              "make_reservations (16 hosts, k=4)",
              "confirm_timeout_s  enact_ok  capacity_held_meanwhile");
  table.Begin();
  for (double timeout_s : {30.0, 60.0, 300.0, 1800.0}) {
    MetacomputerConfig config;
    config.domains = 2;
    config.hosts_per_domain = 8;
    config.heterogeneous = false;
    config.seed = 13000;
    config.load.volatility = 0.0;
    World world = MakeWorld(config);
    world->enactor()->options().confirm_timeout =
        Duration::Seconds(timeout_s);
    ClassObject* klass = world->MakeUniversalClass("slowpoke");
    auto* scheduler = world.kernel->AddActor<IrsScheduler>(
        world.kernel->minter().Mint(LoidSpace::kService, 0),
        world->collection()->loid(), world->enactor()->loid(), 4, 77);

    // Phase 1: reservations only.
    ScheduleFeedback feedback;
    scheduler->ComputeSchedule(
        {{klass->loid(), 4}}, [&](Result<ScheduleRequestList> schedule) {
          if (!schedule.ok()) return;
          world->enactor()->MakeReservations(
              *schedule, [&](Result<ScheduleFeedback> r) {
                if (r.ok()) feedback = *r;
              });
        });
    world.kernel->RunFor(Duration::Seconds(30));
    if (!feedback.success) {
      table.Row("%17.0f  %8s  %24s", timeout_s, "n/a", "n/a");
      continue;
    }
    // How much capacity the unconfirmed reservations hold mid-delay
    // (force lazy expiry first so the count reflects the timeout).
    world.kernel->RunFor(Duration::Seconds(60));
    std::size_t held = 0;
    for (auto* host : world->hosts()) {
      host->mutable_reservations().ExpireStale(world.kernel->Now());
      held += host->reservations().live_count();
    }
    // Phase 2: enact after a 3-minute pause (the scheduler was "thinking").
    world.kernel->RunFor(Duration::Seconds(120));
    bool enact_ok = false;
    world->enactor()->EnactSchedule(feedback, [&](Result<EnactResult> r) {
      enact_ok = r.ok() && r->success;
    });
    world.kernel->RunFor(Duration::Minutes(2));
    table.Row("%17.0f  %8s  %24zu", timeout_s, enact_ok ? "yes" : "NO",
              held);
  }
}

// ---- A4: implementation cache ----------------------------------------------------

void RunImplCache() {
  Table table("A4 implementation cache (8 MiB binary, LAN cache) -- start "
              "latency",
              "configuration      first_start_ms  second_start_ms");
  table.Begin();
  for (bool cached : {false, true}) {
    SimKernel kernel(QuietNet());
    VaultSpec vault_spec;
    auto* vault = kernel.AddActor<VaultObject>(
        kernel.minter().Mint(LoidSpace::kVault, 0), vault_spec);
    HostSpec spec;
    spec.cpus = 4;
    spec.load.initial = 0.0;
    spec.load.mean = 0.0;
    spec.load.volatility = 0.0;
    auto* host = kernel.AddActor<HostObject>(
        kernel.minter().Mint(LoidSpace::kHost, 0), spec, 5);
    host->AddCompatibleVault(vault->loid());
    std::vector<Implementation> impls;
    Implementation impl;
    impl.arch = "x86";
    impl.os_name = "Linux";
    impl.binary_bytes = 8 << 20;
    impls.push_back(impl);
    auto* klass = kernel.AddActor<ClassObject>(
        Loid(LoidSpace::kClass, 0, 700), "app", impls);
    kernel.network().RegisterEndpoint(klass->loid(), 0);
    ImplementationCacheObject* cache = nullptr;
    if (cached) {
      cache = kernel.AddActor<ImplementationCacheObject>(
          kernel.minter().Mint(LoidSpace::kService, 0), 0);
      host->SetImplementationCache(cache->loid());
    }
    auto start_once = [&]() -> double {
      StartObjectRequest request;
      request.class_loid = klass->loid();
      request.instances.push_back(
          kernel.minter().Mint(LoidSpace::kObject, 0));
      request.vault = vault->loid();
      request.memory_mb = 16;
      request.cpu_fraction = 0.1;
      request.implementation = "x86/Linux";
      request.binary_bytes = 8 << 20;
      request.factory = klass->factory();
      const SimTime begun = kernel.Now();
      SimTime ended = begun;
      host->StartObject(request, [&](Result<std::vector<Loid>>) {
        ended = kernel.Now();
      });
      kernel.RunFor(Duration::Minutes(2));
      return (ended - begun).millis();
    };
    const double first = start_once();
    const double second = start_once();
    table.Row("%-17s  %14.1f  %15.1f",
              cached ? "with-cache" : "no-cache", first, second);
  }
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::RunVariantDepth();
  legion::bench::RunOversubscription();
  legion::bench::RunConfirmTimeout();
  legion::bench::RunImplCache();
  return 0;
}
