// The kernel profiler: event accounting by (component, handler kind).
//
// ROADMAP item 3 (million-object kernel) needs to know where events go
// before the queue can be replaced: how many handler executions each
// component causes, how long events of each kind sit in the queue
// (sim-time occupancy), how much wall time each handler class burns, and
// how deep the event queue / RPC in-flight window get.  The kernel feeds
// this profiler from its run loop; instrumented scheduling sites label
// their events "component/kind" (static strings -- "net/msg",
// "enactor/backoff", ...), unlabeled ones account under "kernel/event".
//
// Off the fingerprint path: the profiler writes no registry cells and
// schedules no events, so metrics snapshots, traces, and bench tables
// are byte-identical whether it is enabled or not.  Wall time is read
// through the kernel's WallClock, which is pinned by default -- the
// wall_us fields are zero (and the profile dump deterministic) unless a
// caller opts into real time.
//
// Cost model: like LEGION_TRACE_LEVEL.  enabled() is an inline flag test
// that compiles to `false` under -DLEGION_PROFILE=0, removing the
// accounting branches entirely; at the default level the cost of a
// disabled profiler is one predictable branch per event.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "base/sim_time.h"

// Compile-time gate: 0 removes the profiler entirely.
#ifndef LEGION_PROFILE
#define LEGION_PROFILE 1
#endif

namespace legion {

// Accumulated accounting for one (component, kind) label.
struct ProfileEntry {
  std::uint64_t count = 0;      // handler executions
  std::int64_t queue_us = 0;    // sim-time the events sat in the queue
  std::int64_t sim_busy_us = 0; // sim-time occupancy (RPC start->finish)
  std::int64_t wall_us = 0;     // wall time inside the handlers
};

class KernelProfiler {
 public:
  static constexpr bool CompiledIn() { return LEGION_PROFILE > 0; }

  bool enabled() const { return CompiledIn() && enabled_; }
  void Enable() { enabled_ = CompiledIn(); }
  void Disable() { enabled_ = false; }

  // One handler execution under `label` ("component/kind"): `queue_lag`
  // is run-time minus schedule-time (message flight, timer period, or
  // zero for immediate work), `wall_us` the handler's wall cost.
  void RecordHandler(const char* label, Duration queue_lag,
                     std::int64_t wall_us);

  // One completed RPC of kind `op`; `sim_latency` is start-to-finish
  // simulated time, accounted as sim-time occupancy under "rpc/<op>".
  void RecordRpc(const char* op, Duration sim_latency);

  // High-water marks.
  void RecordQueueDepth(std::size_t depth) {
    if (depth > queue_depth_high_water_) queue_depth_high_water_ = depth;
  }
  void RpcStarted() {
    if (++rpc_inflight_ > rpc_inflight_high_water_) {
      rpc_inflight_high_water_ = rpc_inflight_;
    }
  }
  void RpcFinished() {
    if (rpc_inflight_ > 0) --rpc_inflight_;
  }

  std::size_t queue_depth_high_water() const {
    return queue_depth_high_water_;
  }
  std::size_t rpc_inflight_high_water() const {
    return rpc_inflight_high_water_;
  }
  const std::map<std::string, ProfileEntry>& entries() const {
    return entries_;
  }
  const ProfileEntry* Find(std::string_view label) const;

  // Deterministic JSON dump: labels sorted, high-water marks, per-label
  // count/queue_us/sim_busy_us/wall_us.
  std::string ToJson() const;

  void Reset();

 private:
  bool enabled_ = false;
  std::map<std::string, ProfileEntry> entries_;
  std::size_t queue_depth_high_water_ = 0;
  std::size_t rpc_inflight_ = 0;
  std::size_t rpc_inflight_high_water_ = 0;
};

}  // namespace legion
