#include "sim/network.h"

#include <algorithm>

namespace legion {

NetworkModel::NetworkModel(NetworkParams params)
    : params_(params), rng_(params.seed) {}

void NetworkModel::RegisterEndpoint(const Loid& loid, DomainId domain) {
  endpoints_[loid] = domain;
}

void NetworkModel::UnregisterEndpoint(const Loid& loid) {
  endpoints_.erase(loid);
}

bool NetworkModel::HasEndpoint(const Loid& loid) const {
  return endpoints_.count(loid) != 0;
}

std::optional<DomainId> NetworkModel::DomainOf(const Loid& loid) const {
  auto it = endpoints_.find(loid);
  if (it == endpoints_.end()) return std::nullopt;
  return it->second;
}

Duration NetworkModel::HealthyPathLatency(const Loid& from, const Loid& to,
                                          std::size_t bytes) const {
  auto from_it = endpoints_.find(from);
  auto to_it = endpoints_.find(to);
  if (from_it == endpoints_.end() || to_it == endpoints_.end() ||
      from == to) {
    return Duration::Zero();
  }
  const DomainId da = from_it->second;
  const DomainId db = to_it->second;
  const bool cross = da != db;
  Duration base =
      cross ? params_.inter_domain_latency : params_.intra_domain_latency;
  if (cross) {
    auto it = pair_latency_.find(PairKey(da, db));
    if (it != pair_latency_.end()) base = it->second;
  }
  const double bandwidth = cross ? params_.inter_domain_bandwidth_bps
                                 : params_.intra_domain_bandwidth_bps;
  return base + Duration::Seconds(static_cast<double>(bytes) * 8.0 /
                                  std::max(bandwidth, 1.0));
}

std::optional<Duration> NetworkModel::ExpectedLatency(const Loid& from,
                                                      const Loid& to,
                                                      std::size_t bytes,
                                                      SimTime at) const {
  auto from_it = endpoints_.find(from);
  auto to_it = endpoints_.find(to);
  if (from_it != endpoints_.end() && to_it != endpoints_.end() &&
      from_it->second != to_it->second &&
      Partitioned(from_it->second, to_it->second, at)) {
    return std::nullopt;
  }
  return HealthyPathLatency(from, to, bytes);
}

void NetworkModel::SetPairLatency(DomainId a, DomainId b, Duration latency) {
  pair_latency_[PairKey(a, b)] = latency;
}

void NetworkModel::AddPartition(DomainId a, DomainId b, SimTime start,
                                SimTime end) {
  partitions_.push_back(Partition{a, b, start, end});
}

bool NetworkModel::Partitioned(DomainId a, DomainId b, SimTime now) const {
  for (const auto& p : partitions_) {
    bool matches = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (matches && now >= p.start && now < p.end) return true;
  }
  return false;
}

std::optional<Duration> NetworkModel::Latency(const Loid& from, const Loid& to,
                                              std::size_t bytes, SimTime now) {
  auto from_it = endpoints_.find(from);
  auto to_it = endpoints_.find(to);
  // Unregistered endpoints (unit tests, co-located services) and
  // self-sends are local: free and lossless.  They never touch the wire,
  // so they do not count as offered traffic -- counting them would
  // dilute the loss-rate denominator (messages_lost/messages_offered).
  if (from_it == endpoints_.end() || to_it == endpoints_.end() ||
      from == to) {
    return Duration::Zero();
  }
  ++offered_;
  DomainId da = from_it->second;
  DomainId db = to_it->second;
  bool cross = da != db;

  if (cross && Partitioned(da, db, now)) {
    ++partitioned_;
    return std::nullopt;
  }
  double loss =
      cross ? params_.inter_domain_loss : params_.intra_domain_loss;
  if (loss > 0.0 && rng_.Bernoulli(loss)) {
    ++lost_;
    return std::nullopt;
  }

  Duration base = cross ? params_.inter_domain_latency
                        : params_.intra_domain_latency;
  if (cross) {
    auto it = pair_latency_.find(PairKey(da, db));
    if (it != pair_latency_.end()) base = it->second;
  }
  double bandwidth = cross ? params_.inter_domain_bandwidth_bps
                           : params_.intra_domain_bandwidth_bps;
  Duration transfer = Duration::Seconds(
      static_cast<double>(bytes) * 8.0 / std::max(bandwidth, 1.0));
  Duration jitter = Duration::Zero();
  if (params_.jitter_fraction > 0.0) {
    jitter = base * rng_.Uniform(-params_.jitter_fraction,
                                 params_.jitter_fraction);
  }
  Duration queue_delay = Duration::Zero();
  if (params_.serialize_uplink) {
    // The sender's uplink is a FIFO: this message starts draining when
    // the previous ones finish, and occupies the link for its transfer
    // time.  Concurrent bursts from one endpoint therefore pay for each
    // other -- the cost batching exists to amortize.
    SimTime& uplink_free = uplink_free_[from];
    const SimTime depart = std::max(uplink_free, now);
    queue_delay = depart - now;
    uplink_free = depart + transfer;
  }
  Duration total = queue_delay + transfer + base + jitter;
  if (total < Duration::Zero()) total = Duration::Zero();
  return total;
}

}  // namespace legion
