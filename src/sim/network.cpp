#include "sim/network.h"

#include <algorithm>

namespace legion {

NetworkModel::NetworkModel(NetworkParams params)
    : params_(params), rng_(params.seed) {}

void NetworkModel::RegisterEndpoint(const Loid& loid, DomainId domain) {
  endpoints_[loid] = domain;
}

void NetworkModel::UnregisterEndpoint(const Loid& loid) {
  endpoints_.erase(loid);
}

bool NetworkModel::HasEndpoint(const Loid& loid) const {
  return endpoints_.count(loid) != 0;
}

std::optional<DomainId> NetworkModel::DomainOf(const Loid& loid) const {
  auto it = endpoints_.find(loid);
  if (it == endpoints_.end()) return std::nullopt;
  return it->second;
}

Duration NetworkModel::ExpectedLatency(const Loid& from, const Loid& to,
                                       std::size_t bytes) const {
  auto from_it = endpoints_.find(from);
  auto to_it = endpoints_.find(to);
  if (from_it == endpoints_.end() || to_it == endpoints_.end() ||
      from == to) {
    return Duration::Zero();
  }
  const DomainId da = from_it->second;
  const DomainId db = to_it->second;
  const bool cross = da != db;
  Duration base =
      cross ? params_.inter_domain_latency : params_.intra_domain_latency;
  if (cross) {
    auto it = pair_latency_.find(PairKey(da, db));
    if (it != pair_latency_.end()) base = it->second;
  }
  const double bandwidth = cross ? params_.inter_domain_bandwidth_bps
                                 : params_.intra_domain_bandwidth_bps;
  return base + Duration::Seconds(static_cast<double>(bytes) * 8.0 /
                                  std::max(bandwidth, 1.0));
}

void NetworkModel::SetPairLatency(DomainId a, DomainId b, Duration latency) {
  pair_latency_[PairKey(a, b)] = latency;
}

void NetworkModel::AddPartition(DomainId a, DomainId b, SimTime start,
                                SimTime end) {
  partitions_.push_back(Partition{a, b, start, end});
}

bool NetworkModel::Partitioned(DomainId a, DomainId b, SimTime now) const {
  for (const auto& p : partitions_) {
    bool matches = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (matches && now >= p.start && now < p.end) return true;
  }
  return false;
}

std::optional<Duration> NetworkModel::Latency(const Loid& from, const Loid& to,
                                              std::size_t bytes, SimTime now) {
  ++offered_;
  auto from_it = endpoints_.find(from);
  auto to_it = endpoints_.find(to);
  // Unregistered endpoints (unit tests, co-located services) and
  // self-sends are local: free and lossless.
  if (from_it == endpoints_.end() || to_it == endpoints_.end() ||
      from == to) {
    return Duration::Zero();
  }
  DomainId da = from_it->second;
  DomainId db = to_it->second;
  bool cross = da != db;

  if (cross && Partitioned(da, db, now)) {
    ++partitioned_;
    return std::nullopt;
  }
  double loss =
      cross ? params_.inter_domain_loss : params_.intra_domain_loss;
  if (loss > 0.0 && rng_.Bernoulli(loss)) {
    ++lost_;
    return std::nullopt;
  }

  Duration base = cross ? params_.inter_domain_latency
                        : params_.intra_domain_latency;
  if (cross) {
    auto it = pair_latency_.find(PairKey(da, db));
    if (it != pair_latency_.end()) base = it->second;
  }
  double bandwidth = cross ? params_.inter_domain_bandwidth_bps
                           : params_.intra_domain_bandwidth_bps;
  Duration transfer = Duration::Seconds(
      static_cast<double>(bytes) * 8.0 / std::max(bandwidth, 1.0));
  Duration jitter = Duration::Zero();
  if (params_.jitter_fraction > 0.0) {
    jitter = base * rng_.Uniform(-params_.jitter_fraction,
                                 params_.jitter_fraction);
  }
  Duration total = base + transfer + jitter;
  if (total < Duration::Zero()) total = Duration::Zero();
  return total;
}

}  // namespace legion
