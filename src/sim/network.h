// The simulated wide-area network.
//
// The paper's metacomputer "combines hosts from multiple administrative
// domains via transnational and world-wide networks".  This model captures
// the features that matter to resource management:
//
//   * a two-level latency hierarchy: cheap intra-domain links, expensive
//     inter-domain links (optionally overridden per domain pair),
//   * bandwidth-limited transfer time for large payloads (OPR migration),
//   * deterministic jitter,
//   * fault injection: random message loss and timed domain partitions.
//
// Endpoints are Legion LOIDs registered with their administrative domain.
// A message between two endpoints either gets a delivery latency or is
// dropped (loss/partition); the caller's RPC timeout machinery turns drops
// into kTimeout errors, exactly the failure mode the paper says Legion
// objects are built to accommodate "at any step in the scheduling process".
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "base/loid.h"
#include "base/rng.h"
#include "base/sim_time.h"

namespace legion {

using DomainId = std::uint32_t;

// Tunable network characteristics.  Defaults approximate a late-90s
// research internet: sub-millisecond LANs, tens-of-milliseconds WANs.
struct NetworkParams {
  Duration intra_domain_latency = Duration::Micros(300);
  Duration inter_domain_latency = Duration::Millis(30);
  double intra_domain_bandwidth_bps = 100e6;  // 100 Mbit/s LAN
  double inter_domain_bandwidth_bps = 10e6;   // 10 Mbit/s WAN
  double jitter_fraction = 0.1;               // +/- uniform share of latency
  double intra_domain_loss = 0.0;             // message loss probability
  double inter_domain_loss = 0.0;
  std::uint64_t seed = 12345;
  // Sender-side link contention (GridSim-style): messages leaving one
  // endpoint share its uplink, so a burst of concurrent sends queues
  // behind each other's transfer time instead of departing in parallel
  // for free.  Off by default -- the historical model delivers
  // concurrent sends independently.
  bool serialize_uplink = false;
};

class NetworkModel {
 public:
  explicit NetworkModel(NetworkParams params = {});

  // Associates an endpoint LOID with its administrative domain.
  void RegisterEndpoint(const Loid& loid, DomainId domain);
  void UnregisterEndpoint(const Loid& loid);
  bool HasEndpoint(const Loid& loid) const;
  std::optional<DomainId> DomainOf(const Loid& loid) const;

  // Overrides latency for a specific (unordered) domain pair.
  void SetPairLatency(DomainId a, DomainId b, Duration latency);

  // Declares domains a and b mutually unreachable during [start, end).
  void AddPartition(DomainId a, DomainId b, SimTime start, SimTime end);

  // Computes the delivery latency for `bytes` from `from` to `to` at time
  // `now`, or nullopt if the message is lost (loss or partition).  A
  // message between unregistered endpoints, or an endpoint to itself, is
  // treated as local and free (and not counted as wire traffic).
  std::optional<Duration> Latency(const Loid& from, const Loid& to,
                                  std::size_t bytes, SimTime now);

  // Deterministic expected delivery latency at time `at` (no jitter, no
  // loss draw, no counters, no uplink queueing); used by rankers and
  // analytic models.  Partition-aware, unlike the healthy-path variant
  // below: a pair partitioned at `at` has no expected latency, so
  // callers cannot score an unreachable host by its healthy-path ETA.
  std::optional<Duration> ExpectedLatency(const Loid& from, const Loid& to,
                                          std::size_t bytes, SimTime at) const;

  // Healthy-path estimate ignoring transient partitions: long-horizon
  // analytics (e.g. the workload executor's makespan model) where any
  // partition active right now will have healed.
  Duration HealthyPathLatency(const Loid& from, const Loid& to,
                              std::size_t bytes) const;

  const NetworkParams& params() const { return params_; }

  // Counters (for experiment output).
  std::uint64_t messages_offered() const { return offered_; }
  std::uint64_t messages_lost() const { return lost_; }
  std::uint64_t messages_partitioned() const { return partitioned_; }

 private:
  struct Partition {
    DomainId a, b;
    SimTime start, end;
  };
  static std::uint64_t PairKey(DomainId a, DomainId b) {
    if (a > b) std::swap(a, b);
    return (static_cast<std::uint64_t>(a) << 32) | b;
  }
  bool Partitioned(DomainId a, DomainId b, SimTime now) const;

  NetworkParams params_;
  Rng rng_;
  std::unordered_map<Loid, DomainId> endpoints_;
  std::unordered_map<std::uint64_t, Duration> pair_latency_;
  std::vector<Partition> partitions_;
  // Per-sender uplink FIFO (serialize_uplink): when this endpoint's
  // previous transfers finish draining onto the wire.
  std::unordered_map<Loid, SimTime> uplink_free_;
  std::uint64_t offered_ = 0;
  std::uint64_t lost_ = 0;
  std::uint64_t partitioned_ = 0;
};

}  // namespace legion
