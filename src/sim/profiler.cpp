#include "sim/profiler.h"

#include "obs/json.h"

namespace legion {

void KernelProfiler::RecordHandler(const char* label, Duration queue_lag,
                                   std::int64_t wall_us) {
  ProfileEntry& entry = entries_[label];
  ++entry.count;
  entry.queue_us += queue_lag.micros();
  entry.wall_us += wall_us;
}

void KernelProfiler::RecordRpc(const char* op, Duration sim_latency) {
  ProfileEntry& entry = entries_[std::string("rpc/") + op];
  ++entry.count;
  entry.sim_busy_us += sim_latency.micros();
}

const ProfileEntry* KernelProfiler::Find(std::string_view label) const {
  auto it = entries_.find(std::string(label));
  return it == entries_.end() ? nullptr : &it->second;
}

std::string KernelProfiler::ToJson() const {
  using obs::JsonNumber;
  using obs::JsonString;
  std::string out =
      "{\"queue_depth_high_water\":" +
      JsonNumber(static_cast<std::uint64_t>(queue_depth_high_water_)) +
      ",\"rpc_inflight_high_water\":" +
      JsonNumber(static_cast<std::uint64_t>(rpc_inflight_high_water_)) +
      ",\"handlers\":{";
  bool first = true;
  for (const auto& [label, entry] : entries_) {
    if (!first) out += ',';
    first = false;
    out += JsonString(label) + ":{\"count\":" + JsonNumber(entry.count) +
           ",\"queue_us\":" + JsonNumber(entry.queue_us) +
           ",\"sim_busy_us\":" + JsonNumber(entry.sim_busy_us) +
           ",\"wall_us\":" + JsonNumber(entry.wall_us) + '}';
  }
  out += "}}\n";
  return out;
}

void KernelProfiler::Reset() {
  entries_.clear();
  queue_depth_high_water_ = 0;
  rpc_inflight_ = 0;
  rpc_inflight_high_water_ = 0;
}

}  // namespace legion
