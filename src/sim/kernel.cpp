#include "sim/kernel.h"

namespace legion {

SimKernel::SimKernel(NetworkParams net_params, std::uint64_t seed)
    : now_(SimTime::Zero()), network_(net_params) {
  (void)seed;  // reserved for future kernel-level randomness
  const obs::Labels kernel_labels = {{"component", "kernel"}};
  cells_.events_run = metrics_.GetCounter("events_run", kernel_labels);
  cells_.messages_sent = metrics_.GetCounter("messages_sent", kernel_labels);
  cells_.messages_dropped =
      metrics_.GetCounter("messages_dropped", kernel_labels);
  cells_.bytes_sent = metrics_.GetCounter("bytes_sent", kernel_labels);
  cells_.rpcs_started = metrics_.GetCounter("rpcs_started", kernel_labels);
  cells_.rpcs_completed = metrics_.GetCounter("rpcs_completed", kernel_labels);
  cells_.rpcs_timed_out = metrics_.GetCounter("rpcs_timed_out", kernel_labels);
  cells_.rpc_latency_ok = metrics_.GetHistogram(
      "rpc_latency_us", {{"component", "kernel"}, {"outcome", "ok"}},
      obs::LatencyBucketsUs());
  cells_.rpc_latency_timeout = metrics_.GetHistogram(
      "rpc_latency_us", {{"component", "kernel"}, {"outcome", "timeout"}},
      obs::LatencyBucketsUs());
  cells_.rpc_latency_error = metrics_.GetHistogram(
      "rpc_latency_us", {{"component", "kernel"}, {"outcome", "error"}},
      obs::LatencyBucketsUs());
}

const KernelStats& SimKernel::stats() const {
  stats_view_.events_run = cells_.events_run->value();
  stats_view_.messages_sent = cells_.messages_sent->value();
  stats_view_.messages_dropped = cells_.messages_dropped->value();
  stats_view_.bytes_sent = cells_.bytes_sent->value();
  stats_view_.rpcs_started = cells_.rpcs_started->value();
  stats_view_.rpcs_completed = cells_.rpcs_completed->value();
  stats_view_.rpcs_timed_out = cells_.rpcs_timed_out->value();
  return stats_view_;
}

void SimKernel::ResetStats() {
  cells_.events_run->Reset();
  cells_.messages_sent->Reset();
  cells_.messages_dropped->Reset();
  cells_.bytes_sent->Reset();
  cells_.rpcs_started->Reset();
  cells_.rpcs_completed->Reset();
  cells_.rpcs_timed_out->Reset();
  cells_.rpc_latency_ok->Reset();
  cells_.rpc_latency_timeout->Reset();
  cells_.rpc_latency_error->Reset();
}

EventId SimKernel::ScheduleAt(SimTime when, EventQueue::EventFn fn,
                              const char* label) {
  assert(when >= now_ && "cannot schedule in the past");
  EventId id = queue_.Schedule(when, std::move(fn), label, now_);
  if (profiler_.enabled()) profiler_.RecordQueueDepth(queue_.size());
  return id;
}

EventId SimKernel::ScheduleAfter(Duration delay, EventQueue::EventFn fn,
                                 const char* label) {
  return ScheduleAt(now_ + delay, std::move(fn), label);
}

SimKernel::PeriodicId SimKernel::SchedulePeriodic(Duration period,
                                                  std::function<void()> fn) {
  PeriodicId id = next_periodic_++;
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  periodic_[id] = ScheduleAfter(
      period,
      [this, id, period, shared_fn] { RepeatPeriodic(id, period, shared_fn); },
      "kernel/periodic");
  return id;
}

void SimKernel::RepeatPeriodic(PeriodicId id, Duration period,
                               std::shared_ptr<std::function<void()>> fn) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;  // cancelled between firing and run
  (*fn)();
  // The callback may have cancelled the timer.
  it = periodic_.find(id);
  if (it == periodic_.end()) return;
  it->second = ScheduleAfter(
      period, [this, id, period, fn] { RepeatPeriodic(id, period, fn); },
      "kernel/periodic");
}

void SimKernel::CancelPeriodic(PeriodicId id) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;
  queue_.Cancel(it->second);
  periodic_.erase(it);
}

std::uint64_t SimKernel::RunUntil(SimTime until) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    SimTime next = queue_.NextTime();
    if (next > until) break;
    // Close recorder windows that end before the next event runs; the
    // recorder itself never schedules, so enabling it cannot change
    // events_run or any other fingerprint.
    recorder_.MaybeSample(next);
    auto ev = queue_.Pop();
    now_ = ev.when;
    if (profiler_.enabled()) {
      const std::int64_t wall_before = wallclock_.Micros();
      ev.fn();
      profiler_.RecordHandler(ev.label != nullptr ? ev.label : "kernel/event",
                              ev.when - ev.enqueued,
                              wallclock_.Micros() - wall_before);
    } else {
      ev.fn();
    }
    ++executed;
    cells_.events_run->Add();
  }
  if (now_ < until && until < SimTime::Max()) {
    now_ = until;
    recorder_.FlushThrough(until);
  }
  return executed;
}

Actor* SimKernel::AdoptActor(std::unique_ptr<Actor> actor) {
  Actor* raw = actor.get();
  actors_[raw->loid()] = std::move(actor);
  return raw;
}

Actor* SimKernel::FindActor(const Loid& loid) const {
  auto it = actors_.find(loid);
  return it == actors_.end() ? nullptr : it->second.get();
}

void SimKernel::RemoveActor(const Loid& loid) { actors_.erase(loid); }

bool SimKernel::Send(const Loid& from, const Loid& to, std::size_t bytes,
                     std::function<void()> fn) {
  cells_.messages_sent->Add();
  cells_.bytes_sent->Add(bytes);
  auto latency = network_.Latency(from, to, bytes, now_);
  if (!latency) {
    cells_.messages_dropped->Add();
    if (trace_.enabled()) {
      trace_.Instant(now_, "msg_drop", "net", trace_.current(),
                     {{"from", from.ToString()}, {"to", to.ToString()}});
    }
    return false;
  }
  if (trace_.enabled()) {
    // A span per message in flight; the delivery handler runs inside it,
    // so work the receiver starts is caused-by this message.
    const obs::SpanId span =
        trace_.BeginSpan(now_, "msg", "net", trace_.current(),
                         {{"from", from.ToString()},
                          {"to", to.ToString()},
                          {"bytes", std::to_string(bytes)}});
    ScheduleAfter(
        *latency,
        [this, span, fn = std::move(fn)] {
          {
            obs::ScopedCurrent ctx(trace_, span);
            fn();
          }
          trace_.EndSpan(now_, span);
        },
        "net/msg");
  } else {
    ScheduleAfter(*latency, std::move(fn), "net/msg");
  }
  return true;
}

}  // namespace legion
