#include "sim/kernel.h"

namespace legion {

SimKernel::SimKernel(NetworkParams net_params, std::uint64_t seed)
    : now_(SimTime::Zero()), network_(net_params) {
  (void)seed;  // reserved for future kernel-level randomness
}

EventId SimKernel::ScheduleAt(SimTime when, EventQueue::EventFn fn) {
  assert(when >= now_ && "cannot schedule in the past");
  return queue_.Schedule(when, std::move(fn));
}

EventId SimKernel::ScheduleAfter(Duration delay, EventQueue::EventFn fn) {
  return ScheduleAt(now_ + delay, std::move(fn));
}

SimKernel::PeriodicId SimKernel::SchedulePeriodic(Duration period,
                                                  std::function<void()> fn) {
  PeriodicId id = next_periodic_++;
  auto shared_fn = std::make_shared<std::function<void()>>(std::move(fn));
  periodic_[id] = ScheduleAfter(period, [this, id, period, shared_fn] {
    RepeatPeriodic(id, period, shared_fn);
  });
  return id;
}

void SimKernel::RepeatPeriodic(PeriodicId id, Duration period,
                               std::shared_ptr<std::function<void()>> fn) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;  // cancelled between firing and run
  (*fn)();
  // The callback may have cancelled the timer.
  it = periodic_.find(id);
  if (it == periodic_.end()) return;
  it->second = ScheduleAfter(
      period, [this, id, period, fn] { RepeatPeriodic(id, period, fn); });
}

void SimKernel::CancelPeriodic(PeriodicId id) {
  auto it = periodic_.find(id);
  if (it == periodic_.end()) return;
  queue_.Cancel(it->second);
  periodic_.erase(it);
}

std::uint64_t SimKernel::RunUntil(SimTime until) {
  std::uint64_t executed = 0;
  while (!queue_.empty()) {
    SimTime next = queue_.NextTime();
    if (next > until) break;
    auto ev = queue_.Pop();
    now_ = ev.when;
    ev.fn();
    ++executed;
    ++stats_.events_run;
  }
  if (now_ < until && until < SimTime::Max()) now_ = until;
  return executed;
}

Actor* SimKernel::AdoptActor(std::unique_ptr<Actor> actor) {
  Actor* raw = actor.get();
  actors_[raw->loid()] = std::move(actor);
  return raw;
}

Actor* SimKernel::FindActor(const Loid& loid) const {
  auto it = actors_.find(loid);
  return it == actors_.end() ? nullptr : it->second.get();
}

void SimKernel::RemoveActor(const Loid& loid) { actors_.erase(loid); }

bool SimKernel::Send(const Loid& from, const Loid& to, std::size_t bytes,
                     std::function<void()> fn) {
  ++stats_.messages_sent;
  stats_.bytes_sent += bytes;
  auto latency = network_.Latency(from, to, bytes, now_);
  if (!latency) {
    ++stats_.messages_dropped;
    return false;
  }
  ScheduleAfter(*latency, std::move(fn));
  return true;
}

}  // namespace legion
