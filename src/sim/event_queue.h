// The discrete-event queue.
//
// A binary heap of (time, sequence) ordered events.  The sequence number
// makes execution order total and deterministic: two events scheduled for
// the same instant run in scheduling order, independent of heap internals.
// Events can be cancelled by id; cancellation is lazy (tombstoned).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "base/sim_time.h"

namespace legion {

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using EventFn = std::function<void()>;

  // Schedules `fn` at absolute time `when`; returns a cancellable id.
  // `label` is an optional static "component/kind" string and `enqueued`
  // the scheduling instant -- both pure accounting carried for the
  // kernel profiler, with no effect on ordering or execution.
  EventId Schedule(SimTime when, EventFn fn, const char* label = nullptr,
                   SimTime enqueued = SimTime::Zero());

  // Cancels a pending event.  Returns false if already run or cancelled.
  bool Cancel(EventId id);

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  // Time of the earliest live event; SimTime::Max() when empty.
  SimTime NextTime();

  // Pops and returns the earliest live event.  Pre: !empty().
  struct Popped {
    SimTime when;
    EventId id;
    EventFn fn;
    const char* label;  // nullptr when the scheduler left it unlabeled
    SimTime enqueued;
  };
  Popped Pop();

 private:
  struct Entry {
    SimTime when;
    EventId id;  // doubles as the deterministic tie-breaker
    EventFn fn;
    const char* label;
    SimTime enqueued;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  void DropCancelledHead();

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_set<EventId> pending_;    // scheduled, not yet run/cancelled
  std::unordered_set<EventId> cancelled_;  // tombstones awaiting heap removal
  EventId next_id_ = 1;
};

}  // namespace legion
