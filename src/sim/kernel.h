// The discrete-event simulation kernel.
//
// Every Legion object in the reproduction is an actor whose method
// invocations travel as messages through the NetworkModel.  The kernel
// owns the virtual clock and the event queue, routes messages, implements
// the asynchronous RPC pattern used throughout the RMI (Scheduler ->
// Collection queries, Enactor -> Host reservation calls, Class ->
// Host StartObject, Monitor outcalls), and keeps global statistics that
// the benchmark harnesses report (message counts, RPC timeouts).
//
// The kernel is deliberately single-threaded and deterministic: given the
// same seed and workload, every experiment reproduces exactly.  Components
// that are useful outside the kernel (the Collection's query engine) have
// their own internal synchronization for multi-threaded callers.
#pragma once

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "base/loid.h"
#include "base/result.h"
#include "base/sim_time.h"
#include "obs/audit.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "obs/wallclock.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/profiler.h"

namespace legion {

class SimKernel;

// Base class for simulated Legion entities addressable by LOID.
class Actor {
 public:
  Actor(SimKernel* kernel, Loid loid) : kernel_(kernel), loid_(loid) {}
  virtual ~Actor() = default;

  Actor(const Actor&) = delete;
  Actor& operator=(const Actor&) = delete;

  const Loid& loid() const { return loid_; }
  SimKernel* kernel() const { return kernel_; }

  // Human-readable name for traces; defaults to the LOID.
  virtual std::string DebugName() const { return loid_.ToString(); }

 private:
  SimKernel* kernel_;
  Loid loid_;
};

template <typename T>
using Callback = std::function<void(Result<T>)>;

// Kernel-wide statistics, exposed to benchmarks.  The registry cells in
// metrics() are the source of truth; this struct is the thin view
// stats() refreshes from them (reads its fields right after the call).
struct KernelStats {
  std::uint64_t events_run = 0;
  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t rpcs_started = 0;
  std::uint64_t rpcs_completed = 0;
  std::uint64_t rpcs_timed_out = 0;
};

class SimKernel {
 public:
  explicit SimKernel(NetworkParams net_params = {}, std::uint64_t seed = 1);

  SimTime Now() const { return now_; }
  NetworkModel& network() { return network_; }
  LoidMinter& minter() { return minter_; }
  const KernelStats& stats() const;
  // Zeroes the kernel's own cells (messages, events, RPCs + latency
  // histograms); other components' registry cells are untouched.
  void ResetStats();

  // ---- Observability ----------------------------------------------------
  // Every component of this simulated world reports into this registry /
  // trace log; see DESIGN.md "Observability".
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::TraceLog& trace() { return trace_; }
  const obs::TraceLog& trace() const { return trace_; }
  // Flight recorder (observability v2): windowed metric timelines, the
  // per-handler kernel profiler, the decision audit log, and the single
  // wall-time source -- pinned by default so every export stays
  // deterministic.  All are off/no-op until explicitly enabled.
  obs::TimeSeriesRecorder& recorder() { return recorder_; }
  const obs::TimeSeriesRecorder& recorder() const { return recorder_; }
  KernelProfiler& profiler() { return profiler_; }
  const KernelProfiler& profiler() const { return profiler_; }
  obs::DecisionLog& audit() { return audit_; }
  const obs::DecisionLog& audit() const { return audit_; }
  obs::WallClock& wallclock() { return wallclock_; }
  const obs::WallClock& wallclock() const { return wallclock_; }

  // ---- Event scheduling -------------------------------------------------
  // `label` is an optional static "component/kind" string for the kernel
  // profiler's per-handler accounting (nullptr buckets as "kernel/event").
  EventId ScheduleAt(SimTime when, EventQueue::EventFn fn,
                     const char* label = nullptr);
  EventId ScheduleAfter(Duration delay, EventQueue::EventFn fn,
                        const char* label = nullptr);
  bool Cancel(EventId id) { return queue_.Cancel(id); }

  // Periodic timer; returns a handle that stops the timer when cancelled
  // via CancelPeriodic.  The first firing is after `period`.
  using PeriodicId = std::uint64_t;
  PeriodicId SchedulePeriodic(Duration period, std::function<void()> fn);
  void CancelPeriodic(PeriodicId id);

  // ---- Running ----------------------------------------------------------
  // Runs until the queue drains or `until`; returns events executed.
  std::uint64_t RunUntil(SimTime until);
  std::uint64_t Run() { return RunUntil(SimTime::Max()); }
  std::uint64_t RunFor(Duration d) { return RunUntil(now_ + d); }
  bool Idle() const { return queue_.empty(); }
  std::size_t queue_size() const { return queue_.size(); }

  // ---- Actor registry ---------------------------------------------------
  // The kernel owns its actors; AddActor transfers ownership.
  template <typename T, typename... Args>
  T* AddActor(Args&&... args) {
    auto actor = std::make_unique<T>(this, std::forward<Args>(args)...);
    T* raw = actor.get();
    actors_[raw->loid()] = std::move(actor);
    return raw;
  }
  // Adopts an externally constructed actor (e.g. from an ObjectFactory).
  Actor* AdoptActor(std::unique_ptr<Actor> actor);
  Actor* FindActor(const Loid& loid) const;
  void RemoveActor(const Loid& loid);
  std::size_t actor_count() const { return actors_.size(); }

  // ---- Messaging --------------------------------------------------------
  // One-way message: runs `fn` at the receiver after network latency.
  // Returns false if the network dropped it (fn never runs).
  bool Send(const Loid& from, const Loid& to, std::size_t bytes,
            std::function<void()> fn);

  // Asynchronous RPC with timeout.  `invoke` is executed at the callee
  // after request latency and is handed a reply callback; when the callee
  // calls the reply callback the result is delivered back to the caller
  // after reply latency.  If no reply lands before `timeout`, `done` gets
  // ErrorCode::kTimeout (this also covers dropped messages).  `done` is
  // invoked exactly once.  `op` names the call in traces and must be a
  // static string ("query_collection", "make_reservation", ...).
  template <typename T>
  void AsyncCall(const Loid& from, const Loid& to, std::size_t request_bytes,
                 std::size_t reply_bytes, Duration timeout,
                 std::function<void(Callback<T>)> invoke, Callback<T> done,
                 const char* op = "rpc");

 private:
  // Pre-resolved registry cells for the kernel's own hot-path metrics.
  struct Cells {
    obs::Counter* events_run;
    obs::Counter* messages_sent;
    obs::Counter* messages_dropped;
    obs::Counter* bytes_sent;
    obs::Counter* rpcs_started;
    obs::Counter* rpcs_completed;
    obs::Counter* rpcs_timed_out;
    obs::Histogram* rpc_latency_ok;
    obs::Histogram* rpc_latency_timeout;
    obs::Histogram* rpc_latency_error;
  };

  SimTime now_;
  EventQueue queue_;
  NetworkModel network_;
  LoidMinter minter_;
  obs::MetricsRegistry metrics_;
  obs::TraceLog trace_;
  obs::TimeSeriesRecorder recorder_;
  KernelProfiler profiler_;
  obs::DecisionLog audit_;
  obs::WallClock wallclock_;
  Cells cells_;
  mutable KernelStats stats_view_;
  std::unordered_map<Loid, std::unique_ptr<Actor>> actors_;
  std::unordered_map<PeriodicId, EventId> periodic_;
  PeriodicId next_periodic_ = 1;

  void RepeatPeriodic(PeriodicId id, Duration period,
                      std::shared_ptr<std::function<void()>> fn);
};

template <typename T>
void SimKernel::AsyncCall(const Loid& from, const Loid& to,
                          std::size_t request_bytes, std::size_t reply_bytes,
                          Duration timeout,
                          std::function<void(Callback<T>)> invoke,
                          Callback<T> done, const char* op) {
  cells_.rpcs_started->Add();
  if (profiler_.enabled()) profiler_.RpcStarted();
  const SimTime started = now_;
  // Causal span for the whole call; the callee runs inside it, so RPCs it
  // issues become children and the negotiation tree links up.
  obs::SpanId span = obs::kNoSpan;
  obs::SpanId caller_span = obs::kNoSpan;
  if (trace_.enabled()) {
    caller_span = trace_.current();
    span = trace_.BeginSpan(now_, op, "rpc", caller_span,
                            {{"from", from.ToString()}, {"to", to.ToString()}});
  }
  // Shared completion record: whichever of {reply, timeout} fires first
  // wins; the loser is suppressed.
  struct Pending {
    bool finished = false;
    EventId timeout_event = kInvalidEventId;
  };
  auto pending = std::make_shared<Pending>();
  auto finish = [this, pending, span, caller_span, started, op,
                 done = std::move(done)](Result<T> r) {
    if (pending->finished) return;
    pending->finished = true;
    if (pending->timeout_event != kInvalidEventId) {
      queue_.Cancel(pending->timeout_event);
    }
    if (profiler_.enabled()) {
      profiler_.RpcFinished();
      profiler_.RecordRpc(op, now_ - started);
    }
    const char* outcome;
    const double latency_us = static_cast<double>((now_ - started).micros());
    if (r.ok()) {
      cells_.rpcs_completed->Add();
      cells_.rpc_latency_ok->Observe(latency_us);
      outcome = "ok";
    } else if (r.code() == ErrorCode::kTimeout) {
      cells_.rpcs_timed_out->Add();
      cells_.rpc_latency_timeout->Observe(latency_us);
      outcome = "timeout";
    } else {
      cells_.rpcs_completed->Add();
      cells_.rpc_latency_error->Observe(latency_us);
      outcome = "error";
    }
    if (span != obs::kNoSpan) {
      trace_.EndSpan(now_, span, {{"outcome", outcome}});
      // The continuation belongs to the caller's context, not the RPC's.
      obs::ScopedCurrent ctx(trace_, caller_span);
      done(std::move(r));
      return;
    }
    done(std::move(r));
  };

  if (timeout > Duration::Zero()) {
    pending->timeout_event = ScheduleAt(
        now_ + timeout,
        [finish] {
          finish(Status::Error(ErrorCode::kTimeout, "rpc timeout"));
        },
        "kernel/rpc_timeout");
  }

  // Reply path: callee invokes this; result crosses the network back.
  Callback<T> reply_cb = [this, from, to, reply_bytes,
                          finish](Result<T> r) mutable {
    // The reply is itself a message and may be dropped; the timeout then
    // fires at the caller.
    Send(to, from, reply_bytes,
         [finish, r = std::move(r)]() mutable { finish(std::move(r)); });
  };

  // Request path.  The callee executes with the RPC span current.
  Send(from, to, request_bytes,
       [this, span, invoke = std::move(invoke),
        reply_cb = std::move(reply_cb)]() mutable {
         if (span != obs::kNoSpan && trace_.enabled()) {
           obs::ScopedCurrent ctx(trace_, span);
           invoke(std::move(reply_cb));
         } else {
           invoke(std::move(reply_cb));
         }
       });
}

}  // namespace legion
