#include "sim/event_queue.h"

#include <cassert>

namespace legion {

EventId EventQueue::Schedule(SimTime when, EventFn fn, const char* label,
                             SimTime enqueued) {
  EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(fn), label, enqueued});
  pending_.insert(id);
  return id;
}

bool EventQueue::Cancel(EventId id) {
  // Only events still pending can be cancelled; ids that already ran (or
  // were never issued) are rejected so live accounting stays correct.
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id);
  return true;
}

void EventQueue::DropCancelledHead() {
  while (!heap_.empty()) {
    auto it = cancelled_.find(heap_.top().id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    heap_.pop();
  }
}

SimTime EventQueue::NextTime() {
  DropCancelledHead();
  return heap_.empty() ? SimTime::Max() : heap_.top().when;
}

EventQueue::Popped EventQueue::Pop() {
  DropCancelledHead();
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry is moved out via const_cast,
  // which is safe because pop() immediately removes it.
  Entry& top = const_cast<Entry&>(heap_.top());
  Popped popped{top.when, top.id, std::move(top.fn), top.label, top.enqueued};
  pending_.erase(popped.id);
  heap_.pop();
  return popped;
}

}  // namespace legion
