#include "base/loid.h"

#include <ostream>
#include <sstream>

namespace legion {

const char* ToString(LoidSpace space) {
  switch (space) {
    case LoidSpace::kInvalid:
      return "invalid";
    case LoidSpace::kClass:
      return "class";
    case LoidSpace::kHost:
      return "host";
    case LoidSpace::kVault:
      return "vault";
    case LoidSpace::kObject:
      return "object";
    case LoidSpace::kService:
      return "service";
  }
  return "unknown";
}

std::string Loid::ToString() const {
  std::ostringstream os;
  os << legion::ToString(space_) << ':' << domain_ << '/' << serial_;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Loid& loid) {
  return os << loid.ToString();
}

std::optional<Loid> ParseLoid(const std::string& text) {
  auto colon = text.find(':');
  auto slash = text.find('/', colon == std::string::npos ? 0 : colon);
  if (colon == std::string::npos || slash == std::string::npos) {
    return std::nullopt;
  }
  const std::string space_name = text.substr(0, colon);
  LoidSpace space = LoidSpace::kInvalid;
  for (auto candidate :
       {LoidSpace::kClass, LoidSpace::kHost, LoidSpace::kVault,
        LoidSpace::kObject, LoidSpace::kService}) {
    if (space_name == ToString(candidate)) {
      space = candidate;
      break;
    }
  }
  if (space == LoidSpace::kInvalid) return std::nullopt;
  try {
    std::size_t used = 0;
    const std::string domain_str = text.substr(colon + 1, slash - colon - 1);
    const unsigned long domain = std::stoul(domain_str, &used);
    if (used != domain_str.size()) return std::nullopt;
    const std::string serial_str = text.substr(slash + 1);
    const unsigned long long serial = std::stoull(serial_str, &used);
    if (used != serial_str.size()) return std::nullopt;
    return Loid(space, static_cast<std::uint32_t>(domain), serial);
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace legion
