// Lightweight Status / Result<T> error handling (no exceptions across
// component boundaries; the simulated "RPC" layer reports failures as
// values, matching the paper's success/failure result codes).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace legion {

// Error categories for resource-management operations.  These mirror the
// failure modes the paper calls out: inability to obtain resources,
// malformed schedules, authorization refusals by autonomous guardians,
// timeouts in wide-area communication, and plain internal errors.
enum class ErrorCode {
  kOk = 0,
  kNoResources,       // reservation refused: insufficient capacity
  kMalformedSchedule, // schedule structurally invalid
  kRefused,           // local autonomy policy refused the request
  kInvalidToken,      // reservation token failed verification
  kExpired,           // reservation timed out or outside its window
  kNotFound,          // unknown LOID / record / attribute
  kTimeout,           // message or RPC timed out
  kUnavailable,       // object inactive, host down, or partitioned
  kAlreadyExists,
  kInvalidArgument,
  kInternal,
};

const char* ToString(ErrorCode code);

// A status: OK or (code, message).
class Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Error(ErrorCode code, std::string message = {}) {
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = legion::ToString(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

inline const char* ToString(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kNoResources: return "NO_RESOURCES";
    case ErrorCode::kMalformedSchedule: return "MALFORMED_SCHEDULE";
    case ErrorCode::kRefused: return "REFUSED";
    case ErrorCode::kInvalidToken: return "INVALID_TOKEN";
    case ErrorCode::kExpired: return "EXPIRED";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kTimeout: return "TIMEOUT";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

// Result<T>: either a value or an error status.  Minimal std::expected
// stand-in (C++20 toolchain).
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }
  Result(ErrorCode code, std::string message)
      : status_(code, std::move(message)) {}

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }
  ErrorCode code() const {
    return ok() ? ErrorCode::kOk : status_.code();
  }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const { return ok() ? *value_ : std::move(fallback); }

 private:
  std::optional<T> value_;
  Status status_;
};

}  // namespace legion
