// The Legion object attribute database.
//
// Every Legion object carries an extensible attribute database whose
// contents are determined by the object's type (paper section 3.1).  In the
// simplest form attributes are (name, value) pairs; Host objects populate
// theirs with architecture, operating system, load, available memory, cost
// per CPU cycle, domain refusal lists, and so on, and Collections store one
// attribute record per resource.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace legion {

class AttrValue;
using AttrList = std::vector<AttrValue>;

// A single attribute value.  Numeric values may be integral or floating;
// the comparison helpers coerce between the two.  Lists support
// multi-valued attributes such as a Host's compatible-vault set.
class AttrValue {
 public:
  using Storage =
      std::variant<std::monostate, bool, std::int64_t, double, std::string,
                   AttrList>;

  AttrValue() = default;
  AttrValue(bool b) : v_(b) {}                          // NOLINT(runtime/explicit)
  AttrValue(std::int64_t i) : v_(i) {}                  // NOLINT(runtime/explicit)
  AttrValue(int i) : v_(static_cast<std::int64_t>(i)) {}  // NOLINT
  AttrValue(double d) : v_(d) {}                        // NOLINT(runtime/explicit)
  AttrValue(std::string s) : v_(std::move(s)) {}        // NOLINT(runtime/explicit)
  AttrValue(const char* s) : v_(std::string(s)) {}      // NOLINT(runtime/explicit)
  AttrValue(AttrList l) : v_(std::move(l)) {}           // NOLINT(runtime/explicit)

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(v_); }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_list() const { return std::holds_alternative<AttrList>(v_); }
  bool is_numeric() const { return is_int() || is_double(); }

  bool as_bool() const { return std::get<bool>(v_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_double() const {
    return is_int() ? static_cast<double>(as_int()) : std::get<double>(v_);
  }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const AttrList& as_list() const { return std::get<AttrList>(v_); }

  // Truthiness used by the query evaluator: null/false/0/"" are false.
  bool Truthy() const;

  // Renders the value for diagnostics; strings are quoted.
  std::string ToString() const;

  const Storage& storage() const { return v_; }

  friend bool operator==(const AttrValue& a, const AttrValue& b);
  friend bool operator!=(const AttrValue& a, const AttrValue& b) {
    return !(a == b);
  }

 private:
  Storage v_;
};

// Three-valued comparison used by the query engine.  Returns nullopt when
// the values are incomparable (e.g. string vs list); numeric values compare
// across int/double.
std::optional<int> CompareAttrValues(const AttrValue& a, const AttrValue& b);

// An attribute database: named attribute values with a monotone version
// counter so Collections can detect stale pushes.  Names are kept sorted so
// snapshots serialize deterministically.
class AttributeDatabase {
 public:
  void Set(const std::string& name, AttrValue value);
  // Returns nullptr if absent.
  const AttrValue* Get(const std::string& name) const;
  // Returns the value or `fallback` if absent.
  AttrValue GetOr(const std::string& name, AttrValue fallback) const;
  bool Has(const std::string& name) const;
  bool Erase(const std::string& name);
  void Clear();

  // Copies every attribute of `other` into this database (overwriting).
  void MergeFrom(const AttributeDatabase& other);

  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  // Bumped on every mutation; lets readers detect change cheaply.
  std::uint64_t version() const { return version_; }

  auto begin() const { return attrs_.begin(); }
  auto end() const { return attrs_.end(); }

  std::string ToString() const;

 private:
  std::map<std::string, AttrValue> attrs_;
  std::uint64_t version_ = 0;
};

}  // namespace legion
