// Deterministic random number generation.
//
// Every stochastic element of the simulation (background load, network
// jitter, random placement, arrival processes) draws from an explicitly
// seeded generator so that experiments are bit-for-bit reproducible.
// xoshiro256** with a splitmix64 seeder; no global RNG state.
#pragma once

#include <cstdint>
#include <vector>

namespace legion {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Bernoulli trial with probability p.
  bool Bernoulli(double p);

  // Exponential with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via polar Box-Muller (cached spare value).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Pareto-ish heavy tail: scale * U^{-1/alpha}, used for job sizes.
  double Pareto(double scale, double alpha);

  // Picks an index in [0, n); undefined for n == 0.
  std::size_t Index(std::size_t n) {
    return static_cast<std::size_t>(NextBelow(n));
  }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child stream (for per-actor generators).
  Rng Fork();

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_normal_ = false;
};

}  // namespace legion
