// Simulated time.  The discrete-event kernel advances a virtual clock in
// microsecond ticks; all latencies, reservation windows, trigger periods,
// and queue wait times are expressed in these units.
#pragma once

#include <cstdint>
#include <string>

namespace legion {

// A duration in simulated microseconds.
class Duration {
 public:
  constexpr Duration() = default;
  constexpr explicit Duration(std::int64_t micros) : micros_(micros) {}

  static constexpr Duration Micros(std::int64_t n) { return Duration(n); }
  static constexpr Duration Millis(std::int64_t n) { return Duration(n * 1000); }
  static constexpr Duration Seconds(double s) {
    return Duration(static_cast<std::int64_t>(s * 1e6));
  }
  static constexpr Duration Minutes(double m) { return Seconds(m * 60.0); }
  static constexpr Duration Hours(double h) { return Seconds(h * 3600.0); }
  static constexpr Duration Zero() { return Duration(0); }
  static constexpr Duration Infinite() { return Duration(INT64_MAX / 4); }

  constexpr std::int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }
  constexpr double millis() const { return static_cast<double>(micros_) / 1e3; }

  constexpr bool is_zero() const { return micros_ == 0; }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.micros_ + b.micros_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.micros_ - b.micros_);
  }
  friend constexpr Duration operator*(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.micros_) * k));
  }
  friend constexpr Duration operator*(double k, Duration a) { return a * k; }
  friend constexpr Duration operator/(Duration a, double k) {
    return Duration(static_cast<std::int64_t>(static_cast<double>(a.micros_) / k));
  }
  constexpr Duration& operator+=(Duration b) {
    micros_ += b.micros_;
    return *this;
  }
  friend constexpr auto operator<=>(Duration a, Duration b) = default;

  std::string ToString() const;

 private:
  std::int64_t micros_ = 0;
};

// An absolute point on the simulated clock.
class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t micros) : micros_(micros) {}

  static constexpr SimTime Zero() { return SimTime(0); }
  static constexpr SimTime Max() { return SimTime(INT64_MAX / 2); }

  constexpr std::int64_t micros() const { return micros_; }
  constexpr double seconds() const { return static_cast<double>(micros_) / 1e6; }

  friend constexpr SimTime operator+(SimTime t, Duration d) {
    return SimTime(t.micros_ + d.micros());
  }
  friend constexpr SimTime operator-(SimTime t, Duration d) {
    return SimTime(t.micros_ - d.micros());
  }
  friend constexpr Duration operator-(SimTime a, SimTime b) {
    return Duration(a.micros_ - b.micros_);
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;

  std::string ToString() const;

 private:
  std::int64_t micros_ = 0;
};

inline std::string Duration::ToString() const {
  return std::to_string(micros_) + "us";
}

inline std::string SimTime::ToString() const {
  return "t=" + std::to_string(micros_) + "us";
}

}  // namespace legion
