// Non-forgeable reservation tokens (paper section 3.1).
//
// Hosts grant reservations for future service as opaque tokens.  The only
// requirements the paper places on them are (a) they are non-forgeable and
// (b) the issuing Host recognizes them when presented with a service
// request; no other object needs to decode them.  Following the Legion 1.5
// implementation, our tokens also encode both the Host and the Vault to be
// used for execution.
//
// Non-forgeability is provided by a keyed 64-bit MAC over the token fields
// computed with the issuing host's secret.  This is adequate for a
// simulation (see DESIGN.md deviations); a deployment would use HMAC-SHA2.
#pragma once

#include <cstdint>
#include <string>

#include "base/loid.h"
#include "base/sim_time.h"

namespace legion {

// The two reservation type bits (paper table 2).
//   reuse: the token may be presented to multiple StartObject() calls.
//   share: the resource may be multiplexed; unshared allocates it whole.
struct ReservationType {
  bool share = true;
  bool reuse = false;

  // The paper's four named combinations.
  static constexpr ReservationType OneShotSpaceSharing() { return {false, false}; }
  static constexpr ReservationType ReusableSpaceSharing() { return {false, true}; }
  static constexpr ReservationType OneShotTimesharing() { return {true, false}; }
  static constexpr ReservationType ReusableTimesharing() { return {true, true}; }

  std::uint8_t bits() const {
    return static_cast<std::uint8_t>((share ? 1 : 0) | (reuse ? 2 : 0));
  }
  friend bool operator==(ReservationType a, ReservationType b) {
    return a.share == b.share && a.reuse == b.reuse;
  }
  std::string ToString() const;
};

// An opaque reservation token.  Carries the (host, vault) execution pair,
// the reservation window, the type bits, a serial number unique at the
// issuing host, and the MAC.
struct ReservationToken {
  Loid host;
  Loid vault;
  std::uint64_t serial = 0;
  SimTime start;
  Duration duration;
  Duration confirm_timeout;  // zero means no timeout
  ReservationType type;
  std::uint64_t mac = 0;

  bool valid() const { return host.valid() && serial != 0; }
  std::string ToString() const;

  friend bool operator==(const ReservationToken& a, const ReservationToken& b) {
    return a.host == b.host && a.serial == b.serial && a.mac == b.mac;
  }
};

// Mints and verifies tokens for one issuing host.  The secret never leaves
// the authority, so another object cannot construct a token that verifies.
class TokenAuthority {
 public:
  explicit TokenAuthority(std::uint64_t secret_seed);

  // Fills in serial and mac on the token.
  ReservationToken Issue(const Loid& host, const Loid& vault, SimTime start,
                         Duration duration, Duration confirm_timeout,
                         ReservationType type);

  // True iff the token was issued by this authority and is unmodified.
  bool Verify(const ReservationToken& token) const;

 private:
  std::uint64_t Mac(const ReservationToken& token) const;

  std::uint64_t secret_;
  std::uint64_t next_serial_ = 1;
};

}  // namespace legion
