// Legion Object Identifiers (LOIDs).
//
// Every Legion object -- class objects, hosts, vaults, user objects, and
// service objects -- is named by a location-independent LOID.  The real
// Legion system used variable-length binary identifiers; for the simulation
// we use a compact structured form that still captures what the RMI needs:
// the naming *space* (what kind of core object this is), the administrative
// *domain* that minted the identifier, and a serial number unique within
// (space, domain).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>

namespace legion {

// The naming space a LOID belongs to.  Mirrors the core-object taxonomy of
// figure 1 in the paper: class objects, Host objects, Vault objects, plain
// object instances, and service objects (Collections, Enactors, Schedulers,
// Monitors, daemons).
enum class LoidSpace : std::uint8_t {
  kInvalid = 0,
  kClass = 1,
  kHost = 2,
  kVault = 3,
  kObject = 4,
  kService = 5,
};

// Returns a short human-readable tag ("class", "host", ...) for a space.
const char* ToString(LoidSpace space);

// A Legion Object Identifier.  Value type; totally ordered and hashable so
// it can key maps in Collections, reservation tables, and schedules.
class Loid {
 public:
  constexpr Loid() = default;
  constexpr Loid(LoidSpace space, std::uint32_t domain, std::uint64_t serial)
      : space_(space), domain_(domain), serial_(serial) {}

  constexpr LoidSpace space() const { return space_; }
  constexpr std::uint32_t domain() const { return domain_; }
  constexpr std::uint64_t serial() const { return serial_; }

  constexpr bool valid() const { return space_ != LoidSpace::kInvalid; }

  // Dense 128-bit-ish packing used for hashing and serialization.
  constexpr std::uint64_t pack_hi() const {
    return (static_cast<std::uint64_t>(space_) << 32) | domain_;
  }
  constexpr std::uint64_t pack_lo() const { return serial_; }

  // Renders e.g. "host:3/17" (space:domain/serial).
  std::string ToString() const;

  friend constexpr bool operator==(const Loid& a, const Loid& b) {
    return a.space_ == b.space_ && a.domain_ == b.domain_ &&
           a.serial_ == b.serial_;
  }
  friend constexpr bool operator!=(const Loid& a, const Loid& b) {
    return !(a == b);
  }
  friend constexpr bool operator<(const Loid& a, const Loid& b) {
    if (a.space_ != b.space_) return a.space_ < b.space_;
    if (a.domain_ != b.domain_) return a.domain_ < b.domain_;
    return a.serial_ < b.serial_;
  }

 private:
  LoidSpace space_ = LoidSpace::kInvalid;
  std::uint32_t domain_ = 0;
  std::uint64_t serial_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Loid& loid);

// Parses the ToString() form ("host:3/17"); empty optional on bad input.
std::optional<Loid> ParseLoid(const std::string& text);

// Mints LOIDs with unique serials per (space, domain).  One LoidMinter is
// owned by the simulation kernel; objects request fresh names through it.
class LoidMinter {
 public:
  Loid Mint(LoidSpace space, std::uint32_t domain) {
    return Loid(space, domain, next_serial_++);
  }

 private:
  std::uint64_t next_serial_ = 1;
};

}  // namespace legion

namespace std {
template <>
struct hash<legion::Loid> {
  size_t operator()(const legion::Loid& l) const noexcept {
    // 64-bit mix of the packed halves (splitmix64 finalizer).
    std::uint64_t x = l.pack_hi() * 0x9e3779b97f4a7c15ULL ^ l.pack_lo();
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};
}  // namespace std
