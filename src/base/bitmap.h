// A small dynamic bitset.
//
// The schedule data structure (paper figure 5 / section 3.4) attaches a
// bitmap to each variant schedule -- one bit per object mapping -- so the
// Enactor can efficiently select the next variant to try and avoid
// reservation thrashing.  std::vector<bool> would do, but we also need
// popcount, intersection tests, and find-first, so we keep our own.
#pragma once

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

namespace legion {

class Bitmap {
 public:
  Bitmap() = default;
  explicit Bitmap(std::size_t nbits)
      : nbits_(nbits), words_((nbits + 63) / 64, 0) {}

  std::size_t size() const { return nbits_; }

  void Resize(std::size_t nbits) {
    nbits_ = nbits;
    words_.assign((nbits + 63) / 64, 0);
  }

  bool Test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1ULL;
  }
  void Set(std::size_t i) { words_[i / 64] |= (1ULL << (i % 64)); }
  void Clear(std::size_t i) { words_[i / 64] &= ~(1ULL << (i % 64)); }
  void Assign(std::size_t i, bool v) {
    if (v) Set(i); else Clear(i);
  }

  std::size_t Count() const {
    std::size_t n = 0;
    for (auto w : words_) n += static_cast<std::size_t>(std::popcount(w));
    return n;
  }

  bool Any() const {
    for (auto w : words_)
      if (w != 0) return true;
    return false;
  }
  bool None() const { return !Any(); }

  // True iff this bitmap and `other` share any set bit.
  bool Intersects(const Bitmap& other) const {
    std::size_t n = std::min(words_.size(), other.words_.size());
    for (std::size_t i = 0; i < n; ++i)
      if (words_[i] & other.words_[i]) return true;
    return false;
  }

  // True iff every set bit of `other` is also set here.
  bool Covers(const Bitmap& other) const {
    for (std::size_t i = 0; i < other.words_.size(); ++i) {
      std::uint64_t w = other.words_[i];
      std::uint64_t mine = i < words_.size() ? words_[i] : 0;
      if ((w & mine) != w) return false;
    }
    return true;
  }

  // Index of the first set bit, or size() if none.
  std::size_t FindFirst() const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] != 0) {
        return i * 64 + static_cast<std::size_t>(std::countr_zero(words_[i]));
      }
    }
    return nbits_;
  }

  friend bool operator==(const Bitmap& a, const Bitmap& b) {
    return a.nbits_ == b.nbits_ && a.words_ == b.words_;
  }

  std::string ToString() const {
    std::string s;
    s.reserve(nbits_);
    for (std::size_t i = 0; i < nbits_; ++i) s.push_back(Test(i) ? '1' : '0');
    return s;
  }

 private:
  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace legion
