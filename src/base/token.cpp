#include "base/token.h"

#include <sstream>

namespace legion {
namespace {

// Keyed FNV-1a-style 64-bit mix, strengthened with a final avalanche.
std::uint64_t MixInto(std::uint64_t h, std::uint64_t v) {
  h ^= v;
  h *= 0x100000001b3ULL;
  h ^= h >> 29;
  return h;
}

std::uint64_t Finalize(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

}  // namespace

std::string ReservationType::ToString() const {
  if (!share && !reuse) return "one-shot space sharing";
  if (!share && reuse) return "reusable space sharing";
  if (share && !reuse) return "one-shot timesharing";
  return "reusable timesharing";
}

std::string ReservationToken::ToString() const {
  std::ostringstream os;
  os << "token{#" << serial << " host=" << host.ToString()
     << " vault=" << vault.ToString() << " start=" << start.micros()
     << " dur=" << duration.micros() << " type=" << type.ToString() << '}';
  return os.str();
}

TokenAuthority::TokenAuthority(std::uint64_t secret_seed)
    : secret_(Finalize(secret_seed ^ 0xa0761d6478bd642fULL)) {}

std::uint64_t TokenAuthority::Mac(const ReservationToken& token) const {
  std::uint64_t h = secret_;
  h = MixInto(h, token.host.pack_hi());
  h = MixInto(h, token.host.pack_lo());
  h = MixInto(h, token.vault.pack_hi());
  h = MixInto(h, token.vault.pack_lo());
  h = MixInto(h, token.serial);
  h = MixInto(h, static_cast<std::uint64_t>(token.start.micros()));
  h = MixInto(h, static_cast<std::uint64_t>(token.duration.micros()));
  h = MixInto(h, static_cast<std::uint64_t>(token.confirm_timeout.micros()));
  h = MixInto(h, token.type.bits());
  return Finalize(h);
}

ReservationToken TokenAuthority::Issue(const Loid& host, const Loid& vault,
                                       SimTime start, Duration duration,
                                       Duration confirm_timeout,
                                       ReservationType type) {
  ReservationToken token;
  token.host = host;
  token.vault = vault;
  token.serial = next_serial_++;
  token.start = start;
  token.duration = duration;
  token.confirm_timeout = confirm_timeout;
  token.type = type;
  token.mac = Mac(token);
  return token;
}

bool TokenAuthority::Verify(const ReservationToken& token) const {
  return token.valid() && token.mac == Mac(token);
}

}  // namespace legion
