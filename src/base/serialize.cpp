#include "base/serialize.h"

namespace legion {
namespace {

// AttrValue wire tags.
enum : std::uint8_t {
  kTagNull = 0,
  kTagBool = 1,
  kTagInt = 2,
  kTagDouble = 3,
  kTagString = 4,
  kTagList = 5,
};

Status Truncated() {
  return Status::Error(ErrorCode::kMalformedSchedule, "truncated buffer");
}

}  // namespace

void ByteWriter::WriteU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::WriteDouble(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteString(const std::string& s) {
  WriteU32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::WriteLoid(const Loid& loid) {
  WriteU8(static_cast<std::uint8_t>(loid.space()));
  WriteU32(loid.domain());
  WriteU64(loid.serial());
}

void ByteWriter::WriteAttrValue(const AttrValue& v) {
  if (v.is_null()) {
    WriteU8(kTagNull);
  } else if (v.is_bool()) {
    WriteU8(kTagBool);
    WriteBool(v.as_bool());
  } else if (v.is_int()) {
    WriteU8(kTagInt);
    WriteI64(v.as_int());
  } else if (v.is_double()) {
    WriteU8(kTagDouble);
    WriteDouble(v.as_double());
  } else if (v.is_string()) {
    WriteU8(kTagString);
    WriteString(v.as_string());
  } else {
    WriteU8(kTagList);
    WriteU32(static_cast<std::uint32_t>(v.as_list().size()));
    for (const auto& e : v.as_list()) WriteAttrValue(e);
  }
}

void ByteWriter::WriteAttributes(const AttributeDatabase& db) {
  WriteU32(static_cast<std::uint32_t>(db.size()));
  for (const auto& [name, value] : db) {
    WriteString(name);
    WriteAttrValue(value);
  }
}

Result<std::uint8_t> ByteReader::ReadU8() {
  if (!Need(1)) return Truncated();
  return data_[pos_++];
}

Result<std::uint32_t> ByteReader::ReadU32() {
  if (!Need(4)) return Truncated();
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::uint64_t> ByteReader::ReadU64() {
  if (!Need(8)) return Truncated();
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return v;
}

Result<std::int64_t> ByteReader::ReadI64() {
  auto v = ReadU64();
  if (!v) return v.status();
  return static_cast<std::int64_t>(*v);
}

Result<bool> ByteReader::ReadBool() {
  auto v = ReadU8();
  if (!v) return v.status();
  return *v != 0;
}

Result<double> ByteReader::ReadDouble() {
  auto bits = ReadU64();
  if (!bits) return bits.status();
  double d;
  std::memcpy(&d, &*bits, sizeof(d));
  return d;
}

Result<std::string> ByteReader::ReadString() {
  auto len = ReadU32();
  if (!len) return len.status();
  if (!Need(*len)) return Truncated();
  std::string s(reinterpret_cast<const char*>(data_ + pos_), *len);
  pos_ += *len;
  return s;
}

Result<Loid> ByteReader::ReadLoid() {
  auto space = ReadU8();
  if (!space) return space.status();
  auto domain = ReadU32();
  if (!domain) return domain.status();
  auto serial = ReadU64();
  if (!serial) return serial.status();
  return Loid(static_cast<LoidSpace>(*space), *domain, *serial);
}

Result<Duration> ByteReader::ReadDuration() {
  auto v = ReadI64();
  if (!v) return v.status();
  return Duration(*v);
}

Result<SimTime> ByteReader::ReadTime() {
  auto v = ReadI64();
  if (!v) return v.status();
  return SimTime(*v);
}

Result<AttrValue> ByteReader::ReadAttrValue() {
  auto tag = ReadU8();
  if (!tag) return tag.status();
  switch (*tag) {
    case kTagNull:
      return AttrValue();
    case kTagBool: {
      auto v = ReadBool();
      if (!v) return v.status();
      return AttrValue(*v);
    }
    case kTagInt: {
      auto v = ReadI64();
      if (!v) return v.status();
      return AttrValue(*v);
    }
    case kTagDouble: {
      auto v = ReadDouble();
      if (!v) return v.status();
      return AttrValue(*v);
    }
    case kTagString: {
      auto v = ReadString();
      if (!v) return v.status();
      return AttrValue(std::move(*v));
    }
    case kTagList: {
      auto n = ReadU32();
      if (!n) return n.status();
      AttrList list;
      list.reserve(*n);
      for (std::uint32_t i = 0; i < *n; ++i) {
        auto e = ReadAttrValue();
        if (!e) return e.status();
        list.push_back(std::move(*e));
      }
      return AttrValue(std::move(list));
    }
    default:
      return Status::Error(ErrorCode::kMalformedSchedule, "bad attr tag");
  }
}

Result<AttributeDatabase> ByteReader::ReadAttributes() {
  auto n = ReadU32();
  if (!n) return n.status();
  AttributeDatabase db;
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto name = ReadString();
    if (!name) return name.status();
    auto value = ReadAttrValue();
    if (!value) return value.status();
    db.Set(*name, std::move(*value));
  }
  return db;
}

}  // namespace legion
