// Binary serialization for Object Persistent Representations (OPRs).
//
// Every Legion object can be shut down to a passive state stored in a
// Vault and later restarted, possibly on a different host (paper section
// 2.1); that passive state is the OPR.  ByteWriter/ByteReader provide the
// little bit of framing we need: varint-free fixed-width primitives,
// length-prefixed strings, LOIDs, and attribute databases.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "base/attributes.h"
#include "base/loid.h"
#include "base/result.h"
#include "base/sim_time.h"

namespace legion {

class ByteWriter {
 public:
  void WriteU8(std::uint8_t v) { buf_.push_back(v); }
  void WriteU32(std::uint32_t v);
  void WriteU64(std::uint64_t v);
  void WriteI64(std::int64_t v) { WriteU64(static_cast<std::uint64_t>(v)); }
  void WriteBool(bool v) { WriteU8(v ? 1 : 0); }
  void WriteDouble(double v);
  void WriteString(const std::string& s);
  void WriteLoid(const Loid& loid);
  void WriteDuration(Duration d) { WriteI64(d.micros()); }
  void WriteTime(SimTime t) { WriteI64(t.micros()); }
  void WriteAttrValue(const AttrValue& v);
  void WriteAttributes(const AttributeDatabase& db);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> Take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  std::vector<std::uint8_t> buf_;
};

class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : data_(bytes.data()), size_(bytes.size()) {}
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int64_t> ReadI64();
  Result<bool> ReadBool();
  Result<double> ReadDouble();
  Result<std::string> ReadString();
  Result<Loid> ReadLoid();
  Result<Duration> ReadDuration();
  Result<SimTime> ReadTime();
  Result<AttrValue> ReadAttrValue();
  Result<AttributeDatabase> ReadAttributes();

  std::size_t remaining() const { return size_ - pos_; }
  bool exhausted() const { return pos_ >= size_; }

 private:
  bool Need(std::size_t n) const { return pos_ + n <= size_; }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace legion
