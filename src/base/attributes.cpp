#include "base/attributes.h"

#include <cmath>
#include <sstream>

namespace legion {

bool AttrValue::Truthy() const {
  if (is_null()) return false;
  if (is_bool()) return as_bool();
  if (is_int()) return as_int() != 0;
  if (is_double()) return as_double() != 0.0;
  if (is_string()) return !as_string().empty();
  return !as_list().empty();
}

std::string AttrValue::ToString() const {
  std::ostringstream os;
  if (is_null()) {
    os << "null";
  } else if (is_bool()) {
    os << (as_bool() ? "true" : "false");
  } else if (is_int()) {
    os << as_int();
  } else if (is_double()) {
    os << as_double();
  } else if (is_string()) {
    os << '"' << as_string() << '"';
  } else {
    os << '[';
    bool first = true;
    for (const auto& e : as_list()) {
      if (!first) os << ", ";
      first = false;
      os << e.ToString();
    }
    os << ']';
  }
  return os.str();
}

bool operator==(const AttrValue& a, const AttrValue& b) {
  // Numeric equality crosses the int/double divide.
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return a.as_int() == b.as_int();
    return a.as_double() == b.as_double();
  }
  return a.v_ == b.v_;
}

std::optional<int> CompareAttrValues(const AttrValue& a, const AttrValue& b) {
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) {
      auto x = a.as_int(), y = b.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = a.as_double(), y = b.as_double();
    if (std::isnan(x) || std::isnan(y)) return std::nullopt;
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.is_string() && b.is_string()) {
    int c = a.as_string().compare(b.as_string());
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_bool() && b.is_bool()) {
    return static_cast<int>(a.as_bool()) - static_cast<int>(b.as_bool());
  }
  return std::nullopt;
}

void AttributeDatabase::Set(const std::string& name, AttrValue value) {
  attrs_[name] = std::move(value);
  ++version_;
}

const AttrValue* AttributeDatabase::Get(const std::string& name) const {
  auto it = attrs_.find(name);
  return it == attrs_.end() ? nullptr : &it->second;
}

AttrValue AttributeDatabase::GetOr(const std::string& name,
                                   AttrValue fallback) const {
  const AttrValue* v = Get(name);
  return v != nullptr ? *v : fallback;
}

bool AttributeDatabase::Has(const std::string& name) const {
  return attrs_.count(name) != 0;
}

bool AttributeDatabase::Erase(const std::string& name) {
  bool erased = attrs_.erase(name) != 0;
  if (erased) ++version_;
  return erased;
}

void AttributeDatabase::Clear() {
  attrs_.clear();
  ++version_;
}

void AttributeDatabase::MergeFrom(const AttributeDatabase& other) {
  for (const auto& [name, value] : other.attrs_) attrs_[name] = value;
  ++version_;
}

std::string AttributeDatabase::ToString() const {
  std::ostringstream os;
  os << '{';
  bool first = true;
  for (const auto& [name, value] : attrs_) {
    if (!first) os << ", ";
    first = false;
    os << name << '=' << value.ToString();
  }
  os << '}';
  return os.str();
}

}  // namespace legion
