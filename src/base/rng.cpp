#include "base/rng.h"

#include <cassert>
#include <cmath>

namespace legion {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless method.
  std::uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = Next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<std::int64_t>(
                  NextBelow(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  // 53 random bits into [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  assert(mean > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  if (has_spare_normal_) {
    has_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = Uniform(-1.0, 1.0);
    v = Uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_normal_ = true;
  return mean + stddev * u * factor;
}

double Rng::Pareto(double scale, double alpha) {
  assert(scale > 0.0 && alpha > 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u == 0.0);
  return scale * std::pow(u, -1.0 / alpha);
}

Rng Rng::Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

}  // namespace legion
