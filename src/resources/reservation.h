// Reservation bookkeeping (paper section 3.1, Table 2).
//
// "Host Object support for reservations is provided irrespective of
// underlying system support for reservations ... the standard Unix Host
// Object maintains a reservation table in the Host Object, because the
// Unix OS has no notion of reservations."
//
// The ReservationTable implements the full semantics of Legion
// reservations:
//   * a start time, a duration, and an optional timeout period for
//     instantaneous reservations awaiting confirmation;
//   * the two type bits (Table 2): `share` (resource may be multiplexed)
//     and `reuse` (token valid for multiple StartObject calls);
//   * capacity-aware granting: an unshared reservation takes the whole
//     resource for its window; shared reservations multiplex CPU and
//     memory up to the host's capacity.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/loid.h"
#include "base/result.h"
#include "base/sim_time.h"
#include "base/token.h"

namespace legion {

enum class ReservationState {
  kPending,    // granted, awaiting confirmation (instantaneous + timeout)
  kConfirmed,  // confirmed by a StartObject presenting the token
  kCancelled,
  kExpired,    // confirmation timeout elapsed or window passed
  kConsumed,   // one-shot token used up
};

const char* ToString(ReservationState state);

// What a host remembers about one granted reservation.
struct ReservationRecord {
  ReservationToken token;
  ReservationState state = ReservationState::kPending;
  Loid requester;
  std::size_t memory_mb = 0;
  double cpu_fraction = 1.0;
  std::uint32_t uses = 0;  // StartObject presentations so far
};

// Host capacity the table grants against.
struct HostCapacity {
  std::uint32_t cpus = 1;
  std::size_t memory_mb = 512;
  double oversubscription = 1.0;  // >1 allows timesharing beyond cpus
};

class ReservationTable {
 public:
  explicit ReservationTable(HostCapacity capacity) : capacity_(capacity) {}

  // Attempts to admit a reservation with the given window/type/demand at
  // time `now`.  On success the record is stored keyed by token serial.
  // Grant rules:
  //   * unshared (space sharing): the window must not overlap any other
  //     live reservation;
  //   * shared (timesharing): the sum of cpu fractions (and memory) of
  //     overlapping live reservations must stay within capacity.
  Status Admit(const ReservationToken& token, const Loid& requester,
               std::size_t memory_mb, double cpu_fraction, SimTime now);

  // Atomic batch admission (DESIGN.md §11): all slots are evaluated
  // against one consistent snapshot at `now`, in order, with each
  // admitted slot's demand visible to its successors -- exactly the
  // state a sequence of back-to-back Admit calls would see, so batched
  // and unbatched negotiation grant identical sets.  Returns one Status
  // per slot: every requested window is either durably admitted or has
  // its failure reported; the table is never left half-updated.
  struct BatchAdmitSlot {
    ReservationToken token;
    Loid requester;
    std::size_t memory_mb = 0;
    double cpu_fraction = 1.0;
  };
  std::vector<Status> AdmitBatch(const std::vector<BatchAdmitSlot>& slots,
                                 SimTime now);

  // check_reservation(): true iff the token names a live (pending or
  // confirmed) reservation whose window has not passed.
  bool Check(const ReservationToken& token, SimTime now);

  // cancel_reservation(): returns false for unknown/already-dead tokens.
  // Time-aware: a reservation whose window (or confirmation timeout) has
  // already passed at `now` is expired, not cancellable -- the boundary
  // instant now == start + duration classifies identically here and in
  // Check/Redeem/ExpireStale.
  bool Cancel(const ReservationToken& token, SimTime now);

  // Presents the token with a StartObject call (implicit confirmation).
  // Enforces the reuse bit: a one-shot token is consumed by its first use.
  // Fails if the token is unknown, dead, or outside its window.
  Status Redeem(const ReservationToken& token, SimTime now);

  // Marks the job done for a one-shot timesharing reservation ("a typical
  // timesharing system that expires a reservation when the job is done").
  void OnJobDone(const ReservationToken& token);

  // Expires pending reservations whose confirmation timeout elapsed and
  // live reservations whose window fully passed.  Returns # expired.
  std::size_t ExpireStale(SimTime now);

  const ReservationRecord* Find(std::uint64_t serial) const;
  std::size_t live_count() const;
  std::size_t size() const { return records_.size(); }

  // Aggregate demand admitted for the instant `t` (live, shared).
  double SharedCpuLoadAt(SimTime t) const;

  // Statistics for experiments.
  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t cancelled() const { return cancelled_; }
  std::uint64_t expired() const { return expired_; }

 private:
  static bool Live(const ReservationRecord& r) {
    return r.state == ReservationState::kPending ||
           r.state == ReservationState::kConfirmed;
  }
  static bool Overlaps(const ReservationToken& a, const ReservationToken& b) {
    SimTime a_end = a.start + a.duration;
    SimTime b_end = b.start + b.duration;
    return a.start < b_end && b.start < a_end;
  }

  HostCapacity capacity_;
  std::unordered_map<std::uint64_t, ReservationRecord> records_;
  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t expired_ = 0;
};

}  // namespace legion
