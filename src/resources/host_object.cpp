#include "resources/host_object.h"

#include <algorithm>
#include <cmath>

namespace legion {

namespace {
// Well-known serial for the HostClass core object (figure 1).
constexpr std::uint64_t kHostClassSerial = 2;
}  // namespace

HostObject::HostObject(SimKernel* kernel, Loid loid, HostSpec spec,
                       std::uint64_t secret_seed)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, spec.domain, kHostClassSerial)),
      spec_(std::move(spec)),
      authority_(secret_seed),
      table_(HostCapacity{spec_.cpus, spec_.memory_mb, spec_.oversubscription}),
      policy_(std::make_unique<AcceptAllPolicy>()),
      load_model_(spec_.load, Rng(secret_seed ^ 0x5bd1e995u)) {
  kernel->network().RegisterEndpoint(loid, spec_.domain);
  // Hosts are standing infrastructure: born active on themselves.
  (void)Activate(loid, Loid());
  RepopulateAttributes();
}

// ---- Reservation management -------------------------------------------------

void HostObject::MakeReservation(const ReservationRequest& request,
                                 Callback<ReservationToken> done) {
  const SimTime now = kernel()->Now();
  table_.ExpireStale(now);

  // Local autonomy: the placement policy has final authority.
  Status permit = policy_->Permit(request, attributes(), now);
  if (!permit.ok()) {
    done(permit);
    return;
  }
  // "When asked for a reservation, the Host is responsible for ensuring
  // that the vault is reachable" (paper 3.1).  Vaults on the host's
  // compatibility list are known reachable; any other vault is probed
  // live (vault_OK) before the host grants.
  if (!request.vault.valid()) {
    done(Status::Error(ErrorCode::kInvalidArgument,
                       "reservation request names no vault"));
    return;
  }
  const bool known_reachable =
      std::find(compatible_vaults_.begin(), compatible_vaults_.end(),
                request.vault) != compatible_vaults_.end();
  if (known_reachable) {
    GrantReservation(request, std::move(done));
    return;
  }
  VaultOk(request.vault,
          [this, request, done = std::move(done)](Result<bool> ok) mutable {
            if (!ok.ok() || !*ok) {
              done(Status::Error(ErrorCode::kRefused,
                                 "vault not reachable from this host"));
              return;
            }
            GrantReservation(request, std::move(done));
          });
}

void HostObject::MakeReservationBatch(const ReservationBatchRequest& request,
                                      Callback<ReservationBatchReply> done) {
  const SimTime now = kernel()->Now();
  table_.ExpireStale(now);

  // At-most-once admission: a batch whose reply was lost comes back under
  // the same id; replay the recorded reply instead of admitting twice.
  const std::string dedup_key =
      request.requester.ToString() + "#" + std::to_string(request.batch_id);
  if (request.batch_id != 0) {
    EvictStaleBatchReplies(now);
    auto cached = completed_batches_.find(dedup_key);
    if (cached != completed_batches_.end()) {
      ++batch_replay_hits_;
      done(cached->second);
      return;
    }
    // A flagged retransmission that misses the cache re-admits blind:
    // either the original request never arrived (benign) or its reply
    // aged out of the cache (a possible double-admit).  Count it so the
    // failure mode is observable instead of silent.
    if (request.retransmit) ++batch_replay_misses_;
  }

  auto batch = std::make_shared<PendingBatch>();
  batch->request = request;
  batch->done = std::move(done);
  batch->outcomes.resize(request.slots.size());
  batch->admissible.assign(request.slots.size(), false);

  // Per-slot screening, same order and same rules as MakeReservation:
  // local policy first, then vault validity, then vault reachability.
  // Unknown vaults are probed live (one probe per distinct vault) before
  // anything is admitted.  The machine-specific veto (PreAdmitSlot) is
  // deliberately NOT screened here: it runs inside FinishBatch, per
  // slot, interleaved with admission, so it sees predecessors' grants.
  std::unordered_map<Loid, std::vector<std::size_t>> probe_slots;
  for (std::size_t i = 0; i < request.slots.size(); ++i) {
    const ReservationRequest& slot = request.slots[i].request;
    batch->outcomes[i].index = request.slots[i].index;
    Status permit = policy_->Permit(slot, attributes(), now);
    if (!permit.ok()) {
      batch->outcomes[i].status = permit;
      continue;
    }
    if (!slot.vault.valid()) {
      batch->outcomes[i].status = Status::Error(
          ErrorCode::kInvalidArgument, "reservation request names no vault");
      continue;
    }
    const bool known_reachable =
        std::find(compatible_vaults_.begin(), compatible_vaults_.end(),
                  slot.vault) != compatible_vaults_.end();
    if (known_reachable) {
      batch->admissible[i] = true;
    } else {
      probe_slots[slot.vault].push_back(i);
    }
  }

  if (probe_slots.empty()) {
    FinishBatch(batch);
    return;
  }
  batch->pending_probes = probe_slots.size();
  for (auto& [vault, indices] : probe_slots) {
    VaultOk(vault, [this, batch, indices = indices](Result<bool> ok) {
      const bool reachable = ok.ok() && *ok;
      for (std::size_t i : indices) {
        if (reachable) {
          batch->admissible[i] = true;
        } else {
          batch->outcomes[i].status = Status::Error(
              ErrorCode::kRefused, "vault not reachable from this host");
        }
      }
      if (--batch->pending_probes == 0) FinishBatch(batch);
    });
  }
}

void HostObject::FinishBatch(const std::shared_ptr<PendingBatch>& batch) {
  const SimTime now = kernel()->Now();
  // Run each admissible slot through veto -> issue -> admit -> grant in
  // slot order (DESIGN.md §11).  The interleaving matters: PreAdmitSlot
  // and OnSlotGranted bracket every admission, so a reservation-aware
  // queue vetoes slot i+1 against slot i's already-registered window --
  // exactly the state the sequential MakeReservation path would show it.
  // Two windows that individually fit but jointly exceed the queue's
  // capacity admit one and refuse the other, never both.  A vetoed slot
  // burns no serial (the sequential path vetoes before issuing); a slot
  // the table rejects burns its serial exactly as GrantReservation does.
  table_.ExpireStale(now);
  for (std::size_t i = 0; i < batch->request.slots.size(); ++i) {
    if (!batch->admissible[i]) continue;
    const ReservationRequest& slot = batch->request.slots[i].request;
    Status veto = PreAdmitSlot(slot, now);
    if (!veto.ok()) {
      batch->outcomes[i].status = veto;
      continue;
    }
    ReservationToken token = authority_.Issue(
        loid(), slot.vault, std::max(slot.start, now), slot.duration,
        slot.confirm_timeout, slot.type);
    Status admitted = table_.Admit(token, slot.requester, slot.memory_mb,
                                   slot.cpu_fraction, now);
    batch->outcomes[i].status = admitted;
    if (admitted.ok()) {
      batch->outcomes[i].token = token;
      OnSlotGranted(token, slot.cpu_fraction);
    }
  }
  ReservationBatchReply reply;
  reply.outcomes = std::move(batch->outcomes);
  if (batch->request.batch_id != 0) {
    RememberBatchReply(batch->request.requester.ToString() + "#" +
                           std::to_string(batch->request.batch_id),
                       reply);
  }
  batch->done(std::move(reply));
}

void HostObject::RememberBatchReply(const std::string& key,
                                    ReservationBatchReply reply) {
  const SimTime now = kernel()->Now();
  EvictStaleBatchReplies(now);
  if (completed_batches_.count(key) == 0) {
    completed_batch_order_.emplace_back(key, now);
  }
  completed_batches_[key] = std::move(reply);
}

void HostObject::EvictStaleBatchReplies(SimTime now) {
  // Age-bounded, not count-bounded: a retransmission can only arrive
  // within its sender's retry horizon, so anything older than the
  // retention window is safe to drop -- no matter how many requesters
  // are talking to this host in the meantime.
  while (!completed_batch_order_.empty() &&
         now - completed_batch_order_.front().second >
             spec_.batch_replay_retention) {
    completed_batches_.erase(completed_batch_order_.front().first);
    completed_batch_order_.pop_front();
  }
}

void HostObject::GrantReservation(const ReservationRequest& request,
                                  Callback<ReservationToken> done) {
  const SimTime now = kernel()->Now();
  SimTime start = std::max(request.start, now);
  ReservationToken token =
      authority_.Issue(loid(), request.vault, start, request.duration,
                       request.confirm_timeout, request.type);
  Status admitted = table_.Admit(token, request.requester, request.memory_mb,
                                 request.cpu_fraction, now);
  if (!admitted.ok()) {
    done(admitted);
    return;
  }
  done(token);
}

void HostObject::CheckReservation(const ReservationToken& token,
                                  Callback<bool> done) {
  if (!authority_.Verify(token)) {
    done(false);
    return;
  }
  done(table_.Check(token, kernel()->Now()));
}

void HostObject::CancelReservation(const ReservationToken& token,
                                   Callback<bool> done) {
  if (!authority_.Verify(token)) {
    done(false);
    return;
  }
  done(table_.Cancel(token, kernel()->Now()));
}

// ---- Process management -----------------------------------------------------

Status HostObject::AdmitWithoutReservation(const StartObjectRequest& request) {
  // Synthesize the reservation-shaped request the policy wants to see.
  ReservationRequest probe;
  probe.vault = request.vault;
  probe.start = kernel()->Now();
  probe.duration = Duration::Hours(1);
  probe.requester = request.class_loid;
  probe.requester_domain = request.class_loid.domain();
  probe.memory_mb = request.memory_mb;
  probe.cpu_fraction = request.cpu_fraction;
  Status permit = policy_->Permit(probe, attributes(), kernel()->Now());
  if (!permit.ok()) return permit;

  const double new_cpu =
      request.cpu_fraction * static_cast<double>(request.instances.size());
  const double cpu_capacity =
      static_cast<double>(spec_.cpus) * spec_.oversubscription;
  if (RunningCpuDemand() + new_cpu > cpu_capacity + 1e-9) {
    return Status::Error(ErrorCode::kNoResources, "CPUs fully committed");
  }
  const std::size_t new_mem = request.memory_mb * request.instances.size();
  if (RunningMemoryDemand() + new_mem > spec_.memory_mb) {
    return Status::Error(ErrorCode::kNoResources, "memory fully committed");
  }
  return Status::Ok();
}

void HostObject::StartObject(const StartObjectRequest& request,
                             Callback<std::vector<Loid>> done) {
  const SimTime now = kernel()->Now();
  if (request.instances.empty()) {
    done(Status::Error(ErrorCode::kInvalidArgument, "no instances requested"));
    return;
  }
  // An explicitly selected implementation must be executable here.
  if (!request.implementation.empty() &&
      request.implementation != spec_.arch + "/" + spec_.os_name) {
    ++starts_refused_;
    done(Status::Error(ErrorCode::kRefused,
                       "implementation '" + request.implementation +
                           "' does not run on " + spec_.arch + "/" +
                           spec_.os_name));
    return;
  }
  std::uint64_t reservation_serial = 0;
  if (request.token.valid()) {
    // The token must be one we issued, unmodified, live, and in-window.
    if (!authority_.Verify(request.token)) {
      ++starts_refused_;
      done(Status::Error(ErrorCode::kInvalidToken,
                         "token not issued by this host"));
      return;
    }
    if (request.vault.valid() && request.vault != request.token.vault) {
      ++starts_refused_;
      done(Status::Error(ErrorCode::kInvalidArgument,
                         "vault differs from the reserved vault"));
      return;
    }
    Status redeemed = table_.Redeem(request.token, now);
    if (!redeemed.ok()) {
      ++starts_refused_;
      done(redeemed);
      return;
    }
    reservation_serial = request.token.serial;
  } else {
    Status admitted = AdmitWithoutReservation(request);
    if (!admitted.ok()) {
      ++starts_refused_;
      done(admitted);
      return;
    }
  }
  LaunchObjects(request, reservation_serial, std::move(done));
}

void HostObject::LaunchObjects(const StartObjectRequest& request,
                               std::uint64_t reservation_serial,
                               Callback<std::vector<Loid>> done) {
  // Fetch the implementation binary before launch.  With a cache wired,
  // only the first (cold) start pays the transfer; without one, every
  // start pulls the binary from the class object -- the performance gap
  // implementation-cache service objects exist to close (paper §2).
  if (!request.implementation.empty()) {
    auto proceed = [this, request, reservation_serial,
                    done = std::move(done)](Result<bool> fetched) mutable {
      if (!fetched.ok() || !*fetched) {
        ++starts_refused_;
        done(Status::Error(ErrorCode::kUnavailable,
                           "implementation binary unavailable"));
        return;
      }
      LaunchPrepared(request, reservation_serial, std::move(done));
    };
    if (impl_cache_.valid()) {
      CallOn<bool, BinaryProvider>(
          kernel(), loid(), impl_cache_, kSmallMessage, kSmallMessage,
          Duration::Minutes(10),
          [request](BinaryProvider& cache, Callback<bool> reply) {
            cache.EnsureBinary(request.class_loid, request.implementation,
                               request.binary_bytes, std::move(reply));
          },
          std::move(proceed));
    } else {
      // Direct pull from the class: the reply carries the whole binary.
      kernel()->AsyncCall<bool>(
          loid(), request.class_loid, kSmallMessage, request.binary_bytes,
          Duration::Minutes(10),
          [kernel = kernel(),
           class_loid = request.class_loid](Callback<bool> reply) {
            reply(kernel->FindActor(class_loid) != nullptr);
          },
          std::move(proceed));
    }
    return;
  }
  LaunchPrepared(request, reservation_serial, std::move(done));
}

void HostObject::LaunchPrepared(const StartObjectRequest& request,
                                std::uint64_t reservation_serial,
                                Callback<std::vector<Loid>> done) {
  auto created = CreateInstanceObjects(request);
  if (!created.ok()) {
    ++starts_refused_;
    done(created.status());
    return;
  }
  const SimTime now = kernel()->Now();
  if (reservation_serial != 0 && request.token.start > now) {
    // The reservation window opens later: acknowledge the placement now
    // and bring the objects up when the window starts.
    std::vector<Loid> instances = *created;
    kernel()->ScheduleAt(request.token.start,
                         [this, request, reservation_serial] {
                           ActivateCreated(request, reservation_serial);
                         });
    done(std::move(instances));
    return;
  }
  ActivateCreated(request, reservation_serial);
  done(std::move(*created));
}

Result<std::vector<Loid>> HostObject::CreateInstanceObjects(
    const StartObjectRequest& request) {
  if (!request.factory) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "start request carries no object factory");
  }
  std::vector<Loid> created;
  created.reserve(request.instances.size());
  for (const Loid& instance : request.instances) {
    kernel()->AdoptActor(request.factory(kernel(), instance));
    created.push_back(instance);
  }
  return created;
}

void HostObject::ActivateCreated(const StartObjectRequest& request,
                                 std::uint64_t reservation_serial) {
  const Loid vault =
      request.vault.valid() ? request.vault : request.token.vault;
  for (const Loid& instance : request.instances) {
    auto* actor = kernel()->FindActor(instance);
    auto* object = dynamic_cast<LegionObject*>(actor);
    if (object == nullptr) continue;  // killed before the window opened
    Status activated = object->Activate(loid(), vault);
    if (!activated.ok()) continue;
    // The instance remembers its own demand so it can be readmitted
    // after migration or reactivation.
    object->mutable_attributes().Set(
        "memory_mb", static_cast<std::int64_t>(request.memory_mb));
    object->mutable_attributes().Set("cpu_fraction", request.cpu_fraction);
    RunningObject running;
    running.object = instance;
    running.vault = vault;
    running.memory_mb = request.memory_mb;
    running.cpu_fraction = request.cpu_fraction;
    running.started = kernel()->Now();
    running.reservation_serial = reservation_serial;
    running_[instance] = running;
    ++objects_started_;
  }
  RepopulateAttributes();
}

bool HostObject::ReleaseObject(const Loid& object, bool kill) {
  auto it = running_.find(object);
  if (it == running_.end()) return false;
  const RunningObject released = it->second;
  running_.erase(it);
  if (released.reservation_serial != 0) {
    const ReservationRecord* record =
        table_.Find(released.reservation_serial);
    if (record != nullptr) table_.OnJobDone(record->token);
  }
  if (kill) {
    if (auto* actor = kernel()->FindActor(object)) {
      if (auto* legion_object = dynamic_cast<LegionObject*>(actor)) {
        legion_object->MarkDead();
      }
      kernel()->RemoveActor(object);
    }
  }
  OnObjectReleased(released);
  RepopulateAttributes();
  return true;
}

void HostObject::KillObject(const Loid& object, Callback<bool> done) {
  done(ReleaseObject(object, /*kill=*/true));
}

void HostObject::FinishObject(const Loid& object) {
  ReleaseObject(object, /*kill=*/true);
}

void HostObject::DeactivateObject(const Loid& object, Callback<bool> done) {
  auto it = running_.find(object);
  if (it == running_.end()) {
    done(Status::Error(ErrorCode::kNotFound, "object not running here"));
    return;
  }
  auto* actor = kernel()->FindActor(object);
  auto* legion_object = dynamic_cast<LegionObject*>(actor);
  if (legion_object == nullptr) {
    running_.erase(it);
    done(Status::Error(ErrorCode::kInternal, "running object vanished"));
    return;
  }
  const Loid vault = it->second.vault;
  Opr opr = legion_object->SaveState();
  const std::size_t opr_bytes = opr.SizeBytes();
  CallOn<bool, VaultInterface>(
      kernel(), loid(), vault, opr_bytes, kSmallMessage, kDefaultRpcTimeout,
      [opr](VaultInterface& v, Callback<bool> reply) {
        v.StoreOpr(opr, std::move(reply));
      },
      [this, object, done = std::move(done)](Result<bool> stored) {
        if (!stored.ok() || !*stored) {
          done(Status::Error(ErrorCode::kUnavailable,
                             "vault refused the OPR"));
          return;
        }
        auto* actor = kernel()->FindActor(object);
        if (auto* legion_object = dynamic_cast<LegionObject*>(actor)) {
          (void)legion_object->Deactivate();
        }
        ReleaseObject(object, /*kill=*/false);
        done(true);
      });
}

void HostObject::ReactivateObject(const Loid& object, const Loid& vault,
                                  Callback<bool> done) {
  CallOn<Opr, VaultInterface>(
      kernel(), loid(), vault, kSmallMessage, kLargeMessage,
      kDefaultRpcTimeout,
      [object](VaultInterface& v, Callback<Opr> reply) {
        v.FetchOpr(object, std::move(reply));
      },
      [this, object, vault, done = std::move(done)](Result<Opr> opr) {
        if (!opr.ok()) {
          done(opr.status());
          return;
        }
        auto* legion_object =
            dynamic_cast<LegionObject*>(kernel()->FindActor(object));
        if (legion_object == nullptr || legion_object->state() ==
                                            ObjectState::kDead) {
          done(Status::Error(ErrorCode::kUnavailable,
                             "object cannot be reactivated"));
          return;
        }
        Status restored = legion_object->RestoreState(*opr);
        if (!restored.ok()) {
          done(restored);
          return;
        }
        const std::size_t memory_mb = static_cast<std::size_t>(
            legion_object->attributes().GetOr("memory_mb", AttrValue(32))
                .as_int());
        const double cpu_fraction =
            legion_object->attributes()
                .GetOr("cpu_fraction", AttrValue(1.0))
                .as_double();
        // Capacity admission for the returning object.
        const double cpu_capacity =
            static_cast<double>(spec_.cpus) * spec_.oversubscription;
        if (RunningCpuDemand() + cpu_fraction > cpu_capacity + 1e-9 ||
            RunningMemoryDemand() + memory_mb > spec_.memory_mb) {
          done(Status::Error(ErrorCode::kNoResources,
                             "no capacity for reactivation"));
          return;
        }
        Status activated = legion_object->Activate(loid(), vault);
        if (!activated.ok()) {
          done(activated);
          return;
        }
        RunningObject running;
        running.object = object;
        running.vault = vault;
        running.memory_mb = memory_mb;
        running.cpu_fraction = cpu_fraction;
        running.started = kernel()->Now();
        running_[object] = running;
        ++objects_started_;
        RepopulateAttributes();
        done(true);
      });
}

// ---- Information reporting --------------------------------------------------

void HostObject::GetCompatibleVaults(Callback<std::vector<Loid>> done) {
  done(compatible_vaults_);
}

void HostObject::VaultOk(const Loid& vault, Callback<bool> done) {
  CallOn<bool, VaultInterface>(
      kernel(), loid(), vault, kSmallMessage, kSmallMessage,
      kDefaultRpcTimeout,
      [domain = spec_.domain, arch = spec_.arch](VaultInterface& v,
                                                 Callback<bool> reply) {
        v.Probe(domain, arch, std::move(reply));
      },
      [done = std::move(done)](Result<bool> r) {
        done(r.ok() && *r);
      });
}

// ---- Configuration ------------------------------------------------------------

void HostObject::AddCompatibleVault(const Loid& vault) {
  compatible_vaults_.push_back(vault);
  RepopulateAttributes();
}

void HostObject::SetPolicy(std::unique_ptr<PlacementPolicy> policy) {
  policy_ = std::move(policy);
  RepopulateAttributes();
}

void HostObject::AddCollection(const Loid& collection) {
  collections_.push_back(collection);
}

void HostObject::StartReassessment() {
  if (reassess_timer_ != 0) return;
  reassess_timer_ = kernel()->SchedulePeriodic(spec_.reassess_period,
                                               [this] { ReassessState(); });
}

void HostObject::StopReassessment() {
  if (reassess_timer_ == 0) return;
  kernel()->CancelPeriodic(reassess_timer_);
  reassess_timer_ = 0;
}

// ---- State ----------------------------------------------------------------------

double HostObject::RunningCpuDemand() const {
  double demand = 0.0;
  for (const auto& [loid, running] : running_) demand += running.cpu_fraction;
  return demand;
}

std::size_t HostObject::RunningMemoryDemand() const {
  std::size_t demand = 0;
  for (const auto& [loid, running] : running_) demand += running.memory_mb;
  return demand;
}

double HostObject::CurrentLoad() const {
  return load_model_.current() +
         RunningCpuDemand() / static_cast<double>(spec_.cpus);
}

double HostObject::EffectiveSpeedPerObject() const {
  const double cpus = static_cast<double>(spec_.cpus);
  const double total_demand = load_model_.current() * cpus + RunningCpuDemand();
  if (total_demand <= cpus) return spec_.speed_mips;
  return spec_.speed_mips * cpus / total_demand;
}

void HostObject::SpikeLoad(double level) {
  load_model_.Spike(level);
  // Reflect the spike immediately (no model step, which would decay it).
  RepopulateAttributes();
  EvaluateTriggers();
  PushToCollections();
}

void HostObject::ReassessState() {
  table_.ExpireStale(kernel()->Now());
  load_model_.Step();
  RepopulateAttributes();
  EvaluateTriggers();
  PushToCollections();
}

void HostObject::RepopulateAttributes() {
  AttributeDatabase& attrs = mutable_attributes();
  attrs.Set("host_name", spec_.name);
  attrs.Set("host_arch", spec_.arch);
  attrs.Set("host_os_name", spec_.os_name);
  attrs.Set("host_os_version", spec_.os_version);
  attrs.Set("host_cpus", static_cast<std::int64_t>(spec_.cpus));
  attrs.Set("host_speed_mips", spec_.speed_mips);
  attrs.Set("host_memory_mb", static_cast<std::int64_t>(spec_.memory_mb));
  const std::size_t used = RunningMemoryDemand();
  attrs.Set("host_available_memory_mb",
            static_cast<std::int64_t>(
                spec_.memory_mb > used ? spec_.memory_mb - used : 0));
  attrs.Set("host_cost_per_cpu_second", spec_.cost_per_cpu_second);
  attrs.Set("host_domain", static_cast<std::int64_t>(spec_.domain));
  attrs.Set("host_kind", HostKind());
  attrs.Set("host_load", CurrentLoad());
  attrs.Set("host_running_objects",
            static_cast<std::int64_t>(running_.size()));
  attrs.Set("host_live_reservations",
            static_cast<std::int64_t>(table_.live_count()));
  attrs.Set("host_policy", policy_->Describe());
  AttrList vaults;
  for (const Loid& vault : compatible_vaults_) {
    vaults.push_back(AttrValue(vault.ToString()));
  }
  attrs.Set("compatible_vaults", AttrValue(std::move(vaults)));
  ExtendAttributes(attrs);
}

void HostObject::PushToCollections() {
  if (collections_.empty()) return;
  const bool join = !joined_collections_;
  joined_collections_ = true;
  for (const Loid& collection : collections_) {
    AttributeDatabase snapshot = attributes();
    CallOn<bool, CollectionSink>(
        kernel(), loid(), collection, kMediumMessage, kSmallMessage,
        kDefaultRpcTimeout,
        [join, member = loid(), snapshot](CollectionSink& sink,
                                          Callback<bool> reply) {
          if (join) {
            sink.JoinCollection(member, snapshot, std::move(reply));
          } else {
            sink.UpdateCollectionEntry(member, snapshot, std::move(reply));
          }
        },
        [](Result<bool>) { /* push is fire-and-forget */ });
  }
}

}  // namespace legion
