// Host Objects (paper sections 2.1 and 3.1).
//
// "Host Objects encapsulate machine capabilities (e.g., a processor and
// its associated memory) and are responsible for instantiating objects on
// the processor.  In this way, the Host acts as an arbiter for the
// machine's capabilities."
//
// HostObject implements the full Table 1 resource-management interface
// (reservation management, process management, information reporting),
// grants the four reservation types of Table 2 through its
// ReservationTable, enforces a pluggable local placement policy (the
// autonomy guarantee), reassesses its state periodically and repopulates
// its attribute database, pushes updates into Collections, and raises RGE
// trigger events (e.g. "load above threshold") that the Monitor can hook.
//
// This base class behaves like the paper's "standard Unix Host Object":
// objects start immediately and the reservation table lives in the Host
// because the underlying OS has no notion of reservations.  Subclasses
// model SMPs and batch-queue-fronted machines.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.h"
#include "objects/interfaces.h"
#include "objects/legion_object.h"
#include "resources/load_model.h"
#include "resources/placement_policy.h"
#include "resources/reservation.h"

namespace legion {

// Static machine description.
struct HostSpec {
  std::string name = "host";
  std::string arch = "x86";
  std::string os_name = "Linux";
  std::string os_version = "2.2";
  std::uint32_t cpus = 1;
  double speed_mips = 100.0;       // per-CPU compute rate
  std::size_t memory_mb = 512;
  double cost_per_cpu_second = 0.0;
  std::uint32_t domain = 0;
  double oversubscription = 4.0;   // timesharing headroom
  Duration reassess_period = Duration::Seconds(10);
  // How long a completed batch reply stays replayable for retransmitted
  // batch ids.  Must comfortably exceed any requester's retry horizon
  // (rpc timeout x attempts + backoff); an evicted entry makes a
  // retransmission re-admit, which is exactly what the cache prevents.
  Duration batch_replay_retention = Duration::Minutes(10);
  LoadModelParams load;
};

class HostObject : public LegionObject, public HostInterface {
 public:
  HostObject(SimKernel* kernel, Loid loid, HostSpec spec,
             std::uint64_t secret_seed);

  const HostSpec& spec() const { return spec_; }
  std::string DebugName() const override { return "host " + spec_.name; }

  // ---- HostInterface (Table 1) -------------------------------------------
  void MakeReservation(const ReservationRequest& request,
                       Callback<ReservationToken> done) override;
  void MakeReservationBatch(const ReservationBatchRequest& request,
                            Callback<ReservationBatchReply> done) override;
  void CheckReservation(const ReservationToken& token,
                        Callback<bool> done) override;
  void CancelReservation(const ReservationToken& token,
                         Callback<bool> done) override;
  void StartObject(const StartObjectRequest& request,
                   Callback<std::vector<Loid>> done) override;
  void KillObject(const Loid& object, Callback<bool> done) override;
  void DeactivateObject(const Loid& object, Callback<bool> done) override;
  void GetCompatibleVaults(Callback<std::vector<Loid>> done) override;
  void VaultOk(const Loid& vault, Callback<bool> done) override;

  // ---- Configuration -------------------------------------------------------
  void AddCompatibleVault(const Loid& vault);
  void SetPolicy(std::unique_ptr<PlacementPolicy> policy);
  // Wires an implementation-cache service object (paper §2): launches of
  // a not-yet-seen implementation first pull its binary through the
  // cache, so cold starts pay a visible transfer cost.
  void SetImplementationCache(const Loid& cache) { impl_cache_ = cache; }
  // Registers a Collection this host pushes attribute updates into.
  void AddCollection(const Loid& collection);
  // Removes all push targets (pull-only configurations, experiment E5).
  void ClearCollections() { collections_.clear(); }
  // Starts/stops the periodic state reassessment.
  void StartReassessment();
  void StopReassessment();

  // ---- State -----------------------------------------------------------------
  // Load as exported in "host_load": background + per-CPU object demand.
  double CurrentLoad() const;
  double background_load() const { return load_model_.current(); }
  // Compute rate an object sees given current multiplexing.
  double EffectiveSpeedPerObject() const;
  std::size_t running_count() const { return running_.size(); }
  const ReservationTable& reservations() const { return table_; }
  ReservationTable& mutable_reservations() { return table_; }

  // Injects a background-load spike and reflects it immediately in the
  // exported attributes + triggers (migration experiments).
  void SpikeLoad(double level);
  // Raises the load model only; the spike becomes visible at the next
  // periodic reassessment -- models detection latency.
  void SpikeLoadQuietly(double level) { load_model_.Spike(level); }

  // Immediately recomputes attributes, evaluates triggers, and pushes to
  // Collections (also called by the periodic timer).
  void ReassessState();

  // Notification that an object finished on its own (workload executor);
  // frees its resources and retires the object.
  void FinishObject(const Loid& object);

  // Reactivation path (paper: "object reactivation is initiated by an
  // attempt to access the object; no explicit Host Object method is
  // necessary" -- this is that implicit path, exposed for the migration
  // engine): fetch the OPR from `vault`, restore, and run the object
  // here, subject to capacity.
  void ReactivateObject(const Loid& object, const Loid& vault,
                        Callback<bool> done);

  // Counters for experiments.
  std::uint64_t objects_started() const { return objects_started_; }
  std::uint64_t starts_refused() const { return starts_refused_; }
  // Replay-cache observability: hits are retransmitted batch ids served
  // from the cache; misses are retransmissions (request.retransmit set)
  // that found no cached reply -- either the original request was lost
  // (benign re-admission) or the reply aged out of the cache (a
  // possible double-admit; widen batch_replay_retention).
  std::uint64_t batch_replay_hits() const { return batch_replay_hits_; }
  std::uint64_t batch_replay_misses() const { return batch_replay_misses_; }

 protected:
  // What a host remembers about each object it is running.
  struct RunningObject {
    Loid object;
    Loid vault;
    std::size_t memory_mb = 0;
    double cpu_fraction = 1.0;
    SimTime started;
    std::uint64_t reservation_serial = 0;  // 0 = no reservation
  };

  // Admission for token-less starts (the Class's default placement path).
  virtual Status AdmitWithoutReservation(const StartObjectRequest& request);

  // Actually places the objects on the machine.  The Unix host launches
  // immediately; batch hosts queue.  Must eventually call `done`.  The
  // base implementation routes through the implementation cache (if
  // wired) and then LaunchPrepared.
  virtual void LaunchObjects(const StartObjectRequest& request,
                             std::uint64_t reservation_serial,
                             Callback<std::vector<Loid>> done);
  // Launch after the binary is locally available.
  void LaunchPrepared(const StartObjectRequest& request,
                      std::uint64_t reservation_serial,
                      Callback<std::vector<Loid>> done);

  // Subclass hook to add attributes during repopulation.
  virtual void ExtendAttributes(AttributeDatabase& attrs) { (void)attrs; }
  virtual std::string HostKind() const { return "unix"; }
  // Called whenever a running object is released (killed, deactivated, or
  // finished); batch hosts use it to free queue slots.
  virtual void OnObjectReleased(const RunningObject& released) {
    (void)released;
  }

  // Instantiates the (inactive) instance objects and adopts them into the
  // kernel; activation happens separately so launches can be deferred to
  // a reservation window or a batch queue slot.
  Result<std::vector<Loid>> CreateInstanceObjects(
      const StartObjectRequest& request);
  // Activates previously created instances and registers them as running.
  void ActivateCreated(const StartObjectRequest& request,
                       std::uint64_t reservation_serial);

  // Releases a running object's resources.  Returns false if unknown.
  bool ReleaseObject(const Loid& object, bool kill);

  double RunningCpuDemand() const;
  std::size_t RunningMemoryDemand() const;

  // Issues + admits the token once the vault is known reachable.
  void GrantReservation(const ReservationRequest& request,
                        Callback<ReservationToken> done);

  // Batch-admission subclass hooks (DESIGN.md §11).  PreAdmitSlot gives
  // the machine-specific layer a veto over each slot before the table
  // sees it (batch-queue hosts ask the queue to honor the window);
  // OnSlotGranted fires for every admitted slot (batch-queue hosts
  // register the window in the queue calendar).  FinishBatch interleaves
  // the two per slot -- veto, admit, grant, then the next slot -- so
  // each veto sees every predecessor's granted window exactly as the
  // sequential MakeReservation path would.
  virtual Status PreAdmitSlot(const ReservationRequest& request, SimTime now) {
    (void)request;
    (void)now;
    return Status::Ok();
  }
  virtual void OnSlotGranted(const ReservationToken& token,
                             double cpu_fraction) {
    (void)token;
    (void)cpu_fraction;
  }

  void RepopulateAttributes();
  void PushToCollections();

  // In-flight batch admission: outcomes accumulate while unknown vaults
  // are probed; FinishBatch then runs each admissible slot through the
  // veto/admit/grant ladder in slot order and replies.
  struct PendingBatch {
    ReservationBatchRequest request;
    Callback<ReservationBatchReply> done;
    std::vector<BatchSlotOutcome> outcomes;
    std::vector<bool> admissible;
    std::size_t pending_probes = 0;
  };
  void FinishBatch(const std::shared_ptr<PendingBatch>& batch);
  // At-most-once admission: remembers the reply for (requester, batch_id)
  // so a retransmitted batch (lost reply) replays instead of re-admitting.
  void RememberBatchReply(const std::string& key, ReservationBatchReply reply);
  // Drops cached replies older than spec_.batch_replay_retention.
  void EvictStaleBatchReplies(SimTime now);

  HostSpec spec_;
  TokenAuthority authority_;
  ReservationTable table_;
  std::unique_ptr<PlacementPolicy> policy_;
  LoadModel load_model_;
  std::vector<Loid> compatible_vaults_;
  std::vector<Loid> collections_;
  Loid impl_cache_;  // invalid = no cache wired (binaries are free)
  std::unordered_map<Loid, RunningObject> running_;
  // Completed-batch replay cache, age-bounded: keys in arrival order
  // with their remember time; entries older than the retention horizon
  // are evicted (a count cap would let heavy traffic evict replies that
  // a retransmission still needs).
  std::unordered_map<std::string, ReservationBatchReply> completed_batches_;
  std::deque<std::pair<std::string, SimTime>> completed_batch_order_;
  SimKernel::PeriodicId reassess_timer_ = 0;
  bool joined_collections_ = false;
  std::uint64_t objects_started_ = 0;
  std::uint64_t starts_refused_ = 0;
  std::uint64_t batch_replay_hits_ = 0;
  std::uint64_t batch_replay_misses_ = 0;
};

// A shared-memory multiprocessor host: same protocol, several CPUs, and
// StartObject's batched instance list is the efficient creation path the
// paper calls out for multiprocessor systems.
class SmpHost : public HostObject {
 public:
  SmpHost(SimKernel* kernel, Loid loid, HostSpec spec,
          std::uint64_t secret_seed)
      : HostObject(kernel, loid, std::move(spec), secret_seed) {}

 protected:
  std::string HostKind() const override { return "smp"; }
};

}  // namespace legion
