// Background load model for hosts.
//
// Real metacomputing hosts carry load from users outside Legion's
// control; schedulers see it through the "load average" attribute.  We
// model background load as a mean-reverting (Ornstein-Uhlenbeck-style)
// random walk sampled at the host's reassessment period, which produces
// plausibly autocorrelated load traces and is the signal the
// Network-Weather-Service-style forecaster (function injection demo) is
// pointed at.
#pragma once

#include <algorithm>

#include "base/rng.h"

namespace legion {

struct LoadModelParams {
  double mean = 0.3;          // long-run background load (per-CPU)
  double reversion = 0.2;     // pull toward the mean per step
  double volatility = 0.08;   // step noise
  double floor = 0.0;
  double ceiling = 4.0;       // runaway protection
  double initial = 0.3;
};

class LoadModel {
 public:
  LoadModel(LoadModelParams params, Rng rng)
      : params_(params), rng_(rng), load_(params.initial) {}

  double current() const { return load_; }

  // Advances one reassessment step and returns the new background load.
  double Step() {
    load_ += params_.reversion * (params_.mean - load_) +
             rng_.Normal(0.0, params_.volatility);
    load_ = std::clamp(load_, params_.floor, params_.ceiling);
    return load_;
  }

  // Forces a load spike (used by the migration experiments to model an
  // interactive user arriving at the workstation).
  void Spike(double level) { load_ = std::clamp(level, params_.floor, params_.ceiling); }

 private:
  LoadModelParams params_;
  Rng rng_;
  double load_;
};

}  // namespace legion
