#include "resources/reservation.h"

#include <cmath>

namespace legion {

const char* ToString(ReservationState state) {
  switch (state) {
    case ReservationState::kPending:
      return "pending";
    case ReservationState::kConfirmed:
      return "confirmed";
    case ReservationState::kCancelled:
      return "cancelled";
    case ReservationState::kExpired:
      return "expired";
    case ReservationState::kConsumed:
      return "consumed";
  }
  return "unknown";
}

std::vector<Status> ReservationTable::AdmitBatch(
    const std::vector<BatchAdmitSlot>& slots, SimTime now) {
  // Single-threaded kernel: nothing interleaves between these per-slot
  // admissions, so the loop IS the atomic snapshot -- slot i+1 sees slot
  // i's grant (or its absence) and nothing else changes underneath.
  std::vector<Status> statuses;
  statuses.reserve(slots.size());
  ExpireStale(now);
  for (const BatchAdmitSlot& slot : slots) {
    statuses.push_back(
        Admit(slot.token, slot.requester, slot.memory_mb, slot.cpu_fraction,
              now));
  }
  return statuses;
}

Status ReservationTable::Admit(const ReservationToken& token,
                               const Loid& requester, std::size_t memory_mb,
                               double cpu_fraction, SimTime now) {
  ExpireStale(now);
  if (records_.count(token.serial) != 0) {
    ++rejected_;
    return Status::Error(ErrorCode::kAlreadyExists, "duplicate serial");
  }
  if (token.duration <= Duration::Zero()) {
    ++rejected_;
    return Status::Error(ErrorCode::kInvalidArgument,
                         "non-positive reservation duration");
  }
  // A window that has already closed (end <= now, the same half-open edge
  // Check/Redeem/ExpireStale use) would be expired by the very next
  // ExpireStale pass; refuse it up front instead of admitting a corpse.
  if (token.start + token.duration <= now) {
    ++rejected_;
    return Status::Error(ErrorCode::kInvalidArgument,
                         "reservation window already closed");
  }
  if (memory_mb > capacity_.memory_mb) {
    ++rejected_;
    return Status::Error(ErrorCode::kNoResources, "memory demand > capacity");
  }

  if (!token.type.share) {
    // Space sharing allocates the entire resource: the window must be
    // free of every other live reservation (shared or not).
    for (const auto& [serial, record] : records_) {
      if (!Live(record)) continue;
      if (Overlaps(token, record.token)) {
        ++rejected_;
        return Status::Error(ErrorCode::kNoResources,
                             "window conflicts with reservation #" +
                                 std::to_string(serial));
      }
    }
  } else {
    // Timesharing multiplexes the resource, but never across a live
    // unshared reservation, and only up to capacity.
    double cpu_in_window = cpu_fraction;
    std::size_t mem_in_window = memory_mb;
    for (const auto& [serial, record] : records_) {
      if (!Live(record)) continue;
      if (!Overlaps(token, record.token)) continue;
      if (!record.token.type.share) {
        ++rejected_;
        return Status::Error(ErrorCode::kNoResources,
                             "window overlaps unshared reservation #" +
                                 std::to_string(serial));
      }
      cpu_in_window += record.cpu_fraction;
      mem_in_window += record.memory_mb;
    }
    const double cpu_capacity =
        static_cast<double>(capacity_.cpus) * capacity_.oversubscription;
    if (cpu_in_window > cpu_capacity + 1e-9) {
      ++rejected_;
      return Status::Error(ErrorCode::kNoResources, "CPU capacity exceeded");
    }
    if (mem_in_window > capacity_.memory_mb) {
      ++rejected_;
      return Status::Error(ErrorCode::kNoResources, "memory capacity exceeded");
    }
  }

  ReservationRecord record;
  record.token = token;
  record.requester = requester;
  record.memory_mb = memory_mb;
  record.cpu_fraction = cpu_fraction;
  record.state = ReservationState::kPending;
  records_[token.serial] = std::move(record);
  ++admitted_;
  return Status::Ok();
}

bool ReservationTable::Check(const ReservationToken& token, SimTime now) {
  ExpireStale(now);
  auto it = records_.find(token.serial);
  if (it == records_.end()) return false;
  const ReservationRecord& record = it->second;
  if (!Live(record)) return false;
  return now < record.token.start + record.token.duration;
}

bool ReservationTable::Cancel(const ReservationToken& token, SimTime now) {
  // Expire first so a reservation whose window edge coincides exactly with
  // `now` is classified the same way every other entry point classifies it:
  // dead, hence not cancellable.
  ExpireStale(now);
  auto it = records_.find(token.serial);
  if (it == records_.end() || !Live(it->second)) return false;
  it->second.state = ReservationState::kCancelled;
  ++cancelled_;
  return true;
}

Status ReservationTable::Redeem(const ReservationToken& token, SimTime now) {
  ExpireStale(now);
  auto it = records_.find(token.serial);
  if (it == records_.end()) {
    return Status::Error(ErrorCode::kInvalidToken, "unknown reservation");
  }
  ReservationRecord& record = it->second;
  switch (record.state) {
    case ReservationState::kCancelled:
      return Status::Error(ErrorCode::kInvalidToken, "reservation cancelled");
    case ReservationState::kExpired:
      return Status::Error(ErrorCode::kExpired, "reservation expired");
    case ReservationState::kConsumed:
      return Status::Error(ErrorCode::kInvalidToken,
                           "one-shot reservation already used");
    case ReservationState::kPending:
    case ReservationState::kConfirmed:
      break;
  }
  // Early presentation (before the window opens) is allowed and counts as
  // confirmation; execution is the host's concern (it defers the launch).
  // A passed window cannot reach this point: ExpireStale(now) above already
  // expired it, so the state switch returned kExpired.
  //
  // The reuse bit: a one-shot token is good for exactly one StartObject.
  if (!record.token.type.reuse && record.uses >= 1) {
    return Status::Error(ErrorCode::kInvalidToken,
                         "one-shot reservation already used");
  }
  // Presenting the token confirms the reservation (implicit confirmation);
  // the record stays live so the window's capacity remains claimed.
  record.state = ReservationState::kConfirmed;
  ++record.uses;
  return Status::Ok();
}

void ReservationTable::OnJobDone(const ReservationToken& token) {
  auto it = records_.find(token.serial);
  if (it == records_.end()) return;
  ReservationRecord& record = it->second;
  // One-shot reservations expire when the job is done (paper Table 2
  // discussion); reusable reservations persist for the whole window.
  if (!record.token.type.reuse && Live(record)) {
    record.state = ReservationState::kConsumed;
  }
}

std::size_t ReservationTable::ExpireStale(SimTime now) {
  std::size_t n = 0;
  for (auto& [serial, record] : records_) {
    if (!Live(record)) continue;
    // Confirmation timeout: only pending instantaneous reservations.
    if (record.state == ReservationState::kPending &&
        record.token.confirm_timeout > Duration::Zero() &&
        record.token.start <= now &&
        now >= record.token.start + record.token.confirm_timeout) {
      record.state = ReservationState::kExpired;
      ++expired_;
      ++n;
      continue;
    }
    if (now >= record.token.start + record.token.duration) {
      record.state = ReservationState::kExpired;
      ++expired_;
      ++n;
    }
  }
  return n;
}

const ReservationRecord* ReservationTable::Find(std::uint64_t serial) const {
  auto it = records_.find(serial);
  return it == records_.end() ? nullptr : &it->second;
}

std::size_t ReservationTable::live_count() const {
  std::size_t n = 0;
  for (const auto& [serial, record] : records_) {
    if (Live(record)) ++n;
  }
  return n;
}

double ReservationTable::SharedCpuLoadAt(SimTime t) const {
  double load = 0.0;
  for (const auto& [serial, record] : records_) {
    if (!Live(record)) continue;
    if (t >= record.token.start && t < record.token.start + record.token.duration) {
      load += record.cpu_fraction;
    }
  }
  return load;
}

}  // namespace legion
