// Local placement policies: the autonomy half of the negotiation.
//
// "Scheduling in Legion is never of a dictatorial nature; requests are
// made of resource guardians, who have final authority over what requests
// are honored."  When asked for a reservation, the Host checks that "its
// local placement policy permits instantiating the object" (section 3.1),
// and the attribute examples include "domains from which it refuses to
// accept object instantiation requests, or a description of its
// willingness to accept extra jobs based on the time of day".
//
// A policy sees the request plus the host's current attributes and
// accepts or refuses.  Policies compose (all must accept).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "base/attributes.h"
#include "base/result.h"
#include "base/sim_time.h"
#include "objects/interfaces.h"

namespace legion {

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // OK to place, or kRefused with a reason.
  virtual Status Permit(const ReservationRequest& request,
                        const AttributeDatabase& host_attributes,
                        SimTime now) const = 0;

  // Human-readable description exported in host attributes.
  virtual std::string Describe() const = 0;
};

// Accepts everything (the default).
class AcceptAllPolicy : public PlacementPolicy {
 public:
  Status Permit(const ReservationRequest&, const AttributeDatabase&,
                SimTime) const override {
    return Status::Ok();
  }
  std::string Describe() const override { return "accept-all"; }
};

// Refuses requests originating from listed administrative domains.
class DomainRefusalPolicy : public PlacementPolicy {
 public:
  explicit DomainRefusalPolicy(std::vector<std::uint32_t> refused)
      : refused_(std::move(refused)) {}
  Status Permit(const ReservationRequest& request, const AttributeDatabase&,
                SimTime) const override;
  std::string Describe() const override;
  const std::vector<std::uint32_t>& refused_domains() const { return refused_; }

 private:
  std::vector<std::uint32_t> refused_;
};

// Refuses new placements when the host's load attribute exceeds a bound.
class LoadThresholdPolicy : public PlacementPolicy {
 public:
  explicit LoadThresholdPolicy(double max_load) : max_load_(max_load) {}
  Status Permit(const ReservationRequest&, const AttributeDatabase& attrs,
                SimTime now) const override;
  std::string Describe() const override;

 private:
  double max_load_;
};

// Accepts extra jobs only during an "off-hours" window of the (simulated)
// day -- the time-of-day willingness from the paper's attribute examples.
// The day length is configurable so experiments need not simulate 24h.
class TimeOfDayPolicy : public PlacementPolicy {
 public:
  TimeOfDayPolicy(Duration day_length, double open_from_fraction,
                  double open_until_fraction)
      : day_length_(day_length),
        open_from_(open_from_fraction),
        open_until_(open_until_fraction) {}
  Status Permit(const ReservationRequest&, const AttributeDatabase&,
                SimTime now) const override;
  std::string Describe() const override;

 private:
  Duration day_length_;
  double open_from_;
  double open_until_;
};

// All sub-policies must accept.
class CompositePolicy : public PlacementPolicy {
 public:
  void Add(std::unique_ptr<PlacementPolicy> policy) {
    policies_.push_back(std::move(policy));
  }
  Status Permit(const ReservationRequest& request,
                const AttributeDatabase& attrs, SimTime now) const override;
  std::string Describe() const override;
  std::size_t size() const { return policies_.size(); }

 private:
  std::vector<std::unique_ptr<PlacementPolicy>> policies_;
};

}  // namespace legion
