// Simulated queue management systems.
//
// The paper integrates machines fronted by queue managers through
// specialized Host Objects: "We have Batch Queue Host implementations for
// Unix machines, LoadLeveler, and Codine", Condor integration was in
// progress, and "a Batch Queue Host for a system that does support
// reservations, such as the Maui Scheduler, could ... pass the job of
// managing reservations through to the queuing system."
//
// These models capture the scheduler-visible behaviour of each system:
//   * FifoQueue        -- plain FCFS slots (Codine-like default);
//   * CondorLikeQueue  -- cycle stealing: running jobs are vacated and
//                         requeued when the workstation owner returns;
//   * LoadLevelerLikeQueue -- job classes: short jobs outrank long ones,
//                         with aging so long jobs eventually run;
//   * MauiLikeQueue    -- native advance reservations: the queue keeps a
//                         reservation calendar and never lets a backfilled
//                         job trample a reserved window.
//
// None of these is a faithful re-implementation of the named product;
// each reproduces the property the Legion RMI depends on (see DESIGN.md).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/loid.h"
#include "base/rng.h"
#include "base/sim_time.h"

namespace legion {

struct BatchJob {
  std::uint64_t id = 0;
  std::vector<Loid> instances;
  std::size_t memory_mb = 0;     // per instance
  double cpu_fraction = 1.0;     // per instance
  Duration estimated_runtime = Duration::Minutes(30);
  SimTime submitted;
  int priority = 0;
  // Reservation-backed jobs (Maui path): the window the job must run in.
  bool reserved = false;
  SimTime window_start;
  SimTime window_end;
  // Set by the queue when the job starts executing.
  SimTime started;

  double cpu_demand() const {
    return cpu_fraction * static_cast<double>(instances.size());
  }
};

class QueueSystem {
 public:
  explicit QueueSystem(double cpu_slots) : slots_(cpu_slots) {}
  virtual ~QueueSystem() = default;

  using JobCallback = std::function<void(const BatchJob&)>;
  // `on_start` fires when a job begins executing; `on_vacate` when a
  // running job is preempted and requeued (Condor-style).
  void SetCallbacks(JobCallback on_start, JobCallback on_vacate) {
    on_start_ = std::move(on_start);
    on_vacate_ = std::move(on_vacate);
  }

  virtual void Submit(BatchJob job);
  virtual bool Cancel(std::uint64_t job_id);
  // Host notification that a running job's objects finished.
  virtual void JobFinished(std::uint64_t job_id);
  // One scheduling cycle: start whatever the discipline allows.
  virtual void Poll(SimTime now) = 0;

  std::size_t queued_count() const { return queue_.size(); }
  std::size_t running_count() const { return running_.size(); }
  double used_slots() const;
  double slots() const { return slots_; }

  // Rough FCFS wait estimate exported in host attributes.
  virtual Duration EstimateWait(SimTime now) const;

  virtual std::string flavor() const = 0;

  // Native reservation support (Maui-like only).
  virtual bool SupportsReservations() const { return false; }
  // Whether a new window could be guaranteed; queues without native
  // reservations have no opinion (the host's table decides alone).
  virtual bool CanHonorWindow(SimTime start, SimTime end, double cpus,
                              SimTime now) const {
    (void)start; (void)end; (void)cpus; (void)now;
    return true;
  }
  virtual void AddReservationWindow(SimTime start, SimTime end, double cpus) {
    (void)start; (void)end; (void)cpus;
  }
  virtual void RemoveReservationWindow(SimTime start, SimTime end,
                                       double cpus) {
    (void)start; (void)end; (void)cpus;
  }

  std::uint64_t jobs_started() const { return jobs_started_; }
  std::uint64_t jobs_vacated() const { return jobs_vacated_; }

 protected:
  // Moves the job at queue index `i` to running and fires on_start.
  void StartJobAt(std::size_t index, SimTime now);
  void VacateJob(std::uint64_t job_id, SimTime now);

  double slots_;
  std::deque<BatchJob> queue_;
  std::map<std::uint64_t, BatchJob> running_;
  JobCallback on_start_;
  JobCallback on_vacate_;
  std::uint64_t jobs_started_ = 0;
  std::uint64_t jobs_vacated_ = 0;
};

// FCFS over CPU slots; the paper's generic "Batch Queue Host" substrate
// (Codine-like behaviour).
class FifoQueue : public QueueSystem {
 public:
  explicit FifoQueue(double cpu_slots) : QueueSystem(cpu_slots) {}
  void Poll(SimTime now) override;
  std::string flavor() const override { return "fifo"; }
};

// Cycle stealing with owner-return preemption.
class CondorLikeQueue : public QueueSystem {
 public:
  CondorLikeQueue(double cpu_slots, double owner_return_prob_per_poll,
                  std::uint64_t seed)
      : QueueSystem(cpu_slots),
        owner_return_prob_(owner_return_prob_per_poll),
        rng_(seed) {}
  void Poll(SimTime now) override;
  std::string flavor() const override { return "condor"; }

 private:
  double owner_return_prob_;
  Rng rng_;
};

// Priority classes with aging: shorter estimated runtime => higher class.
class LoadLevelerLikeQueue : public QueueSystem {
 public:
  LoadLevelerLikeQueue(double cpu_slots,
                       Duration aging_interval = Duration::Minutes(10))
      : QueueSystem(cpu_slots), aging_interval_(aging_interval) {}
  void Poll(SimTime now) override;
  std::string flavor() const override { return "loadleveler"; }

  static int ClassOf(const BatchJob& job);

 private:
  Duration aging_interval_;
};

// Native advance reservations + conservative backfill.
class MauiLikeQueue : public QueueSystem {
 public:
  explicit MauiLikeQueue(double cpu_slots) : QueueSystem(cpu_slots) {}
  void Poll(SimTime now) override;
  std::string flavor() const override { return "maui"; }

  bool SupportsReservations() const override { return true; }
  void AddReservationWindow(SimTime start, SimTime end, double cpus) override;
  void RemoveReservationWindow(SimTime start, SimTime end,
                               double cpus) override;

  // Reserved CPU capacity at instant `t` (excluding windows already being
  // consumed by a reservation-backed running job is the host's concern;
  // the calendar only tracks grants).
  double ReservedAt(SimTime t) const;
  std::size_t window_count() const { return windows_.size(); }

  // Admission check for a new window: can `cpus` be guaranteed over
  // [start, end) given the calendar and the running jobs' estimated
  // completions?  This is what lets a Maui-style system refuse
  // reservations it cannot honor instead of conflicting later.
  bool CanHonorWindow(SimTime start, SimTime end, double cpus,
                      SimTime now) const override;

 private:
  struct Window {
    SimTime start, end;
    double cpus;
  };
  // Can a non-reserved job of `demand` CPUs run in [now, now+run] without
  // intruding on reserved capacity?
  bool FitsOutsideReservations(double demand, SimTime now,
                               Duration run) const;

  std::vector<Window> windows_;
};

}  // namespace legion
