#include "resources/vault_object.h"

#include <algorithm>

namespace legion {

namespace {
// Well-known serial for the VaultClass core object (figure 1).
constexpr std::uint64_t kVaultClassSerial = 3;
}  // namespace

VaultObject::VaultObject(SimKernel* kernel, Loid loid, VaultSpec spec)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, spec.domain, kVaultClassSerial)),
      spec_(std::move(spec)) {
  kernel->network().RegisterEndpoint(loid, spec_.domain);
  (void)Activate(loid, Loid());
  RepopulateAttributes();
}

bool VaultObject::CompatibleWith(std::uint32_t domain,
                                 const std::string& arch) const {
  if (!spec_.public_access && domain != spec_.domain) return false;
  if (!spec_.compatible_arches.empty() &&
      std::find(spec_.compatible_arches.begin(),
                spec_.compatible_arches.end(),
                arch) == spec_.compatible_arches.end()) {
    return false;
  }
  return true;
}

void VaultObject::Probe(std::uint32_t domain, const std::string& arch,
                        Callback<bool> done) {
  done(CompatibleWith(domain, arch));
}

void VaultObject::StoreOpr(const Opr& opr, Callback<bool> done) {
  const std::size_t bytes = opr.SizeBytes();
  auto it = oprs_.find(opr.object);
  const std::size_t replaced = it == oprs_.end() ? 0 : it->second.SizeBytes();
  if (used_bytes_ - replaced + bytes > capacity_bytes()) {
    done(Status::Error(ErrorCode::kNoResources, "vault full"));
    return;
  }
  used_bytes_ = used_bytes_ - replaced + bytes;
  accrued_cost_ += spec_.cost_per_mb * static_cast<double>(bytes) / (1 << 20);
  oprs_[opr.object] = opr;
  RepopulateAttributes();
  done(true);
}

void VaultObject::FetchOpr(const Loid& object, Callback<Opr> done) {
  auto it = oprs_.find(object);
  if (it == oprs_.end()) {
    done(Status::Error(ErrorCode::kNotFound,
                       "no OPR for " + object.ToString()));
    return;
  }
  done(it->second);
}

void VaultObject::DeleteOpr(const Loid& object, Callback<bool> done) {
  auto it = oprs_.find(object);
  if (it == oprs_.end()) {
    done(false);
    return;
  }
  used_bytes_ -= it->second.SizeBytes();
  oprs_.erase(it);
  RepopulateAttributes();
  done(true);
}

void VaultObject::RepopulateAttributes() {
  AttributeDatabase& attrs = mutable_attributes();
  attrs.Set("vault_name", spec_.name);
  attrs.Set("vault_domain", static_cast<std::int64_t>(spec_.domain));
  attrs.Set("vault_capacity_mb", static_cast<std::int64_t>(spec_.capacity_mb));
  attrs.Set("vault_used_mb",
            static_cast<std::int64_t>(used_bytes_ >> 20));
  attrs.Set("vault_cost_per_mb", spec_.cost_per_mb);
  attrs.Set("vault_public", spec_.public_access);
  attrs.Set("vault_stored_oprs", static_cast<std::int64_t>(oprs_.size()));
  AttrList arches;
  for (const auto& arch : spec_.compatible_arches) {
    arches.push_back(AttrValue(arch));
  }
  attrs.Set("vault_arches", AttrValue(std::move(arches)));
}

}  // namespace legion
