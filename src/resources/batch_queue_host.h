// Batch Queue Host Objects (paper section 3.1 and related work).
//
// "We are currently implementing Host Objects which interact with queue
// management systems such as LoadLeveler and Condor. ... most batch
// processing systems do not understand reservations, and so our basic
// Batch Queue Host maintains reservations in a fashion similar to the
// Unix Host Object.  A Batch Queue Host for a system that does support
// reservations, such as the Maui Scheduler, could take advantage of the
// underlying facilities and pass the job of managing reservations through
// to the queuing system.  Our real ability to coordinate large
// applications running across multiple queuing systems will be limited by
// the functionality of the underlying queuing system, and there is an
// unavoidable potential for conflict."
//
// BatchQueueHost fronts a simulated QueueSystem: StartObject submits a
// job; the instances come alive when the queue starts the job.  The
// reservation table lives in the Host (Unix-style) unless the queue has
// native reservation support, in which case admitted windows are passed
// through into the queue's calendar.  The "unavoidable conflict" shows up
// as the reservation_conflicts counter: a reserved job whose queue wait
// pushed its start past the reserved window.
#pragma once

#include <memory>
#include <unordered_map>

#include "resources/host_object.h"
#include "resources/queue_system.h"

namespace legion {

class BatchQueueHost : public HostObject {
 public:
  BatchQueueHost(SimKernel* kernel, Loid loid, HostSpec spec,
                 std::uint64_t secret_seed,
                 std::unique_ptr<QueueSystem> queue,
                 Duration poll_period = Duration::Seconds(30));
  ~BatchQueueHost() override;

  QueueSystem& queue() { return *queue_; }
  const QueueSystem& queue() const { return *queue_; }

  void StartQueuePolling();
  void StopQueuePolling();
  // Runs one queue scheduling cycle immediately.
  void PollQueueNow() { OnPoll(); }

  // Reservation pass-through (Maui path) happens on grant and cancel.
  void MakeReservation(const ReservationRequest& request,
                       Callback<ReservationToken> done) override;
  void CancelReservation(const ReservationToken& token,
                         Callback<bool> done) override;

  // Jobs whose reserved window expired before the queue started them.
  std::uint64_t reservation_conflicts() const { return reservation_conflicts_; }
  std::size_t pending_job_count() const { return pending_jobs_.size(); }

 protected:
  // Batch-admission hooks: the queue's veto and calendar registration
  // apply to each slot of a reservation batch exactly as they do to a
  // single MakeReservation.
  Status PreAdmitSlot(const ReservationRequest& request, SimTime now) override;
  void OnSlotGranted(const ReservationToken& token,
                     double cpu_fraction) override;
  Status AdmitWithoutReservation(const StartObjectRequest& request) override;
  void LaunchObjects(const StartObjectRequest& request,
                     std::uint64_t reservation_serial,
                     Callback<std::vector<Loid>> done) override;
  void ExtendAttributes(AttributeDatabase& attrs) override;
  std::string HostKind() const override { return "batch-" + queue_->flavor(); }
  void OnObjectReleased(const RunningObject& released) override;

 private:
  struct PendingJob {
    StartObjectRequest request;
    std::uint64_t reservation_serial = 0;
    std::size_t live_instances = 0;
    bool started = false;
    bool conflict_counted = false;
  };

  void OnPoll();
  void OnJobStart(const BatchJob& job);
  void OnJobVacate(const BatchJob& job);

  std::unique_ptr<QueueSystem> queue_;
  Duration poll_period_;
  SimKernel::PeriodicId poll_timer_ = 0;
  std::uint64_t next_job_id_ = 1;
  std::unordered_map<std::uint64_t, PendingJob> pending_jobs_;
  std::unordered_map<Loid, std::uint64_t> instance_job_;
  std::uint64_t reservation_conflicts_ = 0;
};

// Convenience: a batch host whose queue manager supports reservations
// natively (the paper's Maui Scheduler example).
class MauiHost : public BatchQueueHost {
 public:
  MauiHost(SimKernel* kernel, Loid loid, HostSpec spec,
           std::uint64_t secret_seed,
           Duration poll_period = Duration::Seconds(30))
      : BatchQueueHost(kernel, loid, spec, secret_seed,
                       std::make_unique<MauiLikeQueue>(
                           static_cast<double>(spec.cpus)),
                       poll_period) {}
};

}  // namespace legion
