#include "resources/batch_queue_host.h"

#include <algorithm>

namespace legion {

BatchQueueHost::BatchQueueHost(SimKernel* kernel, Loid loid, HostSpec spec,
                               std::uint64_t secret_seed,
                               std::unique_ptr<QueueSystem> queue,
                               Duration poll_period)
    : HostObject(kernel, loid, std::move(spec), secret_seed),
      queue_(std::move(queue)),
      poll_period_(poll_period) {
  queue_->SetCallbacks([this](const BatchJob& job) { OnJobStart(job); },
                       [this](const BatchJob& job) { OnJobVacate(job); });
  RepopulateAttributes();
}

BatchQueueHost::~BatchQueueHost() { StopQueuePolling(); }

void BatchQueueHost::StartQueuePolling() {
  if (poll_timer_ != 0) return;
  poll_timer_ = kernel()->SchedulePeriodic(poll_period_, [this] { OnPoll(); });
}

void BatchQueueHost::StopQueuePolling() {
  if (poll_timer_ == 0) return;
  kernel()->CancelPeriodic(poll_timer_);
  poll_timer_ = 0;
}

void BatchQueueHost::OnPoll() {
  const SimTime now = kernel()->Now();
  queue_->Poll(now);
  // A reserved job still waiting after its window closed is a conflict
  // even if it never starts: the reservation was not honored.
  for (auto& [id, pending] : pending_jobs_) {
    if (pending.started || pending.conflict_counted) continue;
    if (pending.reservation_serial == 0) continue;
    const SimTime window_end =
        pending.request.token.start + pending.request.token.duration;
    if (now >= window_end) {
      pending.conflict_counted = true;
      ++reservation_conflicts_;
    }
  }
  RepopulateAttributes();
}

// ---- Reservation pass-through ------------------------------------------------

void BatchQueueHost::MakeReservation(const ReservationRequest& request,
                                     Callback<ReservationToken> done) {
  // A reservation-aware queue gets a veto first: unlike the Unix-style
  // host table, it also knows about running and queued jobs, so it can
  // refuse windows it could not honor.
  if (queue_->SupportsReservations()) {
    const SimTime now = kernel()->Now();
    const SimTime start = std::max(request.start, now);
    if (!queue_->CanHonorWindow(start, start + request.duration,
                                request.cpu_fraction, now)) {
      done(Status::Error(ErrorCode::kNoResources,
                         "queue cannot guarantee the window"));
      return;
    }
  }
  HostObject::MakeReservation(
      request,
      [this, cpu = request.cpu_fraction,
       done = std::move(done)](Result<ReservationToken> result) {
        if (result.ok() && queue_->SupportsReservations()) {
          // Pass the job of managing the reservation through to the
          // queuing system: the calendar protects the window from
          // backfilled jobs.
          const ReservationToken& token = *result;
          queue_->AddReservationWindow(token.start,
                                       token.start + token.duration, cpu);
        }
        done(std::move(result));
      });
}

Status BatchQueueHost::PreAdmitSlot(const ReservationRequest& request,
                                    SimTime now) {
  if (queue_->SupportsReservations()) {
    const SimTime start = std::max(request.start, now);
    if (!queue_->CanHonorWindow(start, start + request.duration,
                                request.cpu_fraction, now)) {
      return Status::Error(ErrorCode::kNoResources,
                           "queue cannot guarantee the window");
    }
  }
  return Status::Ok();
}

void BatchQueueHost::OnSlotGranted(const ReservationToken& token,
                                   double cpu_fraction) {
  if (queue_->SupportsReservations()) {
    queue_->AddReservationWindow(token.start, token.start + token.duration,
                                 cpu_fraction);
  }
}

void BatchQueueHost::CancelReservation(const ReservationToken& token,
                                       Callback<bool> done) {
  double cpu = 1.0;
  if (const ReservationRecord* record = table_.Find(token.serial)) {
    cpu = record->cpu_fraction;
  }
  HostObject::CancelReservation(
      token, [this, token, cpu, done = std::move(done)](Result<bool> result) {
        if (result.ok() && *result && queue_->SupportsReservations()) {
          queue_->RemoveReservationWindow(token.start,
                                          token.start + token.duration, cpu);
        }
        done(std::move(result));
      });
}

// ---- Submission ------------------------------------------------------------------

Status BatchQueueHost::AdmitWithoutReservation(
    const StartObjectRequest& request) {
  // Batch systems accept any structurally valid submission; waiting is
  // the queue's job.  The local policy still gets a say.
  ReservationRequest probe;
  probe.vault = request.vault;
  probe.start = kernel()->Now();
  probe.duration = request.estimated_runtime;
  probe.requester = request.class_loid;
  probe.requester_domain = request.class_loid.domain();
  probe.memory_mb = request.memory_mb;
  probe.cpu_fraction = request.cpu_fraction;
  Status permit = policy_->Permit(probe, attributes(), kernel()->Now());
  if (!permit.ok()) return permit;
  if (request.memory_mb > spec_.memory_mb) {
    return Status::Error(ErrorCode::kNoResources,
                         "per-instance memory exceeds machine memory");
  }
  return Status::Ok();
}

void BatchQueueHost::LaunchObjects(const StartObjectRequest& request,
                                   std::uint64_t reservation_serial,
                                   Callback<std::vector<Loid>> done) {
  auto created = CreateInstanceObjects(request);
  if (!created.ok()) {
    done(created.status());
    return;
  }
  BatchJob job;
  job.id = next_job_id_++;
  job.instances = request.instances;
  job.memory_mb = request.memory_mb;
  job.cpu_fraction = request.cpu_fraction;
  job.estimated_runtime = request.estimated_runtime;
  job.submitted = kernel()->Now();
  if (reservation_serial != 0) {
    job.reserved = true;
    job.window_start = request.token.start;
    job.window_end = request.token.start + request.token.duration;
    if (request.token.duration > Duration::Zero()) {
      job.estimated_runtime = request.token.duration;
    }
  }
  PendingJob pending;
  pending.request = request;
  pending.reservation_serial = reservation_serial;
  pending_jobs_[job.id] = std::move(pending);
  for (const Loid& instance : request.instances) {
    instance_job_[instance] = job.id;
  }
  queue_->Submit(std::move(job));
  // An opportunistic scheduling cycle: idle machines start work at once.
  queue_->Poll(kernel()->Now());
  RepopulateAttributes();
  // Submission is the success the Class hears about; execution follows
  // queue discipline.
  done(std::move(*created));
}

void BatchQueueHost::OnJobStart(const BatchJob& job) {
  auto it = pending_jobs_.find(job.id);
  if (it == pending_jobs_.end()) return;
  PendingJob& pending = it->second;
  pending.started = true;

  if (job.reserved) {
    if (kernel()->Now() >= job.window_end && !pending.conflict_counted) {
      // The "unavoidable potential for conflict": the queue could not
      // honor the reserved window.
      pending.conflict_counted = true;
      ++reservation_conflicts_;
    }
    if (queue_->SupportsReservations()) {
      // The job now occupies real slots; retire its calendar window so
      // capacity is not double-counted.
      queue_->RemoveReservationWindow(job.window_start, job.window_end,
                                      job.cpu_fraction);
    }
  }

  std::size_t live = 0;
  for (const Loid& instance : job.instances) {
    auto* object = dynamic_cast<LegionObject*>(kernel()->FindActor(instance));
    if (object == nullptr) continue;  // killed while queued
    if (!object->Activate(loid(), pending.request.vault.valid()
                                       ? pending.request.vault
                                       : pending.request.token.vault)
             .ok()) {
      continue;
    }
    RunningObject running;
    running.object = instance;
    running.vault = object->vault();
    running.memory_mb = job.memory_mb;
    running.cpu_fraction = job.cpu_fraction;
    running.started = kernel()->Now();
    running.reservation_serial = pending.reservation_serial;
    running_[instance] = running;
    ++objects_started_;
    ++live;
  }
  pending.live_instances = live;
  if (live == 0) {
    queue_->JobFinished(job.id);
    pending_jobs_.erase(it);
  }
  RepopulateAttributes();
}

void BatchQueueHost::OnJobVacate(const BatchJob& job) {
  // The workstation owner returned (Condor-style): suspend the job's
  // objects in place; they resume when the queue restarts the job.
  for (const Loid& instance : job.instances) {
    auto* object = dynamic_cast<LegionObject*>(kernel()->FindActor(instance));
    if (object != nullptr && object->active()) {
      (void)object->Deactivate();
    }
    running_.erase(instance);
  }
  auto it = pending_jobs_.find(job.id);
  if (it != pending_jobs_.end()) it->second.live_instances = 0;
  RepopulateAttributes();
}

void BatchQueueHost::OnObjectReleased(const RunningObject& released) {
  auto it = instance_job_.find(released.object);
  if (it == instance_job_.end()) return;
  const std::uint64_t job_id = it->second;
  instance_job_.erase(it);
  auto pending_it = pending_jobs_.find(job_id);
  if (pending_it == pending_jobs_.end()) return;
  PendingJob& pending = pending_it->second;
  if (pending.live_instances > 0) --pending.live_instances;
  if (pending.live_instances == 0) {
    queue_->JobFinished(job_id);
    pending_jobs_.erase(pending_it);
    // Freed slots may admit the next job immediately.
    queue_->Poll(kernel()->Now());
  }
}

void BatchQueueHost::ExtendAttributes(AttributeDatabase& attrs) {
  attrs.Set("queue_flavor", queue_->flavor());
  attrs.Set("queue_length", static_cast<std::int64_t>(queue_->queued_count()));
  attrs.Set("queue_running",
            static_cast<std::int64_t>(queue_->running_count()));
  attrs.Set("queue_wait_estimate_s",
            queue_->EstimateWait(kernel()->Now()).seconds());
  attrs.Set("native_reservations", queue_->SupportsReservations());
}

}  // namespace legion
