#include "resources/queue_system.h"

#include <algorithm>
#include <cassert>

namespace legion {

void QueueSystem::Submit(BatchJob job) {
  assert(job.id != 0);
  queue_.push_back(std::move(job));
}

bool QueueSystem::Cancel(std::uint64_t job_id) {
  auto it = std::find_if(queue_.begin(), queue_.end(),
                         [job_id](const BatchJob& j) { return j.id == job_id; });
  if (it != queue_.end()) {
    queue_.erase(it);
    return true;
  }
  // Cancelling a running job: drop it from the running set; the host is
  // responsible for killing its objects.
  return running_.erase(job_id) != 0;
}

void QueueSystem::JobFinished(std::uint64_t job_id) {
  running_.erase(job_id);
}

double QueueSystem::used_slots() const {
  double used = 0.0;
  for (const auto& [id, job] : running_) used += job.cpu_demand();
  return used;
}

Duration QueueSystem::EstimateWait(SimTime now) const {
  (void)now;
  // Crude but monotone: total queued work divided by slot count.
  double queued_cpu_time = 0.0;
  for (const auto& job : queue_) {
    queued_cpu_time += job.cpu_demand() * job.estimated_runtime.seconds();
  }
  return Duration::Seconds(queued_cpu_time / std::max(slots_, 1e-9));
}

void QueueSystem::StartJobAt(std::size_t index, SimTime now) {
  BatchJob job = queue_[index];
  job.started = now;
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  running_[job.id] = job;
  ++jobs_started_;
  if (on_start_) on_start_(job);
}

void QueueSystem::VacateJob(std::uint64_t job_id, SimTime now) {
  auto it = running_.find(job_id);
  if (it == running_.end()) return;
  BatchJob job = it->second;
  running_.erase(it);
  ++jobs_vacated_;
  job.submitted = now;  // re-enters the queue as a fresh submission
  if (on_vacate_) on_vacate_(job);
  queue_.push_front(std::move(job));
}

// ---- FIFO -------------------------------------------------------------------

void FifoQueue::Poll(SimTime now) {
  // Strict FCFS: stop at the first job that does not fit.
  while (!queue_.empty() &&
         used_slots() + queue_.front().cpu_demand() <= slots_ + 1e-9) {
    StartJobAt(0, now);
  }
}

// ---- Condor-like --------------------------------------------------------------

void CondorLikeQueue::Poll(SimTime now) {
  // Owner return: each running job is independently vacated with the
  // configured probability per scheduling cycle.
  std::vector<std::uint64_t> to_vacate;
  for (const auto& [id, job] : running_) {
    if (rng_.Bernoulli(owner_return_prob_)) to_vacate.push_back(id);
  }
  for (std::uint64_t id : to_vacate) VacateJob(id, now);

  while (!queue_.empty() &&
         used_slots() + queue_.front().cpu_demand() <= slots_ + 1e-9) {
    StartJobAt(0, now);
  }
}

// ---- LoadLeveler-like -----------------------------------------------------------

int LoadLevelerLikeQueue::ClassOf(const BatchJob& job) {
  // Shorter estimated runtime => higher class (larger number).
  if (job.estimated_runtime <= Duration::Minutes(15)) return 3;
  if (job.estimated_runtime <= Duration::Hours(1)) return 2;
  if (job.estimated_runtime <= Duration::Hours(4)) return 1;
  return 0;
}

void LoadLevelerLikeQueue::Poll(SimTime now) {
  while (!queue_.empty()) {
    // Pick the best (class + aging credit) job that fits.
    std::size_t best = queue_.size();
    double best_score = -1e18;
    const double free = slots_ - used_slots();
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const BatchJob& job = queue_[i];
      if (job.cpu_demand() > free + 1e-9) continue;
      const double age_credit =
          (now - job.submitted).seconds() /
          std::max(aging_interval_.seconds(), 1e-9);
      const double base =
          static_cast<double>(job.priority + ClassOf(job));
      const double score = base + age_credit;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    if (best == queue_.size()) break;
    StartJobAt(best, now);
  }
}

// ---- Maui-like --------------------------------------------------------------------

void MauiLikeQueue::AddReservationWindow(SimTime start, SimTime end,
                                         double cpus) {
  windows_.push_back(Window{start, end, cpus});
}

void MauiLikeQueue::RemoveReservationWindow(SimTime start, SimTime end,
                                            double cpus) {
  auto it = std::find_if(windows_.begin(), windows_.end(),
                         [&](const Window& w) {
                           return w.start == start && w.end == end &&
                                  w.cpus == cpus;
                         });
  if (it != windows_.end()) windows_.erase(it);
}

double MauiLikeQueue::ReservedAt(SimTime t) const {
  double reserved = 0.0;
  for (const auto& w : windows_) {
    if (t >= w.start && t < w.end) reserved += w.cpus;
  }
  return reserved;
}

bool MauiLikeQueue::CanHonorWindow(SimTime start, SimTime end, double cpus,
                                   SimTime now) const {
  // Capacity only changes at boundaries: the window start and the starts
  // of other reserved windows inside it.  Running jobs release their
  // slots at started + estimated_runtime (a non-guess for reserved jobs,
  // an estimate for the rest -- the residual optimism is the "unavoidable
  // potential for conflict" the paper accepts).
  auto running_at = [&](SimTime t) {
    double used = 0.0;
    for (const auto& [id, job] : running_) {
      const SimTime finish = job.started + job.estimated_runtime;
      if (finish > t) used += job.cpu_demand();
    }
    return used;
  };
  auto fits_at = [&](SimTime t) {
    return running_at(t) + ReservedAt(t) + cpus <= slots_ + 1e-9;
  };
  if (!fits_at(std::max(start, now))) return false;
  for (const auto& w : windows_) {
    if (w.start > start && w.start < end && !fits_at(w.start)) return false;
  }
  return true;
}

bool MauiLikeQueue::FitsOutsideReservations(double demand, SimTime now,
                                            Duration run) const {
  const SimTime end = now + run;
  // Check the job's whole execution span at every reservation boundary
  // that falls inside it (capacity only changes at boundaries).
  auto fits_at = [&](SimTime t) {
    return used_slots() + demand + ReservedAt(t) <= slots_ + 1e-9;
  };
  if (!fits_at(now)) return false;
  for (const auto& w : windows_) {
    if (w.start > now && w.start < end && !fits_at(w.start)) return false;
  }
  return true;
}

void MauiLikeQueue::Poll(SimTime now) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      const BatchJob& job = queue_[i];
      if (job.reserved) {
        // Reservation-backed job: runs inside its window, using the
        // reserved capacity (which AddReservationWindow set aside).
        if (now >= job.window_start && now < job.window_end &&
            used_slots() + job.cpu_demand() <= slots_ + 1e-9) {
          StartJobAt(i, now);
          progressed = true;
          break;
        }
        continue;  // window not open yet; backfill may pass this job
      }
      if (FitsOutsideReservations(job.cpu_demand(), now,
                                  job.estimated_runtime)) {
        StartJobAt(i, now);
        progressed = true;
        break;
      }
    }
  }
}

}  // namespace legion
