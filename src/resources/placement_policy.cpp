#include "resources/placement_policy.h"

#include <algorithm>
#include <sstream>

namespace legion {

Status DomainRefusalPolicy::Permit(const ReservationRequest& request,
                                   const AttributeDatabase&, SimTime) const {
  if (std::find(refused_.begin(), refused_.end(), request.requester_domain) !=
      refused_.end()) {
    return Status::Error(ErrorCode::kRefused,
                         "requests from domain " +
                             std::to_string(request.requester_domain) +
                             " are refused here");
  }
  return Status::Ok();
}

std::string DomainRefusalPolicy::Describe() const {
  std::ostringstream os;
  os << "refuse-domains[";
  for (std::size_t i = 0; i < refused_.size(); ++i) {
    if (i != 0) os << ',';
    os << refused_[i];
  }
  os << ']';
  return os.str();
}

Status LoadThresholdPolicy::Permit(const ReservationRequest&,
                                   const AttributeDatabase& attrs,
                                   SimTime) const {
  const AttrValue* load = attrs.Get("host_load");
  if (load != nullptr && load->is_numeric() &&
      load->as_double() > max_load_) {
    return Status::Error(ErrorCode::kRefused,
                         "load above local threshold");
  }
  return Status::Ok();
}

std::string LoadThresholdPolicy::Describe() const {
  return "load-below-" + std::to_string(max_load_);
}

Status TimeOfDayPolicy::Permit(const ReservationRequest&,
                               const AttributeDatabase&, SimTime now) const {
  const double day = static_cast<double>(day_length_.micros());
  const double phase =
      static_cast<double>(now.micros() % day_length_.micros()) / day;
  const bool open = open_from_ <= open_until_
                        ? (phase >= open_from_ && phase < open_until_)
                        : (phase >= open_from_ || phase < open_until_);
  if (!open) {
    return Status::Error(ErrorCode::kRefused, "outside acceptance hours");
  }
  return Status::Ok();
}

std::string TimeOfDayPolicy::Describe() const {
  std::ostringstream os;
  os << "open-hours[" << open_from_ << ".." << open_until_ << ']';
  return os.str();
}

Status CompositePolicy::Permit(const ReservationRequest& request,
                               const AttributeDatabase& attrs,
                               SimTime now) const {
  for (const auto& policy : policies_) {
    Status status = policy->Permit(request, attrs, now);
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

std::string CompositePolicy::Describe() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < policies_.size(); ++i) {
    if (i != 0) os << '+';
    os << policies_[i]->Describe();
  }
  return os.str();
}

}  // namespace legion
