// Vault Objects (paper sections 2.1 and 3.1).
//
// "Vaults are the generic storage abstraction in Legion.  To be executed,
// a Legion object must have a Vault to hold its persistent state in an
// Object Persistent Representation (OPR)."  Vaults "only participate in
// the scheduling process at the start, when they verify that they are
// compatible with a Host.  They may, in the future, be differentiated by
// the amount of storage available, cost per byte, security policy, etc."
//
// We implement both the current behaviour (compatibility verification)
// and the "future" differentiation the paper sketches: capacity
// accounting, cost per megabyte, and a domain-reachability policy.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "objects/interfaces.h"
#include "objects/legion_object.h"
#include "objects/opr.h"

namespace legion {

struct VaultSpec {
  std::string name = "vault";
  std::uint32_t domain = 0;
  std::size_t capacity_mb = 10 * 1024;
  double cost_per_mb = 0.0;
  // Architectures whose OPRs this vault accepts; empty = all.
  std::vector<std::string> compatible_arches;
  // Public vaults are reachable from any domain; private ones only from
  // their own (a crude security policy).
  bool public_access = true;
};

class VaultObject : public LegionObject, public VaultInterface {
 public:
  VaultObject(SimKernel* kernel, Loid loid, VaultSpec spec);

  const VaultSpec& spec() const { return spec_; }
  std::string DebugName() const override { return "vault " + spec_.name; }

  // ---- VaultInterface ------------------------------------------------------
  void StoreOpr(const Opr& opr, Callback<bool> done) override;
  void FetchOpr(const Loid& object, Callback<Opr> done) override;
  void DeleteOpr(const Loid& object, Callback<bool> done) override;
  void Probe(std::uint32_t domain, const std::string& arch,
             Callback<bool> done) override;

  // Synchronous compatibility check used by topology builders.
  bool CompatibleWith(std::uint32_t domain, const std::string& arch) const;

  std::size_t stored_count() const { return oprs_.size(); }
  std::size_t used_bytes() const { return used_bytes_; }
  std::size_t capacity_bytes() const { return spec_.capacity_mb << 20; }
  double accrued_cost() const { return accrued_cost_; }

 private:
  void RepopulateAttributes();

  VaultSpec spec_;
  std::unordered_map<Loid, Opr> oprs_;
  std::size_t used_bytes_ = 0;
  double accrued_cost_ = 0.0;
};

}  // namespace legion
