#include "core/collection.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

namespace legion {

namespace {
// Wall-clock microseconds for measuring real evaluation cost.
std::int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

namespace {
// Well-known serial for the Collection service class.
constexpr std::uint64_t kCollectionClassSerial = 4;
}  // namespace

CollectionObject::CollectionObject(SimKernel* kernel, Loid loid,
                                   CollectionOptions options)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(),
                        kCollectionClassSerial)),
      options_(options) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "collection");

  obs::MetricsRegistry& metrics = kernel->metrics();
  const obs::Labels labels = {{"component", "collection"}};
  cells_.queries_served = metrics.GetCounter("queries_served", labels);
  cells_.updates_applied = metrics.GetCounter("updates_applied", labels);
  cells_.updates_rejected = metrics.GetCounter("updates_rejected", labels);
  cells_.index_hits = metrics.GetCounter("index_hits", labels);
  cells_.planner_fallbacks = metrics.GetCounter("planner_fallbacks", labels);
  cells_.compile_cache_hits =
      metrics.GetCounter("compile_cache_hits", labels);
  cells_.compile_cache_misses =
      metrics.GetCounter("compile_cache_misses", labels);
  cells_.query_wall_us =
      metrics.GetHistogram("collection_query_wall_us", labels,
                           {1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1e3, 5e3, 1e4,
                            5e4, 1e5, 1e6});
  cells_.staleness_ms = metrics.GetHistogram(
      "collection_staleness_ms", labels,
      {1.0, 10.0, 100.0, 1e3, 5e3, 1e4, 3e4, 6e4, 3e5, 6e5, 3.6e6});
}

bool CollectionObject::Authorized(const Loid& caller,
                                  const Loid& member) const {
  if (!options_.authenticate) return true;
  if (caller == member) return true;  // a resource may describe itself
  return trusted_.count(caller) != 0;
}

void CollectionObject::Upsert(const Loid& member,
                              const AttributeDatabase& attributes) {
  std::unique_lock lock(store_mutex_);
  CollectionRecord& record = records_[member];
  // Keep the indexes in lockstep with the store: unindex the outgoing
  // attribute values before they are overwritten.
  indexes_.Remove(member, record.attributes);
  record.member = member;
  record.attributes = attributes;
  // Every record self-identifies so injected functions can key external
  // state (e.g. load history) by member.
  record.attributes.Set("member", member.ToString());
  record.updated_at = kernel()->Now();
  ++record.update_count;
  indexes_.Add(member, record.attributes);
  cells_.updates_applied->Add();
}

void CollectionObject::JoinCollection(const Loid& joiner, Callback<bool> done) {
  // Join without an installment of initial description: an empty record
  // that a later update or pull will fill.
  Upsert(joiner, AttributeDatabase{});
  done(true);
}

void CollectionObject::JoinCollection(const Loid& joiner,
                                      const AttributeDatabase& attributes,
                                      Callback<bool> done) {
  Upsert(joiner, attributes);
  done(true);
}

void CollectionObject::LeaveCollection(const Loid& leaver,
                                       Callback<bool> done) {
  std::unique_lock lock(store_mutex_);
  auto it = records_.find(leaver);
  if (it == records_.end()) {
    done(false);
    return;
  }
  indexes_.Remove(leaver, it->second.attributes);
  records_.erase(it);
  done(true);
}

void CollectionObject::UpdateCollectionEntry(const Loid& member,
                                             const AttributeDatabase& attributes,
                                             Callback<bool> done) {
  // The CollectionSink path is the member describing itself.
  UpdateEntryAs(member, member, attributes, std::move(done));
}

void CollectionObject::UpdateEntryAs(const Loid& caller, const Loid& member,
                                     const AttributeDatabase& attributes,
                                     Callback<bool> done) {
  if (!Authorized(caller, member)) {
    cells_.updates_rejected->Add();
    done(Status::Error(ErrorCode::kRefused,
                       caller.ToString() + " may not update " +
                           member.ToString()));
    return;
  }
  Upsert(member, attributes);
  done(true);
}

void CollectionObject::QueryCollection(const std::string& query_text,
                                       Callback<CollectionData> done) {
  QueryCollection(query_text, QueryOptions{}, std::move(done));
}

void CollectionObject::QueryCollection(const std::string& query_text,
                                       const QueryOptions& options,
                                       Callback<CollectionData> done) {
  // Staleness the caller is about to act on (simulated age of records).
  cells_.staleness_ms->Observe(MeanRecordAge().millis());
  auto result = QueryLocal(query_text, options);
  if (!result) {
    done(result.status());
    return;
  }
  done(std::move(*result));
}

Result<CollectionData> CollectionObject::QueryLocal(
    const std::string& query_text, const QueryOptions& options) const {
  bool hit = false;
  auto compiled = compile_cache_.Get(query_text, &hit);
  (hit ? cells_.compile_cache_hits : cells_.compile_cache_misses)->Add();
  if (!compiled) return compiled.status();
  return Execute(*compiled, options);
}

void CollectionObject::MaterializeDerived(CollectionRecord& record) const {
  functions_.ForEach([&record](const std::string& name,
                               const query::FunctionRegistry::Fn& fn) {
    record.attributes.Set(name, fn(record.attributes, {}));
  });
}

CollectionData CollectionObject::EmitResults(
    std::vector<const CollectionRecord*>& matched,
    const QueryOptions& options) const {
  if (!options.order_by.empty()) {
    // Rank by the stored attribute: numeric keys first (ascending or
    // descending), then records without one, both tiers member-ordered
    // so the result order is total and deterministic.
    struct Keyed {
      int missing;
      double key;
      const CollectionRecord* record;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(matched.size());
    for (const CollectionRecord* record : matched) {
      const AttrValue* value = record->attributes.Get(options.order_by);
      const bool numeric = value != nullptr && value->is_numeric() &&
                           !std::isnan(value->as_double());
      keyed.push_back(Keyed{numeric ? 0 : 1,
                            numeric ? value->as_double() : 0.0, record});
    }
    const bool descending = options.descending;
    auto before = [descending](const Keyed& a, const Keyed& b) {
      if (a.missing != b.missing) return a.missing < b.missing;
      if (a.key != b.key) return descending ? a.key > b.key : a.key < b.key;
      return a.record->member < b.record->member;
    };
    if (options.max_results != 0 && options.max_results < keyed.size()) {
      // Top-k selection: never fully sort a thousand matches to hand the
      // scheduler its ten best.
      std::partial_sort(keyed.begin(), keyed.begin() + options.max_results,
                        keyed.end(), before);
      keyed.resize(options.max_results);
    } else {
      std::sort(keyed.begin(), keyed.end(), before);
    }
    matched.clear();
    for (const Keyed& k : keyed) matched.push_back(k.record);
  } else if (options.max_results != 0 && options.max_results < matched.size()) {
    matched.resize(options.max_results);
  }

  CollectionData out;
  out.reserve(matched.size());
  for (const CollectionRecord* record : matched) {
    out.push_back(*record);
    MaterializeDerived(out.back());
  }
  return out;
}

Result<CollectionData> CollectionObject::Execute(
    const query::CompiledQuery& query, const QueryOptions& options) const {
  cells_.queries_served->Add();
  const std::int64_t wall_start = WallMicros();
  std::shared_lock lock(store_mutex_);

  std::vector<const CollectionRecord*> matched;
  bool used_index = false;
  const query::IndexPlan* plan = query.plan();
  if (plan != nullptr && !options.force_scan && !records_.empty()) {
    // An index path that would visit most of the store gathers and sorts
    // more than the scan it replaces; gate on a capped estimate.
    const std::size_t limit = records_.size() - records_.size() / 4;
    if (indexes_.Estimate(*plan, limit) <= limit) {
      used_index = true;
      AttributeIndexes::Candidates candidates = indexes_.Eval(*plan);
      matched.reserve(candidates.members.size());
      // Candidates come member-ordered, so in the default order the
      // query can stop at max_results matches -- true early termination.
      const bool member_order = options.order_by.empty();
      for (const Loid& member : candidates.members) {
        auto it = records_.find(member);
        if (it == records_.end()) continue;
        if (candidates.exact ||
            query.Matches(it->second.attributes, &functions_)) {
          matched.push_back(&it->second);
          if (member_order && options.max_results != 0 &&
              matched.size() == options.max_results) {
            break;
          }
        }
      }
    }
  }
  if (used_index) {
    cells_.index_hits->Add();
  } else {
    cells_.planner_fallbacks->Add();
    matched.reserve(records_.size() / 4);
    for (const auto& [member, record] : records_) {
      if (query.Matches(record.attributes, &functions_)) {
        matched.push_back(&record);
      }
    }
    // Deterministic output order regardless of hash-map iteration.
    std::sort(matched.begin(), matched.end(),
              [](const CollectionRecord* a, const CollectionRecord* b) {
                return a->member < b->member;
              });
  }

  CollectionData out = EmitResults(matched, options);
  cells_.query_wall_us->Observe(
      static_cast<double>(WallMicros() - wall_start));
  return out;
}

Result<CollectionData> CollectionObject::QueryLocal(
    const query::CompiledQuery& query, const QueryOptions& options) const {
  return Execute(query, options);
}

Result<CollectionData> CollectionObject::QueryLocalParallel(
    const query::CompiledQuery& query, unsigned threads,
    const QueryOptions& options) const {
  if (threads == 0) threads = options_.query_threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  // More workers than cores only adds scheduling overhead (E4b measures
  // pure slowdown on a single-core box); force_scan keeps the requested
  // fan-out so the ablation can time it anyway.
  if (!options.force_scan) {
    threads = std::min(threads,
                       std::max(1u, std::thread::hardware_concurrency()));
  }

  // Fan-out pays for itself only on big non-sargable scans: indexed
  // queries are already sub-linear, and below the threshold the whole
  // scan costs less than starting threads (bench_collection measures
  // the crossover).  force_scan suppresses the heuristic so the
  // ablation can time the raw fan-out at any size.
  if (threads <= 1 ||
      (!options.force_scan &&
       (query.plan() != nullptr ||
        record_count() < kParallelFanoutThreshold))) {
    return Execute(query, options);
  }

  cells_.queries_served->Add();
  cells_.planner_fallbacks->Add();
  const std::int64_t wall_start = WallMicros();

  // Readers don't block readers: hold the shared lock for the whole
  // evaluation so writers stay out while workers scan the records.
  std::shared_lock lock(store_mutex_);
  std::vector<const CollectionRecord*> snapshot;
  snapshot.reserve(records_.size());
  for (const auto& [member, record] : records_) snapshot.push_back(&record);

  std::vector<std::vector<const CollectionRecord*>> partials(threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (snapshot.size() + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = std::min(snapshot.size(), t * chunk);
      const std::size_t end = std::min(snapshot.size(), begin + chunk);
      workers.emplace_back([&, begin, end, t] {
        for (std::size_t i = begin; i < end; ++i) {
          if (query.Matches(snapshot[i]->attributes, &functions_)) {
            partials[t].push_back(snapshot[i]);
          }
        }
      });
    }
  }  // jthreads join here

  std::vector<const CollectionRecord*> matched;
  for (const auto& partial : partials) {
    matched.insert(matched.end(), partial.begin(), partial.end());
  }
  std::sort(matched.begin(), matched.end(),
            [](const CollectionRecord* a, const CollectionRecord* b) {
              return a->member < b->member;
            });

  CollectionData out = EmitResults(matched, options);
  cells_.query_wall_us->Observe(
      static_cast<double>(WallMicros() - wall_start));
  return out;
}

void CollectionObject::PullFrom(const std::vector<Loid>& members,
                                Callback<std::size_t> done) {
  if (members.empty()) {
    done(static_cast<std::size_t>(0));
    return;
  }
  // One RPC per member; count successful refreshes.
  struct PullState {
    std::size_t outstanding;
    std::size_t refreshed = 0;
    Callback<std::size_t> done;
  };
  auto state = std::make_shared<PullState>();
  state->outstanding = members.size();
  state->done = std::move(done);
  for (const Loid& member : members) {
    kernel()->AsyncCall<AttributeDatabase>(
        loid(), member, kSmallMessage, kMediumMessage, kDefaultRpcTimeout,
        [kernel = kernel(), member](Callback<AttributeDatabase> reply) {
          auto* object =
              dynamic_cast<LegionObject*>(kernel->FindActor(member));
          if (object == nullptr) {
            reply(Status::Error(ErrorCode::kUnavailable,
                                "no such resource: " + member.ToString()));
            return;
          }
          reply(object->attributes());
        },
        [this, member, state](Result<AttributeDatabase> attrs) {
          if (attrs.ok()) {
            Upsert(member, *attrs);
            ++state->refreshed;
          }
          if (--state->outstanding == 0) state->done(state->refreshed);
        },
        "pull_attributes");
  }
}

void CollectionObject::AddTrustedUpdater(const Loid& agent) {
  trusted_.insert(agent);
}

std::size_t CollectionObject::record_count() const {
  std::shared_lock lock(store_mutex_);
  return records_.size();
}

Duration CollectionObject::MeanRecordAge() const {
  std::shared_lock lock(store_mutex_);
  if (records_.empty()) return Duration::Zero();
  std::int64_t total = 0;
  const SimTime now = kernel()->Now();
  for (const auto& [member, record] : records_) {
    total += (now - record.updated_at).micros();
  }
  return Duration(total / static_cast<std::int64_t>(records_.size()));
}

}  // namespace legion
