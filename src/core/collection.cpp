#include "core/collection.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace legion {

namespace {
// Wall-clock microseconds for measuring real evaluation cost.
std::int64_t WallMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

namespace {
// Well-known serial for the Collection service class.
constexpr std::uint64_t kCollectionClassSerial = 4;
}  // namespace

CollectionObject::CollectionObject(SimKernel* kernel, Loid loid,
                                   CollectionOptions options)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(),
                        kCollectionClassSerial)),
      options_(options) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "collection");

  obs::MetricsRegistry& metrics = kernel->metrics();
  const obs::Labels labels = {{"component", "collection"}};
  cells_.queries_served = metrics.GetCounter("queries_served", labels);
  cells_.updates_applied = metrics.GetCounter("updates_applied", labels);
  cells_.updates_rejected = metrics.GetCounter("updates_rejected", labels);
  cells_.query_wall_us =
      metrics.GetHistogram("collection_query_wall_us", labels,
                           {1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1e3, 5e3, 1e4,
                            5e4, 1e5, 1e6});
  cells_.staleness_ms = metrics.GetHistogram(
      "collection_staleness_ms", labels,
      {1.0, 10.0, 100.0, 1e3, 5e3, 1e4, 3e4, 6e4, 3e5, 6e5, 3.6e6});
}

bool CollectionObject::Authorized(const Loid& caller,
                                  const Loid& member) const {
  if (!options_.authenticate) return true;
  if (caller == member) return true;  // a resource may describe itself
  return trusted_.count(caller) != 0;
}

void CollectionObject::Upsert(const Loid& member,
                              const AttributeDatabase& attributes) {
  std::unique_lock lock(store_mutex_);
  CollectionRecord& record = records_[member];
  record.member = member;
  record.attributes = attributes;
  // Every record self-identifies so injected functions can key external
  // state (e.g. load history) by member.
  record.attributes.Set("member", member.ToString());
  record.updated_at = kernel()->Now();
  ++record.update_count;
  cells_.updates_applied->Add();
}

void CollectionObject::JoinCollection(const Loid& joiner, Callback<bool> done) {
  // Join without an installment of initial description: an empty record
  // that a later update or pull will fill.
  Upsert(joiner, AttributeDatabase{});
  done(true);
}

void CollectionObject::JoinCollection(const Loid& joiner,
                                      const AttributeDatabase& attributes,
                                      Callback<bool> done) {
  Upsert(joiner, attributes);
  done(true);
}

void CollectionObject::LeaveCollection(const Loid& leaver,
                                       Callback<bool> done) {
  std::unique_lock lock(store_mutex_);
  done(records_.erase(leaver) != 0);
}

void CollectionObject::UpdateCollectionEntry(const Loid& member,
                                             const AttributeDatabase& attributes,
                                             Callback<bool> done) {
  // The CollectionSink path is the member describing itself.
  UpdateEntryAs(member, member, attributes, std::move(done));
}

void CollectionObject::UpdateEntryAs(const Loid& caller, const Loid& member,
                                     const AttributeDatabase& attributes,
                                     Callback<bool> done) {
  if (!Authorized(caller, member)) {
    cells_.updates_rejected->Add();
    done(Status::Error(ErrorCode::kRefused,
                       caller.ToString() + " may not update " +
                           member.ToString()));
    return;
  }
  Upsert(member, attributes);
  done(true);
}

void CollectionObject::QueryCollection(const std::string& query_text,
                                       Callback<CollectionData> done) {
  // Staleness the caller is about to act on (simulated age of records).
  cells_.staleness_ms->Observe(MeanRecordAge().millis());
  auto result = QueryLocal(query_text);
  if (!result) {
    done(result.status());
    return;
  }
  done(std::move(*result));
}

Result<CollectionData> CollectionObject::QueryLocal(
    const std::string& query_text) const {
  auto compiled = query::CompiledQuery::Compile(query_text);
  if (!compiled) return compiled.status();
  return QueryLocal(*compiled);
}

void CollectionObject::MaterializeDerived(CollectionRecord& record) const {
  functions_.ForEach([&record](const std::string& name,
                               const query::FunctionRegistry::Fn& fn) {
    record.attributes.Set(name, fn(record.attributes, {}));
  });
}

Result<CollectionData> CollectionObject::QueryLocal(
    const query::CompiledQuery& query) const {
  cells_.queries_served->Add();
  const std::int64_t wall_start = WallMicros();
  CollectionData matches;
  std::shared_lock lock(store_mutex_);
  for (const auto& [member, record] : records_) {
    if (query.Matches(record.attributes, &functions_)) {
      matches.push_back(record);
      MaterializeDerived(matches.back());
    }
  }
  // Deterministic output order regardless of hash-map iteration.
  std::sort(matches.begin(), matches.end(),
            [](const CollectionRecord& a, const CollectionRecord& b) {
              return a.member < b.member;
            });
  cells_.query_wall_us->Observe(
      static_cast<double>(WallMicros() - wall_start));
  return matches;
}

Result<CollectionData> CollectionObject::QueryLocalParallel(
    const query::CompiledQuery& query, unsigned threads) const {
  cells_.queries_served->Add();
  const std::int64_t wall_start = WallMicros();
  if (threads == 0) threads = options_.query_threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;

  // Readers don't block readers: hold the shared lock for the whole
  // evaluation so writers stay out while workers scan the records.
  std::shared_lock lock(store_mutex_);
  std::vector<const CollectionRecord*> snapshot;
  snapshot.reserve(records_.size());
  for (const auto& [member, record] : records_) snapshot.push_back(&record);

  if (snapshot.size() < 2 * threads) {
    // Not worth fanning out.
    CollectionData matches;
    for (const auto* record : snapshot) {
      if (query.Matches(record->attributes, &functions_)) {
        matches.push_back(*record);
        MaterializeDerived(matches.back());
      }
    }
    std::sort(matches.begin(), matches.end(),
              [](const CollectionRecord& a, const CollectionRecord& b) {
                return a.member < b.member;
              });
    cells_.query_wall_us->Observe(
        static_cast<double>(WallMicros() - wall_start));
    return matches;
  }

  std::vector<CollectionData> partials(threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (snapshot.size() + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = std::min(snapshot.size(), t * chunk);
      const std::size_t end = std::min(snapshot.size(), begin + chunk);
      workers.emplace_back([&, begin, end, t] {
        for (std::size_t i = begin; i < end; ++i) {
          if (query.Matches(snapshot[i]->attributes, &functions_)) {
            partials[t].push_back(*snapshot[i]);
            MaterializeDerived(partials[t].back());
          }
        }
      });
    }
  }  // jthreads join here

  CollectionData matches;
  for (auto& partial : partials) {
    matches.insert(matches.end(), std::make_move_iterator(partial.begin()),
                   std::make_move_iterator(partial.end()));
  }
  std::sort(matches.begin(), matches.end(),
            [](const CollectionRecord& a, const CollectionRecord& b) {
              return a.member < b.member;
            });
  cells_.query_wall_us->Observe(
      static_cast<double>(WallMicros() - wall_start));
  return matches;
}

void CollectionObject::PullFrom(const std::vector<Loid>& members,
                                Callback<std::size_t> done) {
  if (members.empty()) {
    done(static_cast<std::size_t>(0));
    return;
  }
  // One RPC per member; count successful refreshes.
  struct PullState {
    std::size_t outstanding;
    std::size_t refreshed = 0;
    Callback<std::size_t> done;
  };
  auto state = std::make_shared<PullState>();
  state->outstanding = members.size();
  state->done = std::move(done);
  for (const Loid& member : members) {
    kernel()->AsyncCall<AttributeDatabase>(
        loid(), member, kSmallMessage, kMediumMessage, kDefaultRpcTimeout,
        [kernel = kernel(), member](Callback<AttributeDatabase> reply) {
          auto* object =
              dynamic_cast<LegionObject*>(kernel->FindActor(member));
          if (object == nullptr) {
            reply(Status::Error(ErrorCode::kUnavailable,
                                "no such resource: " + member.ToString()));
            return;
          }
          reply(object->attributes());
        },
        [this, member, state](Result<AttributeDatabase> attrs) {
          if (attrs.ok()) {
            Upsert(member, *attrs);
            ++state->refreshed;
          }
          if (--state->outstanding == 0) state->done(state->refreshed);
        },
        "pull_attributes");
  }
}

void CollectionObject::AddTrustedUpdater(const Loid& agent) {
  trusted_.insert(agent);
}

std::size_t CollectionObject::record_count() const {
  std::shared_lock lock(store_mutex_);
  return records_.size();
}

Duration CollectionObject::MeanRecordAge() const {
  std::shared_lock lock(store_mutex_);
  if (records_.empty()) return Duration::Zero();
  std::int64_t total = 0;
  const SimTime now = kernel()->Now();
  for (const auto& [member, record] : records_) {
    total += (now - record.updated_at).micros();
  }
  return Duration(total / static_cast<std::int64_t>(records_.size()));
}

}  // namespace legion
