#include "core/collection.h"

#include <algorithm>
#include <cmath>
#include <thread>

namespace legion {

namespace {
// Well-known serial for the Collection service class.
constexpr std::uint64_t kCollectionClassSerial = 4;
}  // namespace

CollectionObject::CollectionObject(SimKernel* kernel, Loid loid,
                                   CollectionOptions options)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(),
                        kCollectionClassSerial)),
      options_(options) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "collection");

  obs::MetricsRegistry& metrics = kernel->metrics();
  const obs::Labels labels = {{"component", "collection"}};
  cells_.queries_served = metrics.GetCounter("queries_served", labels);
  cells_.updates_applied = metrics.GetCounter("updates_applied", labels);
  cells_.updates_rejected = metrics.GetCounter("updates_rejected", labels);
  cells_.index_hits = metrics.GetCounter("index_hits", labels);
  cells_.planner_fallbacks = metrics.GetCounter("planner_fallbacks", labels);
  cells_.compile_cache_hits =
      metrics.GetCounter("compile_cache_hits", labels);
  cells_.compile_cache_misses =
      metrics.GetCounter("compile_cache_misses", labels);
  cells_.query_wall_us =
      metrics.GetHistogram("collection_query_wall_us", labels,
                           {1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1e3, 5e3, 1e4,
                            5e4, 1e5, 1e6});
  cells_.staleness_ms = metrics.GetHistogram(
      "collection_staleness_ms", labels,
      {1.0, 10.0, 100.0, 1e3, 5e3, 1e4, 3e4, 6e4, 3e5, 6e5, 3.6e6});
  cells_.delta_pushes = metrics.GetCounter("delta_pushes", labels);
  cells_.delta_records = metrics.GetCounter("delta_records", labels);
  cells_.stale_answers = metrics.GetCounter("stale_answers", labels);
  cells_.refresh_pulls = metrics.GetCounter("refresh_pulls", labels);
}

bool CollectionObject::Authorized(const Loid& caller,
                                  const Loid& member) const {
  if (!options_.authenticate) return true;
  if (caller == member) return true;  // a resource may describe itself
  return trusted_.count(caller) != 0;
}

void CollectionObject::Upsert(const Loid& member,
                              const AttributeDatabase& attributes) {
  std::unique_lock lock(store_mutex_);
  CollectionRecord& record = records_[member];
  // Keep the indexes in lockstep with the store: unindex the outgoing
  // attribute values before they are overwritten.
  indexes_.Remove(member, record.attributes);
  record.member = member;
  record.attributes = attributes;
  // Every record self-identifies so injected functions can key external
  // state (e.g. load history) by member.
  record.attributes.Set("member", member.ToString());
  record.updated_at = kernel()->Now();
  ++record.update_count;
  indexes_.Add(member, record.attributes);
  cells_.updates_applied->Add();
  JournalDelta(CollectionDelta::Kind::kUpsert, member, record.attributes);
}

void CollectionObject::JournalDelta(CollectionDelta::Kind kind,
                                    const Loid& member,
                                    const AttributeDatabase& attributes) {
  if (!parent_.valid()) return;
  CollectionDelta& delta = journal_[member];
  delta.kind = kind;
  delta.member = member;
  delta.version = ++next_delta_version_;
  delta.attributes =
      kind == CollectionDelta::Kind::kUpsert ? attributes : AttributeDatabase{};
}

void CollectionObject::JoinCollection(const Loid& joiner, Callback<bool> done) {
  // Join without an installment of initial description: an empty record
  // that a later update or pull will fill.
  Upsert(joiner, AttributeDatabase{});
  done(true);
}

void CollectionObject::JoinCollection(const Loid& joiner,
                                      const AttributeDatabase& attributes,
                                      Callback<bool> done) {
  Upsert(joiner, attributes);
  done(true);
}

void CollectionObject::LeaveCollection(const Loid& leaver,
                                       Callback<bool> done) {
  std::unique_lock lock(store_mutex_);
  auto it = records_.find(leaver);
  if (it == records_.end()) {
    done(false);
    return;
  }
  indexes_.Remove(leaver, it->second.attributes);
  records_.erase(it);
  JournalDelta(CollectionDelta::Kind::kLeave, leaver, AttributeDatabase{});
  done(true);
}

void CollectionObject::UpdateCollectionEntry(const Loid& member,
                                             const AttributeDatabase& attributes,
                                             Callback<bool> done) {
  // The CollectionSink path is the member describing itself.
  UpdateEntryAs(member, member, attributes, std::move(done));
}

void CollectionObject::UpdateEntryAs(const Loid& caller, const Loid& member,
                                     const AttributeDatabase& attributes,
                                     Callback<bool> done) {
  if (!Authorized(caller, member)) {
    cells_.updates_rejected->Add();
    done(Status::Error(ErrorCode::kRefused,
                       caller.ToString() + " may not update " +
                           member.ToString()));
    return;
  }
  Upsert(member, attributes);
  done(true);
}

void CollectionObject::QueryCollection(const std::string& query_text,
                                       Callback<CollectionData> done) {
  QueryCollection(query_text, QueryOptions{}, std::move(done));
}

void CollectionObject::QueryCollection(const std::string& query_text,
                                       const QueryOptions& options,
                                       Callback<CollectionData> done) {
  // Staleness the caller is about to act on (simulated age of records).
  cells_.staleness_ms->Observe(MeanRecordAge().millis());
  if (!children_.empty() && options.max_staleness < Duration::Infinite()) {
    RefreshThenAnswer(query_text, options, std::move(done));
    return;
  }
  auto result = QueryLocal(query_text, options);
  if (!result) {
    done(result.status());
    return;
  }
  done(std::move(*result));
}

void CollectionObject::RefreshThenAnswer(const std::string& query_text,
                                         const QueryOptions& options,
                                         Callback<CollectionData> done) {
  const SimTime now = kernel()->Now();
  std::vector<ChildState*> stale;
  for (auto& [domain, child] : children_) {
    if (options.domain_scope >= 0 &&
        domain != static_cast<DomainId>(options.domain_scope)) {
      continue;
    }
    if (now - child.last_delta_at > options.max_staleness) {
      stale.push_back(&child);
    }
  }
  auto answer = [this, query_text, options,
                 done = std::move(done)](bool any_stale) {
    if (any_stale) cells_.stale_answers->Add();
    auto result = QueryLocal(query_text, options);
    if (!result) {
      done(result.status());
      return;
    }
    done(std::move(*result));
  };
  if (stale.empty()) {
    answer(false);
    return;
  }
  cells_.refresh_pulls->Add(stale.size());
  struct RefreshState {
    std::size_t outstanding;
    bool any_failed = false;
    std::function<void(bool)> answer;
  };
  auto state = std::make_shared<RefreshState>();
  state->outstanding = stale.size();
  state->answer = std::move(answer);
  for (ChildState* child : stale) {
    const Loid sub = child->sub;
    kernel()->AsyncCall<DeltaBatch>(
        loid(), sub, kSmallMessage, kLargeMessage, Duration::Seconds(5),
        [kernel = kernel(), sub](Callback<DeltaBatch> reply) {
          auto* collection =
              dynamic_cast<CollectionObject*>(kernel->FindActor(sub));
          if (collection == nullptr) {
            reply(Status::Error(ErrorCode::kUnavailable,
                                "no such sub-Collection: " + sub.ToString()));
            return;
          }
          reply(collection->PendingDeltas());
        },
        [this, state](Result<DeltaBatch> batch) {
          if (batch.ok()) {
            ApplyDeltaBatch(*batch, [](Result<std::uint64_t>) {});
          } else {
            state->any_failed = true;
          }
          if (--state->outstanding == 0) state->answer(state->any_failed);
        },
        "refresh_pull");
  }
}

Result<CollectionData> CollectionObject::QueryLocal(
    const std::string& query_text, const QueryOptions& options) const {
  bool hit = false;
  auto compiled = compile_cache_.Get(query_text, &hit);
  (hit ? cells_.compile_cache_hits : cells_.compile_cache_misses)->Add();
  if (!compiled) return compiled.status();
  return Execute(*compiled, options);
}

void CollectionObject::MaterializeDerived(CollectionRecord& record) const {
  functions_.ForEach([&record](const std::string& name,
                               const query::FunctionRegistry::Fn& fn) {
    record.attributes.Set(name, fn(record.attributes, {}));
  });
}

CollectionData CollectionObject::EmitResults(
    std::vector<const CollectionRecord*>& matched,
    const QueryOptions& options) const {
  if (!options.order_by.empty()) {
    // Rank by the stored attribute: numeric keys first (ascending or
    // descending), then records without one, both tiers member-ordered
    // so the result order is total and deterministic.
    struct Keyed {
      int missing;
      double key;
      const CollectionRecord* record;
    };
    std::vector<Keyed> keyed;
    keyed.reserve(matched.size());
    for (const CollectionRecord* record : matched) {
      const AttrValue* value = record->attributes.Get(options.order_by);
      const bool numeric = value != nullptr && value->is_numeric() &&
                           !std::isnan(value->as_double());
      keyed.push_back(Keyed{numeric ? 0 : 1,
                            numeric ? value->as_double() : 0.0, record});
    }
    const bool descending = options.descending;
    auto before = [descending](const Keyed& a, const Keyed& b) {
      if (a.missing != b.missing) return a.missing < b.missing;
      if (a.key != b.key) return descending ? a.key > b.key : a.key < b.key;
      return a.record->member < b.record->member;
    };
    if (options.max_results != 0 && options.max_results < keyed.size()) {
      // Top-k selection: never fully sort a thousand matches to hand the
      // scheduler its ten best.
      std::partial_sort(keyed.begin(), keyed.begin() + options.max_results,
                        keyed.end(), before);
      keyed.resize(options.max_results);
    } else {
      std::sort(keyed.begin(), keyed.end(), before);
    }
    matched.clear();
    for (const Keyed& k : keyed) matched.push_back(k.record);
  } else if (options.max_results != 0 && options.max_results < matched.size()) {
    matched.resize(options.max_results);
  }

  CollectionData out;
  out.reserve(matched.size());
  for (const CollectionRecord* record : matched) {
    out.push_back(*record);
    MaterializeDerived(out.back());
  }
  return out;
}

Result<CollectionData> CollectionObject::Execute(
    const query::CompiledQuery& query, const QueryOptions& options) const {
  cells_.queries_served->Add();
  // Wall cost is measured through the kernel's WallClock, which is pinned
  // by default -- the histogram stays deterministic unless a bench opts
  // into real time.
  const obs::WallClock& wall = kernel()->wallclock();
  const std::int64_t wall_start = wall.Micros();
  std::shared_lock lock(store_mutex_);

  const bool scoped = options.domain_scope >= 0;
  const auto scope = static_cast<DomainId>(scoped ? options.domain_scope : 0);
  std::vector<const CollectionRecord*> matched;
  bool used_index = false;
  const query::IndexPlan* plan = query.plan();
  if (plan != nullptr && !options.force_scan && !records_.empty()) {
    // An index path that would visit most of the store gathers and sorts
    // more than the scan it replaces; gate on a capped estimate.
    const std::size_t limit = records_.size() - records_.size() / 4;
    if (indexes_.Estimate(*plan, limit) <= limit) {
      used_index = true;
      AttributeIndexes::Candidates candidates = indexes_.Eval(*plan);
      matched.reserve(candidates.members.size());
      // Candidates come member-ordered, so in the default order the
      // query can stop at max_results matches -- true early termination.
      const bool member_order = options.order_by.empty();
      for (const Loid& member : candidates.members) {
        if (scoped && member.domain() != scope) continue;
        auto it = records_.find(member);
        if (it == records_.end()) continue;
        if (candidates.exact ||
            query.Matches(it->second.attributes, &functions_)) {
          matched.push_back(&it->second);
          if (member_order && options.max_results != 0 &&
              matched.size() == options.max_results) {
            break;
          }
        }
      }
    }
  }
  if (used_index) {
    cells_.index_hits->Add();
  } else {
    cells_.planner_fallbacks->Add();
    matched.reserve(records_.size() / 4);
    for (const auto& [member, record] : records_) {
      if (scoped && member.domain() != scope) continue;
      if (query.Matches(record.attributes, &functions_)) {
        matched.push_back(&record);
      }
    }
    // Deterministic output order regardless of hash-map iteration.
    std::sort(matched.begin(), matched.end(),
              [](const CollectionRecord* a, const CollectionRecord* b) {
                return a->member < b->member;
              });
  }

  CollectionData out = EmitResults(matched, options);
  cells_.query_wall_us->Observe(
      static_cast<double>(wall.Micros() - wall_start));
  return out;
}

Result<CollectionData> CollectionObject::QueryLocal(
    const query::CompiledQuery& query, const QueryOptions& options) const {
  return Execute(query, options);
}

Result<CollectionData> CollectionObject::QueryLocalParallel(
    const query::CompiledQuery& query, unsigned threads,
    const QueryOptions& options) const {
  if (threads == 0) threads = options_.query_threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  // More workers than cores only adds scheduling overhead (E4b measures
  // pure slowdown on a single-core box); force_scan keeps the requested
  // fan-out so the ablation can time it anyway.
  if (!options.force_scan) {
    threads = std::min(threads,
                       std::max(1u, std::thread::hardware_concurrency()));
  }

  // Fan-out pays for itself only on big non-sargable scans: indexed
  // queries are already sub-linear, and below the threshold the whole
  // scan costs less than starting threads (bench_collection measures
  // the crossover).  force_scan suppresses the heuristic so the
  // ablation can time the raw fan-out at any size.
  if (threads <= 1 ||
      (!options.force_scan &&
       (query.plan() != nullptr ||
        record_count() < kParallelFanoutThreshold))) {
    return Execute(query, options);
  }

  cells_.queries_served->Add();
  cells_.planner_fallbacks->Add();
  const obs::WallClock& wall = kernel()->wallclock();
  const std::int64_t wall_start = wall.Micros();

  // Readers don't block readers: hold the shared lock for the whole
  // evaluation so writers stay out while workers scan the records.
  std::shared_lock lock(store_mutex_);
  const bool scoped = options.domain_scope >= 0;
  const auto scope = static_cast<DomainId>(scoped ? options.domain_scope : 0);
  std::vector<const CollectionRecord*> snapshot;
  snapshot.reserve(records_.size());
  for (const auto& [member, record] : records_) {
    if (scoped && member.domain() != scope) continue;
    snapshot.push_back(&record);
  }

  std::vector<std::vector<const CollectionRecord*>> partials(threads);
  {
    std::vector<std::jthread> workers;
    workers.reserve(threads);
    const std::size_t chunk = (snapshot.size() + threads - 1) / threads;
    for (unsigned t = 0; t < threads; ++t) {
      const std::size_t begin = std::min(snapshot.size(), t * chunk);
      const std::size_t end = std::min(snapshot.size(), begin + chunk);
      workers.emplace_back([&, begin, end, t] {
        for (std::size_t i = begin; i < end; ++i) {
          if (query.Matches(snapshot[i]->attributes, &functions_)) {
            partials[t].push_back(snapshot[i]);
          }
        }
      });
    }
  }  // jthreads join here

  std::vector<const CollectionRecord*> matched;
  for (const auto& partial : partials) {
    matched.insert(matched.end(), partial.begin(), partial.end());
  }
  std::sort(matched.begin(), matched.end(),
            [](const CollectionRecord* a, const CollectionRecord* b) {
              return a->member < b->member;
            });

  CollectionData out = EmitResults(matched, options);
  cells_.query_wall_us->Observe(
      static_cast<double>(wall.Micros() - wall_start));
  return out;
}

void CollectionObject::PullFrom(const std::vector<Loid>& members,
                                Callback<std::size_t> done) {
  if (members.empty()) {
    done(static_cast<std::size_t>(0));
    return;
  }
  // One RPC per member; count successful refreshes.
  struct PullState {
    std::size_t outstanding;
    std::size_t refreshed = 0;
    Callback<std::size_t> done;
  };
  auto state = std::make_shared<PullState>();
  state->outstanding = members.size();
  state->done = std::move(done);
  for (const Loid& member : members) {
    kernel()->AsyncCall<AttributeDatabase>(
        loid(), member, kSmallMessage, kMediumMessage, kDefaultRpcTimeout,
        [kernel = kernel(), member](Callback<AttributeDatabase> reply) {
          auto* object =
              dynamic_cast<LegionObject*>(kernel->FindActor(member));
          if (object == nullptr) {
            reply(Status::Error(ErrorCode::kUnavailable,
                                "no such resource: " + member.ToString()));
            return;
          }
          reply(object->attributes());
        },
        [this, member, state](Result<AttributeDatabase> attrs) {
          if (attrs.ok()) {
            Upsert(member, *attrs);
            ++state->refreshed;
          }
          if (--state->outstanding == 0) state->done(state->refreshed);
        },
        "pull_attributes");
  }
}

// ---- Federation (DESIGN.md §10) ---------------------------------------------

void CollectionObject::SetParent(const Loid& parent, Duration push_period) {
  parent_ = parent;
  push_period_ = push_period;
  if (push_timer_ != 0) kernel()->CancelPeriodic(push_timer_);
  push_timer_ =
      kernel()->SchedulePeriodic(push_period, [this] { FlushDeltas(); });
  // Records stored before the parent link predate the journal: snapshot
  // them so the root converges without waiting for organic updates.
  std::unique_lock lock(store_mutex_);
  for (const auto& [member, record] : records_) {
    JournalDelta(CollectionDelta::Kind::kUpsert, member, record.attributes);
  }
}

void CollectionObject::AddChild(DomainId domain, const Loid& sub) {
  children_[domain] = ChildState{sub, kernel()->Now()};
}

DeltaBatch CollectionObject::PendingDeltas() const {
  DeltaBatch batch;
  batch.source = loid();
  batch.domain = loid().domain();
  {
    std::shared_lock lock(store_mutex_);
    batch.deltas.reserve(journal_.size());
    for (const auto& [member, delta] : journal_) {
      batch.deltas.push_back(delta);
    }
  }
  // Version order reflects the causal order of the coalesced changes.
  std::sort(batch.deltas.begin(), batch.deltas.end(),
            [](const CollectionDelta& a, const CollectionDelta& b) {
              return a.version < b.version;
            });
  return batch;
}

void CollectionObject::FlushDeltas() {
  if (!parent_.valid()) return;
  DeltaBatch batch = PendingDeltas();
  cells_.delta_pushes->Add();
  cells_.delta_records->Add(batch.deltas.size());
  // The push must resolve (deliver or time out) before the next period
  // fires, or unacked journals would pile up in flight.
  const Duration timeout = std::max(
      Duration::Seconds(1), push_period_ - Duration::Millis(1));
  const Loid parent = parent_;
  // Hoisted: the invoke lambda moves `batch`, and argument evaluation
  // order is unspecified.
  const std::size_t batch_bytes = DeltaBatchBytes(batch);
  kernel()->AsyncCall<std::uint64_t>(
      loid(), parent, batch_bytes, kSmallMessage, timeout,
      [kernel = kernel(), parent,
       batch = std::move(batch)](Callback<std::uint64_t> reply) {
        auto* root =
            dynamic_cast<CollectionObject*>(kernel->FindActor(parent));
        if (root == nullptr) {
          reply(Status::Error(ErrorCode::kUnavailable,
                              "no federation root: " + parent.ToString()));
          return;
        }
        root->ApplyDeltaBatch(batch, std::move(reply));
      },
      [this](Result<std::uint64_t> acked) {
        // Lost or refused pushes leave the journal intact: the whole
        // backlog retransmits next period and the root's version check
        // dedupes whatever had in fact arrived.
        if (!acked.ok()) return;
        std::unique_lock lock(store_mutex_);
        for (auto it = journal_.begin(); it != journal_.end();) {
          if (it->second.version <= *acked) {
            it = journal_.erase(it);
          } else {
            ++it;
          }
        }
      },
      "delta_push");
}

void CollectionObject::ApplyDeltaBatch(const DeltaBatch& batch,
                                       Callback<std::uint64_t> done) {
  auto child = children_.find(batch.domain);
  const bool enrolled =
      child != children_.end() && child->second.sub == batch.source;
  if (options_.authenticate && !enrolled) {
    cells_.updates_rejected->Add();
    done(Status::Error(ErrorCode::kRefused,
                       batch.source.ToString() +
                           " is not an enrolled sub-Collection"));
    return;
  }
  if (enrolled) child->second.last_delta_at = kernel()->Now();
  std::uint64_t high = 0;
  for (const CollectionDelta& delta : batch.deltas) {
    high = std::max(high, delta.version);
    std::uint64_t& applied = applied_versions_[delta.member];
    // Late or retransmitted delta: a newer change already applied.
    if (delta.version <= applied) continue;
    applied = delta.version;
    if (delta.kind == CollectionDelta::Kind::kUpsert) {
      Upsert(delta.member, delta.attributes);
    } else {
      std::unique_lock lock(store_mutex_);
      auto it = records_.find(delta.member);
      if (it != records_.end()) {
        indexes_.Remove(delta.member, it->second.attributes);
        records_.erase(it);
        JournalDelta(CollectionDelta::Kind::kLeave, delta.member,
                     AttributeDatabase{});
      }
    }
  }
  done(high);
}

void CollectionObject::AddTrustedUpdater(const Loid& agent) {
  trusted_.insert(agent);
}

std::size_t CollectionObject::record_count() const {
  std::shared_lock lock(store_mutex_);
  return records_.size();
}

Duration CollectionObject::MeanRecordAge() const {
  std::shared_lock lock(store_mutex_);
  if (records_.empty()) return Duration::Zero();
  std::int64_t total = 0;
  const SimTime now = kernel()->Now();
  for (const auto& [member, record] : records_) {
    total += (now - record.updated_at).micros();
  }
  return Duration(total / static_cast<std::int64_t>(records_.size()));
}

}  // namespace legion
