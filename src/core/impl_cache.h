// Implementation caches (paper section 2).
//
// "Between core objects and user objects lie service objects -- objects
// which improve system performance, but are not truly essential to
// system operation.  Examples of service objects include caches for
// object implementations, file objects, and the resource management
// infrastructure."
//
// An ImplementationCacheObject sits near a group of hosts (typically one
// per domain) and serves class binaries.  The first request for an
// implementation pulls the binary from the class object across the
// network (paying the transfer for `binary_bytes`); subsequent requests
// hit the cache at LAN cost.  Hosts consult their cache before first
// activating an implementation, so cold starts are visibly slower than
// warm starts -- the performance effect the paper introduces service
// objects for.
#pragma once

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "objects/interfaces.h"
#include "objects/legion_object.h"

namespace legion {

class ImplementationCacheObject : public LegionObject, public BinaryProvider {
 public:
  ImplementationCacheObject(SimKernel* kernel, Loid loid,
                            std::uint32_t domain);

  std::string DebugName() const override { return "impl-cache"; }

  // Ensures the binary for (class, "arch/os") is locally available;
  // `done(true)` once it is.  A miss pulls `binary_bytes` from the class
  // object over the network; concurrent requests for the same key share
  // one pull.
  void EnsureBinary(const Loid& class_loid, const std::string& impl_key,
                    std::size_t binary_bytes, Callback<bool> done) override;

  bool Cached(const Loid& class_loid, const std::string& impl_key) const;
  std::size_t cached_count() const { return cached_.size(); }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t bytes_cached() const { return bytes_cached_; }

 private:
  static std::string Key(const Loid& class_loid, const std::string& impl_key) {
    return class_loid.ToString() + "#" + impl_key;
  }

  std::unordered_set<std::string> cached_;
  // In-flight pulls: key -> waiting completions.
  std::unordered_map<std::string, std::vector<Callback<bool>>> pending_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::size_t bytes_cached_ = 0;
};

}  // namespace legion
