// Object migration (paper section 2.1).
//
// "All Legion objects automatically support shutdown and restart, and
// therefore any active object can be migrated by shutting it down, moving
// the passive state to a new Vault if necessary, and activating the
// object on another host."
//
// MigrateObject drives exactly that pipeline as a chain of
// message-counted RPCs issued on behalf of `agent` (typically the Monitor
// or a Scheduler):
//   1. old host: DeactivateObject  (stores the OPR in the old vault)
//   2. old vault -> new vault: FetchOpr / StoreOpr / DeleteOpr
//      (skipped when the vault stays put)
//   3. new host: ReactivateObject  (fetches the OPR, restores, admits)
#pragma once

#include "objects/legion_object.h"
#include "resources/host_object.h"

namespace legion {

struct MigrationOutcome {
  bool success = false;
  Loid from_host;
  Loid to_host;
  Duration elapsed;
  std::string detail;
};

// Migrates `object` to (to_host, to_vault).  The object must currently be
// active.  `agent` pays for the control messages.
void MigrateObject(SimKernel* kernel, const Loid& agent, const Loid& object,
                   const Loid& to_host, const Loid& to_vault,
                   Callback<MigrationOutcome> done);

}  // namespace legion
