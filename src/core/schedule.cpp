#include "core/schedule.h"

#include <sstream>

namespace legion {

std::string ObjectMapping::ToString() const {
  std::string s = class_loid.ToString() + " -> (" + host.ToString() + ", " +
                  vault.ToString() + ")";
  if (!implementation.empty()) s += " [" + implementation + "]";
  return s;
}

std::string VariantSchedule::ToString() const {
  std::ostringstream os;
  os << "variant[" << replaces.ToString() << "]{";
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    if (i != 0) os << "; ";
    os << '#' << mappings[i].first << ": " << mappings[i].second.ToString();
  }
  os << '}';
  return os.str();
}

std::vector<ObjectMapping> MasterSchedule::WithVariant(std::size_t v) const {
  std::vector<ObjectMapping> result = mappings;
  for (const auto& [index, mapping] : variants[v].mappings) {
    result[index] = mapping;
  }
  return result;
}

Status MasterSchedule::Validate() const {
  if (mappings.empty()) {
    return Status::Error(ErrorCode::kMalformedSchedule,
                         "master schedule has no mappings");
  }
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    const ObjectMapping& m = mappings[i];
    if (!m.class_loid.valid() || !m.host.valid() || !m.vault.valid()) {
      return Status::Error(ErrorCode::kMalformedSchedule,
                           "mapping " + std::to_string(i) +
                               " names an invalid LOID");
    }
  }
  for (std::size_t v = 0; v < variants.size(); ++v) {
    const VariantSchedule& variant = variants[v];
    if (variant.replaces.size() != mappings.size()) {
      return Status::Error(ErrorCode::kMalformedSchedule,
                           "variant " + std::to_string(v) +
                               " bitmap width disagrees with master");
    }
    if (variant.mappings.size() != variant.replaces.Count()) {
      return Status::Error(ErrorCode::kMalformedSchedule,
                           "variant " + std::to_string(v) +
                               " bitmap population disagrees with mappings");
    }
    for (const auto& [index, mapping] : variant.mappings) {
      if (index >= mappings.size()) {
        return Status::Error(ErrorCode::kMalformedSchedule,
                             "variant " + std::to_string(v) +
                                 " replaces out-of-range index " +
                                 std::to_string(index));
      }
      if (!variant.replaces.Test(index)) {
        return Status::Error(ErrorCode::kMalformedSchedule,
                             "variant " + std::to_string(v) +
                                 " mapping index not in its bitmap");
      }
      if (!mapping.class_loid.valid() || !mapping.host.valid() ||
          !mapping.vault.valid()) {
        return Status::Error(ErrorCode::kMalformedSchedule,
                             "variant " + std::to_string(v) +
                                 " names an invalid LOID");
      }
    }
  }
  return Status::Ok();
}

std::string MasterSchedule::ToString() const {
  std::ostringstream os;
  os << "master{";
  for (std::size_t i = 0; i < mappings.size(); ++i) {
    if (i != 0) os << "; ";
    os << mappings[i].ToString();
  }
  os << '}';
  for (const auto& variant : variants) os << ' ' << variant.ToString();
  return os.str();
}

Status ScheduleRequestList::Validate() const {
  if (masters.empty()) {
    return Status::Error(ErrorCode::kMalformedSchedule,
                         "request list has no master schedules");
  }
  for (const MasterSchedule& master : masters) {
    Status status = master.Validate();
    if (!status.ok()) return status;
  }
  return Status::Ok();
}

std::string ScheduleRequestList::ToString() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < masters.size(); ++i) {
    if (i != 0) os << '\n';
    os << '[' << i << "] " << masters[i].ToString();
  }
  return os.str();
}

std::string EnactResult::ToString() const {
  std::ostringstream os;
  os << (success ? "enacted{" : "failed{");
  for (std::size_t i = 0; i < instances.size(); ++i) {
    if (i != 0) os << "; ";
    if (instances[i].ok()) {
      os << instances[i].value().ToString();
    } else {
      os << instances[i].status().ToString();
    }
  }
  os << '}';
  return os.str();
}

}  // namespace legion
