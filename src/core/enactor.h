// The Enactor (paper section 3.4, figure 6).
//
// "A Scheduler first passes in the entire set of schedules to the
// make_reservations() call, and waits for feedback. ... If any schedule
// succeeded, the Scheduler can then use the enact_schedule() call to
// request that the Enactor instantiate objects on the reserved resources,
// or the cancel_reservations() method to release the resources."
//
// Variant handling: "If all mappings in the master schedule succeed, then
// scheduling is complete.  If not, then a variant schedule is selected
// that contains a new entry for the failed mapping. ... Implementing the
// variant schedule entails making new reservations for items in the
// variant schedule and canceling any corresponding reservations from the
// master schedule.  Our default Schedulers and Enactor work together to
// structure the variant schedules so as to avoid reservation thrashing
// (the canceling and subsequent remaking of the same reservation).  Our
// data structure includes a bitmap field (one bit per object mapping) for
// each variant schedule which allows the Enactor to efficiently select
// the next variant schedule to try."
//
// The Enactor is also the co-allocator: reservation requests for one
// schedule go out to all named hosts -- possibly in several
// administrative domains -- concurrently, and the schedule commits only
// if every mapping holds a token.
//
// For experiment E2 the bitmap-guided path can be disabled
// (use_variant_bitmaps = false): the Enactor then cancels *all* held
// reservations on any failure and retries the next variant from scratch,
// which exhibits exactly the thrashing the paper's design avoids.
#pragma once

#include <deque>
#include <memory>
#include <set>

#include "base/rng.h"
#include "core/health.h"
#include "core/schedule.h"
#include "objects/interfaces.h"
#include "objects/legion_object.h"

namespace legion {

// Per-mapping recovery of transient (kTimeout) reservation failures:
// bounded retries with deterministic exponential backoff and jitter
// drawn from the enactor's seeded RNG.  max_attempts counts the first
// try, so 1 disables retries (the pre-resilience behavior).
struct RetryPolicy {
  int max_attempts = 3;
  Duration base_delay = Duration::Millis(200);
  double multiplier = 2.0;
  Duration max_delay = Duration::Seconds(10);
  // Each delay is scaled by a uniform factor in [1-j, 1+j].
  double jitter_fraction = 0.25;
};

struct EnactorOptions {
  // Window parameters for the reservations the Enactor requests.
  Duration reservation_start_offset = Duration::Zero();  // 0 = instantaneous
  Duration reservation_duration = Duration::Hours(1);
  Duration confirm_timeout = Duration::Minutes(5);
  ReservationType reservation_type = ReservationType::OneShotTimesharing();
  Duration rpc_timeout = kDefaultRpcTimeout;
  // Batched negotiation (DESIGN.md §11): a round's requests are grouped
  // by target host and sent as ReserveBatch RPCs of at most
  // max_batch_size slots.  1 = the legacy one-RPC-per-mapping path
  // (byte-identical placements either way; the batch path saves round
  // trips and wire bytes).
  std::size_t max_batch_size = 64;
  // Backpressure: at most this many batches in flight at once; overflow
  // parks in a FIFO admission queue instead of flooding the event queue
  // and the WAN.  0 = unlimited.
  std::size_t max_outstanding_batches = 32;
  // Bitmap-guided variant selection (the paper's design).  When false,
  // any failure cancels every held reservation and the next variant is
  // tried as a whole schedule (naive baseline).
  bool use_variant_bitmaps = true;
  // Transient-failure recovery within one negotiation.
  RetryPolicy retry;
  // Circuit breaker over reservation outcomes: when true the Enactor
  // fails suspect targets fast (no RPC round trip) and probes them again
  // after a cooldown; schedulers consult the same tracker to demote or
  // skip suspect hosts in their candidate pools.
  bool use_health = true;
  // Breaker thresholds, consumed at construction.  To tune a live
  // enactor, go through health().options() instead.
  HealthOptions health;
};

// Negotiation statistics.  The registry cells (labels
// {component=enactor}) are the source of truth; this struct is the thin
// view stats() refreshes from them.
struct EnactorStats {
  std::uint64_t negotiations = 0;
  std::uint64_t reservations_requested = 0;
  std::uint64_t reservations_granted = 0;
  std::uint64_t reservations_failed = 0;
  std::uint64_t reservations_cancelled = 0;
  // Thrash metric: a reservation requested for an (index, mapping) pair
  // that was already granted and then cancelled within the same
  // negotiation -- the "canceling and subsequent remaking of the same
  // reservation" the paper's bitmap design avoids.
  std::uint64_t rereservations = 0;
  std::uint64_t enactments = 0;
  std::uint64_t enact_failures = 0;
  // Resilience metrics: reservation retries issued for transient
  // failures, attempts short-circuited because the target's breaker was
  // open, reservation RPCs sent as half-open probes, and mappings that
  // recovered in place (granted after at least one transient failure).
  std::uint64_t retries = 0;
  std::uint64_t breaker_open = 0;
  std::uint64_t breaker_probes = 0;
  std::uint64_t partial_recoveries = 0;
  // Batch pipeline: ReserveBatch RPCs sent, slots across them (their
  // ratio is the realized batch size; the batch_size histogram keeps the
  // distribution), and slots that waited in the bounded admission queue
  // because max_outstanding_batches was reached.
  std::uint64_t batches_sent = 0;
  std::uint64_t batched_slots = 0;
  std::uint64_t requests_parked = 0;
};

class EnactorObject : public LegionObject {
 public:
  EnactorObject(SimKernel* kernel, Loid loid, EnactorOptions options = {});

  std::string DebugName() const override { return "enactor"; }

  // ---- Figure 6 interface ---------------------------------------------------
  // &LegionScheduleFeedback make_reservations(&LegionScheduleList);
  void MakeReservations(const ScheduleRequestList& request,
                        Callback<ScheduleFeedback> done);
  // int cancel_reservations(&LegionScheduleRequestList);
  void CancelReservations(const std::vector<ReservationToken>& tokens,
                          Callback<std::size_t> done);
  void CancelReservations(const ScheduleFeedback& feedback,
                          Callback<std::size_t> done);
  // &LegionScheduleRequestList enact_schedule(&LegionScheduleRequestList);
  void EnactSchedule(const ScheduleFeedback& feedback,
                     Callback<EnactResult> done);

  EnactorOptions& options() { return options_; }
  const EnactorStats& stats() const;
  void ResetStats();

  // The shared host/domain health view.  Schedulers consult it when
  // building candidate pools; constructed from options().health.
  HealthTracker& health() { return health_; }
  const HealthTracker& health() const { return health_; }

 private:
  struct Negotiation;

  // One ReserveBatch unit of work: a chunk of a round's indices bound
  // for one host.  Lives in the parked queue under backpressure.
  //
  // At-most-once retransmission: the wire payload (`request`) is frozen
  // at first send and a timeout resends it verbatim -- same id, same
  // full slot set -- so the host can always replay-dedup, even when only
  // a subset of the slots is still worth retrying.  `wanted` tracks that
  // subset (== `indices` on first send); replies for slots no longer
  // wanted are ignored, except that stray grants are cancelled.
  struct Batch {
    std::shared_ptr<Negotiation> negotiation;
    Loid host;
    std::vector<std::size_t> indices;  // slots in the wire request
    std::vector<std::size_t> wanted;   // subset still negotiating
    std::uint64_t id = 0;
    bool retransmit = false;
    // Frozen at first send; reused verbatim by retransmissions.
    std::shared_ptr<const ReservationBatchRequest> request;
  };

  void StartMaster(const std::shared_ptr<Negotiation>& n);
  void RequestMissing(const std::shared_ptr<Negotiation>& n);
  void ReserveIndex(const std::shared_ptr<Negotiation>& n, std::size_t index);
  void FailIndexFast(const std::shared_ptr<Negotiation>& n, std::size_t index);
  // Batch pipeline: EnqueueBatch mints the at-most-once id for a fresh
  // batch and hands to DispatchBatch, which either sends or parks under
  // backpressure; PumpParked drains the queue as replies free slots.
  // Retransmissions skip EnqueueBatch: they re-dispatch the original
  // Batch (same id, same frozen payload) with a narrowed `wanted` set.
  void EnqueueBatch(const std::shared_ptr<Negotiation>& n, const Loid& host,
                    std::vector<std::size_t> indices);
  // Releases a host's next queued same-round chunk once its predecessor's
  // fate is settled; chunks to one host go out strictly in mapping order.
  void DispatchNextChunk(const std::shared_ptr<Negotiation>& n,
                         const Loid& host);
  void DispatchBatch(Batch batch);
  void SendBatch(Batch batch);
  void OnBatchReply(const Batch& batch, Result<ReservationBatchReply> result);
  void PumpParked();
  Duration BackoffDelay(int retry_number);
  void OnRoundComplete(const std::shared_ptr<Negotiation>& n);
  void AbandonMaster(const std::shared_ptr<Negotiation>& n);
  void Succeed(const std::shared_ptr<Negotiation>& n);
  void Fail(const std::shared_ptr<Negotiation>& n);
  void CancelHeld(const std::shared_ptr<Negotiation>& n, std::size_t index);
  // Fire-and-forget cancel of a token the negotiation does not hold
  // (e.g. a stray grant for a slot abandoned between transmissions).
  void CancelToken(const ReservationToken& token);

  // Per-class instantiation demand, resolved from the local class object
  // (the Enactor caches this knowledge between calls in the real system).
  void LookupDemand(const Loid& class_loid, std::size_t* memory_mb,
                    double* cpu_fraction) const;

  // Decision audit (obs/audit.h): every reservation-slot lifecycle
  // transition is recorded keyed by the negotiation id when the kernel's
  // audit log is enabled.  Sites guard with AuditOn() so a disabled log
  // costs one branch and no allocations.
  bool AuditOn() const { return kernel()->audit().enabled(); }
  void Audit(const char* kind, obs::TraceArgs fields) {
    kernel()->audit().Record(kernel()->Now(), kind, std::move(fields));
  }

  // Pre-resolved metrics cells; hot-path updates are one atomic add.
  struct Cells {
    obs::Counter* negotiations;
    obs::Counter* reservations_requested;
    obs::Counter* reservations_granted;
    obs::Counter* reservations_failed;
    obs::Counter* reservations_cancelled;
    obs::Counter* rereservations;
    obs::Counter* enactments;
    obs::Counter* enact_failures;
    obs::Counter* negotiation_rounds;
    obs::Counter* retries;
    obs::Counter* breaker_open;
    obs::Counter* breaker_probes;
    obs::Counter* partial_recoveries;
    obs::Counter* batches_sent;
    obs::Counter* batched_slots;
    obs::Counter* requests_parked;
    obs::Histogram* batch_size;
  };

  EnactorOptions options_;
  HealthTracker health_;
  Rng rng_;  // backoff jitter; seeded from the sim's network seed
  Cells cells_;
  mutable EnactorStats stats_view_;
  // Backpressure state shared across negotiations.
  std::deque<Batch> parked_;
  std::size_t outstanding_batches_ = 0;
  std::uint64_t next_batch_id_ = 1;
  // Correlation ids for the decision audit log; reported back to the
  // scheduler in ScheduleFeedback::negotiation_id.
  std::uint64_t next_negotiation_id_ = 1;
};

}  // namespace legion
