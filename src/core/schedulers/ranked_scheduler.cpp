#include "core/schedulers/ranked_scheduler.h"

#include <algorithm>

#include "objects/class_object.h"

namespace legion {

bool RankedScheduler::Feasible(const CollectionRecord& record,
                               std::size_t memory_mb) const {
  const AttrValue* available = record.attributes.Get("host_available_memory_mb");
  if (available != nullptr && available->is_numeric() &&
      available->as_double() < static_cast<double>(memory_mb)) {
    return false;
  }
  return true;
}

double LoadAwareScheduler::Score(const CollectionRecord& record) const {
  if (use_forecast_) {
    // forecast_load() is a function injected into the Collection by the
    // Data Collection Daemon; when the record was fetched through a
    // query that computed it, it appears as a derived attribute.  We
    // fall back to the raw load.
    const AttrValue* forecast = record.attributes.Get("forecast_load");
    if (forecast != nullptr && forecast->is_numeric()) {
      return forecast->as_double();
    }
  }
  return record.attributes.GetOr("host_load", AttrValue(1e9)).as_double();
}

double CostAwareScheduler::Score(const CollectionRecord& record) const {
  const double cost =
      record.attributes.GetOr("host_cost_per_cpu_second", AttrValue(0.0))
          .as_double();
  const double speed =
      record.attributes.GetOr("host_speed_mips", AttrValue(1.0)).as_double();
  // Dollars per MIPS-second of useful work; free hosts tie at zero and
  // the spreading logic distributes among them.
  return cost / std::max(speed, 1e-9);
}

struct RankedScheduler::GenState {
  PlacementRequest request;
  Callback<ScheduleRequestList> done;
  std::size_t class_index = 0;
  // candidates[instance][rank] like the IRS structure.
  std::vector<std::vector<ObjectMapping>> candidates;
};

void RankedScheduler::ComputeSchedule(const PlacementRequest& request,
                                      Callback<ScheduleRequestList> done) {
  auto state = std::make_shared<GenState>();
  state->request = request;
  state->done = std::move(done);
  NextClass(state);
}

void RankedScheduler::NextClass(const std::shared_ptr<GenState>& state) {
  if (state->class_index >= state->request.size()) {
    if (state->candidates.empty()) {
      state->done(Status::Error(ErrorCode::kNoResources, "nothing to place"));
      return;
    }
    const std::size_t instances = state->candidates.size();
    MasterSchedule master;
    for (const auto& per_instance : state->candidates) {
      master.mappings.push_back(per_instance.front());
    }
    const std::size_t depth = state->candidates.front().size();
    for (std::size_t rank = 1; rank < depth; ++rank) {
      VariantSchedule variant;
      variant.replaces.Resize(instances);
      for (std::size_t i = 0; i < instances; ++i) {
        const std::size_t r = std::min(rank, state->candidates[i].size() - 1);
        const ObjectMapping& alternative = state->candidates[i][r];
        if (alternative == master.mappings[i]) continue;
        variant.replaces.Set(i);
        variant.mappings.emplace_back(i, alternative);
      }
      if (!variant.mappings.empty()) master.variants.push_back(variant);
    }
    ScheduleRequestList list;
    list.masters.push_back(std::move(master));
    state->done(std::move(list));
    return;
  }

  const InstanceRequest& instance_request = state->request[state->class_index];
  // Per-instance memory demand, for the feasibility filter.
  std::size_t memory_mb = 32;
  if (auto* klass = dynamic_cast<ClassObject*>(
          kernel()->FindActor(instance_request.class_loid))) {
    memory_mb = klass->instance_memory_mb();
  }

  GetImplementations(
      instance_request.class_loid,
      [this, state, instance_request, memory_mb](
          Result<std::vector<Implementation>> implementations) {
        if (!implementations.ok()) {
          state->done(implementations.status());
          return;
        }
        // Bound the candidate pool, pre-ordered by the policy's score
        // proxy so the cap keeps the most promising hosts.
        QueryOptions options = ScopedOptions();
        options.max_results = 1024;
        options.order_by = OrderAttribute();
        QueryHosts(
            HostMatchQuery(*implementations), options,
            [this, state, instance_request,
             memory_mb](Result<CollectionData> hosts) {
              if (!hosts.ok()) {
                state->done(hosts.status());
                return;
              }
              FilterSuspects(&*hosts);
              // Filter to feasible hosts with vaults, then rank by score.
              struct Ranked {
                double score;
                const CollectionRecord* record;
                std::vector<Loid> vaults;
                double extra_load = 0.0;  // assignments charged this round
                double cpus = 1.0;
              };
              std::vector<Ranked> ranked;
              for (const CollectionRecord& record : *hosts) {
                if (!Feasible(record, memory_mb)) continue;
                std::vector<Loid> vaults = CompatibleVaultsOf(record);
                if (vaults.empty()) continue;
                Ranked r;
                r.score = Score(record);
                r.record = &record;
                r.vaults = std::move(vaults);
                r.cpus = record.attributes.GetOr("host_cpus", AttrValue(1))
                             .as_double();
                ranked.push_back(std::move(r));
              }
              if (ranked.empty()) {
                state->done(Status::Error(
                    ErrorCode::kNoResources,
                    "no feasible hosts for class " +
                        instance_request.class_loid.ToString()));
                return;
              }
              std::sort(ranked.begin(), ranked.end(),
                        [](const Ranked& a, const Ranked& b) {
                          if (a.score != b.score) return a.score < b.score;
                          return a.record->member < b.record->member;
                        });

              const std::size_t depth =
                  std::min(nvariants_ + 1, ranked.size());
              for (std::size_t i = 0; i < instance_request.count; ++i) {
                // Pick the current best (score + charged load), charge it,
                // and record the next-best alternatives as variants.
                std::vector<std::size_t> order(ranked.size());
                for (std::size_t j = 0; j < order.size(); ++j) order[j] = j;
                std::sort(order.begin(), order.end(),
                          [&](std::size_t a, std::size_t b) {
                            const double sa =
                                ranked[a].score + ranked[a].extra_load;
                            const double sb =
                                ranked[b].score + ranked[b].extra_load;
                            if (sa != sb) return sa < sb;
                            return ranked[a].record->member <
                                   ranked[b].record->member;
                          });
                std::vector<ObjectMapping> per_instance;
                for (std::size_t rank = 0; rank < depth; ++rank) {
                  const Ranked& host = ranked[order[rank]];
                  ObjectMapping mapping;
                  mapping.class_loid = instance_request.class_loid;
                  mapping.host = host.record->member;
                  mapping.vault = host.vaults.front();
                  mapping.implementation = ImplementationFor(*host.record);
                  per_instance.push_back(mapping);
                }
                if (AuditOn()) {
                  const Ranked& best = ranked[order[0]];
                  AuditChoice(state->candidates.size(), per_instance.front(),
                              "best of " + std::to_string(ranked.size()) +
                                  " feasible, score=" +
                                  std::to_string(best.score +
                                                 best.extra_load));
                }
                ranked[order[0]].extra_load +=
                    1.0 / std::max(ranked[order[0]].cpus, 1.0);
                state->candidates.push_back(std::move(per_instance));
              }
              ++state->class_index;
              NextClass(state);
            });
      });
}

}  // namespace legion
