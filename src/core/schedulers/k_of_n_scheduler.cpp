#include "core/schedulers/k_of_n_scheduler.h"

#include <algorithm>

namespace legion {

void KOfNScheduler::ComputeSchedule(const PlacementRequest& request,
                                    Callback<ScheduleRequestList> done) {
  if (request.size() != 1) {
    done(Status::Error(ErrorCode::kInvalidArgument,
                       "k-of-n scheduling places one class at a time"));
    return;
  }
  const Loid class_loid = request[0].class_loid;
  const std::size_t k = request[0].count;
  if (k == 0 || k > n_) {
    done(Status::Error(ErrorCode::kInvalidArgument,
                       "need 0 < k <= n (k=" + std::to_string(k) +
                           ", n=" + std::to_string(n_) + ")"));
    return;
  }
  GetImplementations(
      class_loid,
      [this, class_loid, k, done = std::move(done)](
          Result<std::vector<Implementation>> implementations) mutable {
        if (!implementations.ok()) {
          done(implementations.status());
          return;
        }
        // Only the n least-loaded hosts can make the equivalence class;
        // ask the Collection for a load-ordered pool with slack for
        // vault-less hosts the filter below discards.
        QueryOptions options = ScopedOptions();
        options.order_by = "host_load";
        options.max_results = std::max<std::size_t>(64, 4 * n_);
        QueryHosts(
            HostMatchQuery(*implementations), options,
            [this, class_loid, k,
             done = std::move(done)](Result<CollectionData> hosts) mutable {
              if (!hosts.ok()) {
                done(hosts.status());
                return;
              }
              // Keep at least k candidates even if suspect: a short
              // equivalence class would fail outright, while suspect
              // spares may still probe back to health.
              FilterSuspects(&*hosts, k);
              // Rank candidates least-loaded-first; the top n form the
              // equivalence class.
              struct Candidate {
                ObjectMapping mapping;
                double load;
              };
              std::vector<Candidate> candidates;
              for (const CollectionRecord& record : *hosts) {
                std::vector<Loid> vaults = CompatibleVaultsOf(record);
                if (vaults.empty()) continue;
                Candidate candidate;
                candidate.mapping.class_loid = class_loid;
                candidate.mapping.host = record.member;
                candidate.mapping.vault = vaults.front();
                candidate.mapping.implementation = ImplementationFor(record);
                candidate.load =
                    record.attributes.GetOr("host_load", AttrValue(0.0))
                        .as_double();
                candidates.push_back(std::move(candidate));
              }
              if (candidates.size() < k) {
                done(Status::Error(ErrorCode::kNoResources,
                                   "fewer than k usable hosts"));
                return;
              }
              std::sort(candidates.begin(), candidates.end(),
                        [](const Candidate& a, const Candidate& b) {
                          if (a.load != b.load) return a.load < b.load;
                          return a.mapping.host < b.mapping.host;
                        });
              const std::size_t n = std::min(n_, candidates.size());

              MasterSchedule master;
              for (std::size_t i = 0; i < k; ++i) {
                AuditChoice(i, candidates[i].mapping,
                            "load rank " + std::to_string(i) + " of " +
                                std::to_string(candidates.size()) +
                                ", load=" +
                                std::to_string(candidates[i].load));
                master.mappings.push_back(candidates[i].mapping);
              }
              // Spares: single-bit variants substituting spare s for
              // position i.  Ordered spare-major so the Enactor walks
              // through fresh resources before reusing one.
              for (std::size_t s = k; s < n; ++s) {
                for (std::size_t i = 0; i < k; ++i) {
                  VariantSchedule variant;
                  variant.replaces.Resize(k);
                  variant.replaces.Set(i);
                  variant.mappings.emplace_back(i, candidates[s].mapping);
                  master.variants.push_back(std::move(variant));
                }
              }
              ScheduleRequestList list;
              list.masters.push_back(std::move(master));
              done(std::move(list));
            });
      });
}

}  // namespace legion
