// "k out of n" scheduling (paper section 3.3, future work).
//
// "We will also support 'k out of n' scheduling, where the Scheduler
// specifies an equivalence class of n resources and asks the Enactor to
// start k instances of the same object on them."
//
// Implemented as promised: the scheduler ranks the feasible hosts,
// declares the top n an equivalence class, emits a master schedule over
// the first k, and generates single-bit variant schedules substituting
// each spare resource for each position.  The Enactor's bitmap-guided
// selection then realizes the k-of-n semantics: any k of the n resources
// that grant reservations satisfy the schedule, with no reservation
// thrashing on the k-1 positions that already succeeded.
#pragma once

#include "core/scheduler.h"

namespace legion {

class KOfNScheduler : public SchedulerObject {
 public:
  // `n` is the equivalence-class size; k comes from the request count.
  KOfNScheduler(SimKernel* kernel, Loid loid, Loid collection, Loid enactor,
                std::size_t n)
      : SchedulerObject(kernel, loid, "k-of-n", collection, enactor), n_(n) {}

  void ComputeSchedule(const PlacementRequest& request,
                       Callback<ScheduleRequestList> done) override;

  std::size_t n() const { return n_; }

 private:
  std::size_t n_;
};

}  // namespace legion
