#include "core/schedulers/irs_scheduler.h"

namespace legion {

struct IrsScheduler::GenState {
  PlacementRequest request;
  Callback<ScheduleRequestList> done;
  std::size_t class_index = 0;
  // candidates[instance][l] = l-th random (class, host, vault) mapping
  // for that instance, l in [0, n).
  std::vector<std::vector<ObjectMapping>> candidates;
};

void IrsScheduler::ComputeSchedule(const PlacementRequest& request,
                                   Callback<ScheduleRequestList> done) {
  auto state = std::make_shared<GenState>();
  state->request = request;
  state->done = std::move(done);
  NextClass(state);
}

void IrsScheduler::NextClass(const std::shared_ptr<GenState>& state) {
  if (state->class_index >= state->request.size()) {
    Finish(state);
    return;
  }
  const InstanceRequest& instance_request =
      state->request[state->class_index];
  GetImplementations(
      instance_request.class_loid,
      [this, state, instance_request](
          Result<std::vector<Implementation>> implementations) {
        if (!implementations.ok()) {
          state->done(implementations.status());
          return;
        }
        // One Collection lookup per class, reused across all n candidate
        // mappings -- the "fewer lookups" improvement.  A bounded pool is
        // plenty for random draws.
        QueryOptions options = ScopedOptions();
        options.max_results = 1024;
        QueryHosts(
            HostMatchQuery(*implementations), options,
            [this, state, instance_request](Result<CollectionData> hosts) {
              if (!hosts.ok()) {
                state->done(hosts.status());
                return;
              }
              if (hosts->empty()) {
                state->done(Status::Error(
                    ErrorCode::kNoResources,
                    "no matching hosts for class " +
                        instance_request.class_loid.ToString()));
                return;
              }
              // Demote suspects before drawing: variant diversity is
              // wasted on hosts whose breaker is already open.
              FilterSuspects(&*hosts);
              // "for i := 1 to k: for l := 1 to n: pick (H, V) at random;
              //  append the target to the list for this instance"
              for (std::size_t i = 0; i < instance_request.count; ++i) {
                std::vector<ObjectMapping> per_instance;
                per_instance.reserve(nsched_);
                // Unusable hosts (no compatible vaults) trigger a redraw,
                // bounded so a vault-less metacomputer still terminates.
                std::size_t draws_left = 10 * nsched_ + 10;
                while (per_instance.size() < nsched_ && draws_left-- > 0) {
                  const CollectionRecord& host =
                      (*hosts)[rng_.Index(hosts->size())];
                  std::vector<Loid> vaults = CompatibleVaultsOf(host);
                  if (vaults.empty()) continue;
                  ObjectMapping mapping;
                  mapping.class_loid = instance_request.class_loid;
                  mapping.host = host.member;
                  mapping.vault = vaults[rng_.Index(vaults.size())];
                  mapping.implementation = ImplementationFor(host);
                  per_instance.push_back(mapping);
                }
                if (per_instance.empty()) {
                  state->done(Status::Error(
                      ErrorCode::kNoResources,
                      "no host with a compatible vault for class " +
                          instance_request.class_loid.ToString()));
                  return;
                }
                // Pad short candidate lists by repeating the first pick
                // so every instance has n components.
                while (per_instance.size() < nsched_) {
                  per_instance.push_back(per_instance.front());
                }
                AuditChoice(state->candidates.size(), per_instance.front(),
                            "random draw 1 of " +
                                std::to_string(per_instance.size()) +
                                " from " + std::to_string(hosts->size()) +
                                " candidates");
                state->candidates.push_back(std::move(per_instance));
              }
              ++state->class_index;
              NextClass(state);
            });
      });
}

void IrsScheduler::Finish(const std::shared_ptr<GenState>& state) {
  if (state->candidates.empty()) {
    state->done(Status::Error(ErrorCode::kNoResources,
                              "no mappings could be generated"));
    return;
  }
  const std::size_t instances = state->candidates.size();
  MasterSchedule master;
  // "master sched. = first item from each object inst. list"
  master.mappings.reserve(instances);
  for (const auto& per_instance : state->candidates) {
    master.mappings.push_back(per_instance.front());
  }
  // "for l := 2 to n: select the l-th component of the list for each
  //  object instance; construct a list of all that do not appear in the
  //  master list; append to list of variant schedules"
  for (std::size_t l = 1; l < nsched_; ++l) {
    VariantSchedule variant;
    variant.replaces.Resize(instances);
    for (std::size_t i = 0; i < instances; ++i) {
      const ObjectMapping& candidate = state->candidates[i][l];
      if (candidate == master.mappings[i]) continue;
      variant.replaces.Set(i);
      variant.mappings.emplace_back(i, candidate);
    }
    if (!variant.mappings.empty()) {
      master.variants.push_back(std::move(variant));
    }
  }
  ScheduleRequestList list;
  list.masters.push_back(std::move(master));
  state->done(std::move(list));
}

}  // namespace legion
