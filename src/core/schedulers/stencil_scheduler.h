// A specialized placement policy for 2-D stencil applications
// (paper section 4.3).
//
// "We are in the process of defining and implementing specialized
// placement policies for structured multi-object applications. ...
// we are working with the DoD MSRC in Stennis, Mississippi to develop a
// Scheduler for an MPI-based ocean simulation which uses nearest-neighbor
// communication within a 2-D grid."
//
// The policy exploits exactly the application knowledge the paper
// describes: instances form a rows x cols grid with nearest-neighbour
// communication, so cutting the grid across administrative domains is
// expensive (every cut edge pays WAN latency each iteration).  The
// scheduler partitions the grid into contiguous row bands, sizes each
// band by a domain's aggregate capacity, and fills bands from hosts of a
// single domain (least-loaded first), so inter-domain edges appear only
// between adjacent bands.
#pragma once

#include "core/scheduler.h"

namespace legion {

class StencilScheduler : public SchedulerObject {
 public:
  StencilScheduler(SimKernel* kernel, Loid loid, Loid collection,
                   Loid enactor, std::size_t rows, std::size_t cols)
      : SchedulerObject(kernel, loid, "stencil", collection, enactor),
        rows_(rows),
        cols_(cols) {}

  // The request must total rows*cols instances (one class).  Mappings
  // come out in row-major cell order, which is how the workload
  // executor's Stencil2D application numbers its instances.
  void ComputeSchedule(const PlacementRequest& request,
                       Callback<ScheduleRequestList> done) override;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

 private:
  std::size_t rows_;
  std::size_t cols_;
};

}  // namespace legion
