// Improved Random Scheduling (paper section 4.2, figures 8 and 9).
//
// "The improvement we focus on is not in the basic algorithm; the IRS
// still selects a random Host and Vault pair.  Rather, we will compute
// multiple schedules and accommodate negative feedback from the Enactor.
// ... The improved version generates n random mappings for each object
// class, and then constructs n schedules out of them.  The Scheduler
// could just as easily build n schedules through calls to the original
// generator function, but IRS does fewer lookups in the Collection."
//
// ComputeSchedule renders IRS_Gen_Placement: one implementations query
// and one Collection query per class, n candidate (Host, Vault) pairs per
// instance, the first forming the master schedule and components 2..n
// forming variant schedules containing only the entries that differ from
// the master (with the bitmap marking them).  The wrapper of figure 9 is
// SchedulerObject::ScheduleAndEnact with RunOptions{SchedTryLimit,
// EnactTryLimit}.
#pragma once

#include "base/rng.h"
#include "core/scheduler.h"

namespace legion {

class IrsScheduler : public SchedulerObject {
 public:
  // `nsched` is the figure-8 parameter n: candidate mappings generated
  // per object instance (master + up to n-1 variants).
  IrsScheduler(SimKernel* kernel, Loid loid, Loid collection, Loid enactor,
               std::size_t nsched = 4, std::uint64_t seed = 1)
      : SchedulerObject(kernel, loid, "irs", collection, enactor),
        nsched_(nsched == 0 ? 1 : nsched),
        rng_(seed) {}

  void ComputeSchedule(const PlacementRequest& request,
                       Callback<ScheduleRequestList> done) override;

  std::size_t nsched() const { return nsched_; }

 private:
  struct GenState;
  void NextClass(const std::shared_ptr<GenState>& state);
  void Finish(const std::shared_ptr<GenState>& state);

  std::size_t nsched_;
  Rng rng_;
};

}  // namespace legion
