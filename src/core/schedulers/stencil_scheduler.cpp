#include "core/schedulers/stencil_scheduler.h"

#include <algorithm>
#include <map>

#include "objects/class_object.h"

namespace legion {

void StencilScheduler::ComputeSchedule(const PlacementRequest& request,
                                       Callback<ScheduleRequestList> done) {
  if (request.size() != 1 || request[0].count != rows_ * cols_) {
    done(Status::Error(ErrorCode::kInvalidArgument,
                       "stencil scheduler expects one class with rows*cols "
                       "instances"));
    return;
  }
  const Loid class_loid = request[0].class_loid;
  // Per-cell CPU demand, for honest load charging while spreading.
  double cpu_fraction = 1.0;
  if (auto* klass =
          dynamic_cast<ClassObject*>(kernel()->FindActor(class_loid))) {
    cpu_fraction = klass->instance_cpu_fraction();
  }
  GetImplementations(
      class_loid,
      [this, class_loid, cpu_fraction, done = std::move(done)](
          Result<std::vector<Implementation>> implementations) mutable {
        if (!implementations.ok()) {
          done(implementations.status());
          return;
        }
        // Band sizing wants broad domain coverage, so keep member order
        // (no score proxy) but still bound the pool.
        QueryOptions options = ScopedOptions();
        options.max_results = 4096;
        QueryHosts(
            HostMatchQuery(*implementations), options,
            [this, class_loid, cpu_fraction,
             done = std::move(done)](Result<CollectionData> hosts) mutable {
              if (!hosts.ok() || hosts->empty()) {
                done(Status::Error(ErrorCode::kNoResources,
                                   "no matching hosts"));
                return;
              }
              // A suspect domain would otherwise be handed a whole band
              // of rows; demote its hosts before capacity sizing.
              FilterSuspects(&*hosts);
              // Group usable hosts by administrative domain.
              struct HostSlot {
                Loid host;
                Loid vault;
                std::string impl;
                double load;
                double cpus;
                double charged = 0.0;
              };
              std::map<std::int64_t, std::vector<HostSlot>> domains;
              for (const CollectionRecord& record : *hosts) {
                std::vector<Loid> vaults = CompatibleVaultsOf(record);
                if (vaults.empty()) continue;
                HostSlot slot;
                slot.host = record.member;
                slot.vault = vaults.front();
                slot.impl = ImplementationFor(record);
                slot.load = record.attributes.GetOr("host_load", AttrValue(0.0))
                                .as_double();
                slot.cpus = record.attributes.GetOr("host_cpus", AttrValue(1))
                                .as_double();
                domains[record.attributes.GetOr("host_domain", AttrValue(0))
                            .as_int()]
                    .push_back(std::move(slot));
              }
              if (domains.empty()) {
                done(Status::Error(ErrorCode::kNoResources,
                                   "no usable hosts"));
                return;
              }
              // Aggregate capacity per domain drives band sizing.
              std::vector<std::pair<std::int64_t, double>> capacity;
              double total_capacity = 0.0;
              for (auto& [domain, slots] : domains) {
                std::sort(slots.begin(), slots.end(),
                          [](const HostSlot& a, const HostSlot& b) {
                            if (a.load != b.load) return a.load < b.load;
                            return a.host < b.host;
                          });
                double c = 0.0;
                for (const HostSlot& slot : slots) {
                  c += slot.cpus / (1.0 + slot.load);
                }
                capacity.emplace_back(domain, c);
                total_capacity += c;
              }
              // Assign contiguous row bands to domains, proportional to
              // capacity (largest domains first keeps bands contiguous).
              std::sort(capacity.begin(), capacity.end(),
                        [](const auto& a, const auto& b) {
                          return a.second > b.second;
                        });
              std::vector<std::int64_t> row_domain(rows_);
              std::size_t next_row = 0;
              for (std::size_t d = 0; d < capacity.size() && next_row < rows_;
                   ++d) {
                std::size_t band =
                    d + 1 == capacity.size()
                        ? rows_ - next_row
                        : static_cast<std::size_t>(
                              static_cast<double>(rows_) * capacity[d].second /
                                  total_capacity +
                              0.5);
                if (band == 0 && next_row < rows_) band = 1;
                for (std::size_t r = 0; r < band && next_row < rows_; ++r) {
                  row_domain[next_row++] = capacity[d].first;
                }
              }
              while (next_row < rows_) {
                row_domain[next_row++] = capacity.front().first;
              }

              // Fill cells row-major; within a band, spread across the
              // domain's hosts least-loaded-first with load charging.
              MasterSchedule master;
              master.mappings.reserve(rows_ * cols_);
              VariantSchedule alternates;
              alternates.replaces.Resize(rows_ * cols_);
              for (std::size_t r = 0; r < rows_; ++r) {
                auto& slots = domains[row_domain[r]];
                for (std::size_t c = 0; c < cols_; ++c) {
                  // Current cheapest slot in this domain.
                  std::size_t best = 0;
                  for (std::size_t s = 1; s < slots.size(); ++s) {
                    const double sa = slots[s].load + slots[s].charged;
                    const double sb =
                        slots[best].load + slots[best].charged;
                    if (sa < sb) best = s;
                  }
                  ObjectMapping mapping;
                  mapping.class_loid = class_loid;
                  mapping.host = slots[best].host;
                  mapping.vault = slots[best].vault;
                  mapping.implementation = slots[best].impl;
                  AuditChoice(master.mappings.size(), mapping,
                              "cell (" + std::to_string(r) + "," +
                                  std::to_string(c) + ") domain " +
                                  std::to_string(row_domain[r]) +
                                  ", least-loaded of " +
                                  std::to_string(slots.size()));
                  master.mappings.push_back(mapping);
                  slots[best].charged +=
                      cpu_fraction / std::max(slots[best].cpus, 1.0);
                  // Same-domain alternate as the variant entry, if any.
                  if (slots.size() > 1) {
                    const std::size_t index = r * cols_ + c;
                    const std::size_t alt = (best + 1) % slots.size();
                    ObjectMapping alternative = mapping;
                    alternative.host = slots[alt].host;
                    alternative.vault = slots[alt].vault;
                    alternative.implementation = slots[alt].impl;
                    if (!(alternative == mapping)) {
                      alternates.replaces.Set(index);
                      alternates.mappings.emplace_back(index, alternative);
                    }
                  }
                }
              }
              if (!alternates.mappings.empty()) {
                master.variants.push_back(std::move(alternates));
              }
              ScheduleRequestList list;
              list.masters.push_back(std::move(master));
              done(std::move(list));
            });
      });
}

}  // namespace legion
