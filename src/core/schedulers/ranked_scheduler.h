// Ranked schedulers: the "smarter" policies the paper's infrastructure
// is meant to enable (sections 1 and 4.3 promise that specialized
// schedulers easily outperform the random default; these are the
// simplest such specializations).
//
// A RankedScheduler scores every feasible host (lower is better), spreads
// instances across the best hosts (charging each assignment against the
// host's remaining capacity so one fast host is not swamped), and emits
// IRS-style variant schedules built from the next-best alternatives.
//
//   * LoadAwareScheduler  -- score = host_load (optionally the injected
//     forecast_load() prediction), exercising the paper's claim that rich
//     attribute export lets schedulers avoid "subtly nonfeasible"
//     schedules: hosts without enough free memory are filtered out.
//   * CostAwareScheduler  -- score = cost_per_cpu_second / speed, i.e.
//     dollars per unit of work, using the economic attributes the paper
//     says hosts can export.
#pragma once

#include "core/scheduler.h"

namespace legion {

class RankedScheduler : public SchedulerObject {
 public:
  RankedScheduler(SimKernel* kernel, Loid loid, std::string name,
                  Loid collection, Loid enactor, std::size_t nvariants = 3)
      : SchedulerObject(kernel, loid, std::move(name), collection, enactor),
        nvariants_(nvariants) {}

  void ComputeSchedule(const PlacementRequest& request,
                       Callback<ScheduleRequestList> done) override;

 protected:
  // Lower scores place first.  `record` is the host's Collection record.
  virtual double Score(const CollectionRecord& record) const = 0;
  // The stored attribute the Collection should pre-order (ascending) and
  // prune by before replying -- a cheap proxy for Score() so the bounded
  // candidate pool keeps the hosts the policy actually wants.  Empty =
  // member order (no useful proxy).
  virtual std::string OrderAttribute() const { return ""; }
  // Feasibility beyond arch/OS matching; default demands available
  // memory for the class's per-instance footprint.
  virtual bool Feasible(const CollectionRecord& record,
                        std::size_t memory_mb) const;

 private:
  struct GenState;
  void NextClass(const std::shared_ptr<GenState>& state);

  std::size_t nvariants_;
};

class LoadAwareScheduler : public RankedScheduler {
 public:
  LoadAwareScheduler(SimKernel* kernel, Loid loid, Loid collection,
                     Loid enactor, bool use_forecast = false,
                     std::size_t nvariants = 3)
      : RankedScheduler(kernel, loid,
                        use_forecast ? "load-forecast" : "load-aware",
                        collection, enactor, nvariants),
        use_forecast_(use_forecast) {}

 protected:
  double Score(const CollectionRecord& record) const override;
  // forecast_load is derived (materializes after pruning), so the raw
  // load is the orderable proxy either way.
  std::string OrderAttribute() const override { return "host_load"; }

 private:
  bool use_forecast_;
};

class CostAwareScheduler : public RankedScheduler {
 public:
  CostAwareScheduler(SimKernel* kernel, Loid loid, Loid collection,
                     Loid enactor, std::size_t nvariants = 3)
      : RankedScheduler(kernel, loid, "cost-aware", collection, enactor,
                        nvariants) {}

 protected:
  double Score(const CollectionRecord& record) const override;
  std::string OrderAttribute() const override {
    return "host_cost_per_cpu_second";
  }
};

// Deterministic round-robin over the feasible hosts (a classic baseline:
// ignores state entirely but spreads perfectly evenly).
class RoundRobinScheduler : public RankedScheduler {
 public:
  RoundRobinScheduler(SimKernel* kernel, Loid loid, Loid collection,
                      Loid enactor, std::size_t nvariants = 3)
      : RankedScheduler(kernel, loid, "round-robin", collection, enactor,
                        nvariants) {}

 protected:
  // All hosts tie; the spreading logic then cycles them in LOID order.
  double Score(const CollectionRecord&) const override { return 0.0; }
};

}  // namespace legion
