#include "core/schedulers/random_scheduler.h"

namespace legion {

struct RandomScheduler::GenState {
  PlacementRequest request;
  Callback<ScheduleRequestList> done;
  std::size_t class_index = 0;
  MasterSchedule master;
};

void RandomScheduler::ComputeSchedule(const PlacementRequest& request,
                                      Callback<ScheduleRequestList> done) {
  auto state = std::make_shared<GenState>();
  state->request = request;
  state->done = std::move(done);
  NextClass(state);
}

void RandomScheduler::NextClass(const std::shared_ptr<GenState>& state) {
  if (state->class_index >= state->request.size()) {
    if (state->master.mappings.empty()) {
      state->done(Status::Error(ErrorCode::kNoResources,
                                "no mappings could be generated"));
      return;
    }
    ScheduleRequestList list;
    list.masters.push_back(std::move(state->master));
    state->done(std::move(list));
    return;
  }
  const InstanceRequest& instance_request =
      state->request[state->class_index];
  // "query the class for available implementations"
  GetImplementations(
      instance_request.class_loid,
      [this, state, instance_request](
          Result<std::vector<Implementation>> implementations) {
        if (!implementations.ok()) {
          state->done(implementations.status());
          return;
        }
        // "query Collection for Hosts matching available implementations"
        // Random sampling only needs a bounded candidate pool; cap the
        // reply so a metacomputer-scale Collection is never copied whole.
        QueryOptions options = ScopedOptions();
        options.max_results = 1024;
        QueryHosts(
            HostMatchQuery(*implementations), options,
            [this, state, instance_request](Result<CollectionData> hosts) {
              if (!hosts.ok()) {
                state->done(hosts.status());
                return;
              }
              if (hosts->empty()) {
                state->done(Status::Error(
                    ErrorCode::kNoResources,
                    "no matching hosts for class " +
                        instance_request.class_loid.ToString()));
                return;
              }
              FilterSuspects(&*hosts);
              // "for i := 1 to k: pick a Host H at random; extract list of
              //  compatible vaults from H; randomly pick a compatible
              //  vault V; append the target (H, V) to the master schedule"
              for (std::size_t i = 0; i < instance_request.count; ++i) {
                const CollectionRecord& host =
                    (*hosts)[rng_.Index(hosts->size())];
                std::vector<Loid> vaults = CompatibleVaultsOf(host);
                if (vaults.empty()) {
                  state->done(Status::Error(
                      ErrorCode::kNoResources,
                      "host has no compatible vaults: " +
                          host.member.ToString()));
                  return;
                }
                ObjectMapping mapping;
                mapping.class_loid = instance_request.class_loid;
                mapping.host = host.member;
                mapping.vault = vaults[rng_.Index(vaults.size())];
                mapping.implementation = ImplementationFor(host);
                AuditChoice(state->master.mappings.size(), mapping,
                            "random pick of " +
                                std::to_string(hosts->size()) +
                                " candidates");
                state->master.mappings.push_back(mapping);
              }
              ++state->class_index;
              NextClass(state);
            });
      });
}

}  // namespace legion
