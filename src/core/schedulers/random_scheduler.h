// The Random Scheduling Policy (paper section 4.1, figure 7).
//
// "The Random Scheduling Policy, as the name implies, randomly selects
// from the available resources that appear to be able to run the task.
// There is no consideration of load, speed, memory contention,
// communication patterns, or other factors that might affect the
// completion time of the task.  The goal here is simplicity, not
// performance."
//
// ComputeSchedule is a faithful rendering of Generate_Random_Placement():
// for each ObjectClass, query the class for its implementations, query
// the Collection for matching Hosts, and for each desired instance pick a
// random Host, extract its compatible-vault list, and pick a random
// vault.  One master schedule, no variants -- "the equivalent of the
// default schedule generator for Legion Classes in releases prior to
// 1.5".
#pragma once

#include "base/rng.h"
#include "core/scheduler.h"

namespace legion {

class RandomScheduler : public SchedulerObject {
 public:
  RandomScheduler(SimKernel* kernel, Loid loid, Loid collection, Loid enactor,
                  std::uint64_t seed = 1)
      : SchedulerObject(kernel, loid, "random", collection, enactor),
        rng_(seed) {}

  void ComputeSchedule(const PlacementRequest& request,
                       Callback<ScheduleRequestList> done) override;

 private:
  struct GenState;
  void NextClass(const std::shared_ptr<GenState>& state);

  Rng rng_;
};

}  // namespace legion
