#include "core/health.h"

#include <algorithm>

namespace legion {

HealthTracker::HealthTracker(SimKernel* kernel, HealthOptions options)
    : kernel_(kernel), options_(options) {}

BreakerState HealthTracker::StateOf(const Breaker& breaker) const {
  if (!breaker.open) return BreakerState::kClosed;
  if (kernel_->Now() < breaker.suspect_until) return BreakerState::kOpen;
  return BreakerState::kHalfOpen;
}

void HealthTracker::Trip(Breaker* breaker, Duration base_cooldown) {
  // Geometric escalation: openings since the last success scale the
  // cooldown (a failed probe re-trips with a longer window), capped so a
  // flapping host is never exiled forever.
  Duration cooldown = base_cooldown;
  for (int i = 0; i < breaker->openings && cooldown < options_.max_cooldown;
       ++i) {
    cooldown = cooldown * options_.cooldown_multiplier;
  }
  cooldown = std::min(cooldown, options_.max_cooldown);
  breaker->open = true;
  ++breaker->openings;
  breaker->suspect_until = kernel_->Now() + cooldown;
  breaker->consecutive_failures = 0;
}

void HealthTracker::RecordSuccess(const Loid& host) {
  Breaker& host_breaker = hosts_[host];
  host_breaker = Breaker{};
  Breaker& domain_breaker = domains_[host.domain()];
  domain_breaker = Breaker{};
}

void HealthTracker::RecordFailure(const Loid& host) {
  Breaker& host_breaker = hosts_[host];
  // A failure while half-open is a failed probe: re-trip immediately
  // (with escalation) rather than re-counting to the threshold.
  if (StateOf(host_breaker) == BreakerState::kHalfOpen) {
    Trip(&host_breaker, options_.host_cooldown);
  } else if (!host_breaker.open &&
             ++host_breaker.consecutive_failures >=
                 options_.host_failure_threshold) {
    Trip(&host_breaker, options_.host_cooldown);
  }

  Breaker& domain_breaker = domains_[host.domain()];
  if (StateOf(domain_breaker) == BreakerState::kHalfOpen) {
    Trip(&domain_breaker, options_.domain_cooldown);
  } else if (!domain_breaker.open &&
             ++domain_breaker.consecutive_failures >=
                 options_.domain_failure_threshold) {
    Trip(&domain_breaker, options_.domain_cooldown);
  }
}

BreakerState HealthTracker::HostState(const Loid& host) const {
  auto it = hosts_.find(host);
  if (it == hosts_.end()) return BreakerState::kClosed;
  return StateOf(it->second);
}

BreakerState HealthTracker::DomainState(DomainId domain) const {
  auto it = domains_.find(domain);
  if (it == domains_.end()) return BreakerState::kClosed;
  return StateOf(it->second);
}

bool HealthTracker::Healthy(const Loid& host) const {
  return HostState(host) != BreakerState::kOpen &&
         DomainState(host.domain()) != BreakerState::kOpen;
}

std::optional<SimTime> HealthTracker::SuspectUntil(const Loid& host) const {
  std::optional<SimTime> until;
  if (auto it = hosts_.find(host);
      it != hosts_.end() && StateOf(it->second) == BreakerState::kOpen) {
    until = it->second.suspect_until;
  }
  if (auto it = domains_.find(host.domain());
      it != domains_.end() && StateOf(it->second) == BreakerState::kOpen) {
    until = until.has_value() ? std::max(*until, it->second.suspect_until)
                              : it->second.suspect_until;
  }
  return until;
}

bool HealthTracker::IsProbe(const Loid& host) const {
  const BreakerState host_state = HostState(host);
  const BreakerState domain_state = DomainState(host.domain());
  if (host_state == BreakerState::kOpen || domain_state == BreakerState::kOpen) {
    return false;
  }
  return host_state == BreakerState::kHalfOpen ||
         domain_state == BreakerState::kHalfOpen;
}

}  // namespace legion
