#include "core/migration.h"

#include "objects/opr.h"

namespace legion {

namespace {

struct MigrationState {
  SimKernel* kernel;
  Loid agent, object, to_host, to_vault;
  Loid from_host, from_vault;
  SimTime started;
  Callback<MigrationOutcome> done;

  void Finish(bool success, std::string detail) {
    MigrationOutcome outcome;
    outcome.success = success;
    outcome.from_host = from_host;
    outcome.to_host = to_host;
    outcome.elapsed = kernel->Now() - started;
    outcome.detail = std::move(detail);
    done(std::move(outcome));
  }
};

void Reactivate(const std::shared_ptr<MigrationState>& state) {
  CallOn<bool, HostObject>(
      state->kernel, state->agent, state->to_host, kSmallMessage,
      kSmallMessage, kDefaultRpcTimeout,
      [object = state->object, vault = state->to_vault](
          HostObject& host, Callback<bool> reply) {
        host.ReactivateObject(object, vault, std::move(reply));
      },
      [state](Result<bool> reactivated) {
        if (!reactivated.ok() || !*reactivated) {
          state->Finish(false, "reactivation failed: " +
                                   (reactivated.ok()
                                        ? std::string("refused")
                                        : reactivated.status().ToString()));
          return;
        }
        state->Finish(true, "");
      });
}

void MoveOpr(const std::shared_ptr<MigrationState>& state) {
  if (state->from_vault == state->to_vault) {
    Reactivate(state);
    return;
  }
  // Fetch from the old vault; the reply message carries the OPR bytes.
  CallOn<Opr, VaultInterface>(
      state->kernel, state->agent, state->from_vault, kSmallMessage,
      kLargeMessage, kDefaultRpcTimeout,
      [object = state->object](VaultInterface& vault, Callback<Opr> reply) {
        vault.FetchOpr(object, std::move(reply));
      },
      [state](Result<Opr> opr) {
        if (!opr.ok()) {
          state->Finish(false, "OPR fetch failed: " + opr.status().ToString());
          return;
        }
        const std::size_t opr_bytes = opr->SizeBytes();
        CallOn<bool, VaultInterface>(
            state->kernel, state->agent, state->to_vault, opr_bytes,
            kSmallMessage, kDefaultRpcTimeout,
            [opr = *opr](VaultInterface& vault, Callback<bool> reply) {
              vault.StoreOpr(opr, std::move(reply));
            },
            [state](Result<bool> stored) {
              if (!stored.ok() || !*stored) {
                state->Finish(false, "OPR store at target vault failed");
                return;
              }
              // Best-effort cleanup of the old copy.
              CallOn<bool, VaultInterface>(
                  state->kernel, state->agent, state->from_vault,
                  kSmallMessage, kSmallMessage, kDefaultRpcTimeout,
                  [object = state->object](VaultInterface& vault,
                                           Callback<bool> reply) {
                    vault.DeleteOpr(object, std::move(reply));
                  },
                  [](Result<bool>) {});
              Reactivate(state);
            });
      });
}

}  // namespace

void MigrateObject(SimKernel* kernel, const Loid& agent, const Loid& object,
                   const Loid& to_host, const Loid& to_vault,
                   Callback<MigrationOutcome> done) {
  auto state = std::make_shared<MigrationState>();
  state->kernel = kernel;
  state->agent = agent;
  state->object = object;
  state->to_host = to_host;
  state->to_vault = to_vault;
  state->started = kernel->Now();
  state->done = std::move(done);

  auto* legion_object = dynamic_cast<LegionObject*>(kernel->FindActor(object));
  if (legion_object == nullptr || !legion_object->active()) {
    state->Finish(false, "object is not active");
    return;
  }
  state->from_host = legion_object->host();
  state->from_vault = legion_object->vault();

  CallOn<bool, HostInterface>(
      kernel, agent, state->from_host, kSmallMessage, kSmallMessage,
      kDefaultRpcTimeout,
      [object](HostInterface& host, Callback<bool> reply) {
        host.DeactivateObject(object, std::move(reply));
      },
      [state](Result<bool> deactivated) {
        if (!deactivated.ok() || !*deactivated) {
          state->Finish(false, "deactivation failed");
          return;
        }
        MoveOpr(state);
      });
}

}  // namespace legion
