#include "core/collection_index.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace legion {

namespace {

// Inserts into / erases from a keyed set map, dropping empty sets so
// update churn cannot leave tombstone keys behind.
template <typename Map, typename Key>
void MapInsert(Map& map, const Key& key, const Loid& member) {
  map[key].insert(member);
}

template <typename Map, typename Key>
void MapErase(Map& map, const Key& key, const Loid& member) {
  auto it = map.find(key);
  if (it == map.end()) return;
  it->second.erase(member);
  if (it->second.empty()) map.erase(it);
}

}  // namespace

void AttributeIndexes::Add(const Loid& member, const AttributeDatabase& attrs) {
  for (const auto& [name, value] : attrs) {
    if (value.is_null()) continue;
    PerAttribute& index = attrs_[name];
    index.present.insert(member);
    if (value.is_string()) {
      MapInsert(index.by_string, value.as_string(), member);
    } else if (value.is_numeric()) {
      const double key = value.as_double();
      if (!std::isnan(key)) MapInsert(index.by_number, key, member);
    } else if (value.is_bool()) {
      index.by_bool[value.as_bool() ? 1 : 0].insert(member);
    }
    // Lists are reachable through the presence index only.
  }
}

void AttributeIndexes::Remove(const Loid& member,
                              const AttributeDatabase& attrs) {
  for (const auto& [name, value] : attrs) {
    if (value.is_null()) continue;
    auto it = attrs_.find(name);
    if (it == attrs_.end()) continue;
    PerAttribute& index = it->second;
    index.present.erase(member);
    if (value.is_string()) {
      MapErase(index.by_string, value.as_string(), member);
    } else if (value.is_numeric()) {
      const double key = value.as_double();
      if (!std::isnan(key)) MapErase(index.by_number, key, member);
    } else if (value.is_bool()) {
      index.by_bool[value.as_bool() ? 1 : 0].erase(member);
    }
    if (index.present.empty() && index.by_string.empty() &&
        index.by_number.empty() && index.by_bool[0].empty() &&
        index.by_bool[1].empty()) {
      attrs_.erase(it);
    }
  }
}

void AttributeIndexes::Clear() { attrs_.clear(); }

void AttributeIndexes::PredicateInto(const query::SargablePredicate& pred,
                                     std::vector<Loid>* out) const {
  auto it = attrs_.find(pred.attr);
  if (it == attrs_.end()) return;  // attribute never seen: no candidates
  const PerAttribute& index = it->second;

  switch (pred.op) {
    case query::PredicateOp::kDefined:
      out->insert(out->end(), index.present.begin(), index.present.end());
      return;
    case query::PredicateOp::kEq: {
      if (pred.literal.is_string()) {
        auto set = index.by_string.find(pred.literal.as_string());
        if (set != index.by_string.end()) {
          out->insert(out->end(), set->second.begin(), set->second.end());
        }
      } else if (pred.literal.is_bool()) {
        const auto& set = index.by_bool[pred.literal.as_bool() ? 1 : 0];
        out->insert(out->end(), set.begin(), set.end());
      } else if (pred.literal.is_numeric()) {
        auto [begin, end] =
            index.by_number.equal_range(pred.literal.as_double());
        for (auto key = begin; key != end; ++key) {
          out->insert(out->end(), key->second.begin(), key->second.end());
        }
      }
      return;
    }
    case query::PredicateOp::kLt:
    case query::PredicateOp::kLe:
    case query::PredicateOp::kGt:
    case query::PredicateOp::kGe: {
      // Inclusive at the boundary in both directions; the residual pass
      // trims the edge (planner.h explains why this must stay a
      // superset).
      const double bound = pred.literal.as_double();
      auto begin = index.by_number.begin();
      auto end = index.by_number.end();
      if (pred.op == query::PredicateOp::kLt ||
          pred.op == query::PredicateOp::kLe) {
        end = index.by_number.upper_bound(bound);
      } else {
        begin = index.by_number.lower_bound(bound);
      }
      for (auto key = begin; key != end; ++key) {
        out->insert(out->end(), key->second.begin(), key->second.end());
      }
      return;
    }
  }
}

std::size_t AttributeIndexes::EstimatePredicate(
    const query::SargablePredicate& pred, std::size_t cap) const {
  auto it = attrs_.find(pred.attr);
  if (it == attrs_.end()) return 0;
  const PerAttribute& index = it->second;

  switch (pred.op) {
    case query::PredicateOp::kDefined:
      return index.present.size();
    case query::PredicateOp::kEq: {
      if (pred.literal.is_string()) {
        auto set = index.by_string.find(pred.literal.as_string());
        return set == index.by_string.end() ? 0 : set->second.size();
      }
      if (pred.literal.is_bool()) {
        return index.by_bool[pred.literal.as_bool() ? 1 : 0].size();
      }
      if (pred.literal.is_numeric()) {
        auto [begin, end] =
            index.by_number.equal_range(pred.literal.as_double());
        std::size_t n = 0;
        for (auto key = begin; key != end; ++key) n += key->second.size();
        return n;
      }
      return 0;
    }
    default: {
      // Ranges: walk the matching keys summing set sizes, but stop at
      // the cap -- an unselective range is about to lose to the scan (or
      // to a cheaper `and` sibling) anyway, so an exact count of a huge
      // range is money down the drain.
      const double bound = pred.literal.as_double();
      auto begin = index.by_number.begin();
      auto end = index.by_number.end();
      if (pred.op == query::PredicateOp::kLt ||
          pred.op == query::PredicateOp::kLe) {
        end = index.by_number.upper_bound(bound);
      } else {
        begin = index.by_number.lower_bound(bound);
      }
      std::size_t n = 0;
      for (auto key = begin; key != end && n <= cap; ++key) {
        n += key->second.size();
      }
      return n;
    }
  }
}

std::size_t AttributeIndexes::Estimate(const query::IndexPlan& plan,
                                       std::size_t cap) const {
  switch (plan.kind) {
    case query::IndexPlan::Kind::kPredicate:
      return EstimatePredicate(plan.pred, cap);
    case query::IndexPlan::Kind::kAnd: {
      // The cap shrinks as better children turn up, so expensive range
      // counts stop as soon as they lose.
      std::size_t best = std::numeric_limits<std::size_t>::max();
      for (const auto& child : plan.children) {
        best = std::min(best, Estimate(child, std::min(cap, best)));
      }
      return best;
    }
    case query::IndexPlan::Kind::kOr: {
      std::size_t total = 0;
      for (const auto& child : plan.children) {
        total += Estimate(child, cap);
        if (total > cap) break;
      }
      return total;
    }
  }
  return std::numeric_limits<std::size_t>::max();
}

void AttributeIndexes::EvalInto(const query::IndexPlan& plan,
                                std::vector<Loid>* out) const {
  switch (plan.kind) {
    case query::IndexPlan::Kind::kPredicate:
      PredicateInto(plan.pred, out);
      return;
    case query::IndexPlan::Kind::kAnd: {
      // Matches are a subset of every conjunct's candidates, so prune
      // through the cheapest child and let the residual pass check the
      // rest -- intersecting the large siblings would cost more than it
      // saves.
      const query::IndexPlan* cheapest = nullptr;
      std::size_t best = std::numeric_limits<std::size_t>::max();
      for (const auto& child : plan.children) {
        const std::size_t estimate = Estimate(child, std::min(
            best, std::numeric_limits<std::size_t>::max() - 1));
        if (estimate < best) {
          best = estimate;
          cheapest = &child;
        }
      }
      if (cheapest != nullptr) EvalInto(*cheapest, out);
      return;
    }
    case query::IndexPlan::Kind::kOr:
      for (const auto& child : plan.children) EvalInto(child, out);
      return;
  }
}

AttributeIndexes::Candidates AttributeIndexes::Eval(
    const query::IndexPlan& plan) const {
  Candidates result;
  result.exact = plan.exact;
  EvalInto(plan, &result.members);
  // Individual member sets come out LOID-sorted, but ranges and unions
  // interleave sets; restore the canonical order (and drop duplicates a
  // record can earn by matching several `or` branches).
  std::sort(result.members.begin(), result.members.end());
  result.members.erase(
      std::unique(result.members.begin(), result.members.end()),
      result.members.end());
  return result;
}

}  // namespace legion
