#include "core/dcd.h"

namespace legion {

namespace {
constexpr std::uint64_t kServiceClassSerial = 5;
}  // namespace

DataCollectionDaemon::DataCollectionDaemon(SimKernel* kernel, Loid loid,
                                           DcdOptions options)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(), kServiceClassSerial)),
      options_(options) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
}

DataCollectionDaemon::~DataCollectionDaemon() { Stop(); }

void DataCollectionDaemon::WatchResource(const Loid& resource) {
  resources_.push_back(resource);
}

void DataCollectionDaemon::AddCollection(CollectionObject* collection) {
  collections_.push_back(collection);
  collection->AddTrustedUpdater(loid());
}

void DataCollectionDaemon::Start() {
  if (timer_ != 0) return;
  timer_ = kernel()->SchedulePeriodic(options_.poll_period,
                                      [this] { PollNow(); });
}

void DataCollectionDaemon::Stop() {
  if (timer_ == 0) return;
  kernel()->CancelPeriodic(timer_);
  timer_ = 0;
}

void DataCollectionDaemon::PollNow() {
  for (const Loid& resource : resources_) {
    // Pull: one RPC to the resource for its current attributes.
    kernel()->AsyncCall<AttributeDatabase>(
        loid(), resource, kSmallMessage, kMediumMessage, kDefaultRpcTimeout,
        [kernel = kernel(), resource](Callback<AttributeDatabase> reply) {
          auto* object =
              dynamic_cast<LegionObject*>(kernel->FindActor(resource));
          if (object == nullptr) {
            reply(Status::Error(ErrorCode::kUnavailable,
                                "resource gone: " + resource.ToString()));
            return;
          }
          reply(object->attributes());
        },
        [this, resource](Result<AttributeDatabase> attrs) {
          if (!attrs.ok()) return;
          if (const AttrValue* load = attrs->Get("host_load");
              load != nullptr && load->is_numeric()) {
            RecordSample(resource, load->as_double());
          }
          // Push: authenticated third-party update into each Collection.
          for (CollectionObject* collection : collections_) {
            CallOn<bool, CollectionObject>(
                kernel(), loid(), collection->loid(), kMediumMessage,
                kSmallMessage, kDefaultRpcTimeout,
                [caller = loid(), resource, attrs = *attrs](
                    CollectionObject& c, Callback<bool> reply) {
                  c.UpdateEntryAs(caller, resource, attrs, std::move(reply));
                },
                [](Result<bool>) {});
          }
        });
  }
  ++polls_completed_;
}

void DataCollectionDaemon::RecordSample(const Loid& host, double load) {
  auto& samples = history_[host];
  samples.push_back(load);
  while (samples.size() > options_.history_length) samples.pop_front();
}

const std::deque<double>* DataCollectionDaemon::HistoryFor(
    const Loid& host) const {
  auto it = history_.find(host);
  return it == history_.end() ? nullptr : &it->second;
}

double DataCollectionDaemon::ForecastLoad(const Loid& host) const {
  const std::deque<double>* samples = HistoryFor(host);
  if (samples == nullptr || samples->empty()) return 0.0;
  if (samples->size() < 4) return samples->back();
  // AR(1): x_{t+1} = mean + phi * (x_t - mean), phi from lag-1
  // autocovariance.
  double mean = 0.0;
  for (double s : *samples) mean += s;
  mean /= static_cast<double>(samples->size());
  double cov0 = 0.0, cov1 = 0.0;
  for (std::size_t i = 0; i < samples->size(); ++i) {
    const double d = (*samples)[i] - mean;
    cov0 += d * d;
    if (i + 1 < samples->size()) cov1 += d * ((*samples)[i + 1] - mean);
  }
  const double phi = cov0 > 1e-12 ? cov1 / cov0 : 0.0;
  return mean + phi * (samples->back() - mean);
}

void DataCollectionDaemon::InstallForecastFunction(
    CollectionObject* collection) {
  collection->functions().Register(
      "forecast_load",
      [this](const AttributeDatabase& record,
             const std::vector<AttrValue>& args) -> AttrValue {
        (void)args;
        const AttrValue* member = record.Get("member");
        if (member == nullptr || !member->is_string()) return AttrValue();
        auto loid = ParseLoid(member->as_string());
        if (!loid.has_value()) return AttrValue();
        return AttrValue(ForecastLoad(*loid));
      });
}

}  // namespace legion
