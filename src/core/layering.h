// Resource-management layering choices (paper section 3, figure 2).
//
//   (a) the application does it all: it negotiates directly with
//       resources and makes placement decisions;
//   (b) the application makes its own placement decision but uses the
//       provided Resource Management services (the Enactor) to negotiate;
//   (c) the application uses a combined placement + negotiation module
//       (as in MESSIAHS);
//   (d) placement (Scheduler), negotiation (Enactor), and information
//       (Collection) each live in separate modules -- the most flexible
//       layering, and the one the rest of the paper assumes.
//
// ApplicationCoordinator realizes all four.  Each mode issues the same
// *logical* placement (random, figure-7 style) but distributes the work
// differently, so experiment E6 can compare message counts and placement
// latency across layerings -- the "cost that scales with capability"
// claim (C1).
#pragma once

#include "base/rng.h"
#include "core/collection.h"
#include "core/enactor.h"
#include "core/scheduler.h"
#include "objects/legion_object.h"

namespace legion {

enum class Layering {
  kApplicationDoesAll,     // (a)
  kApplicationPlusRm,      // (b)
  kCombinedModule,         // (c)
  kSeparateModules,        // (d)
};

const char* ToString(Layering layering);

struct PlacementTrace {
  bool success = false;
  Duration latency;        // request to final confirmation
  std::size_t instances_started = 0;
};

class ApplicationCoordinator : public LegionObject {
 public:
  // Wiring: every mode needs the collection; (b) and (d) need the
  // enactor; (c) needs a combined service (another coordinator in mode
  // (a) acting remotely); (d) needs a scheduler.
  struct Wiring {
    Loid collection;
    Loid enactor;
    Loid combined_service;
    Loid scheduler;
  };

  ApplicationCoordinator(SimKernel* kernel, Loid loid, Layering layering,
                         Wiring wiring, std::uint64_t seed = 7);

  std::string DebugName() const override {
    return std::string("app[") + legion::ToString(layering_) + "]";
  }

  void Place(const PlacementRequest& request, Callback<PlacementTrace> done);

  // The mode-(c) service entry point: runs the mode-(a) logic locally on
  // behalf of a remote application.
  void PlaceAsService(const PlacementRequest& request,
                      Callback<PlacementTrace> done);

 private:
  void PlaceDoesAll(const PlacementRequest& request,
                    Callback<PlacementTrace> done);
  void PlacePlusRm(const PlacementRequest& request,
                   Callback<PlacementTrace> done);
  void PlaceCombined(const PlacementRequest& request,
                     Callback<PlacementTrace> done);
  void PlaceSeparate(const PlacementRequest& request,
                     Callback<PlacementTrace> done);

  // Shared pieces.
  void QuerySnapshot(Callback<CollectionData> done);
  Result<std::vector<ObjectMapping>> RandomMappings(
      const PlacementRequest& request, const CollectionData& hosts);
  // Direct negotiation with the hosts (mode (a)/(c)): reservations then
  // class create_instance calls.
  void NegotiateAndInstantiate(std::vector<ObjectMapping> mappings,
                               SimTime started,
                               Callback<PlacementTrace> done);

  Layering layering_;
  Wiring wiring_;
  Rng rng_;
};

}  // namespace legion
