#include "core/scheduler.h"

#include <algorithm>
#include <sstream>

namespace legion {

namespace {
constexpr std::uint64_t kServiceClassSerial = 5;
}  // namespace

SchedulerObject::SchedulerObject(SimKernel* kernel, Loid loid,
                                 std::string name, Loid collection,
                                 Loid enactor)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(), kServiceClassSerial)),
      name_(std::move(name)),
      collection_(collection),
      enactor_(enactor) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "scheduler");
  mutable_attributes().Set("scheduler_name", name_);

  const obs::Labels labels = {{"component", "scheduler"},
                              {"scheduler", name_}};
  runs_cell_ = kernel->metrics().GetCounter("scheduler_runs", labels);
  successes_cell_ = kernel->metrics().GetCounter("scheduler_successes", labels);
  lookups_cell_ = kernel->metrics().GetCounter("collection_lookups", labels);
  suspects_skipped_cell_ =
      kernel->metrics().GetCounter("suspects_skipped", labels);
  mappings_unplaced_cell_ =
      kernel->metrics().GetCounter("mappings_unplaced", labels);
}

const HealthTracker* SchedulerObject::health() const {
  auto* enactor = dynamic_cast<EnactorObject*>(kernel()->FindActor(enactor_));
  if (enactor == nullptr || !enactor->options().use_health) return nullptr;
  return &enactor->health();
}

void SchedulerObject::AuditDecision(const char* kind, obs::TraceArgs fields) {
  fields.insert(fields.begin(), {"scheduler", name_});
  kernel()->audit().Record(kernel()->Now(), kind, std::move(fields));
}

void SchedulerObject::AuditChoice(std::size_t slot,
                                  const ObjectMapping& mapping,
                                  const std::string& reason) {
  if (!AuditOn()) return;
  AuditDecision("sched_choice", {{"slot", std::to_string(slot)},
                                 {"class", mapping.class_loid.ToString()},
                                 {"host", mapping.host.ToString()},
                                 {"reason", reason}});
}

void SchedulerObject::FilterSuspects(CollectionData* hosts,
                                     std::size_t min_keep) {
  const HealthTracker* tracker = health();
  if (tracker == nullptr || hosts->empty()) return;
  std::size_t healthy = 0;
  for (const CollectionRecord& record : *hosts) {
    if (tracker->Healthy(record.member)) ++healthy;
  }
  // Nothing suspect, or too few healthy candidates to satisfy the
  // policy: keep the pool intact (the Enactor's breaker will still fail
  // suspects fast, and half-open targets need traffic to recover).
  if (healthy == hosts->size() || healthy < min_keep) return;
  const std::size_t skipped = hosts->size() - healthy;
  if (AuditOn()) {
    for (const CollectionRecord& record : *hosts) {
      if (!tracker->Healthy(record.member)) {
        AuditDecision("sched_suspect_skip",
                      {{"host", record.member.ToString()},
                       {"reason", "breaker_open"}});
      }
    }
    AuditDecision("sched_filter",
                  {{"pool", std::to_string(hosts->size())},
                   {"healthy", std::to_string(healthy)},
                   {"skipped", std::to_string(skipped)}});
  }
  hosts->erase(std::remove_if(hosts->begin(), hosts->end(),
                              [tracker](const CollectionRecord& record) {
                                return !tracker->Healthy(record.member);
                              }),
               hosts->end());
  suspects_skipped_cell_->Add(skipped);
}

void SchedulerObject::QueryHosts(const std::string& query,
                                 Callback<CollectionData> done) {
  QueryHosts(query, ScopedOptions(), std::move(done));
}

void SchedulerObject::QueryHosts(const std::string& query,
                                 const QueryOptions& options,
                                 Callback<CollectionData> done) {
  ++collection_lookups_;
  lookups_cell_->Add();
  if (AuditOn()) {
    // Record the candidate count when the reply lands, so the report
    // shows what pool the policy actually worked from.
    done = [this, query, done = std::move(done)](Result<CollectionData> r) {
      AuditDecision("sched_query",
                    {{"query", query},
                     {"candidates",
                      r.ok() ? std::to_string(r->size()) : "error"}});
      done(std::move(r));
    };
  }
  CallOn<CollectionData, CollectionObject>(
      kernel(), loid(), collection_, kSmallMessage, kLargeMessage,
      kDefaultRpcTimeout,
      [query, options](CollectionObject& collection,
                       Callback<CollectionData> reply) {
        collection.QueryCollection(query, options, std::move(reply));
      },
      std::move(done), "query_collection");
}

void SchedulerObject::GetImplementations(
    const Loid& class_loid, Callback<std::vector<Implementation>> done) {
  CallOn<std::vector<Implementation>, ClassInterface>(
      kernel(), loid(), class_loid, kSmallMessage, kSmallMessage,
      kDefaultRpcTimeout,
      [](ClassInterface& klass, Callback<std::vector<Implementation>> reply) {
        klass.GetImplementations(std::move(reply));
      },
      std::move(done), "get_implementations");
}

std::string SchedulerObject::HostMatchQuery(
    const std::vector<Implementation>& implementations) {
  if (implementations.empty()) return "true";
  std::ostringstream os;
  for (std::size_t i = 0; i < implementations.size(); ++i) {
    if (i != 0) os << " or ";
    os << "($host_arch == \"" << implementations[i].arch
       << "\" and $host_os_name == \"" << implementations[i].os_name << "\")";
  }
  return os.str();
}

std::vector<Loid> SchedulerObject::CompatibleVaultsOf(
    const CollectionRecord& record) {
  std::vector<Loid> vaults;
  const AttrValue* list = record.attributes.Get("compatible_vaults");
  if (list == nullptr || !list->is_list()) return vaults;
  for (const AttrValue& entry : list->as_list()) {
    if (!entry.is_string()) continue;
    if (auto loid = ParseLoid(entry.as_string()); loid.has_value()) {
      vaults.push_back(*loid);
    }
  }
  return vaults;
}

std::string SchedulerObject::ImplementationFor(
    const CollectionRecord& record) {
  const AttrValue* arch = record.attributes.Get("host_arch");
  const AttrValue* os = record.attributes.Get("host_os_name");
  if (arch == nullptr || os == nullptr || !arch->is_string() ||
      !os->is_string()) {
    return "";
  }
  return arch->as_string() + "/" + os->as_string();
}

// ---- The figure-9 run loop ---------------------------------------------------

struct SchedulerObject::RunState {
  PlacementRequest request;
  RunOptions options;
  Callback<RunOutcome> done;
  RunOutcome outcome;
  int enact_attempts_this_schedule = 0;
};

void SchedulerObject::ScheduleAndEnact(const PlacementRequest& request,
                                       RunOptions options,
                                       Callback<RunOutcome> done) {
  runs_cell_->Add();
  auto state = std::make_shared<RunState>();
  state->request = request;
  state->options = options;
  // Root span of the negotiation: everything the run causes -- the
  // Collection query, each reservation round, the enactment -- hangs off
  // this ID in the trace.
  obs::TraceLog& trace = kernel()->trace();
  obs::SpanId span = obs::kNoSpan;
  if (trace.enabled()) {
    span = trace.BeginSpan(kernel()->Now(), "schedule_and_enact", "scheduler",
                           trace.current(), {{"scheduler", name_}});
  }
  state->done = [this, span, done = std::move(done)](Result<RunOutcome> r) {
    if (r.ok() && r->success) successes_cell_->Add();
    if (span != obs::kNoSpan) {
      kernel()->trace().EndSpan(
          kernel()->Now(), span,
          {{"success", r.ok() && r->success ? "true" : "false"}});
    }
    done(std::move(r));
  };
  if (span != obs::kNoSpan) {
    obs::ScopedCurrent ctx(trace, span);
    RunScheduleAttempt(state);
  } else {
    RunScheduleAttempt(state);
  }
}

void SchedulerObject::RunScheduleAttempt(
    const std::shared_ptr<RunState>& state) {
  if (state->outcome.sched_attempts >= state->options.sched_try_limit) {
    state->done(std::move(state->outcome));
    return;
  }
  ++state->outcome.sched_attempts;
  state->enact_attempts_this_schedule = 0;
  ComputeSchedule(state->request,
                  [this, state](Result<ScheduleRequestList> schedule) {
                    if (!schedule.ok() || schedule->empty()) {
                      RunScheduleAttempt(state);
                      return;
                    }
                    RunEnactAttempt(state, *schedule);
                  });
}

void SchedulerObject::RunEnactAttempt(const std::shared_ptr<RunState>& state,
                                      const ScheduleRequestList& schedule) {
  if (state->enact_attempts_this_schedule >= state->options.enact_try_limit) {
    RunScheduleAttempt(state);
    return;
  }
  ++state->enact_attempts_this_schedule;
  ++state->outcome.enact_attempts;

  auto* enactor = dynamic_cast<EnactorObject*>(kernel()->FindActor(enactor_));
  if (enactor == nullptr) {
    state->outcome.success = false;
    state->done(std::move(state->outcome));
    return;
  }
  // Pass the entire set of schedules to make_reservations() and wait for
  // feedback (figure 6 usage).  Receiving the feedback and choosing to
  // proceed is the paper's "Enactor consults with the Scheduler to
  // confirm the schedule" step.
  CallOn<ScheduleFeedback, EnactorObject>(
      kernel(), loid(), enactor_, kMediumMessage, kMediumMessage,
      kDefaultRpcTimeout,
      [schedule](EnactorObject& e, Callback<ScheduleFeedback> reply) {
        e.MakeReservations(schedule, std::move(reply));
      },
      [this, state, schedule](Result<ScheduleFeedback> feedback) {
        if (!feedback.ok() || !feedback->success) {
          if (feedback.ok()) {
            state->outcome.feedback = *feedback;
            // Per-mapping granularity of the failure: how many slots of
            // the last tried master never secured a reservation.
            mappings_unplaced_cell_->Add(feedback->failed_indices.size());
          }
          RunEnactAttempt(state, schedule);
          return;
        }
        state->outcome.feedback = *feedback;
        CallOn<EnactResult, EnactorObject>(
            kernel(), loid(), enactor_, kMediumMessage, kMediumMessage,
            kDefaultRpcTimeout,
            [fb = *feedback](EnactorObject& e, Callback<EnactResult> reply) {
              e.EnactSchedule(fb, std::move(reply));
            },
            [this, state, schedule](Result<EnactResult> enacted) {
              if (enacted.ok()) state->outcome.enacted = *enacted;
              if (enacted.ok() && enacted->success) {
                state->outcome.success = true;
                state->done(std::move(state->outcome));
                return;
              }
              // Enactment failed: release what we still hold, then retry
              // within this schedule's enact budget.
              auto* enactor = dynamic_cast<EnactorObject*>(
                  kernel()->FindActor(enactor_));
              if (enactor != nullptr &&
                  state->outcome.feedback.success) {
                enactor->CancelReservations(state->outcome.feedback,
                                            [](Result<std::size_t>) {});
              }
              RunEnactAttempt(state, schedule);
            },
            "enact_schedule");
      },
      "make_reservations");
}

}  // namespace legion
