// The Data Collection Daemon (paper section 3.2, footnote 4).
//
// "We are implementing an intermediate agent, the Data Collection Daemon,
// which pulls data from Hosts and pushes it into Collections."
//
// The daemon polls its assigned resources on a period, pushes each
// snapshot into its Collections as an authenticated third-party update,
// and (as a demonstration of the function-injection extension) keeps a
// short load history per host from which a Network-Weather-Service-style
// forecast function computes predicted load at query time.
#pragma once

#include <deque>
#include <unordered_map>
#include <vector>

#include "core/collection.h"
#include "objects/legion_object.h"

namespace legion {

struct DcdOptions {
  Duration poll_period = Duration::Seconds(30);
  std::size_t history_length = 32;  // load samples kept per host
};

class DataCollectionDaemon : public LegionObject {
 public:
  DataCollectionDaemon(SimKernel* kernel, Loid loid, DcdOptions options = {});
  ~DataCollectionDaemon() override;

  std::string DebugName() const override { return "dcd"; }

  void WatchResource(const Loid& resource);
  void AddCollection(CollectionObject* collection);

  void Start();
  void Stop();
  // One pull+push cycle, immediately.
  void PollNow();

  // Installs "forecast_load()" into a collection's function registry.
  // The forecast is an AR(1) fit over this daemon's load history for the
  // record's member -- a toy stand-in for the Network Weather Service the
  // paper points at.
  void InstallForecastFunction(CollectionObject* collection);

  // Predicted next load for a host (AR(1) over history); falls back to
  // the last observation, then 0.
  double ForecastLoad(const Loid& host) const;
  const std::deque<double>* HistoryFor(const Loid& host) const;

  std::uint64_t polls_completed() const { return polls_completed_; }

 private:
  void RecordSample(const Loid& host, double load);

  DcdOptions options_;
  std::vector<Loid> resources_;
  std::vector<CollectionObject*> collections_;
  std::unordered_map<Loid, std::deque<double>> history_;
  SimKernel::PeriodicId timer_ = 0;
  std::uint64_t polls_completed_ = 0;
};

}  // namespace legion
