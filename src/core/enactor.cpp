#include "core/enactor.h"

#include <algorithm>
#include <unordered_map>

#include "objects/class_object.h"

namespace legion {

namespace {
constexpr std::uint64_t kServiceClassSerial = 5;
}  // namespace

// The mutable state of one make_reservations() negotiation.  Kept alive
// by shared_ptr across the asynchronous reservation rounds.
struct EnactorObject::Negotiation {
  // Audit correlation id (obs/audit.h); reported back to the scheduler
  // via ScheduleFeedback::negotiation_id.
  std::uint64_t id = 0;
  ScheduleRequestList request;
  Callback<ScheduleFeedback> done;

  std::size_t master = 0;        // which master schedule we are trying
  std::size_t next_variant = 0;  // next variant index to consider
  std::vector<std::size_t> applied_variants;
  std::vector<ObjectMapping> current;            // effective mappings
  std::vector<std::optional<ReservationToken>> tokens;
  // Mappings previously reserved-and-cancelled per index, for the thrash
  // metric.
  std::vector<std::vector<ObjectMapping>> cancelled_history;
  // Transient failures of the *current* mapping per index; reset when a
  // variant installs a new mapping there.
  std::vector<int> attempts;
  std::size_t outstanding = 0;
  ErrorCode last_code = ErrorCode::kNoResources;
  std::string last_error;
  bool finished = false;
  // When one host's group splits into several chunks, the trailing
  // chunks wait here for the leading chunk's reply: a smaller trailing
  // chunk is a smaller message and would otherwise overtake the bigger
  // one on the wire, making the host admit the round's slots out of
  // mapping order (and so decide differently than the legacy path).
  // Their slots stay counted in `outstanding`, so the round cannot
  // complete under them.
  std::vector<std::pair<Loid, std::deque<std::vector<std::size_t>>>>
      chunk_queues;
  // The failure set of the last abandoned master (per-mapping feedback
  // for the scheduler), captured before AbandonMaster cancels the holds.
  std::vector<std::size_t> last_failed_indices;

  void QueueChunk(const Loid& host, std::vector<std::size_t> indices) {
    for (auto& [queued_host, chunks] : chunk_queues) {
      if (queued_host == host) {
        chunks.push_back(std::move(indices));
        return;
      }
    }
    chunk_queues.emplace_back(
        host, std::deque<std::vector<std::size_t>>{std::move(indices)});
  }

  std::optional<std::vector<std::size_t>> PopChunk(const Loid& host) {
    for (auto it = chunk_queues.begin(); it != chunk_queues.end(); ++it) {
      if (it->first != host) continue;
      std::vector<std::size_t> indices = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) chunk_queues.erase(it);
      return indices;
    }
    return std::nullopt;
  }
};

EnactorObject::EnactorObject(SimKernel* kernel, Loid loid,
                             EnactorOptions options)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(), kServiceClassSerial)),
      options_(options),
      health_(kernel, options.health),
      rng_(kernel->network().params().seed ^ 0xE7AC70Full) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "enactor");

  obs::MetricsRegistry& metrics = kernel->metrics();
  const obs::Labels labels = {{"component", "enactor"}};
  cells_.negotiations = metrics.GetCounter("negotiations", labels);
  cells_.reservations_requested =
      metrics.GetCounter("reservations_requested", labels);
  cells_.reservations_granted =
      metrics.GetCounter("reservations_granted", labels);
  cells_.reservations_failed =
      metrics.GetCounter("reservations_failed", labels);
  cells_.reservations_cancelled =
      metrics.GetCounter("reservations_cancelled", labels);
  cells_.rereservations = metrics.GetCounter("rereservations", labels);
  cells_.enactments = metrics.GetCounter("enactments", labels);
  cells_.enact_failures = metrics.GetCounter("enact_failures", labels);
  cells_.negotiation_rounds = metrics.GetCounter("negotiation_rounds", labels);
  cells_.retries = metrics.GetCounter("retries", labels);
  cells_.breaker_open = metrics.GetCounter("breaker_open", labels);
  cells_.breaker_probes = metrics.GetCounter("breaker_probes", labels);
  cells_.partial_recoveries =
      metrics.GetCounter("partial_recoveries", labels);
  cells_.batches_sent = metrics.GetCounter("batches_sent", labels);
  cells_.batched_slots = metrics.GetCounter("batched_slots", labels);
  cells_.requests_parked = metrics.GetCounter("requests_parked", labels);
  cells_.batch_size = metrics.GetHistogram(
      "batch_size", labels, {1, 2, 4, 8, 16, 32, 64, 128, 256, 512});
}

const EnactorStats& EnactorObject::stats() const {
  stats_view_.negotiations = cells_.negotiations->value();
  stats_view_.reservations_requested = cells_.reservations_requested->value();
  stats_view_.reservations_granted = cells_.reservations_granted->value();
  stats_view_.reservations_failed = cells_.reservations_failed->value();
  stats_view_.reservations_cancelled = cells_.reservations_cancelled->value();
  stats_view_.rereservations = cells_.rereservations->value();
  stats_view_.enactments = cells_.enactments->value();
  stats_view_.enact_failures = cells_.enact_failures->value();
  stats_view_.retries = cells_.retries->value();
  stats_view_.breaker_open = cells_.breaker_open->value();
  stats_view_.breaker_probes = cells_.breaker_probes->value();
  stats_view_.partial_recoveries = cells_.partial_recoveries->value();
  stats_view_.batches_sent = cells_.batches_sent->value();
  stats_view_.batched_slots = cells_.batched_slots->value();
  stats_view_.requests_parked = cells_.requests_parked->value();
  return stats_view_;
}

void EnactorObject::ResetStats() {
  cells_.negotiations->Reset();
  cells_.reservations_requested->Reset();
  cells_.reservations_granted->Reset();
  cells_.reservations_failed->Reset();
  cells_.reservations_cancelled->Reset();
  cells_.rereservations->Reset();
  cells_.enactments->Reset();
  cells_.enact_failures->Reset();
  cells_.negotiation_rounds->Reset();
  cells_.retries->Reset();
  cells_.breaker_open->Reset();
  cells_.breaker_probes->Reset();
  cells_.partial_recoveries->Reset();
  cells_.batches_sent->Reset();
  cells_.batched_slots->Reset();
  cells_.requests_parked->Reset();
  cells_.batch_size->Reset();
}

void EnactorObject::LookupDemand(const Loid& class_loid,
                                 std::size_t* memory_mb,
                                 double* cpu_fraction) const {
  *memory_mb = 32;
  *cpu_fraction = 1.0;
  auto* klass =
      dynamic_cast<ClassObject*>(kernel()->FindActor(class_loid));
  if (klass != nullptr) {
    *memory_mb = klass->instance_memory_mb();
    *cpu_fraction = klass->instance_cpu_fraction();
  }
}

void EnactorObject::MakeReservations(const ScheduleRequestList& request,
                                     Callback<ScheduleFeedback> done) {
  cells_.negotiations->Add();
  Status valid = request.Validate();
  if (!valid.ok()) {
    ScheduleFeedback feedback;
    feedback.original = request;
    feedback.success = false;
    feedback.failure = ErrorCode::kMalformedSchedule;
    feedback.failure_detail = valid.message();
    done(std::move(feedback));
    return;
  }
  auto n = std::make_shared<Negotiation>();
  n->id = next_negotiation_id_++;
  n->request = request;
  n->done = std::move(done);
  if (AuditOn()) {
    Audit("negotiation_begin",
          {{"nid", std::to_string(n->id)},
           {"masters", std::to_string(request.masters.size())}});
  }
  StartMaster(n);
}

void EnactorObject::StartMaster(const std::shared_ptr<Negotiation>& n) {
  if (n->master >= n->request.masters.size()) {
    Fail(n);
    return;
  }
  const MasterSchedule& master = n->request.masters[n->master];
  if (AuditOn()) {
    Audit("master_start",
          {{"nid", std::to_string(n->id)},
           {"master", std::to_string(n->master)},
           {"mappings", std::to_string(master.mappings.size())},
           {"variants", std::to_string(master.variants.size())}});
  }
  n->current = master.mappings;
  n->tokens.assign(master.mappings.size(), std::nullopt);
  n->cancelled_history.assign(master.mappings.size(), {});
  n->attempts.assign(master.mappings.size(), 0);
  n->applied_variants.clear();
  n->next_variant = 0;
  n->chunk_queues.clear();
  RequestMissing(n);
}

void EnactorObject::RequestMissing(const std::shared_ptr<Negotiation>& n) {
  // Fire a reservation request for every index without a token.  The
  // requests go out concurrently -- this is the co-allocation step: hosts
  // in several administrative domains negotiate in parallel.
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < n->tokens.size(); ++i) {
    if (!n->tokens[i].has_value()) missing.push_back(i);
  }
  if (missing.empty()) {
    Succeed(n);
    return;
  }
  cells_.negotiation_rounds->Add();
  n->outstanding = missing.size();
  if (options_.max_batch_size <= 1) {
    // Legacy path: one RPC per mapping.
    for (std::size_t index : missing) ReserveIndex(n, index);
    return;
  }
  // Batched path (DESIGN.md §11): group the round's requests by target
  // host, preserving mapping order within each group (the order the
  // host's table admits slots in), and chunk each group at the cap.
  // Open breakers still fail per index -- batching never widens the
  // granularity of the health machinery.
  std::vector<std::pair<Loid, std::vector<std::size_t>>> groups;
  for (std::size_t index : missing) {
    const Loid& host = n->current[index].host;
    if (options_.use_health && !health_.Healthy(host)) {
      FailIndexFast(n, index);
      continue;
    }
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&host](const auto& group) { return group.first == host; });
    if (it == groups.end()) {
      groups.emplace_back(host, std::vector<std::size_t>{index});
    } else {
      it->second.push_back(index);
    }
  }
  for (auto& [host, indices] : groups) {
    // Chunks after the first wait for their predecessor's reply
    // (DispatchNextChunk) so the host admits this round's slots in
    // mapping order even when the chunks differ in wire size.
    for (std::size_t begin = options_.max_batch_size; begin < indices.size();
         begin += options_.max_batch_size) {
      const std::size_t end =
          std::min(begin + options_.max_batch_size, indices.size());
      n->QueueChunk(host, std::vector<std::size_t>(indices.begin() + begin,
                                                   indices.begin() + end));
    }
    indices.resize(std::min(indices.size(), options_.max_batch_size));
    EnqueueBatch(n, host, std::move(indices));
  }
}

// The in-order successor of a chunk whose fate is settled: sent once the
// predecessor's reply (or breaker fast-fail) has been processed.
void EnactorObject::DispatchNextChunk(const std::shared_ptr<Negotiation>& n,
                                      const Loid& host) {
  if (n->finished) return;
  if (auto indices = n->PopChunk(host)) {
    EnqueueBatch(n, host, std::move(*indices));
  }
}

void EnactorObject::EnqueueBatch(const std::shared_ptr<Negotiation>& n,
                                 const Loid& host,
                                 std::vector<std::size_t> indices) {
  Batch batch;
  batch.negotiation = n;
  batch.host = host;
  batch.indices = std::move(indices);
  batch.wanted = batch.indices;
  // At-most-once id, minted once per batch: retransmissions reuse the
  // whole Batch (OnBatchReply's retry path), never pass through here.
  batch.id = next_batch_id_++;
  DispatchBatch(std::move(batch));
}

void EnactorObject::DispatchBatch(Batch batch) {
  if (options_.max_outstanding_batches > 0 &&
      outstanding_batches_ >= options_.max_outstanding_batches) {
    // Backpressure: park instead of flooding the event queue; the slots
    // stay accounted in the negotiation's outstanding set.
    cells_.requests_parked->Add(batch.wanted.size());
    if (kernel()->trace().enabled()) {
      kernel()->trace().Instant(
          kernel()->Now(), "batch_parked", "enactor",
          kernel()->trace().current(),
          {{"host", batch.host.ToString()},
           {"slots", std::to_string(batch.wanted.size())}});
    }
    if (AuditOn()) {
      const std::string nid = std::to_string(batch.negotiation->id);
      const std::string host = batch.host.ToString();
      for (std::size_t index : batch.wanted) {
        Audit("reserve_parked", {{"nid", nid},
                                 {"slot", std::to_string(index)},
                                 {"host", host}});
      }
    }
    parked_.push_back(std::move(batch));
    return;
  }
  SendBatch(std::move(batch));
}

void EnactorObject::PumpParked() {
  while (!parked_.empty() &&
         (options_.max_outstanding_batches == 0 ||
          outstanding_batches_ < options_.max_outstanding_batches)) {
    Batch batch = std::move(parked_.front());
    parked_.pop_front();
    SendBatch(std::move(batch));
  }
}

void EnactorObject::SendBatch(Batch batch) {
  const std::shared_ptr<Negotiation>& n = batch.negotiation;
  if (n->finished) return;  // parked past its negotiation's end
  // The breaker may have opened while the batch waited for a slot.
  if (options_.use_health && !health_.Healthy(batch.host)) {
    for (std::size_t index : batch.wanted) FailIndexFast(n, index);
    DispatchNextChunk(n, batch.host);  // no reply will come to trigger it
    return;
  }
  if (options_.use_health && health_.IsProbe(batch.host)) {
    cells_.breaker_probes->Add();
  }

  // Per-attempt accounting for the slots still negotiating, exactly as
  // the unbatched path counts each ReserveIndex invocation.
  for (std::size_t index : batch.wanted) {
    const ObjectMapping& mapping = n->current[index];
    // Thrash metric, per slot, exactly as on the unbatched path.
    const auto& history = n->cancelled_history[index];
    if (std::find(history.begin(), history.end(), mapping) != history.end()) {
      cells_.rereservations->Add();
      if (kernel()->trace().enabled()) {
        kernel()->trace().Instant(kernel()->Now(), "rereservation", "enactor",
                                  kernel()->trace().current(),
                                  {{"host", mapping.host.ToString()},
                                   {"index", std::to_string(index)}});
      }
    }
    cells_.reservations_requested->Add();
    if (AuditOn()) {
      Audit("reserve_requested",
            {{"nid", std::to_string(n->id)},
             {"slot", std::to_string(index)},
             {"host", mapping.host.ToString()},
             {"batch", std::to_string(batch.id)},
             {"attempt", std::to_string(n->attempts[index] + 1)}});
    }
  }

  // Freeze the wire payload on first send.  A retransmission reuses it
  // verbatim -- same id, same full slot set -- so the host can dedup by
  // id no matter which subset of slots is still wanted, and the message
  // costs the same bytes both times.
  if (batch.request == nullptr) {
    auto request = std::make_shared<ReservationBatchRequest>();
    request->requester = loid();
    request->batch_id = batch.id;
    request->slots.reserve(batch.indices.size());
    for (std::size_t index : batch.indices) {
      const ObjectMapping& mapping = n->current[index];
      BatchSlotRequest slot;
      slot.index = index;
      slot.request.vault = mapping.vault;
      slot.request.start = kernel()->Now() + options_.reservation_start_offset;
      slot.request.duration = options_.reservation_duration;
      slot.request.confirm_timeout = options_.confirm_timeout;
      slot.request.type = options_.reservation_type;
      slot.request.requester = loid();
      slot.request.requester_domain = loid().domain();
      LookupDemand(mapping.class_loid, &slot.request.memory_mb,
                   &slot.request.cpu_fraction);
      request->slots.push_back(std::move(slot));
    }
    batch.request = std::move(request);
  }
  ReservationBatchRequest request = *batch.request;
  request.retransmit = batch.retransmit;

  ++outstanding_batches_;
  cells_.batches_sent->Add();
  cells_.batched_slots->Add(batch.indices.size());
  cells_.batch_size->Observe(static_cast<double>(batch.indices.size()));
  if (kernel()->trace().enabled()) {
    kernel()->trace().Instant(
        kernel()->Now(), "reserve_batch", "enactor",
        kernel()->trace().current(),
        {{"host", batch.host.ToString()},
         {"slots", std::to_string(batch.indices.size())}});
  }
  // Size-cost the RPC on the wire: one envelope plus a marginal cost per
  // slot, both ways, so NetworkModel charges real transfer time.
  const std::size_t request_bytes =
      kSmallMessage + request.slots.size() * kBatchSlotMessage;
  const std::size_t reply_bytes =
      kSmallMessage + request.slots.size() * kBatchSlotReplyMessage;
  const Loid host = batch.host;
  CallOn<ReservationBatchReply, HostInterface>(
      kernel(), loid(), host, request_bytes, reply_bytes,
      options_.rpc_timeout,
      [request](HostInterface& host_iface,
                Callback<ReservationBatchReply> reply) {
        host_iface.MakeReservationBatch(request, std::move(reply));
      },
      [this, batch = std::move(batch)](Result<ReservationBatchReply> result) {
        OnBatchReply(batch, std::move(result));
      },
      "reserve_batch");
}

void EnactorObject::OnBatchReply(const Batch& batch,
                                 Result<ReservationBatchReply> result) {
  --outstanding_batches_;
  // Free slot first: parked batches (possibly of other negotiations)
  // should not wait on this reply's bookkeeping.
  PumpParked();
  const std::shared_ptr<Negotiation>& n = batch.negotiation;
  if (n->finished) return;
  const Loid target = batch.host;
  std::size_t completed = 0;

  if (result.ok()) {
    // The host answered: per-slot outcomes, per-slot health bookkeeping.
    // Only the wanted slots feed the negotiation; the rest of the wire
    // set (slots abandoned between transmissions) is settled already.
    std::unordered_map<std::size_t, const BatchSlotOutcome*> by_index;
    for (const BatchSlotOutcome& outcome : result->outcomes) {
      by_index[outcome.index] = &outcome;
    }
    for (std::size_t index : batch.wanted) {
      ++completed;
      auto it = by_index.find(index);
      if (it == by_index.end()) {
        cells_.reservations_failed->Add();
        n->last_code = ErrorCode::kInternal;
        n->last_error = "batch reply missing slot " + std::to_string(index);
        if (AuditOn()) {
          Audit("reserve_failed", {{"nid", std::to_string(n->id)},
                                   {"slot", std::to_string(index)},
                                   {"host", target.ToString()},
                                   {"code", "INTERNAL"}});
        }
        continue;
      }
      const BatchSlotOutcome& outcome = *it->second;
      if (AuditOn()) {
        if (outcome.status.ok()) {
          Audit("reserve_granted", {{"nid", std::to_string(n->id)},
                                    {"slot", std::to_string(index)},
                                    {"host", target.ToString()}});
        } else {
          Audit("reserve_failed",
                {{"nid", std::to_string(n->id)},
                 {"slot", std::to_string(index)},
                 {"host", target.ToString()},
                 {"code", legion::ToString(outcome.status.code())}});
        }
      }
      if (outcome.status.ok()) {
        if (options_.use_health) health_.RecordSuccess(target);
        cells_.reservations_granted->Add();
        if (n->attempts[index] > 0) cells_.partial_recoveries->Add();
        n->tokens[index] = outcome.token;
      } else {
        // Slot-level refusals and capacity shortfalls are the host's
        // prerogative, not sickness -- no health signal, no retry; the
        // variant machinery takes over per mapping.
        cells_.reservations_failed->Add();
        n->last_code = outcome.status.code();
        n->last_error = outcome.status.message();
      }
      if (kernel()->trace().enabled()) {
        kernel()->trace().Instant(
            kernel()->Now(),
            outcome.status.ok() ? "reserve_ok" : "reserve_fail", "enactor",
            kernel()->trace().current(),
            {{"host", target.ToString()},
             {"index", std::to_string(index)}});
      }
    }
    // A retransmission may carry slots the negotiation abandoned after
    // the original send (retry budget exhausted, possibly re-aimed by a
    // variant since).  A grant for such a slot is a stray hold nobody
    // will redeem: release it instead of letting it pin capacity until
    // expiry.
    if (batch.wanted.size() != batch.indices.size()) {
      for (std::size_t index : batch.indices) {
        if (std::find(batch.wanted.begin(), batch.wanted.end(), index) !=
            batch.wanted.end()) {
          continue;
        }
        auto it = by_index.find(index);
        if (it != by_index.end() && it->second->status.ok()) {
          cells_.reservations_cancelled->Add();
          if (AuditOn()) {
            Audit("stray_grant_cancelled",
                  {{"nid", std::to_string(n->id)},
                   {"slot", std::to_string(index)},
                   {"host", target.ToString()}});
          }
          CancelToken(it->second->token);
        }
      }
    }
  } else {
    // The whole RPC failed (timeout, unreachable host): every wanted
    // slot shares the outcome, with the same per-slot health and retry
    // granularity as N concurrent unbatched RPCs would have had.
    const ErrorCode code = result.status().code();
    std::vector<std::size_t> retryable;
    for (std::size_t index : batch.wanted) {
      if (options_.use_health && (code == ErrorCode::kTimeout ||
                                  code == ErrorCode::kUnavailable)) {
        health_.RecordFailure(target);
      }
      cells_.reservations_failed->Add();
      n->last_code = code;
      n->last_error = result.status().message();
      if (code == ErrorCode::kTimeout &&
          n->attempts[index] + 1 < options_.retry.max_attempts &&
          (!options_.use_health || health_.Healthy(target))) {
        ++n->attempts[index];
        cells_.retries->Add();
        if (AuditOn()) {
          Audit("reserve_retry",
                {{"nid", std::to_string(n->id)},
                 {"slot", std::to_string(index)},
                 {"host", target.ToString()},
                 {"attempt", std::to_string(n->attempts[index] + 1)}});
        }
        retryable.push_back(index);
      } else {
        if (AuditOn()) {
          Audit("reserve_failed", {{"nid", std::to_string(n->id)},
                                   {"slot", std::to_string(index)},
                                   {"host", target.ToString()},
                                   {"code", legion::ToString(code)}});
        }
        ++completed;
      }
    }
    if (!retryable.empty()) {
      // One backoff delay for the retransmission, budgeted by the
      // most-retried slot.  The retried slots keep their outstanding
      // accounting.  The retransmission is the ORIGINAL batch -- same
      // id, same frozen full slot set -- narrowed to the retryable
      // subset via `wanted`, so the host can always replay-dedup even
      // when some slots ran out of retry budget; a fresh id for the
      // smaller set would make a lost-reply batch double-admit.
      int attempt = 0;
      for (std::size_t index : retryable) {
        attempt = std::max(attempt, n->attempts[index]);
      }
      const Duration delay = BackoffDelay(attempt);
      if (kernel()->trace().enabled()) {
        kernel()->trace().Instant(
            kernel()->Now(), "batch_retry", "enactor",
            kernel()->trace().current(),
            {{"host", target.ToString()},
             {"slots", std::to_string(retryable.size())},
             {"delay", delay.ToString()}});
      }
      Batch retry = batch;
      retry.wanted = std::move(retryable);
      retry.retransmit = true;
      kernel()->ScheduleAfter(
          delay,
          [this, retry = std::move(retry)] {
            if (retry.negotiation->finished) return;
            DispatchBatch(retry);
          },
          "enactor/backoff");
    }
  }

  // This chunk's fate is settled (every wanted slot granted, failed, or
  // owned by a scheduled retransmission that will re-enter here);
  // release the host's next in-order chunk, if any.  Retransmissions
  // keep their successor waiting so the host still sees the round in
  // mapping order.
  if (result.ok() || completed == batch.wanted.size()) {
    DispatchNextChunk(n, target);
  }
  n->outstanding -= completed;
  if (n->outstanding == 0) OnRoundComplete(n);
}

Duration EnactorObject::BackoffDelay(int retry_number) {
  const RetryPolicy& retry = options_.retry;
  Duration delay = retry.base_delay;
  for (int i = 1; i < retry_number && delay < retry.max_delay; ++i) {
    delay = delay * retry.multiplier;
  }
  delay = std::min(delay, retry.max_delay);
  if (retry.jitter_fraction > 0.0) {
    delay = delay * rng_.Uniform(1.0 - retry.jitter_fraction,
                                 1.0 + retry.jitter_fraction);
  }
  return std::max(delay, Duration::Micros(1));
}

// Fails one mapping without spending an RPC round trip (the target's
// breaker is open).  Completion is deferred through the event queue so
// the round's fan-out loop finishes before any round-complete logic runs,
// exactly as with real replies.
void EnactorObject::FailIndexFast(const std::shared_ptr<Negotiation>& n,
                                  std::size_t index) {
  cells_.breaker_open->Add();
  if (kernel()->trace().enabled()) {
    kernel()->trace().Instant(kernel()->Now(), "breaker_fastfail", "enactor",
                              kernel()->trace().current(),
                              {{"host", n->current[index].host.ToString()},
                               {"index", std::to_string(index)}});
  }
  if (AuditOn()) {
    Audit("breaker_fastfail",
          {{"nid", std::to_string(n->id)},
           {"slot", std::to_string(index)},
           {"host", n->current[index].host.ToString()}});
  }
  kernel()->ScheduleAfter(
      Duration::Zero(),
      [this, n, index] {
        if (n->finished) return;
        n->last_code = ErrorCode::kUnavailable;
        n->last_error =
            "breaker open for host " + n->current[index].host.ToString();
        if (--n->outstanding == 0) OnRoundComplete(n);
      },
      "enactor/fastfail");
}

void EnactorObject::ReserveIndex(const std::shared_ptr<Negotiation>& n,
                                 std::size_t index) {
  const ObjectMapping& mapping = n->current[index];
  if (options_.use_health && !health_.Healthy(mapping.host)) {
    FailIndexFast(n, index);
    return;
  }
  if (options_.use_health && health_.IsProbe(mapping.host)) {
    cells_.breaker_probes->Add();
  }
  // Thrash metric: are we remaking a reservation we held and cancelled?
  const auto& history = n->cancelled_history[index];
  if (std::find(history.begin(), history.end(), mapping) != history.end()) {
    cells_.rereservations->Add();
    if (kernel()->trace().enabled()) {
      kernel()->trace().Instant(kernel()->Now(), "rereservation", "enactor",
                                kernel()->trace().current(),
                                {{"host", mapping.host.ToString()},
                                 {"index", std::to_string(index)}});
    }
  }
  cells_.reservations_requested->Add();
  if (AuditOn()) {
    Audit("reserve_requested",
          {{"nid", std::to_string(n->id)},
           {"slot", std::to_string(index)},
           {"host", mapping.host.ToString()},
           {"attempt", std::to_string(n->attempts[index] + 1)}});
  }

  ReservationRequest request;
  request.vault = mapping.vault;
  request.start = kernel()->Now() + options_.reservation_start_offset;
  request.duration = options_.reservation_duration;
  request.confirm_timeout = options_.confirm_timeout;
  request.type = options_.reservation_type;
  request.requester = loid();
  request.requester_domain = loid().domain();
  LookupDemand(mapping.class_loid, &request.memory_mb, &request.cpu_fraction);

  CallOn<ReservationToken, HostInterface>(
      kernel(), loid(), mapping.host, kSmallMessage, kSmallMessage,
      options_.rpc_timeout,
      [request](HostInterface& host, Callback<ReservationToken> reply) {
        host.MakeReservation(request, std::move(reply));
      },
      [this, n, index](Result<ReservationToken> result) {
        if (n->finished) return;
        const Loid target = n->current[index].host;
        if (result.ok()) {
          if (options_.use_health) health_.RecordSuccess(target);
          cells_.reservations_granted->Add();
          if (n->attempts[index] > 0) cells_.partial_recoveries->Add();
          if (AuditOn()) {
            Audit("reserve_granted", {{"nid", std::to_string(n->id)},
                                      {"slot", std::to_string(index)},
                                      {"host", target.ToString()}});
          }
          n->tokens[index] = std::move(*result);
        } else {
          const ErrorCode code = result.status().code();
          // Unreachability is a health signal; refusals and capacity
          // shortfalls are the host's prerogative, not sickness.
          if (options_.use_health && (code == ErrorCode::kTimeout ||
                                      code == ErrorCode::kUnavailable)) {
            health_.RecordFailure(target);
          }
          cells_.reservations_failed->Add();
          n->last_code = code;
          n->last_error = result.status().message();
          // Transient failure: retry the same mapping in place, with
          // bounded exponential backoff, instead of burning a variant.
          // A target whose breaker just opened is not worth re-probing
          // inside this negotiation -- fall through to the variants.
          if (code == ErrorCode::kTimeout &&
              n->attempts[index] + 1 < options_.retry.max_attempts &&
              (!options_.use_health || health_.Healthy(target))) {
            ++n->attempts[index];
            cells_.retries->Add();
            const Duration delay = BackoffDelay(n->attempts[index]);
            if (kernel()->trace().enabled()) {
              kernel()->trace().Instant(
                  kernel()->Now(), "reserve_retry", "enactor",
                  kernel()->trace().current(),
                  {{"host", target.ToString()},
                   {"index", std::to_string(index)},
                   {"attempt", std::to_string(n->attempts[index] + 1)},
                   {"delay", delay.ToString()}});
            }
            if (AuditOn()) {
              Audit("reserve_retry",
                    {{"nid", std::to_string(n->id)},
                     {"slot", std::to_string(index)},
                     {"host", target.ToString()},
                     {"attempt", std::to_string(n->attempts[index] + 1)}});
            }
            kernel()->ScheduleAfter(
                delay,
                [this, n, index] {
                  if (n->finished) return;
                  ReserveIndex(n, index);
                },
                "enactor/backoff");
            return;  // the retry inherits this index's outstanding slot
          }
          if (AuditOn()) {
            Audit("reserve_failed", {{"nid", std::to_string(n->id)},
                                     {"slot", std::to_string(index)},
                                     {"host", target.ToString()},
                                     {"code", legion::ToString(code)}});
          }
        }
        if (kernel()->trace().enabled()) {
          kernel()->trace().Instant(
              kernel()->Now(), result.ok() ? "reserve_ok" : "reserve_fail",
              "enactor", kernel()->trace().current(),
              {{"host", n->current[index].host.ToString()},
               {"index", std::to_string(index)}});
        }
        if (--n->outstanding == 0) OnRoundComplete(n);
      },
      "make_reservation");
}

void EnactorObject::CancelHeld(const std::shared_ptr<Negotiation>& n,
                               std::size_t index) {
  if (!n->tokens[index].has_value()) return;
  const ReservationToken token = *n->tokens[index];
  n->cancelled_history[index].push_back(n->current[index]);
  n->tokens[index].reset();
  cells_.reservations_cancelled->Add();
  if (AuditOn()) {
    Audit("reservation_cancelled",
          {{"nid", std::to_string(n->id)},
           {"slot", std::to_string(index)},
           {"host", n->current[index].host.ToString()}});
  }
  CancelToken(token);
}

void EnactorObject::CancelToken(const ReservationToken& token) {
  CallOn<bool, HostInterface>(
      kernel(), loid(), token.host, kSmallMessage, kSmallMessage,
      options_.rpc_timeout,
      [token](HostInterface& host, Callback<bool> reply) {
        host.CancelReservation(token, std::move(reply));
      },
      [](Result<bool>) { /* best effort */ }, "cancel_reservation");
}

void EnactorObject::OnRoundComplete(const std::shared_ptr<Negotiation>& n) {
  Bitmap failed(n->tokens.size());
  for (std::size_t i = 0; i < n->tokens.size(); ++i) {
    if (!n->tokens[i].has_value()) failed.Set(i);
  }
  if (failed.None()) {
    Succeed(n);
    return;
  }

  const MasterSchedule& master = n->request.masters[n->master];

  if (options_.use_variant_bitmaps) {
    // The paper's design: the bitmap lets the Enactor efficiently select
    // the next variant(s) to try.  Greedily take variants, in order, that
    // replace still-uncovered failed mappings until every failure has a
    // new entry; reservations the variants do not touch are kept.
    std::vector<std::size_t> chosen;
    Bitmap uncovered = failed;
    for (std::size_t v = n->next_variant;
         v < master.variants.size() && uncovered.Any(); ++v) {
      if (!master.variants[v].replaces.Intersects(uncovered)) continue;
      chosen.push_back(v);
      for (const auto& [index, mapping] : master.variants[v].mappings) {
        if (index < uncovered.size()) uncovered.Clear(index);
      }
    }
    if (uncovered.Any()) {
      AbandonMaster(n);
      return;
    }
    for (std::size_t v : chosen) {
      n->applied_variants.push_back(v);
      if (kernel()->trace().enabled()) {
        kernel()->trace().Instant(kernel()->Now(), "variant_applied",
                                  "enactor", kernel()->trace().current(),
                                  {{"variant", std::to_string(v)}});
      }
      if (AuditOn()) {
        Audit("variant_applied", {{"nid", std::to_string(n->id)},
                                  {"variant", std::to_string(v)}});
      }
      for (const auto& [index, mapping] : master.variants[v].mappings) {
        // Cancel only the reservations the variant actually replaces.
        CancelHeld(n, index);
        if (AuditOn()) {
          Audit("slot_remapped", {{"nid", std::to_string(n->id)},
                                  {"slot", std::to_string(index)},
                                  {"host", mapping.host.ToString()},
                                  {"variant", std::to_string(v)}});
        }
        n->current[index] = mapping;
        n->attempts[index] = 0;  // new mapping, fresh retry budget
      }
    }
    n->next_variant = chosen.back() + 1;
    RequestMissing(n);
    return;
  }

  // Naive baseline: cancel everything, retry the next variant wholesale.
  for (std::size_t i = 0; i < n->tokens.size(); ++i) CancelHeld(n, i);
  if (n->next_variant >= master.variants.size()) {
    AbandonMaster(n);
    return;
  }
  const std::size_t v = n->next_variant++;
  n->applied_variants.push_back(v);
  if (AuditOn()) {
    Audit("variant_applied", {{"nid", std::to_string(n->id)},
                              {"variant", std::to_string(v)}});
  }
  n->current = master.WithVariant(v);
  n->attempts.assign(n->current.size(), 0);
  RequestMissing(n);
}

void EnactorObject::AbandonMaster(const std::shared_ptr<Negotiation>& n) {
  // Per-mapping failure feedback: record which indices never secured a
  // token before the holds are cancelled below.
  n->last_failed_indices.clear();
  for (std::size_t i = 0; i < n->tokens.size(); ++i) {
    if (!n->tokens[i].has_value()) n->last_failed_indices.push_back(i);
  }
  if (AuditOn()) {
    Audit("master_abandoned",
          {{"nid", std::to_string(n->id)},
           {"master", std::to_string(n->master)},
           {"unplaced", std::to_string(n->last_failed_indices.size())}});
  }
  for (std::size_t i = 0; i < n->tokens.size(); ++i) CancelHeld(n, i);
  ++n->master;
  StartMaster(n);
}

void EnactorObject::Succeed(const std::shared_ptr<Negotiation>& n) {
  n->finished = true;
  if (AuditOn()) {
    Audit("negotiation_success",
          {{"nid", std::to_string(n->id)},
           {"master", std::to_string(n->master)},
           {"variants", std::to_string(n->applied_variants.size())}});
  }
  ScheduleFeedback feedback;
  feedback.original = n->request;
  feedback.success = true;
  feedback.negotiation_id = n->id;
  ScheduleChoice choice;
  choice.master_index = n->master;
  choice.variant_indices = n->applied_variants;
  feedback.winner = choice;
  feedback.reserved_mappings = n->current;
  feedback.tokens.reserve(n->tokens.size());
  for (const auto& token : n->tokens) feedback.tokens.push_back(*token);
  n->done(std::move(feedback));
}

void EnactorObject::Fail(const std::shared_ptr<Negotiation>& n) {
  n->finished = true;
  if (AuditOn()) {
    Audit("negotiation_failed",
          {{"nid", std::to_string(n->id)},
           {"code", legion::ToString(n->last_code)}});
  }
  ScheduleFeedback feedback;
  feedback.original = n->request;
  feedback.success = false;
  feedback.negotiation_id = n->id;
  feedback.failure = n->last_code;
  feedback.failure_detail = n->last_error;
  // Which of the last master's mappings never held a token: the
  // scheduler's per-mapping signal for shrinking or re-aiming the next
  // attempt (and its mappings_unplaced metric).
  feedback.failed_indices = n->last_failed_indices;
  n->done(std::move(feedback));
}

void EnactorObject::CancelReservations(
    const std::vector<ReservationToken>& tokens, Callback<std::size_t> done) {
  if (tokens.empty()) {
    done(static_cast<std::size_t>(0));
    return;
  }
  struct CancelState {
    std::size_t outstanding;
    std::size_t cancelled = 0;
    Callback<std::size_t> done;
  };
  auto state = std::make_shared<CancelState>();
  state->outstanding = tokens.size();
  state->done = std::move(done);
  for (const ReservationToken& token : tokens) {
    cells_.reservations_cancelled->Add();
    CallOn<bool, HostInterface>(
        kernel(), loid(), token.host, kSmallMessage, kSmallMessage,
        options_.rpc_timeout,
        [token](HostInterface& host, Callback<bool> reply) {
          host.CancelReservation(token, std::move(reply));
        },
        [state](Result<bool> r) {
          if (r.ok() && *r) ++state->cancelled;
          if (--state->outstanding == 0) state->done(state->cancelled);
        },
        "cancel_reservation");
  }
}

void EnactorObject::CancelReservations(const ScheduleFeedback& feedback,
                                       Callback<std::size_t> done) {
  CancelReservations(feedback.tokens, std::move(done));
}

void EnactorObject::EnactSchedule(const ScheduleFeedback& feedback,
                                  Callback<EnactResult> done) {
  cells_.enactments->Add();
  if (!feedback.success ||
      feedback.reserved_mappings.size() != feedback.tokens.size() ||
      feedback.reserved_mappings.empty()) {
    cells_.enact_failures->Add();
    EnactResult result;
    result.success = false;
    done(std::move(result));
    return;
  }
  struct EnactState {
    std::size_t outstanding;
    std::vector<Result<Loid>> instances;
    Callback<EnactResult> done;
  };
  auto state = std::make_shared<EnactState>(EnactState{
      feedback.reserved_mappings.size(),
      std::vector<Result<Loid>>(),
      std::move(done)});
  state->instances.reserve(feedback.reserved_mappings.size());
  for (std::size_t i = 0; i < feedback.reserved_mappings.size(); ++i) {
    state->instances.emplace_back(
        Status::Error(ErrorCode::kInternal, "pending"));
  }

  for (std::size_t i = 0; i < feedback.reserved_mappings.size(); ++i) {
    const ObjectMapping& mapping = feedback.reserved_mappings[i];
    PlacementSuggestion suggestion;
    suggestion.host = mapping.host;
    suggestion.vault = mapping.vault;
    suggestion.token = feedback.tokens[i];
    suggestion.implementation = mapping.implementation;
    // Steps 7-9: the Enactor attempts to instantiate the objects through
    // member function calls on the appropriate class objects.
    CallOn<Loid, ClassInterface>(
        kernel(), loid(), mapping.class_loid, kSmallMessage, kSmallMessage,
        options_.rpc_timeout,
        [suggestion](ClassInterface& klass, Callback<Loid> reply) {
          klass.CreateInstance(suggestion, std::move(reply));
        },
        [this, state, i](Result<Loid> instance) {
          state->instances[i] = std::move(instance);
          if (--state->outstanding == 0) {
            EnactResult result;
            result.success =
                std::all_of(state->instances.begin(), state->instances.end(),
                            [](const Result<Loid>& r) { return r.ok(); });
            if (!result.success) cells_.enact_failures->Add();
            result.instances = std::move(state->instances);
            state->done(std::move(result));
          }
        },
        "create_instance");
  }
}

}  // namespace legion
