#include "core/network_object.h"

namespace legion {

namespace {
constexpr std::uint64_t kServiceClassSerial = 5;
}  // namespace

NetworkObject::NetworkObject(SimKernel* kernel, Loid loid)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(), kServiceClassSerial)) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "network-object");
}

void NetworkObject::AddBeacon(std::uint32_t domain, const Loid& beacon) {
  beacons_[domain] = beacon;
}

void NetworkObject::AddCollection(const Loid& collection) {
  collections_.push_back(collection);
}

void NetworkObject::Start(Duration period) {
  if (timer_ != 0) return;
  timer_ = kernel()->SchedulePeriodic(
      period, [this] { ProbeAll([](Result<std::size_t>) {}); });
}

void NetworkObject::Stop() {
  if (timer_ == 0) return;
  kernel()->CancelPeriodic(timer_);
  timer_ = 0;
}

void NetworkObject::ProbeAll(Callback<std::size_t> done) {
  struct ProbeState {
    std::size_t outstanding = 0;
    std::size_t succeeded = 0;
    Callback<std::size_t> done;
    bool launched = false;
  };
  auto state = std::make_shared<ProbeState>();
  state->done = std::move(done);

  SimKernel* kernel = this->kernel();
  const Loid self = loid();
  for (const auto& [da, beacon_a] : beacons_) {
    for (const auto& [db, beacon_b] : beacons_) {
      if (da >= db) continue;
      ++state->outstanding;
      const std::uint32_t domain_a = da, domain_b = db;
      const Loid a = beacon_a, b = beacon_b;
      // Leg 1: self -> a (arms the probe at the source beacon).
      const bool leg1 = kernel->Send(self, a, kSmallMessage, [=, this] {
        // Leg 2: a -> b, timestamped at departure.
        const SimTime departed = kernel->Now();
        const bool leg2 = kernel->Send(a, b, kSmallMessage, [=, this] {
          const Duration latency = kernel->Now() - departed;
          // Leg 3: b -> self with the measurement.
          const bool leg3 = kernel->Send(b, self, kSmallMessage, [=, this] {
            RecordMeasurement(domain_a, domain_b, latency);
            ++state->succeeded;
            if (--state->outstanding == 0) {
              PushMatrix();
              state->done(state->succeeded);
            }
          });
          if (!leg3 && --state->outstanding == 0) {
            PushMatrix();
            state->done(state->succeeded);
          }
        });
        if (!leg2 && --state->outstanding == 0) {
          PushMatrix();
          state->done(state->succeeded);
        }
      });
      if (!leg1 && --state->outstanding == 0) {
        PushMatrix();
        state->done(state->succeeded);
      }
    }
  }
  if (state->outstanding == 0) {
    // Fewer than two beacons: nothing to measure.
    state->done(state->succeeded);
  }
}

void NetworkObject::RecordMeasurement(std::uint32_t a, std::uint32_t b,
                                      Duration latency) {
  measured_[{a, b}] = latency;
  mutable_attributes().Set(
      "net_latency_us_" + std::to_string(a) + "_" + std::to_string(b),
      static_cast<std::int64_t>(latency.micros()));
  mutable_attributes().Set("net_probe_time",
                           static_cast<std::int64_t>(kernel()->Now().micros()));
}

std::optional<Duration> NetworkObject::MeasuredLatency(std::uint32_t a,
                                                       std::uint32_t b) const {
  if (a > b) std::swap(a, b);
  if (a == b) return Duration::Zero();
  auto it = measured_.find({a, b});
  if (it == measured_.end()) return std::nullopt;
  return it->second;
}

void NetworkObject::PushMatrix() {
  const bool join = !joined_;
  joined_ = true;
  for (const Loid& collection : collections_) {
    AttributeDatabase snapshot = attributes();
    CallOn<bool, CollectionSink>(
        kernel(), loid(), collection, kMediumMessage, kSmallMessage,
        kDefaultRpcTimeout,
        [join, member = loid(), snapshot](CollectionSink& sink,
                                          Callback<bool> reply) {
          if (join) {
            sink.JoinCollection(member, snapshot, std::move(reply));
          } else {
            sink.UpdateCollectionEntry(member, snapshot, std::move(reply));
          }
        },
        [](Result<bool>) {});
  }
}

}  // namespace legion
