// Schedule data structures (paper section 3.3, figure 5).
//
// "Each Schedule has at least one Master Schedule, and each Master
// Schedule may have a list of Variant Schedules associated with it.  Both
// master and variant schedules contain a list of mappings, with each
// mapping having the type (Class LOID -> (Host LOID x Vault LOID)). ...
// Our data structure includes a bitmap field (one bit per object mapping)
// for each variant schedule which allows the Enactor to efficiently
// select the next variant schedule to try."
//
// Types mirror the paper's names: ScheduleList is a single schedule,
// ScheduleRequestList is the whole figure-5 structure, and
// ScheduleFeedback is what the Enactor returns from make_reservations().
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "base/bitmap.h"
#include "base/loid.h"
#include "base/result.h"
#include "base/token.h"

namespace legion {

// One object-instance mapping: an instance of `class_loid` should be
// started on (host, vault).  `implementation` optionally pins which of
// the class's implementations to run ("in the future, this mapping
// process may also select from among the available implementations as
// well", §3.3 -- implemented): the "arch/os" key, empty = host default.
struct ObjectMapping {
  Loid class_loid;
  Loid host;
  Loid vault;
  std::string implementation;

  friend bool operator==(const ObjectMapping& a, const ObjectMapping& b) {
    return a.class_loid == b.class_loid && a.host == b.host &&
           a.vault == b.vault && a.implementation == b.implementation;
  }
  std::string ToString() const;
};

// A variant schedule: replacement mappings for a subset of the master's
// entries.  `replaces` has one bit per master mapping; `mappings` carries
// (master index, new mapping) pairs for exactly the set bits.
struct VariantSchedule {
  Bitmap replaces;
  std::vector<std::pair<std::size_t, ObjectMapping>> mappings;

  std::string ToString() const;
};

// A master schedule with its variants.
struct MasterSchedule {
  std::vector<ObjectMapping> mappings;
  std::vector<VariantSchedule> variants;

  std::size_t size() const { return mappings.size(); }

  // The mapping list obtained by applying variant `v` onto the master.
  std::vector<ObjectMapping> WithVariant(std::size_t v) const;

  // Structural validation: bitmap widths, index bounds, bit/mapping
  // agreement, non-empty mapping lists, valid LOIDs.
  Status Validate() const;

  std::string ToString() const;
};

// "A LegionScheduleList is simply a single schedule (e.g. a Master or
// Variant schedule)."
using ScheduleList = MasterSchedule;

// "A LegionScheduleRequestList is the entire data structure shown in
// figure 5."
struct ScheduleRequestList {
  std::vector<MasterSchedule> masters;

  bool empty() const { return masters.empty(); }
  Status Validate() const;
  std::string ToString() const;
};

// Which schedule within a request list succeeded.
struct ScheduleChoice {
  std::size_t master_index = 0;
  // Variant indices applied, in order; empty means the plain master.
  std::vector<std::size_t> variant_indices;
};

// "LegionScheduleFeedback is returned by the Enactor, and contains the
// original LegionScheduleRequestList and feedback information indicating
// whether the reservations were successfully made, and if so, which
// schedule succeeded."
struct ScheduleFeedback {
  ScheduleRequestList original;
  bool success = false;
  std::optional<ScheduleChoice> winner;
  // Correlation id for the decision audit log (obs/audit.h): every
  // lifecycle record this negotiation produced carries nid=<this>, so
  // ExplainMapping(negotiation_id, slot) reconstructs the placement
  // story.  0 when the request was rejected before a negotiation began.
  std::uint64_t negotiation_id = 0;
  // On success: the effective mappings and one reservation token per
  // mapping (what enact_schedule consumes).
  std::vector<ObjectMapping> reserved_mappings;
  std::vector<ReservationToken> tokens;
  // On failure: the Enactor "may (but is not required to) report whether
  // the failure was due to an inability to obtain resources, a malformed
  // schedule, or other failure".
  ErrorCode failure = ErrorCode::kOk;
  std::string failure_detail;
  // Per-mapping granularity on failure: the indices of the last tried
  // master's mappings that never secured a reservation.  Empty when the
  // request was malformed (no master was tried).
  std::vector<std::size_t> failed_indices;
};

// What enact_schedule() reports back per mapping.
struct EnactResult {
  bool success = false;
  // One entry per reserved mapping: the started instance, or the error.
  std::vector<Result<Loid>> instances;
  std::string ToString() const;
};

}  // namespace legion
