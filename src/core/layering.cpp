#include "core/layering.h"

#include "objects/class_object.h"

namespace legion {

namespace {
constexpr std::uint64_t kServiceClassSerial = 5;
}  // namespace

const char* ToString(Layering layering) {
  switch (layering) {
    case Layering::kApplicationDoesAll:
      return "a:app-does-all";
    case Layering::kApplicationPlusRm:
      return "b:app+rm-services";
    case Layering::kCombinedModule:
      return "c:combined-module";
    case Layering::kSeparateModules:
      return "d:separate-modules";
  }
  return "?";
}

ApplicationCoordinator::ApplicationCoordinator(SimKernel* kernel, Loid loid,
                                               Layering layering,
                                               Wiring wiring,
                                               std::uint64_t seed)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(), kServiceClassSerial)),
      layering_(layering),
      wiring_(wiring),
      rng_(seed) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
}

void ApplicationCoordinator::Place(const PlacementRequest& request,
                                   Callback<PlacementTrace> done) {
  switch (layering_) {
    case Layering::kApplicationDoesAll:
      PlaceDoesAll(request, std::move(done));
      return;
    case Layering::kApplicationPlusRm:
      PlacePlusRm(request, std::move(done));
      return;
    case Layering::kCombinedModule:
      PlaceCombined(request, std::move(done));
      return;
    case Layering::kSeparateModules:
      PlaceSeparate(request, std::move(done));
      return;
  }
}

void ApplicationCoordinator::QuerySnapshot(Callback<CollectionData> done) {
  CallOn<CollectionData, CollectionObject>(
      kernel(), loid(), wiring_.collection, kSmallMessage, kLargeMessage,
      kDefaultRpcTimeout,
      [](CollectionObject& collection, Callback<CollectionData> reply) {
        collection.QueryCollection("defined($host_arch)", std::move(reply));
      },
      std::move(done));
}

Result<std::vector<ObjectMapping>> ApplicationCoordinator::RandomMappings(
    const PlacementRequest& request, const CollectionData& hosts) {
  if (hosts.empty()) {
    return Status::Error(ErrorCode::kNoResources, "no hosts known");
  }
  std::vector<ObjectMapping> mappings;
  for (const InstanceRequest& instance_request : request) {
    for (std::size_t i = 0; i < instance_request.count; ++i) {
      // Up to |hosts| redraws to find a host with a vault.
      ObjectMapping mapping;
      bool found = false;
      for (std::size_t attempt = 0; attempt < hosts.size() + 3; ++attempt) {
        const CollectionRecord& host = hosts[rng_.Index(hosts.size())];
        const AttrValue* vaults = host.attributes.Get("compatible_vaults");
        if (vaults == nullptr || !vaults->is_list() ||
            vaults->as_list().empty()) {
          continue;
        }
        const AttrList& list = vaults->as_list();
        auto vault = ParseLoid(list[rng_.Index(list.size())].as_string());
        if (!vault.has_value()) continue;
        mapping.class_loid = instance_request.class_loid;
        mapping.host = host.member;
        mapping.vault = *vault;
        found = true;
        break;
      }
      if (!found) {
        return Status::Error(ErrorCode::kNoResources,
                             "no host with a usable vault");
      }
      mappings.push_back(mapping);
    }
  }
  return mappings;
}

// ---- (a): the application negotiates directly with the resources -------------

void ApplicationCoordinator::PlaceDoesAll(const PlacementRequest& request,
                                          Callback<PlacementTrace> done) {
  const SimTime started = kernel()->Now();
  QuerySnapshot([this, request, started, done = std::move(done)](
                    Result<CollectionData> hosts) mutable {
    if (!hosts.ok()) {
      done(PlacementTrace{});
      return;
    }
    auto mappings = RandomMappings(request, *hosts);
    if (!mappings.ok()) {
      done(PlacementTrace{});
      return;
    }
    NegotiateAndInstantiate(std::move(*mappings), started, std::move(done));
  });
}

void ApplicationCoordinator::NegotiateAndInstantiate(
    std::vector<ObjectMapping> mappings, SimTime started,
    Callback<PlacementTrace> done) {
  struct State {
    std::vector<ObjectMapping> mappings;
    std::vector<ReservationToken> tokens;
    std::size_t outstanding = 0;
    bool failed = false;
    SimTime started;
    std::size_t instances = 0;
    Callback<PlacementTrace> done;
  };
  auto state = std::make_shared<State>();
  state->mappings = std::move(mappings);
  state->tokens.resize(state->mappings.size());
  state->outstanding = state->mappings.size();
  state->started = started;
  state->done = std::move(done);

  auto instantiate = [this, state] {
    if (state->failed) {
      PlacementTrace trace;
      trace.success = false;
      trace.latency = kernel()->Now() - state->started;
      state->done(std::move(trace));
      return;
    }
    state->outstanding = state->mappings.size();
    for (std::size_t i = 0; i < state->mappings.size(); ++i) {
      PlacementSuggestion suggestion;
      suggestion.host = state->mappings[i].host;
      suggestion.vault = state->mappings[i].vault;
      suggestion.token = state->tokens[i];
      CallOn<Loid, ClassInterface>(
          kernel(), loid(), state->mappings[i].class_loid, kSmallMessage,
          kSmallMessage, kDefaultRpcTimeout,
          [suggestion](ClassInterface& klass, Callback<Loid> reply) {
            klass.CreateInstance(suggestion, std::move(reply));
          },
          [this, state](Result<Loid> instance) {
            if (instance.ok()) {
              ++state->instances;
            } else {
              state->failed = true;
            }
            if (--state->outstanding == 0) {
              PlacementTrace trace;
              trace.success = !state->failed;
              trace.latency = kernel()->Now() - state->started;
              trace.instances_started = state->instances;
              state->done(std::move(trace));
            }
          });
    }
  };

  // Phase 1: reservations, directly with each host.
  for (std::size_t i = 0; i < state->mappings.size(); ++i) {
    ReservationRequest reservation;
    reservation.vault = state->mappings[i].vault;
    reservation.start = kernel()->Now();
    reservation.duration = Duration::Hours(1);
    reservation.confirm_timeout = Duration::Minutes(5);
    reservation.type = ReservationType::OneShotTimesharing();
    reservation.requester = loid();
    reservation.requester_domain = loid().domain();
    if (auto* klass = dynamic_cast<ClassObject*>(
            kernel()->FindActor(state->mappings[i].class_loid))) {
      reservation.memory_mb = klass->instance_memory_mb();
      reservation.cpu_fraction = klass->instance_cpu_fraction();
    }
    CallOn<ReservationToken, HostInterface>(
        kernel(), loid(), state->mappings[i].host, kSmallMessage,
        kSmallMessage, kDefaultRpcTimeout,
        [reservation](HostInterface& host, Callback<ReservationToken> reply) {
          host.MakeReservation(reservation, std::move(reply));
        },
        [state, i, instantiate](Result<ReservationToken> token) {
          if (token.ok()) {
            state->tokens[i] = *token;
          } else {
            state->failed = true;
          }
          if (--state->outstanding == 0) instantiate();
        });
  }
}

// ---- (b): application placement + Enactor negotiation -------------------------

void ApplicationCoordinator::PlacePlusRm(const PlacementRequest& request,
                                         Callback<PlacementTrace> done) {
  const SimTime started = kernel()->Now();
  QuerySnapshot([this, request, started, done = std::move(done)](
                    Result<CollectionData> hosts) mutable {
    if (!hosts.ok()) {
      done(PlacementTrace{});
      return;
    }
    auto mappings = RandomMappings(request, *hosts);
    if (!mappings.ok()) {
      done(PlacementTrace{});
      return;
    }
    ScheduleRequestList schedule;
    MasterSchedule master;
    master.mappings = std::move(*mappings);
    schedule.masters.push_back(std::move(master));
    CallOn<ScheduleFeedback, EnactorObject>(
        kernel(), loid(), wiring_.enactor, kMediumMessage, kMediumMessage,
        kDefaultRpcTimeout,
        [schedule](EnactorObject& enactor, Callback<ScheduleFeedback> reply) {
          enactor.MakeReservations(schedule, std::move(reply));
        },
        [this, started, done = std::move(done)](
            Result<ScheduleFeedback> feedback) mutable {
          if (!feedback.ok() || !feedback->success) {
            PlacementTrace trace;
            trace.latency = kernel()->Now() - started;
            done(std::move(trace));
            return;
          }
          CallOn<EnactResult, EnactorObject>(
              kernel(), loid(), wiring_.enactor, kMediumMessage,
              kMediumMessage, kDefaultRpcTimeout,
              [fb = *feedback](EnactorObject& enactor,
                               Callback<EnactResult> reply) {
                enactor.EnactSchedule(fb, std::move(reply));
              },
              [this, started, done = std::move(done)](
                  Result<EnactResult> enacted) mutable {
                PlacementTrace trace;
                trace.latency = kernel()->Now() - started;
                if (enacted.ok()) {
                  trace.success = enacted->success;
                  for (const auto& instance : enacted->instances) {
                    if (instance.ok()) ++trace.instances_started;
                  }
                }
                done(std::move(trace));
              });
        });
  });
}

// ---- (c): combined Scheduler + RM-services module -----------------------------

void ApplicationCoordinator::PlaceCombined(const PlacementRequest& request,
                                           Callback<PlacementTrace> done) {
  const SimTime started = kernel()->Now();
  CallOn<PlacementTrace, ApplicationCoordinator>(
      kernel(), loid(), wiring_.combined_service, kMediumMessage,
      kMediumMessage, kDefaultRpcTimeout,
      [request](ApplicationCoordinator& service,
                Callback<PlacementTrace> reply) {
        service.PlaceAsService(request, std::move(reply));
      },
      [this, started, done = std::move(done)](
          Result<PlacementTrace> trace) mutable {
        PlacementTrace result = trace.ok() ? *trace : PlacementTrace{};
        result.latency = kernel()->Now() - started;
        done(std::move(result));
      });
}

void ApplicationCoordinator::PlaceAsService(const PlacementRequest& request,
                                            Callback<PlacementTrace> done) {
  // The combined module runs placement + negotiation co-located.
  PlaceDoesAll(request, std::move(done));
}

// ---- (d): separate Scheduler / Enactor / Collection ----------------------------

void ApplicationCoordinator::PlaceSeparate(const PlacementRequest& request,
                                           Callback<PlacementTrace> done) {
  const SimTime started = kernel()->Now();
  CallOn<RunOutcome, SchedulerObject>(
      kernel(), loid(), wiring_.scheduler, kMediumMessage, kMediumMessage,
      Duration::Minutes(5),
      [request](SchedulerObject& scheduler, Callback<RunOutcome> reply) {
        scheduler.ScheduleAndEnact(request, RunOptions{1, 1},
                                   std::move(reply));
      },
      [this, started, done = std::move(done)](
          Result<RunOutcome> outcome) mutable {
        PlacementTrace trace;
        trace.latency = kernel()->Now() - started;
        if (outcome.ok()) {
          trace.success = outcome->success;
          for (const auto& instance : outcome->enacted.instances) {
            if (instance.ok()) ++trace.instances_started;
          }
        }
        done(std::move(trace));
      });
}

}  // namespace legion
