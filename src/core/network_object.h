// Network Objects (paper section 6, future work -- implemented).
//
// "We are developing Network Objects to manage communications
// resources."  This Network Object measures the communication fabric
// the way a scheduler needs it described: it plants one beacon host per
// administrative domain, times relayed probe messages between beacons
// (a -> b legs timestamped at each hop, so the measurement is a real
// traversal of the simulated WAN, jitter and all), and publishes the
// pairwise latency matrix into the Collection as attributes
// ("net_latency_us_<i>_<j>").  Communication-aware schedulers can then
// *query* for network structure instead of assuming it.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "core/collection.h"
#include "objects/legion_object.h"

namespace legion {

class NetworkObject : public LegionObject {
 public:
  NetworkObject(SimKernel* kernel, Loid loid);

  std::string DebugName() const override { return "network-object"; }

  // Registers the probe representative for a domain (any endpoint that
  // lives there; typically a host).
  void AddBeacon(std::uint32_t domain, const Loid& beacon);
  // Collections to push the latency matrix into.
  void AddCollection(const Loid& collection);

  // Probes every ordered beacon pair once; `done` gets the number of
  // successful measurements.  Lost probes (partitions, loss) simply
  // leave that pair unmeasured this round.
  void ProbeAll(Callback<std::size_t> done);

  // Periodic probing.
  void Start(Duration period);
  void Stop();

  // Latest measurement for (a, b), if any.
  std::optional<Duration> MeasuredLatency(std::uint32_t a,
                                          std::uint32_t b) const;
  std::size_t measurement_count() const { return measured_.size(); }

 private:
  void RecordMeasurement(std::uint32_t a, std::uint32_t b, Duration latency);
  void PushMatrix();

  std::map<std::uint32_t, Loid> beacons_;
  std::vector<Loid> collections_;
  std::map<std::pair<std::uint32_t, std::uint32_t>, Duration> measured_;
  SimKernel::PeriodicId timer_ = 0;
  bool joined_ = false;
};

}  // namespace legion
