// The execution Monitor (paper section 3.5).
//
// "Legion provides an event-based notification mechanism via its RGE
// model.  Using this mechanism, the Monitor can register an outcall with
// the Host Objects; this outcall will be performed when a trigger's guard
// evaluates to true. ... If, during execution, a resource decides that
// the object needs to be migrated, it performs an outcall to a Monitor,
// which notifies the Scheduler and Enactor that rescheduling should be
// performed (steps 12 and 13)."
//
// The paper notes their implementation has no separate monitor objects
// (the Enactor or Scheduler performs the monitoring); we provide the
// standalone object -- the most general layering -- whose notification
// handler is typically wired to a scheduler's recompute path or the
// migration engine.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "objects/legion_object.h"
#include "objects/rge.h"
#include "resources/host_object.h"

namespace legion {

class MonitorObject : public LegionObject {
 public:
  MonitorObject(SimKernel* kernel, Loid loid);

  std::string DebugName() const override { return "monitor"; }

  // Registers an outcall on the host's RGE event manager for the named
  // event.  The firing travels as a (message-counted) outcall from the
  // host to this monitor.
  void WatchHost(HostObject* host, const std::string& event_name);

  // Installs a convenience "load above threshold" trigger on the host
  // and watches the resulting event.  Returns the event name used.
  std::string WatchLoadThreshold(HostObject* host, double threshold);

  // Steps 12-13: what to do when a resource asks for rescheduling.
  using RescheduleHandler = std::function<void(const RgeEvent&)>;
  void SetRescheduleHandler(RescheduleHandler handler) {
    handler_ = std::move(handler);
  }

  // Debounce window for the reschedule handler.  An edge-sensitive load
  // trigger on a flapping host re-fires every time the guard crosses the
  // threshold; without a floor between dispatches one sustained spike can
  // request a migration per evaluation tick while the first migration is
  // still in flight (a reschedule storm).  Events arriving inside the
  // window are still counted and traced, but the handler is not invoked.
  void SetMinRescheduleInterval(Duration interval) {
    min_interval_ = interval;
  }

  std::uint64_t events_received() const { return events_cell_->value(); }
  std::uint64_t events_suppressed() const { return suppressed_cell_->value(); }

 private:
  void OnEvent(const RgeEvent& event);

  RescheduleHandler handler_;
  Duration min_interval_ = Duration::Seconds(30);
  // Last handler dispatch per (source host, event name).
  std::map<std::pair<Loid, std::string>, SimTime> last_dispatch_;
  // Registry cells ({component=monitor}).
  obs::Counter* events_cell_ = nullptr;
  obs::Counter* suppressed_cell_ = nullptr;
};

}  // namespace legion
