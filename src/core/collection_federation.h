// Federated Collection topology (DESIGN.md §10).
//
// The paper (§3.2) notes that Collections "may be organized in a
// hierarchy" so that no single attribute database must describe an
// entire metacomputing grid.  CollectionFederation builds the two-level
// form of that hierarchy: one sub-Collection per network domain --
// registered *in* that domain, so host/vault pushes stay on cheap
// intra-domain links -- plus a root Collection aggregating every domain
// through periodic, versioned delta pushes.
//
// Query routing contract:
//   * domain-scoped queries go straight to the owning sub-Collection
//     (fresh, intra-domain, O(domain) records);
//   * global queries answer from the root's aggregate, stale by at most
//     one push period plus a WAN hop per domain -- unless the caller
//     passes QueryOptions::max_staleness, which forces a refresh pull
//     from any domain whose last delta batch is older than the bound.
#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/collection.h"

namespace legion {

struct FederationOptions {
  // How often each sub-Collection pushes its delta journal to the root.
  // The root's staleness for a domain is bounded by this period plus the
  // inter-domain delivery latency (empty batches act as heartbeats).
  Duration push_period = Duration::Seconds(5);
  // Options applied to the root and every sub-Collection.
  CollectionOptions collection;
};

// Owns nothing: the kernel owns the actors.  This is a builder plus a
// routing table.
class CollectionFederation {
 public:
  // Creates the root (service domain 0) and one sub-Collection per
  // domain in [0, domains), wired for delta propagation.
  CollectionFederation(SimKernel* kernel, std::uint32_t domains,
                       FederationOptions options = {});

  CollectionObject* root() const { return root_; }
  CollectionObject* sub(DomainId domain) const {
    auto it = subs_.find(domain);
    return it == subs_.end() ? nullptr : it->second;
  }
  const std::map<DomainId, CollectionObject*>& subs() const { return subs_; }

  // The Collection a query scoped to `domain` should address: the owning
  // sub-Collection when the scope names one, the root otherwise.
  CollectionObject* RouteFor(std::optional<DomainId> domain) const {
    if (domain.has_value()) {
      CollectionObject* owned = sub(*domain);
      if (owned != nullptr) return owned;
    }
    return root_;
  }

  Duration push_period() const { return options_.push_period; }

 private:
  FederationOptions options_;
  CollectionObject* root_ = nullptr;
  std::map<DomainId, CollectionObject*> subs_;
};

}  // namespace legion
