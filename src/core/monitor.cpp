#include "core/monitor.h"

namespace legion {

namespace {
constexpr std::uint64_t kServiceClassSerial = 5;
}  // namespace

MonitorObject::MonitorObject(SimKernel* kernel, Loid loid)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, loid.domain(), kServiceClassSerial)) {
  kernel->network().RegisterEndpoint(loid, loid.domain());
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "monitor");
  events_cell_ = kernel->metrics().GetCounter("monitor_events",
                                              {{"component", "monitor"}});
  suppressed_cell_ = kernel->metrics().GetCounter(
      "monitor_events_suppressed", {{"component", "monitor"}});
}

void MonitorObject::WatchHost(HostObject* host, const std::string& event_name) {
  SimKernel* kernel = this->kernel();
  const Loid host_loid = host->loid();
  const Loid monitor_loid = loid();
  host->events().RegisterOutcall(
      event_name, [kernel, host_loid, monitor_loid](const RgeEvent& event) {
        // The outcall crosses the network from the host to the monitor.
        kernel->Send(host_loid, monitor_loid, kSmallMessage,
                     [kernel, monitor_loid, event] {
                       auto* monitor = dynamic_cast<MonitorObject*>(
                           kernel->FindActor(monitor_loid));
                       if (monitor != nullptr) monitor->OnEvent(event);
                     });
      });
}

std::string MonitorObject::WatchLoadThreshold(HostObject* host,
                                              double threshold) {
  const std::string event_name =
      "load_above_" + std::to_string(threshold);
  TriggerSpec spec;
  spec.event_name = event_name;
  spec.guard = [threshold](const AttributeDatabase& attrs) {
    const AttrValue* load = attrs.Get("host_load");
    return load != nullptr && load->is_numeric() &&
           load->as_double() > threshold;
  };
  spec.edge_sensitive = true;
  host->events().RegisterTrigger(std::move(spec));
  WatchHost(host, event_name);
  return event_name;
}

void MonitorObject::OnEvent(const RgeEvent& event) {
  events_cell_->Add();
  obs::TraceLog& trace = kernel()->trace();
  if (trace.enabled()) {
    trace.Instant(kernel()->Now(), "monitor_event", "monitor", trace.current(),
                  {{"event", event.name}});
  }
  if (!handler_) return;
  // Debounce per (source, event): a flapping guard re-fires the outcall on
  // every threshold crossing, but a second reschedule request within the
  // window would just chase the migration the first one started.
  const SimTime now = kernel()->Now();
  const auto key = std::make_pair(event.source, event.name);
  auto it = last_dispatch_.find(key);
  if (it != last_dispatch_.end() && now - it->second < min_interval_) {
    suppressed_cell_->Add();
    return;
  }
  last_dispatch_[key] = now;
  handler_(event);
}

}  // namespace legion
