// Domain and host health tracking: a circuit breaker over RPC outcomes.
//
// The paper's robustness claim -- "our Legion objects are built to
// accommodate failure at any step in the scheduling process" (§3.1) --
// needs more than per-call timeouts once failures repeat: a host behind a
// partition, or a crashed machine whose Collection record lingers, will
// otherwise be renegotiated with on every placement, each attempt costing
// a full RPC timeout.  The HealthTracker records reservation outcomes per
// host and per administrative domain and exposes the classic breaker
// state machine:
//
//   kClosed    normal operation; consecutive failures are counted.
//   kOpen      the failure threshold tripped; the target is suspect until
//              a cooldown expires.  Schedulers demote or skip suspect
//              hosts in their candidate pools; the Enactor fails fast to
//              the next variant instead of paying another timeout.
//   kHalfOpen  the cooldown expired; the next reservation is a probe.
//              Success closes the breaker, failure re-opens it with a
//              geometrically escalated cooldown (capped).
//
// A domain breaker aggregates the failures of its hosts, so a severed
// domain is quarantined as a whole after a few timeouts instead of
// host-by-host.  The tracker is pure bookkeeping on the simulated clock:
// callers (the Enactor) decide which error codes are health-relevant and
// report them; the tracker never issues RPCs itself.
#pragma once

#include <optional>
#include <unordered_map>

#include "base/loid.h"
#include "base/sim_time.h"
#include "sim/kernel.h"

namespace legion {

enum class BreakerState { kClosed, kOpen, kHalfOpen };

struct HealthOptions {
  // Consecutive health-relevant failures before a breaker opens.
  int host_failure_threshold = 3;
  int domain_failure_threshold = 12;
  // Suspect window after the first opening.
  Duration host_cooldown = Duration::Seconds(60);
  Duration domain_cooldown = Duration::Seconds(120);
  // Each re-opening (a failed probe) escalates the cooldown by this
  // factor, capped at max_cooldown.
  double cooldown_multiplier = 2.0;
  Duration max_cooldown = Duration::Minutes(15);
};

class HealthTracker {
 public:
  explicit HealthTracker(SimKernel* kernel, HealthOptions options = {});

  // Reservation outcome reporting.  Callers report only failures that
  // indicate an unreachable or dead target (timeouts, vanished objects);
  // policy refusals and capacity shortfalls are not health signals.
  void RecordSuccess(const Loid& host);
  void RecordFailure(const Loid& host);

  // True unless the host's breaker or its domain's breaker is open.
  // Half-open targets count as healthy: after the cooldown they should
  // re-enter candidate pools so a probe can close the breaker.
  bool Healthy(const Loid& host) const;

  // When either applicable breaker is open: the later of the two
  // cooldown expiries.  nullopt when the target is not suspect.
  std::optional<SimTime> SuspectUntil(const Loid& host) const;

  // Individual breaker states (the host's own, and its domain's).
  BreakerState HostState(const Loid& host) const;
  BreakerState DomainState(DomainId domain) const;

  // True when a reservation to `host` would be a probe: some applicable
  // breaker is half-open and none is open.
  bool IsProbe(const Loid& host) const;

  HealthOptions& options() { return options_; }
  const HealthOptions& options() const { return options_; }

  std::size_t tracked_hosts() const { return hosts_.size(); }

 private:
  struct Breaker {
    int consecutive_failures = 0;
    int openings = 0;  // re-openings since the last success (escalation)
    bool open = false;
    SimTime suspect_until = SimTime::Zero();
  };

  BreakerState StateOf(const Breaker& breaker) const;
  void Trip(Breaker* breaker, Duration base_cooldown);

  SimKernel* kernel_;
  HealthOptions options_;
  std::unordered_map<Loid, Breaker> hosts_;
  std::unordered_map<DomainId, Breaker> domains_;
};

}  // namespace legion
