// The Scheduler (paper section 3.3).
//
// "The Scheduler computes the mapping of objects to resources.  At a
// minimum, the Scheduler knows how many instances of each class must be
// started. ... any Scheduler may query the object classes to determine
// such information (e.g., the available implementations, or memory or
// communication requirements).  The Scheduler obtains resource
// description information by querying the Collection, and then computes
// a mapping of object instances to resources.  This mapping is passed on
// to the Enactor for implementation."
//
// SchedulerObject is the abstract base: it owns the Collection/Enactor
// wiring, provides the query helpers every placement policy needs, and
// implements the generalized run loop of figure 9 (compute a schedule,
// make reservations, enact, retry within limits) as ScheduleAndEnact().
// Concrete policies override ComputeSchedule().
#pragma once

#include <string>
#include <vector>

#include "core/collection.h"
#include "core/enactor.h"
#include "core/schedule.h"
#include "objects/legion_object.h"

namespace legion {

// What the scheduler is asked to place: instances-per-class.
struct InstanceRequest {
  Loid class_loid;
  std::size_t count = 1;
};
using PlacementRequest = std::vector<InstanceRequest>;

// Figure 9's global limits, as per-call options.
struct RunOptions {
  int sched_try_limit = 3;   // SchedTryLimit
  int enact_try_limit = 2;   // EnactTryLimit
};

// The outcome of a full schedule-reserve-enact run.
struct RunOutcome {
  bool success = false;
  ScheduleFeedback feedback;   // last reservation feedback
  EnactResult enacted;         // last enactment result
  int sched_attempts = 0;
  int enact_attempts = 0;
};

class SchedulerObject : public LegionObject {
 public:
  SchedulerObject(SimKernel* kernel, Loid loid, std::string name,
                  Loid collection, Loid enactor);

  const std::string& name() const { return name_; }
  std::string DebugName() const override { return "scheduler " + name_; }

  // Computes a ScheduleRequestList for the placement request.  Policies
  // that cannot produce any feasible schedule complete with an error.
  virtual void ComputeSchedule(const PlacementRequest& request,
                               Callback<ScheduleRequestList> done) = 0;

  // The full pipeline: compute -> make_reservations -> (confirm) ->
  // enact_schedule, with figure 9's retry structure.
  void ScheduleAndEnact(const PlacementRequest& request, RunOptions options,
                        Callback<RunOutcome> done);

  // Number of QueryCollection calls issued (experiment E3's metric).
  std::uint64_t collection_lookups() const { return collection_lookups_; }

  // ---- Federated routing (DESIGN.md §10) ------------------------------------
  // Points the scheduler at a (possibly different) Collection and scopes
  // every subsequent host query to `domain_scope` (-1 = global).  A
  // domain-restricted policy passes the owning sub-Collection and its
  // domain; a global policy passes the federation root.
  void RouteQueries(const Loid& collection, std::int64_t domain_scope = -1) {
    collection_ = collection;
    domain_scope_ = domain_scope;
  }
  // Bounds the staleness this scheduler tolerates from a federation
  // root: queries carry the bound, and the root refresh-pulls any domain
  // whose deltas are older.  Infinite (default) accepts the aggregate
  // as-is.
  void SetMaxStaleness(Duration max_staleness) {
    max_staleness_ = max_staleness;
  }

 protected:
  // Queries the Collection over the network.  The options form lets a
  // policy bound its candidate pool (top-k pruning happens inside the
  // Collection, before the reply is materialized).
  void QueryHosts(const std::string& query, Callback<CollectionData> done);
  void QueryHosts(const std::string& query, const QueryOptions& options,
                  Callback<CollectionData> done);
  // Steps 2-3 of figure 3: acquire application knowledge from the class.
  void GetImplementations(const Loid& class_loid,
                          Callback<std::vector<Implementation>> done);

  // Builds the query text selecting hosts able to run any of the given
  // implementations (the "query Collection for Hosts matching available
  // implementations" step of figures 7 and 8).
  static std::string HostMatchQuery(
      const std::vector<Implementation>& implementations);

  // Extracts the compatible-vault LOIDs from a host's Collection record.
  static std::vector<Loid> CompatibleVaultsOf(const CollectionRecord& record);

  // Implementation selection (§3.3 implemented): the "arch/os" key the
  // host's record advertises, recorded into the mapping so enactment
  // runs exactly the binary the schedule chose.
  static std::string ImplementationFor(const CollectionRecord& record);

  // The Enactor's health view (the breaker state schedulers share), or
  // nullptr when the enactor is unreachable or health tracking is off.
  const HealthTracker* health() const;

  // Demotes suspect hosts from a candidate pool: records whose breaker
  // (host or domain) is open are erased, unless doing so would leave
  // fewer than min_keep candidates -- a degraded pool beats an empty
  // one, and suspects must stay reachable for probes when nothing else
  // is left.  Each erased record bumps the suspects_skipped counter.
  void FilterSuspects(CollectionData* hosts, std::size_t min_keep = 1);

  Loid collection_loid() const { return collection_; }
  Loid enactor_loid() const { return enactor_; }

  // ---- Decision audit (obs/audit.h) -----------------------------------------
  // Scheduler-side records carry {"scheduler": name} and no negotiation
  // id (the id is minted later, by the Enactor); ExplainMapping joins
  // them to the lifecycle by host.  Sites guard with AuditOn().
  bool AuditOn() const { return kernel()->audit().enabled(); }
  void AuditDecision(const char* kind, obs::TraceArgs fields);
  // One chosen mapping: which class lands on which host at schedule slot
  // `slot`, and the policy's rationale ("random", "rank=3.7", ...).
  void AuditChoice(std::size_t slot, const ObjectMapping& mapping,
                   const std::string& reason);

  // Seed for every policy's QueryOptions: carries the routing scope and
  // staleness bound so all five schedulers inherit federated behavior.
  QueryOptions ScopedOptions() const {
    QueryOptions options;
    options.domain_scope = domain_scope_;
    options.max_staleness = max_staleness_;
    return options;
  }

 private:
  struct RunState;
  void RunScheduleAttempt(const std::shared_ptr<RunState>& state);
  void RunEnactAttempt(const std::shared_ptr<RunState>& state,
                       const ScheduleRequestList& schedule);

  std::string name_;
  Loid collection_;
  Loid enactor_;
  std::int64_t domain_scope_ = -1;
  Duration max_staleness_ = Duration::Infinite();
  std::uint64_t collection_lookups_ = 0;
  // Registry cells ({component=scheduler, scheduler=<name>}).
  obs::Counter* runs_cell_ = nullptr;
  obs::Counter* successes_cell_ = nullptr;
  obs::Counter* lookups_cell_ = nullptr;
  obs::Counter* suspects_skipped_cell_ = nullptr;
  obs::Counter* mappings_unplaced_cell_ = nullptr;
};

}  // namespace legion
