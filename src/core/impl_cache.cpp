#include "core/impl_cache.h"

namespace legion {

namespace {
constexpr std::uint64_t kServiceClassSerial = 5;
}  // namespace

ImplementationCacheObject::ImplementationCacheObject(SimKernel* kernel,
                                                     Loid loid,
                                                     std::uint32_t domain)
    : LegionObject(kernel, loid,
                   Loid(LoidSpace::kClass, domain, kServiceClassSerial)) {
  kernel->network().RegisterEndpoint(loid, domain);
  (void)Activate(loid, Loid());
  mutable_attributes().Set("service", "implementation-cache");
}

bool ImplementationCacheObject::Cached(const Loid& class_loid,
                                       const std::string& impl_key) const {
  return cached_.count(Key(class_loid, impl_key)) != 0;
}

void ImplementationCacheObject::EnsureBinary(const Loid& class_loid,
                                             const std::string& impl_key,
                                             std::size_t binary_bytes,
                                             Callback<bool> done) {
  const std::string key = Key(class_loid, impl_key);
  if (cached_.count(key) != 0) {
    ++hits_;
    done(true);
    return;
  }
  ++misses_;
  auto pending_it = pending_.find(key);
  if (pending_it != pending_.end()) {
    // A pull is already in flight; ride along.
    pending_it->second.push_back(std::move(done));
    return;
  }
  pending_[key].push_back(std::move(done));
  // Pull the binary from the class object: a small request out, the
  // binary back (bandwidth-limited by its size).
  kernel()->AsyncCall<bool>(
      loid(), class_loid, kSmallMessage, binary_bytes,
      Duration::Minutes(10),
      [kernel = kernel(), class_loid](Callback<bool> reply) {
        // The class only needs to exist to serve its binary.
        reply(kernel->FindActor(class_loid) != nullptr);
      },
      [this, key, binary_bytes](Result<bool> fetched) {
        const bool ok = fetched.ok() && *fetched;
        if (ok) {
          cached_.insert(key);
          bytes_cached_ += binary_bytes;
        }
        auto waiters = std::move(pending_[key]);
        pending_.erase(key);
        for (auto& waiter : waiters) waiter(ok);
      });
}

}  // namespace legion
