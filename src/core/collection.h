// The Collection (paper section 3.2, figure 4).
//
// "The Collection acts as a repository for information describing the
// state of the resources comprising the system.  Each record is stored as
// a set of Legion object attributes. ... Collections provide methods to
// join (with an optional installment of initial descriptive information)
// and update records, thus facilitating a push model for data.  The
// security facilities of Legion authenticate the caller to be sure that
// it is allowed to update the data in the Collection.  As noted earlier,
// Collections may also pull data from resources.  Users, or their agents,
// obtain information about resources by issuing queries to a Collection."
//
// Implemented faithfully to the figure-4 interface, plus the paper's
// planned extension: *function injection* -- users install code that
// computes new description information at query time (exposed through the
// query language's call syntax and the FunctionRegistry).
//
// Query execution (DESIGN.md "The query execution layer"): attribute
// indexes maintained incrementally on join/update/leave answer sargable
// queries in sub-linear time through the planner's index plans; string
// entry points resolve through a compiled-query LRU cache; and callers
// that only consume a bounded prefix (every scheduler) pass QueryOptions
// with an ordering hint and max_results so the Collection never
// materializes thousands of records for a ten-host placement.
//
// The record store is internally synchronized (a shared_mutex guarding
// the map and its indexes, per the mutex-with-its-data rule), because the
// parallel query path evaluates a compiled query across worker threads.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/sim_time.h"
#include "core/collection_index.h"
#include "objects/interfaces.h"
#include "objects/legion_object.h"
#include "query/compile_cache.h"
#include "query/query.h"
#include "sim/network.h"

namespace legion {

// One resource-description record.
struct CollectionRecord {
  Loid member;
  AttributeDatabase attributes;
  SimTime updated_at;
  std::uint64_t update_count = 0;
};

using CollectionData = std::vector<CollectionRecord>;

// One journaled membership change in a federated deployment (DESIGN.md
// §10).  Versions are per-sub-Collection and monotonically increasing, so
// the root reconciles late or reordered batches deterministically: a delta
// applies iff its version exceeds the highest version the root has ever
// applied for that member.
struct CollectionDelta {
  enum class Kind : std::uint8_t { kUpsert, kLeave };
  Kind kind = Kind::kUpsert;
  Loid member;
  std::uint64_t version = 0;
  // Post-update attribute snapshot (kUpsert only; empty for kLeave).
  AttributeDatabase attributes;
};

// A push from a sub-Collection to its federation root: the journal
// entries not yet acknowledged, version-ascending.  Empty batches act as
// heartbeats that keep the root's per-domain staleness estimate fresh.
struct DeltaBatch {
  Loid source;  // the sub-Collection
  DomainId domain = 0;
  std::vector<CollectionDelta> deltas;
};

// Simulated wire size of a delta batch: a small header plus a
// medium-message record payload per delta (an attribute set serializes
// well within kMediumMessage).
inline std::size_t DeltaBatchBytes(const DeltaBatch& batch) {
  return kSmallMessage + batch.deltas.size() * kMediumMessage;
}

// Per-query execution options.  Defaults reproduce the classic
// semantics: every match, ordered by member LOID.
struct QueryOptions {
  // Keep only the first `max_results` records of the result order
  // (0 = unlimited).  Schedulers placing k instances pass a bounded
  // candidate pool instead of materializing every match.
  std::size_t max_results = 0;
  // Order results by this stored numeric attribute instead of by member
  // LOID (ties and records without a numeric value sort last, by
  // member, so the order stays total and deterministic).  Empty = member
  // order.  Derived (injected-function) attributes are not orderable:
  // they materialize after pruning.
  std::string order_by;
  bool descending = false;
  // Bypass the index path and evaluate by full scan.  For the
  // scan-vs-index ablation and the planner-equivalence tests; results
  // are identical by contract.
  bool force_scan = false;
  // Restrict matches to members homed in this network domain (-1 = no
  // restriction).  A federated deployment routes domain-scoped queries
  // straight to the owning sub-Collection; the filter applies on any
  // Collection so flat and federated answers agree.
  std::int64_t domain_scope = -1;
  // Bounded staleness (QueryCollection on a federation root only): if the
  // newest delta batch from an in-scope domain is older than this, the
  // root pulls that sub's pending deltas before answering.  Infinite
  // (the default) answers from whatever has already arrived.
  Duration max_staleness = Duration::Infinite();
};

struct CollectionOptions {
  // Require updaters to be the member itself or a registered trusted
  // agent (the Legion authentication step).
  bool authenticate = true;
  // Default worker count for QueryAllParallel (0 = hardware concurrency).
  unsigned query_threads = 0;
};

class CollectionObject : public LegionObject, public CollectionSink {
 public:
  CollectionObject(SimKernel* kernel, Loid loid, CollectionOptions options = {});

  std::string DebugName() const override { return "collection"; }

  // ---- Figure 4 interface -------------------------------------------------
  // int JoinCollection(LOID joiner);
  void JoinCollection(const Loid& joiner, Callback<bool> done);
  // int JoinCollection(LOID joiner, LinkedList<Uval> ObjAttribute);
  void JoinCollection(const Loid& joiner, const AttributeDatabase& attributes,
                      Callback<bool> done) override;
  // int LeaveCollection(LegionLOID leaver);
  void LeaveCollection(const Loid& leaver, Callback<bool> done) override;
  // int QueryCollection(String Query, &CollectionData result);
  void QueryCollection(const std::string& query_text,
                       Callback<CollectionData> done);
  void QueryCollection(const std::string& query_text,
                       const QueryOptions& options,
                       Callback<CollectionData> done);
  // int UpdateCollectionEntry(LOID member, LinkedList<Uval> ObjAttribute);
  void UpdateCollectionEntry(const Loid& member,
                             const AttributeDatabase& attributes,
                             Callback<bool> done) override;

  // Authenticated third-party update (the Data Collection Daemon path).
  void UpdateEntryAs(const Loid& caller, const Loid& member,
                     const AttributeDatabase& attributes, Callback<bool> done);

  // ---- Pull model -----------------------------------------------------------
  // Pulls fresh attributes from the given members (each pull is a
  // message-counted RPC to the resource) and updates their records.
  void PullFrom(const std::vector<Loid>& members, Callback<std::size_t> done);

  // ---- Local (in-process) query paths ---------------------------------------
  // Synchronous evaluation against the current store.  The string form
  // resolves through the compiled-query cache.
  Result<CollectionData> QueryLocal(const std::string& query_text,
                                    const QueryOptions& options = {}) const;
  Result<CollectionData> QueryLocal(const query::CompiledQuery& query,
                                    const QueryOptions& options = {}) const;
  // Shards the record set across worker threads.  Profitable only for
  // large stores on non-sargable queries; indexed or small queries
  // delegate to the serial path (see kParallelFanoutThreshold).
  Result<CollectionData> QueryLocalParallel(const query::CompiledQuery& query,
                                            unsigned threads = 0,
                                            const QueryOptions& options = {}) const;

  // Record count below which QueryLocalParallel stays serial: starting
  // and joining workers costs on the order of the whole scan for a few
  // thousand records (bench_collection's E4b table measures the
  // crossover; below this size the fan-out never recovers its startup
  // cost even with idle cores).  Worker count is additionally clamped to
  // the hardware concurrency -- on a single-core machine the serial scan
  // always wins.
  static constexpr std::size_t kParallelFanoutThreshold = 8192;

  // ---- Federation (DESIGN.md §10) -------------------------------------------
  // Makes this Collection a sub-Collection feeding `parent`: every
  // membership change is journaled and the journal is pushed as a
  // versioned delta batch each `push_period` (empty batches act as
  // heartbeats).  Unacknowledged entries stay journaled and retransmit
  // next period; the root's version check makes retransmission idempotent.
  // Records already stored are journaled as a full snapshot so the root
  // converges without waiting for organic updates.
  void SetParent(const Loid& parent, Duration push_period);
  // Enrolls `sub` as the aggregating child for `domain` on this root.
  // Batches from sources that are not enrolled children are refused when
  // authentication is on (the figure-4 security step, federated).
  void AddChild(DomainId domain, const Loid& sub);
  // Applies a delta batch at the root; replies with the highest version
  // seen in the batch so the sub can prune its journal.  At-least-once
  // pushes plus the per-member version check give exactly-once effect.
  void ApplyDeltaBatch(const DeltaBatch& batch, Callback<std::uint64_t> done);
  // Snapshot of the unacknowledged journal (does not prune; the next
  // acknowledged push does).  The root's refresh-pull target.
  DeltaBatch PendingDeltas() const;

  bool is_federation_root() const { return !children_.empty(); }
  const Loid& federation_parent() const { return parent_; }

  std::uint64_t delta_pushes() const { return cells_.delta_pushes->value(); }
  std::uint64_t delta_records() const { return cells_.delta_records->value(); }
  std::uint64_t stale_answers() const { return cells_.stale_answers->value(); }
  std::uint64_t refresh_pulls() const { return cells_.refresh_pulls->value(); }

  // ---- Administration ---------------------------------------------------------
  void AddTrustedUpdater(const Loid& agent);
  query::FunctionRegistry& functions() { return functions_; }
  const query::FunctionRegistry& functions() const { return functions_; }

  std::size_t record_count() const;
  // Mean age (now - updated_at) across records; the staleness metric.
  Duration MeanRecordAge() const;

  std::uint64_t queries_served() const { return cells_.queries_served->value(); }
  std::uint64_t updates_applied() const { return cells_.updates_applied->value(); }
  std::uint64_t updates_rejected() const { return cells_.updates_rejected->value(); }
  // Query-engine introspection (mirrored in the metrics registry).
  std::uint64_t index_hits() const { return cells_.index_hits->value(); }
  std::uint64_t planner_fallbacks() const {
    return cells_.planner_fallbacks->value();
  }
  std::uint64_t compile_cache_hits() const {
    return cells_.compile_cache_hits->value();
  }
  std::uint64_t compile_cache_misses() const {
    return cells_.compile_cache_misses->value();
  }

 private:
  bool Authorized(const Loid& caller, const Loid& member) const;
  void Upsert(const Loid& member, const AttributeDatabase& attributes);
  // Journals a membership change for the next delta push.  Caller holds
  // the unique lock.
  void JournalDelta(CollectionDelta::Kind kind, const Loid& member,
                    const AttributeDatabase& attributes);
  // Periodic push of the journal to the federation root.
  void FlushDeltas();
  // Bounded-staleness answer path: pulls pending deltas from every
  // in-scope domain whose last batch is older than options.max_staleness,
  // then answers the query.
  void RefreshThenAnswer(const std::string& query_text,
                         const QueryOptions& options,
                         Callback<CollectionData> done);
  // Function injection materialization: every registered zero-argument
  // function is evaluated against the record and "integrated with the
  // already existing description information" (paper 3.2) as a derived
  // attribute named after the function.  Runs once per *emitted* record,
  // after top-k pruning -- never per scanned candidate.
  void MaterializeDerived(CollectionRecord& record) const;
  // Applies ordering / top-k pruning to the matched records and copies
  // the survivors out (materializing derived attributes).  `matched`
  // must be sorted by member.  Caller holds the shared lock.
  CollectionData EmitResults(std::vector<const CollectionRecord*>& matched,
                             const QueryOptions& options) const;
  // Shared tail of the serial query paths; caller holds no lock.
  Result<CollectionData> Execute(const query::CompiledQuery& query,
                                 const QueryOptions& options) const;

  // Registry cells ({component=collection}); atomic, so the parallel
  // query path reports through them safely.
  struct Cells {
    obs::Counter* queries_served;
    obs::Counter* updates_applied;
    obs::Counter* updates_rejected;
    // Query-engine counters: queries answered from the attribute
    // indexes, queries that fell back to the full scan, and
    // compiled-query cache traffic on the string entry points.
    obs::Counter* index_hits;
    obs::Counter* planner_fallbacks;
    obs::Counter* compile_cache_hits;
    obs::Counter* compile_cache_misses;
    // Wall-clock evaluation cost of each local query (not simulated
    // time; feeds the perf trajectory, not determinism).
    obs::Histogram* query_wall_us;
    // Mean record age observed at each network query -- the staleness
    // the schedulers actually acted on.
    obs::Histogram* staleness_ms;
    // Federation counters: delta batches pushed (incl. heartbeats),
    // delta records pushed (incl. retransmits), global answers served
    // while an in-scope domain stayed stale after a failed refresh, and
    // refresh pulls issued by the bounded-staleness path.
    obs::Counter* delta_pushes;
    obs::Counter* delta_records;
    obs::Counter* stale_answers;
    obs::Counter* refresh_pulls;
  };

  CollectionOptions options_;
  mutable std::shared_mutex store_mutex_;  // guards records_ and indexes_
  std::unordered_map<Loid, CollectionRecord> records_;
  AttributeIndexes indexes_;
  std::unordered_set<Loid> trusted_;
  query::FunctionRegistry functions_;
  mutable query::CompileCache compile_cache_;
  Cells cells_;

  // ---- Federation state -----------------------------------------------------
  // Sub side.  The journal coalesces per member (latest change wins) and
  // iterates in member order, so batches are deterministic; guarded by
  // store_mutex_ alongside the records it shadows.
  Loid parent_;
  Duration push_period_ = Duration::Zero();
  SimKernel::PeriodicId push_timer_ = 0;
  std::uint64_t next_delta_version_ = 0;
  std::map<Loid, CollectionDelta> journal_;
  // Root side.  applied_versions_ keeps an entry per member ever seen --
  // including departed ones -- so a late upsert with an older version
  // cannot resurrect a record a newer leave removed.
  struct ChildState {
    Loid sub;
    SimTime last_delta_at;
  };
  std::map<DomainId, ChildState> children_;
  std::unordered_map<Loid, std::uint64_t> applied_versions_;
};

}  // namespace legion
