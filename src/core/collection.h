// The Collection (paper section 3.2, figure 4).
//
// "The Collection acts as a repository for information describing the
// state of the resources comprising the system.  Each record is stored as
// a set of Legion object attributes. ... Collections provide methods to
// join (with an optional installment of initial descriptive information)
// and update records, thus facilitating a push model for data.  The
// security facilities of Legion authenticate the caller to be sure that
// it is allowed to update the data in the Collection.  As noted earlier,
// Collections may also pull data from resources.  Users, or their agents,
// obtain information about resources by issuing queries to a Collection."
//
// Implemented faithfully to the figure-4 interface, plus the paper's
// planned extension: *function injection* -- users install code that
// computes new description information at query time (exposed through the
// query language's call syntax and the FunctionRegistry).
//
// The record store is internally synchronized (a shared_mutex guarding
// the map, per the mutex-with-its-data rule), because the parallel query
// path evaluates a compiled query across worker threads.
#pragma once

#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "objects/interfaces.h"
#include "objects/legion_object.h"
#include "query/query.h"

namespace legion {

// One resource-description record.
struct CollectionRecord {
  Loid member;
  AttributeDatabase attributes;
  SimTime updated_at;
  std::uint64_t update_count = 0;
};

using CollectionData = std::vector<CollectionRecord>;

struct CollectionOptions {
  // Require updaters to be the member itself or a registered trusted
  // agent (the Legion authentication step).
  bool authenticate = true;
  // Default worker count for QueryAllParallel (0 = hardware concurrency).
  unsigned query_threads = 0;
};

class CollectionObject : public LegionObject, public CollectionSink {
 public:
  CollectionObject(SimKernel* kernel, Loid loid, CollectionOptions options = {});

  std::string DebugName() const override { return "collection"; }

  // ---- Figure 4 interface -------------------------------------------------
  // int JoinCollection(LOID joiner);
  void JoinCollection(const Loid& joiner, Callback<bool> done);
  // int JoinCollection(LOID joiner, LinkedList<Uval> ObjAttribute);
  void JoinCollection(const Loid& joiner, const AttributeDatabase& attributes,
                      Callback<bool> done) override;
  // int LeaveCollection(LegionLOID leaver);
  void LeaveCollection(const Loid& leaver, Callback<bool> done) override;
  // int QueryCollection(String Query, &CollectionData result);
  void QueryCollection(const std::string& query_text,
                       Callback<CollectionData> done);
  // int UpdateCollectionEntry(LOID member, LinkedList<Uval> ObjAttribute);
  void UpdateCollectionEntry(const Loid& member,
                             const AttributeDatabase& attributes,
                             Callback<bool> done) override;

  // Authenticated third-party update (the Data Collection Daemon path).
  void UpdateEntryAs(const Loid& caller, const Loid& member,
                     const AttributeDatabase& attributes, Callback<bool> done);

  // ---- Pull model -----------------------------------------------------------
  // Pulls fresh attributes from the given members (each pull is a
  // message-counted RPC to the resource) and updates their records.
  void PullFrom(const std::vector<Loid>& members, Callback<std::size_t> done);

  // ---- Local (in-process) query paths ---------------------------------------
  // Synchronous evaluation against the current store.
  Result<CollectionData> QueryLocal(const std::string& query_text) const;
  Result<CollectionData> QueryLocal(const query::CompiledQuery& query) const;
  // Shards the record set across worker threads; profitable for large
  // collections (see bench_collection).
  Result<CollectionData> QueryLocalParallel(const query::CompiledQuery& query,
                                            unsigned threads = 0) const;

  // ---- Administration ---------------------------------------------------------
  void AddTrustedUpdater(const Loid& agent);
  query::FunctionRegistry& functions() { return functions_; }
  const query::FunctionRegistry& functions() const { return functions_; }

  std::size_t record_count() const;
  // Mean age (now - updated_at) across records; the staleness metric.
  Duration MeanRecordAge() const;

  std::uint64_t queries_served() const { return cells_.queries_served->value(); }
  std::uint64_t updates_applied() const { return cells_.updates_applied->value(); }
  std::uint64_t updates_rejected() const { return cells_.updates_rejected->value(); }

 private:
  bool Authorized(const Loid& caller, const Loid& member) const;
  void Upsert(const Loid& member, const AttributeDatabase& attributes);
  // Function injection materialization: every registered zero-argument
  // function is evaluated against the record and "integrated with the
  // already existing description information" (paper 3.2) as a derived
  // attribute named after the function.
  void MaterializeDerived(CollectionRecord& record) const;
  // Snapshot for query evaluation (records copied under shared lock).
  std::vector<const CollectionRecord*> Snapshot() const;

  // Registry cells ({component=collection}); atomic, so the parallel
  // query path reports through them safely.
  struct Cells {
    obs::Counter* queries_served;
    obs::Counter* updates_applied;
    obs::Counter* updates_rejected;
    // Wall-clock evaluation cost of each local query (not simulated
    // time; feeds the perf trajectory, not determinism).
    obs::Histogram* query_wall_us;
    // Mean record age observed at each network query -- the staleness
    // the schedulers actually acted on.
    obs::Histogram* staleness_ms;
  };

  CollectionOptions options_;
  mutable std::shared_mutex store_mutex_;  // guards records_
  std::unordered_map<Loid, CollectionRecord> records_;
  std::unordered_set<Loid> trusted_;
  query::FunctionRegistry functions_;
  Cells cells_;
};

}  // namespace legion
