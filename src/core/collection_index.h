// Attribute indexes for the Collection's record store.
//
// Every attribute of every record is indexed by value kind:
//
//   * strings -> hash map of value -> member set (equality),
//   * numbers -> ordered map keyed by the value *as double* -> member
//     set (equality and ranges; int and double compare across the divide
//     exactly like CompareAttrValues, NaN values are unindexable and
//     excluded -- NaN matches no comparison anyway),
//   * bools   -> two member sets,
//   * presence -> member set of records carrying a non-null value
//     (serves defined($attr); lists appear only here).
//
// Maintained incrementally by the Collection on join/update/leave under
// the store's write lock; Eval() runs under the shared lock.  Member
// sets are ordered by LOID, so candidate lists come out sorted in the
// Collection's canonical result order for free.
//
// The candidate contract matches planner.h: for any record matching the
// full query, the plan's candidate set contains it.  Range boundaries
// are answered inclusively (the residual pass trims the edge) so that
// int64 keys that collide when widened to double can never be dropped.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/attributes.h"
#include "base/loid.h"
#include "query/planner.h"

namespace legion {

class AttributeIndexes {
 public:
  // Index every attribute of `attrs` for `member`.  The caller keeps
  // Add/Remove paired with the stored record so the structures never
  // drift from the store.
  void Add(const Loid& member, const AttributeDatabase& attrs);
  void Remove(const Loid& member, const AttributeDatabase& attrs);
  void Clear();

  // The result of evaluating an index plan.
  struct Candidates {
    std::vector<Loid> members;  // sorted ascending, unique
    bool exact = false;         // plan-level exactness (planner.h)
  };

  // Evaluates the plan against the indexes.  `and` nodes prune through
  // their cheapest child (by Estimate); `or` nodes union every branch.
  Candidates Eval(const query::IndexPlan& plan) const;

  // Candidate count for the plan without materializing anything,
  // counted only up to `cap`: once the running count exceeds the cap
  // the walk stops and the (now cap-exceeding) partial count returns.
  // The Collection skips the index path when the estimate is close to
  // the store size -- gathering would cost more than the scan.
  std::size_t Estimate(const query::IndexPlan& plan, std::size_t cap) const;

  std::size_t attribute_count() const { return attrs_.size(); }

 private:
  struct PerAttribute {
    std::unordered_map<std::string, std::set<Loid>> by_string;
    std::map<double, std::set<Loid>> by_number;
    std::set<Loid> by_bool[2];
    std::set<Loid> present;
  };

  void EvalInto(const query::IndexPlan& plan, std::vector<Loid>* out) const;
  void PredicateInto(const query::SargablePredicate& pred,
                     std::vector<Loid>* out) const;
  std::size_t EstimatePredicate(const query::SargablePredicate& pred,
                                std::size_t cap) const;

  std::unordered_map<std::string, PerAttribute> attrs_;
};

}  // namespace legion
