#include "core/collection_federation.h"

namespace legion {

CollectionFederation::CollectionFederation(SimKernel* kernel,
                                           std::uint32_t domains,
                                           FederationOptions options)
    : options_(options) {
  root_ = kernel->AddActor<CollectionObject>(
      kernel->minter().Mint(LoidSpace::kService, 0), options_.collection);
  for (std::uint32_t domain = 0; domain < domains; ++domain) {
    // Minted in the domain it serves: the CollectionObject constructor
    // registers its endpoint under loid().domain(), so member pushes and
    // scoped queries ride intra-domain links while only the delta
    // batches cross the WAN.
    auto* sub = kernel->AddActor<CollectionObject>(
        kernel->minter().Mint(LoidSpace::kService, domain),
        options_.collection);
    root_->AddChild(domain, sub->loid());
    sub->SetParent(root_->loid(), options_.push_period);
    subs_[domain] = sub;
  }
}

}  // namespace legion
