// The single wall-time source for the whole reproduction.
//
// Everything in the simulation runs on the deterministic virtual clock
// (SimTime); wall time only ever appears as a *measurement* -- how many
// real microseconds a Collection query or an event handler burned.  PR 3
// had to exclude the one wall-clock histogram from the same-seed chaos
// fingerprints because those measurements diverge run to run.  This hook
// closes that hole: every wall-time reading in the repo goes through the
// kernel's WallClock, and the clock is *pinned* by default -- Micros()
// returns a constant, so measured deltas are zero and every fingerprint
// (metrics snapshots, profiler dumps, recorder timelines) is
// byte-identical across same-seed runs with no exclusions.
//
// Benches and interactive runs that want real measurements opt in with
// UseRealTime(); tests can Pin() any value to fake a cost.  The accuracy
// of the simulation never depends on this clock -- only the two
// wall-cost observers (the Collection's query_wall_us histogram and the
// kernel profiler's per-handler wall accounting) read it.
#pragma once

#include <chrono>
#include <cstdint>

namespace legion::obs {

class WallClock {
 public:
  // Pinned (deterministic) by default: Micros() returns the pinned
  // value, so interval measurements come out zero.
  std::int64_t Micros() const { return real_ ? RealMicros() : pinned_; }

  // Switch to the real monotonic clock.  Measurements become genuine
  // wall costs -- and nondeterministic; never enable on a fingerprint
  // path.
  void UseRealTime() { real_ = true; }

  // Pin the clock to a constant (tests fake costs by re-pinning between
  // the start and end reads).  Pin(0) restores the default.
  void Pin(std::int64_t micros) {
    real_ = false;
    pinned_ = micros;
  }

  bool real_time() const { return real_; }

  static std::int64_t RealMicros() {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

 private:
  bool real_ = false;
  std::int64_t pinned_ = 0;
};

}  // namespace legion::obs
