#include "obs/timeseries.h"

#include "obs/json.h"

namespace legion::obs {

void TimeSeriesRecorder::WatchCounter(std::string series,
                                      const Counter* cell) {
  Watch(std::move(series),
        [cell] { return static_cast<double>(cell->value()); },
        /*cumulative=*/true);
}

void TimeSeriesRecorder::WatchGauge(std::string series, const Gauge* cell) {
  Watch(std::move(series), [cell] { return cell->value(); },
        /*cumulative=*/false);
}

void TimeSeriesRecorder::Watch(std::string series,
                               std::function<double()> sampler,
                               bool cumulative) {
  Series& s = series_[std::move(series)];
  s.sampler = std::move(sampler);
  s.cumulative = cumulative;
}

void TimeSeriesRecorder::Start(SimTime now) {
  active_ = true;
  next_sample_ = now + options_.sample_period;
}

void TimeSeriesRecorder::SampleAt(SimTime ts) {
  const double window_s = options_.sample_period.seconds();
  for (auto& [name, s] : series_) {
    const double value = s.sampler();
    TimeSeriesSample sample;
    sample.ts = ts;
    sample.value = value;
    if (!s.has_last) {
      sample.delta = value;
    } else if (s.cumulative && value < s.last) {
      // The cell was reset mid-window (ResetAllStats / ResetStats): the
      // window's growth is everything accumulated since the reset, not a
      // negative jump.
      sample.delta = value;
    } else {
      sample.delta = value - s.last;
    }
    sample.rate = window_s > 0.0 ? sample.delta / window_s : 0.0;
    s.last = value;
    s.has_last = true;
    s.samples.push_back(sample);
    while (options_.ring_capacity > 0 &&
           s.samples.size() > options_.ring_capacity) {
      s.samples.pop_front();
    }
  }
}

const std::deque<TimeSeriesSample>& TimeSeriesRecorder::samples(
    const std::string& series) const {
  static const std::deque<TimeSeriesSample> kEmpty;
  auto it = series_.find(series);
  return it == series_.end() ? kEmpty : it->second.samples;
}

std::string TimeSeriesRecorder::ToJson() const {
  std::string out = "{\"sample_period_us\":" +
                    JsonNumber(options_.sample_period.micros()) +
                    ",\"ring_capacity\":" +
                    JsonNumber(static_cast<std::uint64_t>(
                        options_.ring_capacity)) +
                    ",\"series\":{";
  bool first_series = true;
  for (const auto& [name, s] : series_) {
    if (!first_series) out += ',';
    first_series = false;
    out += JsonString(name) + ":[";
    for (std::size_t i = 0; i < s.samples.size(); ++i) {
      const TimeSeriesSample& sample = s.samples[i];
      if (i != 0) out += ',';
      out += "{\"t\":" + JsonNumber(sample.ts.micros()) +
             ",\"v\":" + JsonNumber(sample.value) +
             ",\"d\":" + JsonNumber(sample.delta) +
             ",\"r\":" + JsonNumber(sample.rate) + '}';
    }
    out += ']';
  }
  out += "}}\n";
  return out;
}

std::string TimeSeriesRecorder::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const auto& [name, s] : series_) {
    for (const TimeSeriesSample& sample : s.samples) {
      if (!first) out += ",\n";
      first = false;
      out += "{\"name\":" + JsonString(name) +
             ",\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":" +
             JsonNumber(sample.ts.micros()) + ",\"args\":{\"value\":" +
             JsonNumber(sample.value) + ",\"rate\":" +
             JsonNumber(sample.rate) + "}}";
    }
  }
  out += "\n]}\n";
  return out;
}

void TimeSeriesRecorder::Clear() {
  for (auto& [name, s] : series_) {
    s.samples.clear();
    s.last = 0.0;
    s.has_last = false;
  }
}

}  // namespace legion::obs
