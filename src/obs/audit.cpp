#include "obs/audit.h"

#include <set>

#include "obs/json.h"

namespace legion::obs {

std::string AuditRecord::ToJson() const {
  std::string out = "{\"seq\":" + JsonNumber(seq) +
                    ",\"t\":" + JsonNumber(ts.micros()) +
                    ",\"kind\":" + JsonString(kind);
  for (const TraceArg& field : fields) {
    out += ',' + JsonString(field.key) + ':' + JsonString(field.value);
  }
  out += '}';
  return out;
}

void DecisionLog::Record(SimTime ts, const char* kind, TraceArgs fields) {
  if (!enabled_) return;
  AuditRecord record;
  record.seq = next_seq_++;
  record.ts = ts;
  record.kind = kind;
  record.fields = std::move(fields);
  records_.push_back(std::move(record));
}

void DecisionLog::Clear() {
  records_.clear();
  records_.shrink_to_fit();
  next_seq_ = 1;
}

std::string DecisionLog::ToJsonl() const {
  std::string out;
  for (const AuditRecord& record : records_) {
    out += record.ToJson();
    out += '\n';
  }
  return out;
}

const std::string* AuditField(const AuditRecord& record,
                              std::string_view key) {
  for (const TraceArg& field : record.fields) {
    if (field.key == key) return &field.value;
  }
  return nullptr;
}

namespace {

// "t=<us> <kind> key=value ..." with the correlation id elided (the
// header names it once).
std::string Line(const AuditRecord& record) {
  std::string out = "t=" + std::to_string(record.ts.micros()) + ' ' +
                    record.kind;
  for (const TraceArg& field : record.fields) {
    if (field.key == "nid") continue;
    out += ' ' + field.key + '=' + field.value;
  }
  out += '\n';
  return out;
}

}  // namespace

std::string DecisionLog::ExplainMapping(std::uint64_t negotiation,
                                        std::int64_t index) const {
  const std::string nid = std::to_string(negotiation);
  const std::string slot_key =
      index >= 0 ? std::to_string(index) : std::string();

  // Every host the slot (or, unscoped, the negotiation) ever aimed at;
  // scheduler choice lines for other hosts are noise for this story.
  std::set<std::string> hosts;
  for (const AuditRecord& record : records_) {
    const std::string* rnid = AuditField(record, "nid");
    if (rnid == nullptr || *rnid != nid) continue;
    const std::string* slot = AuditField(record, "slot");
    if (index >= 0 && slot != nullptr && *slot != slot_key) continue;
    if (const std::string* host = AuditField(record, "host")) {
      hosts.insert(*host);
    }
  }

  std::string out = "== negotiation " + nid;
  if (index >= 0) out += " slot " + slot_key;
  out += " ==\n-- scheduler decisions --\n";
  for (const AuditRecord& record : records_) {
    if (AuditField(record, "nid") != nullptr) continue;
    const std::string_view kind(record.kind);
    if (kind.substr(0, 6) != "sched_") continue;
    if (kind == "sched_choice" && index >= 0) {
      const std::string* host = AuditField(record, "host");
      if (host != nullptr && hosts.find(*host) == hosts.end()) continue;
    }
    out += Line(record);
  }

  out += "-- lifecycle --\n";
  std::string outcome = "unresolved";
  for (const AuditRecord& record : records_) {
    const std::string* rnid = AuditField(record, "nid");
    if (rnid == nullptr || *rnid != nid) continue;
    const std::string* slot = AuditField(record, "slot");
    if (index >= 0 && slot != nullptr && *slot != slot_key) continue;
    out += Line(record);
    const std::string_view kind(record.kind);
    const std::string* host = AuditField(record, "host");
    if (kind == "reserve_granted" && slot != nullptr) {
      outcome = "granted on " + (host != nullptr ? *host : std::string("?"));
    } else if (kind == "reserve_failed" && slot != nullptr) {
      const std::string* code = AuditField(record, "code");
      outcome = "failed (" + (code != nullptr ? *code : std::string("?")) +
                ") on " + (host != nullptr ? *host : std::string("?"));
    } else if (kind == "reservation_cancelled" && slot != nullptr) {
      outcome = "cancelled on " +
                (host != nullptr ? *host : std::string("?"));
    }
  }

  out += "-- outcome --\n";
  if (index >= 0) out += "slot " + slot_key + ": " + outcome + '\n';
  for (const AuditRecord& record : records_) {
    const std::string* rnid = AuditField(record, "nid");
    if (rnid == nullptr || *rnid != nid) continue;
    const std::string_view kind(record.kind);
    if (kind == "negotiation_success" || kind == "negotiation_failed") {
      out += Line(record);
    }
  }
  return out;
}

}  // namespace legion::obs
