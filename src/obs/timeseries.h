// Time-series telemetry: windowed samples of selected registry metrics.
//
// The MetricsRegistry answers "how much happened, total"; production
// debugging needs "when did it happen, and how fast".  The recorder
// samples watched cells on a configurable sim-time period into bounded
// ring buffers, computing per-window deltas and rates, so queue-depth
// timelines, RPC-rate ramps, and breaker-open bursts become visible
// instead of being averaged into an end-of-run total.
//
// Clocking: the recorder never schedules kernel events.  SimKernel
// flushes due sample points from its run loop (see RunUntil), so an
// enabled recorder observes the virtual timeline without perturbing it
// -- event counts, message counts, and placements are byte-identical
// with the recorder on or off.  Sample timestamps are exact period
// multiples; a window with no intervening events still samples on time.
//
// Determinism: timestamps are sim-time and watched values are
// deterministic registry cells, so two same-seed runs export
// byte-identical timelines.  Exports: a deterministic JSON timeline
// (series sorted by name) and Chrome trace_event counter tracks
// ("ph":"C"; load alongside a TraceLog export to see rates under the
// causal spans).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/sim_time.h"
#include "obs/metrics.h"

namespace legion::obs {

struct RecorderOptions {
  // Sim-time distance between samples.
  Duration sample_period = Duration::Seconds(1);
  // Ring capacity per series; the oldest window falls off when full.
  std::size_t ring_capacity = 1024;
};

struct TimeSeriesSample {
  SimTime ts;    // window end (inclusive)
  double value;  // sampled value at ts
  double delta;  // value - previous sample (counter resets clamp to value)
  double rate;   // delta per second of window
};

class TimeSeriesRecorder {
 public:
  explicit TimeSeriesRecorder(RecorderOptions options = {})
      : options_(options) {}

  RecorderOptions& options() { return options_; }

  // ---- Series registration ----------------------------------------------
  // Watch a registry cell under `series` (any stable name; the registry's
  // CellKey is the conventional choice).  Cumulative series (counters)
  // clamp their delta to the new value when the cell was reset
  // mid-window; instantaneous series (gauges) report signed deltas.
  void WatchCounter(std::string series, const Counter* cell);
  void WatchGauge(std::string series, const Gauge* cell);
  // Arbitrary sampler, e.g. a queue-depth probe.
  void Watch(std::string series, std::function<double()> sampler,
             bool cumulative);

  // ---- Clocking ---------------------------------------------------------
  // Arms the recorder: the first window ends at now + sample_period.
  void Start(SimTime now);
  void Stop() { active_ = false; }
  bool active() const { return active_; }

  // Flushes every due sample point strictly before `t`.  Called by the
  // kernel with the next event's timestamp, so a window closes only once
  // simulated time moves past its end -- events at exactly the boundary
  // land inside the window.  Inline fast path: one branch when idle.
  void MaybeSample(SimTime t) {
    while (active_ && next_sample_ < t) {
      SampleAt(next_sample_);
      next_sample_ = next_sample_ + options_.sample_period;
    }
  }
  // Closes windows up to and including `t` (end of a bounded run).
  void FlushThrough(SimTime t) { MaybeSample(t + Duration::Micros(1)); }

  // Takes one sample of every series at `ts` (normally driven by
  // MaybeSample; callable directly for manual windows in tests).
  void SampleAt(SimTime ts);

  // ---- Inspection / export ----------------------------------------------
  std::size_t series_count() const { return series_.size(); }
  // Samples of one series; empty when the name is unknown.
  const std::deque<TimeSeriesSample>& samples(const std::string& series) const;

  // {"sample_period_us":...,"series":{name:[{"t":..,"v":..,"d":..,"r":..}]}}
  std::string ToJson() const;
  // Chrome trace_event counter tracks, mergeable with TraceLog exports.
  std::string ToChromeJson() const;

  void Clear();

 private:
  struct Series {
    std::function<double()> sampler;
    bool cumulative = false;
    double last = 0.0;
    bool has_last = false;
    std::deque<TimeSeriesSample> samples;
  };

  RecorderOptions options_;
  bool active_ = false;
  SimTime next_sample_;
  std::map<std::string, Series> series_;  // sorted => deterministic export
};

}  // namespace legion::obs
