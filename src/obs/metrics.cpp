#include "obs/metrics.h"

#include <algorithm>
#include <cassert>

#include "obs/json.h"

namespace legion::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) buckets_[i].store(0);
}

void Histogram::Observe(double v) {
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  buckets_[i].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::AtomicAdd(sum_, v);
}

void Histogram::Reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& LatencyBucketsUs() {
  static const std::vector<double> kBuckets = {
      100.0,   250.0,   500.0,   1e3, 2.5e3, 5e3, 1e4, 2.5e4, 5e4,
      1e5,     2.5e5,   5e5,     1e6, 2.5e6, 5e6, 1e7, 1e8,   1e9};
  return kBuckets;
}

std::string MetricsRegistry::CellKey(std::string_view name,
                                     const Labels& labels) {
  std::string key(name);
  if (labels.empty()) return key;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  key += '{';
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i != 0) key += ',';
    key += sorted[i].first;
    key += '=';
    key += sorted[i].second;
  }
  key += '}';
  return key;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  const std::string key = CellKey(name, labels);
  std::lock_guard lock(mutex_);
  auto& cell = counters_[key];
  if (!cell) cell = std::make_unique<Counter>();
  return cell.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  const std::string key = CellKey(name, labels);
  std::lock_guard lock(mutex_);
  auto& cell = gauges_[key];
  if (!cell) cell = std::make_unique<Gauge>();
  return cell.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         const Labels& labels,
                                         std::vector<double> bounds) {
  const std::string key = CellKey(name, labels);
  std::lock_guard lock(mutex_);
  auto& cell = histograms_[key];
  if (!cell) cell = std::make_unique<Histogram>(std::move(bounds));
  return cell.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard lock(mutex_);
  for (const auto& [key, cell] : counters_) {
    snapshot.counters[key] = cell->value();
  }
  for (const auto& [key, cell] : gauges_) {
    snapshot.gauges[key] = cell->value();
  }
  for (const auto& [key, cell] : histograms_) {
    HistogramValue value;
    value.bounds = cell->bounds();
    value.buckets.reserve(value.bounds.size() + 1);
    for (std::size_t i = 0; i <= value.bounds.size(); ++i) {
      value.buckets.push_back(cell->bucket_count(i));
    }
    value.count = cell->count();
    value.sum = cell->sum();
    snapshot.histograms[key] = std::move(value);
  }
  return snapshot;
}

void MetricsRegistry::Reset() {
  std::lock_guard lock(mutex_);
  for (auto& [key, cell] : counters_) cell->Reset();
  for (auto& [key, cell] : gauges_) cell->Reset();
  for (auto& [key, cell] : histograms_) cell->Reset();
}

std::string MetricsSnapshot::ToJson() const {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [key, value] : counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(key) + ": " + JsonNumber(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  first = true;
  for (const auto& [key, value] : gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(key) + ": " + JsonNumber(value);
  }
  out += first ? "},\n" : "\n  },\n";

  out += "  \"histograms\": {";
  first = true;
  for (const auto& [key, value] : histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    " + JsonString(key) + ": {\"count\": " +
           JsonNumber(value.count) + ", \"sum\": " + JsonNumber(value.sum) +
           ", \"buckets\": [";
    for (std::size_t i = 0; i < value.buckets.size(); ++i) {
      if (i != 0) out += ", ";
      out += "{\"le\": ";
      out += i < value.bounds.size() ? JsonNumber(value.bounds[i])
                                     : std::string("\"+inf\"");
      out += ", \"count\": " + JsonNumber(value.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

}  // namespace legion::obs
