// Minimal JSON emission helpers shared by the observability exporters
// (metrics snapshots, trace files, BENCH_*.json tables).
//
// Emission only -- the repo never needs to parse JSON, so there is no
// parser.  All formatting is deterministic: given the same values the
// same bytes come out, which is what lets trace files double as a
// determinism-regression oracle.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace legion::obs {

// Escapes `s` for inclusion inside a JSON string literal (no quotes
// added).
inline std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Quoted JSON string.
inline std::string JsonString(std::string_view s) {
  return "\"" + JsonEscape(s) + "\"";
}

// Deterministic number formatting.  Integral values of doubles print
// without an exponent or trailing zeros ("5" not "5.000000"), everything
// else round-trips through %.17g.  Non-finite values (not representable
// in JSON) print as null.
inline std::string JsonNumber(double v) {
  if (v != v || v > 1.7e308 || v < -1.7e308) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) && v < 1e15 &&
      v > -1e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

inline std::string JsonNumber(std::uint64_t v) { return std::to_string(v); }
inline std::string JsonNumber(std::int64_t v) { return std::to_string(v); }

}  // namespace legion::obs
