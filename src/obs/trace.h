// Structured, deterministic event tracing with causal span IDs.
//
// A span is one logical operation (an RPC, a message in flight, a whole
// schedule-and-enact run); every span records the span that caused it,
// so a negotiation's full tree -- schedule -> query -> reserve xN ->
// cancel/re-reserve -> enact -- is reconstructable from the parent
// links.  The kernel threads the "current span" through its async-RPC
// path (see SimKernel::Send / AsyncCall), so components get causal
// attribution without passing IDs around by hand.
//
// Determinism: span IDs are minted sequentially and timestamps are
// simulated time, so two runs with the same seed produce byte-identical
// exports.  A trace file therefore doubles as a determinism-regression
// oracle.
//
// Cost model: tracing is off by default.  `enabled()` is an inline flag
// test (and compiles to `false` when LEGION_TRACE_LEVEL=0); every
// recording site guards with it, so a disabled sink records nothing and
// allocates nothing in the hot path.
//
// Exports: Chrome trace_event JSON (load in chrome://tracing or
// https://ui.perfetto.dev) and JSONL (one event per line, for diffing
// and ad-hoc analysis).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/sim_time.h"

// Compile-time gate: 0 removes tracing entirely (enabled() folds to
// false and dead-code elimination strips the recording branches).
#ifndef LEGION_TRACE_LEVEL
#define LEGION_TRACE_LEVEL 1
#endif

namespace legion::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

// One key/value annotation on an event.  Values are stored as strings
// and exported as JSON strings.
struct TraceArg {
  std::string key;
  std::string value;
};
using TraceArgs = std::vector<TraceArg>;

struct TraceEvent {
  enum class Phase : std::uint8_t { kBegin, kEnd, kInstant };
  Phase phase;
  SimTime ts;
  SpanId span = kNoSpan;    // the span this event belongs to / creates
  SpanId parent = kNoSpan;  // causal parent span (kNoSpan = root)
  std::string name;
  const char* category = "";  // static string
  TraceArgs args;
};

class TraceLog {
 public:
  static constexpr bool CompiledIn() { return LEGION_TRACE_LEVEL > 0; }

  bool enabled() const { return CompiledIn() && enabled_; }
  void Enable() { enabled_ = CompiledIn(); }
  void Disable() { enabled_ = false; }

  // The span currently being executed on behalf of; new spans default to
  // being its children.  Maintained by the kernel across async hops.
  SpanId current() const { return current_; }
  void SetCurrent(SpanId span) { current_ = span; }

  // Recording.  All no-ops when disabled; call sites that build names or
  // args should guard with enabled() to avoid the allocations too.
  SpanId BeginSpan(SimTime ts, std::string name, const char* category,
                   SpanId parent, TraceArgs args = {});
  void EndSpan(SimTime ts, SpanId span, TraceArgs args = {});
  void Instant(SimTime ts, std::string name, const char* category,
               SpanId parent, TraceArgs args = {});

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  void Clear();

  // Chrome trace_event format ("async" b/e events keyed by span id).
  std::string ToChromeJson() const;
  // One JSON object per line.
  std::string ToJsonl() const;

 private:
  bool enabled_ = false;
  SpanId next_span_ = 1;
  SpanId current_ = kNoSpan;
  std::vector<TraceEvent> events_;
  // Name/category of spans begun but not yet ended, so EndSpan can emit
  // the matching async-end record Chrome requires.
  std::unordered_map<SpanId, std::pair<std::string, const char*>> open_;
};

// RAII: temporarily switches the log's current span (restores on exit).
class ScopedCurrent {
 public:
  ScopedCurrent(TraceLog& log, SpanId span) : log_(log), saved_(log.current()) {
    log_.SetCurrent(span);
  }
  ~ScopedCurrent() { log_.SetCurrent(saved_); }
  ScopedCurrent(const ScopedCurrent&) = delete;
  ScopedCurrent& operator=(const ScopedCurrent&) = delete;

 private:
  TraceLog& log_;
  SpanId saved_;
};

}  // namespace legion::obs
