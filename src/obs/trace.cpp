#include "obs/trace.h"

#include "obs/json.h"

namespace legion::obs {

SpanId TraceLog::BeginSpan(SimTime ts, std::string name, const char* category,
                           SpanId parent, TraceArgs args) {
  if (!enabled()) return kNoSpan;
  const SpanId span = next_span_++;
  open_.emplace(span, std::make_pair(name, category));
  events_.push_back(TraceEvent{TraceEvent::Phase::kBegin, ts, span, parent,
                               std::move(name), category, std::move(args)});
  return span;
}

void TraceLog::EndSpan(SimTime ts, SpanId span, TraceArgs args) {
  if (!enabled() || span == kNoSpan) return;
  std::string name;
  const char* category = "";
  if (auto it = open_.find(span); it != open_.end()) {
    name = std::move(it->second.first);
    category = it->second.second;
    open_.erase(it);
  }
  events_.push_back(TraceEvent{TraceEvent::Phase::kEnd, ts, span, kNoSpan,
                               std::move(name), category, std::move(args)});
}

void TraceLog::Instant(SimTime ts, std::string name, const char* category,
                       SpanId parent, TraceArgs args) {
  if (!enabled()) return;
  events_.push_back(TraceEvent{TraceEvent::Phase::kInstant, ts, kNoSpan,
                               parent, std::move(name), category,
                               std::move(args)});
}

void TraceLog::Clear() {
  events_.clear();
  events_.shrink_to_fit();
  open_.clear();
  next_span_ = 1;
  current_ = kNoSpan;
}

namespace {

std::string HexId(SpanId id) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

void AppendArgs(std::string& out, const TraceEvent& event,
                bool include_parent) {
  out += "\"args\":{";
  bool first = true;
  if (include_parent && event.parent != kNoSpan) {
    out += "\"parent\":" + JsonString(HexId(event.parent));
    first = false;
  }
  for (const TraceArg& arg : event.args) {
    if (!first) out += ',';
    first = false;
    out += JsonString(arg.key) + ":" + JsonString(arg.value);
  }
  out += '}';
}

}  // namespace

std::string TraceLog::ToChromeJson() const {
  std::string out = "{\"traceEvents\":[\n";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const TraceEvent& event = events_[i];
    if (i != 0) out += ",\n";
    out += "{\"name\":" + JsonString(event.name) +
           ",\"cat\":" + JsonString(event.category);
    switch (event.phase) {
      case TraceEvent::Phase::kBegin:
        out += ",\"ph\":\"b\",\"id\":" + JsonString(HexId(event.span));
        break;
      case TraceEvent::Phase::kEnd:
        out += ",\"ph\":\"e\",\"id\":" + JsonString(HexId(event.span));
        break;
      case TraceEvent::Phase::kInstant:
        // Instants inside a span render as async-instants on that span's
        // track; free-floating ones as plain thread instants.
        if (event.parent != kNoSpan) {
          out += ",\"ph\":\"n\",\"id\":" + JsonString(HexId(event.parent));
        } else {
          out += ",\"ph\":\"i\",\"s\":\"t\"";
        }
        break;
    }
    out += ",\"pid\":1,\"tid\":1,\"ts\":" +
           JsonNumber(static_cast<std::int64_t>(event.ts.micros())) + ",";
    AppendArgs(out, event, /*include_parent=*/true);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

std::string TraceLog::ToJsonl() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    const char* phase = event.phase == TraceEvent::Phase::kBegin ? "B"
                        : event.phase == TraceEvent::Phase::kEnd ? "E"
                                                                 : "I";
    out += "{\"ph\":\"";
    out += phase;
    out += "\",\"ts\":" +
           JsonNumber(static_cast<std::int64_t>(event.ts.micros()));
    if (event.span != kNoSpan) out += ",\"span\":" + JsonNumber(event.span);
    if (event.parent != kNoSpan) {
      out += ",\"parent\":" + JsonNumber(event.parent);
    }
    out += ",\"name\":" + JsonString(event.name) +
           ",\"cat\":" + JsonString(event.category) + ",";
    AppendArgs(out, event, /*include_parent=*/false);
    out += "}\n";
  }
  return out;
}

}  // namespace legion::obs
