// The decision audit log: *why* the control plane did what it did.
//
// Traces (obs/trace.h) record that an RPC happened; metrics record how
// many.  Neither answers the production question "why did mapping 3 land
// on host H / fail?".  The audit log captures decision records at the
// choice points: schedulers log candidate counts, filter reasons
// (suspect-skip, staleness refresh, index fallback) and chosen-host
// rationale; the Enactor logs every reservation-slot lifecycle
// transition (requested -> batched/parked -> retried / breaker-fast-fail
// -> granted / failed / cancelled) keyed by a per-negotiation id, so the
// full placement story of one mapping is reconstructable afterwards --
// by ExplainMapping() here, or by scripts/explain.py over the JSONL
// export.
//
// Cost model: off by default, like tracing.  Every recording site guards
// with enabled(), so a disabled log records nothing and allocates
// nothing.  Record ordering is the deterministic execution order and
// timestamps are sim-time, so same-seed runs export byte-identical
// JSONL.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/sim_time.h"
#include "obs/trace.h"  // TraceArg/TraceArgs: the key/value vocabulary

namespace legion::obs {

struct AuditRecord {
  std::uint64_t seq = 0;  // 1-based, minted in record order
  SimTime ts;
  const char* kind = "";  // static string, e.g. "reserve_granted"
  TraceArgs fields;

  // One JSON object, keys in a fixed order (seq, t, kind, fields...).
  std::string ToJson() const;
};

class DecisionLog {
 public:
  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }
  void Disable() { enabled_ = false; }

  // Appends one record.  `kind` must be a static string.  No-op when
  // disabled; call sites that build fields should guard with enabled()
  // to skip the allocations too.
  void Record(SimTime ts, const char* kind, TraceArgs fields);

  const std::vector<AuditRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  void Clear();

  // One JSON object per line, in record order.
  std::string ToJsonl() const;

  // Reconstructs the placement story of slot `index` in negotiation
  // `negotiation` (the id ScheduleFeedback reports): the scheduler
  // decisions that aimed or re-aimed it (candidate counts, suspect
  // skips, rationale), then every lifecycle transition in order, then a
  // final-status line.  `index` < 0 explains every slot of the
  // negotiation.  Deterministic text; scripts/explain.py produces the
  // same report from the JSONL export.
  std::string ExplainMapping(std::uint64_t negotiation,
                             std::int64_t index = -1) const;

 private:
  bool enabled_ = false;
  std::uint64_t next_seq_ = 1;
  std::vector<AuditRecord> records_;
};

// Field lookup helper shared by ExplainMapping and tests.
const std::string* AuditField(const AuditRecord& record,
                              std::string_view key);

}  // namespace legion::obs
