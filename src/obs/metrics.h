// The metrics registry: labeled counters, gauges, and fixed-bucket
// histograms, cheap enough to stay on in the simulation hot path.
//
// Usage pattern: a component resolves its cells once (name + labels ->
// stable pointer) and the hot path touches only the cell -- one relaxed
// atomic op per update, no lookups, no locks.  Registration and
// Snapshot() take a mutex; updates never do.  Cells are atomic so the
// Collection's multi-threaded query path can report through the same
// registry as the single-threaded kernel.
//
// Snapshot() serializes the whole registry to JSON with keys sorted, so
// snapshots of equal state are byte-identical.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace legion::obs {

// Label set for one metric cell, e.g. {{"component", "enactor"}}.
// Order does not matter; labels are canonicalized (sorted by key) when
// the cell is resolved.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace detail {
// Lock-free add for atomic<double> (fetch_add on floating atomics is
// C++20; a CAS loop keeps us portable across standard libraries).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Monotonic event count.
class Counter {
 public:
  void Add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  void Add(double delta) { detail::AtomicAdd(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds;
// an implicit +inf bucket catches the rest.  Bucket layout is fixed at
// registration so Observe() is a short linear scan plus two atomic adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the last index is the +inf bucket.
  std::uint64_t bucket_count(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  void Reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<double> sum_{0.0};
  std::atomic<std::uint64_t> count_{0};
};

// Exponential latency buckets in microseconds: 100us .. 1000s.
const std::vector<double>& LatencyBucketsUs();

// A point-in-time copy of every metric, for programmatic inspection.
struct HistogramValue {
  std::vector<double> bounds;        // upper bounds, +inf implicit
  std::vector<std::uint64_t> buckets;  // bounds.size() + 1 entries
  std::uint64_t count = 0;
  double sum = 0.0;
};
struct MetricsSnapshot {
  // Keys are the canonical "name{k=v,...}" cell identifiers, sorted.
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramValue> histograms;

  std::string ToJson() const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Resolve-or-create.  The returned pointer is stable for the registry's
  // lifetime; equal (name, labels) -- in any label order -- return the
  // same cell.  A name registered as one kind must not be re-requested as
  // another (asserts in debug builds, returns a detached cell otherwise).
  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  Histogram* GetHistogram(std::string_view name, const Labels& labels,
                          std::vector<double> bounds);
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> bounds) {
    return GetHistogram(name, {}, std::move(bounds));
  }

  MetricsSnapshot Snapshot() const;
  std::string SnapshotJson() const { return Snapshot().ToJson(); }

  // Zeroes every registered cell (cells stay registered and pointers
  // stay valid).
  void Reset();

  // Canonical cell identifier: name{k1=v1,k2=v2} with keys sorted.
  static std::string CellKey(std::string_view name, const Labels& labels);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace legion::obs
