// Metacomputer topology builder.
//
// Assembles the simulated wide-area system the paper assumes: multiple
// administrative domains, each with a mix of Unix workstations, SMPs, and
// batch-queue-fronted machines plus vaults, all registered with a
// Collection and reachable through an Enactor.  Every experiment and
// example builds its world through this module so topologies are
// reproducible from a seed.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/collection.h"
#include "core/collection_federation.h"
#include "core/dcd.h"
#include "core/enactor.h"
#include "core/monitor.h"
#include "objects/class_object.h"
#include "resources/batch_queue_host.h"
#include "resources/host_object.h"
#include "resources/vault_object.h"

namespace legion {

struct MetacomputerConfig {
  std::size_t domains = 4;
  std::size_t hosts_per_domain = 8;
  std::size_t vaults_per_domain = 2;
  // Host-kind mix (fractions of hosts_per_domain, drawn per host).
  double smp_fraction = 0.2;
  double batch_fraction = 0.0;       // FIFO/Condor/LoadLeveler batch hosts
  double maui_fraction = 0.0;        // batch hosts with native reservations
  bool heterogeneous = true;         // mixed architectures and OSes
  std::uint64_t seed = 42;
  Duration reassess_period = Duration::Seconds(10);
  LoadModelParams load;
  // Give each host an individual long-run load mean drawn uniformly from
  // [0.05, 0.95] (structurally busy vs idle machines); the forecaster
  // experiments need this signal.
  bool randomize_load_mean = false;
  // Start hosts' periodic reassessment (drives pushes + triggers).
  bool start_reassessment = false;
  // Federated Collection topology (DESIGN.md §10): one sub-Collection
  // per domain that hosts join locally, plus a root aggregating via
  // periodic delta pushes.  collection() then returns the root.
  bool federated = false;
  Duration delta_push_period = Duration::Seconds(5);
  // Reservation batching (DESIGN.md §11): the Enactor coalesces
  // same-host reservation requests into one RPC of up to
  // reservation_batch_cap slots (1 = legacy per-mapping RPCs) and keeps
  // at most max_outstanding_batches in flight (0 = unlimited).
  std::size_t reservation_batch_cap = 64;
  std::size_t max_outstanding_batches = 32;
};

// The architecture/OS pairs a heterogeneous metacomputer mixes.
struct Platform {
  const char* arch;
  const char* os_name;
  const char* os_version;
};
const std::vector<Platform>& KnownPlatforms();

class Metacomputer {
 public:
  Metacomputer(SimKernel* kernel, MetacomputerConfig config);

  SimKernel* kernel() const { return kernel_; }
  const MetacomputerConfig& config() const { return config_; }

  // The Collection queries should address: the flat Collection, or the
  // federation root when config.federated is set.
  CollectionObject* collection() const { return collection_; }
  // The federation topology, or nullptr when running flat.
  CollectionFederation* federation() const { return federation_.get(); }
  EnactorObject* enactor() const { return enactor_; }
  MonitorObject* monitor() const { return monitor_; }

  const std::vector<HostObject*>& hosts() const { return hosts_; }
  const std::vector<VaultObject*>& vaults() const { return vaults_; }

  HostObject* FindHost(const Loid& loid) const;
  VaultObject* FindVault(const Loid& loid) const;

  // Creates a class whose implementations cover every platform in the
  // topology (so every host matches).
  ClassObject* MakeUniversalClass(const std::string& name,
                                  std::size_t memory_mb = 32,
                                  double cpu_fraction = 1.0);
  // Creates a class restricted to the given platforms.
  ClassObject* MakeClass(const std::string& name,
                         std::vector<Implementation> implementations,
                         std::size_t memory_mb = 32,
                         double cpu_fraction = 1.0);

  // Forces every host to reassess + push, then runs the kernel long
  // enough for the pushes to land in the Collection.
  void PopulateCollection();

  // Runs the kernel for the given simulated span.
  void Settle(Duration d) { kernel_->RunFor(d); }

  // Resets the kernel's and the enactor's stats views together, so
  // measurement windows (benchmarks, steady-state experiments) start
  // from a consistent zero instead of each caller remembering which
  // components to reset.
  void ResetAllStats();

 private:
  SimKernel* kernel_;
  MetacomputerConfig config_;
  Rng rng_;
  std::unique_ptr<CollectionFederation> federation_;
  CollectionObject* collection_ = nullptr;
  EnactorObject* enactor_ = nullptr;
  MonitorObject* monitor_ = nullptr;
  std::vector<HostObject*> hosts_;
  std::vector<VaultObject*> vaults_;
  std::uint64_t next_class_serial_ = 100;
};

}  // namespace legion
