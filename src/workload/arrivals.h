// Arrival processes for contention experiments.
#pragma once

#include <vector>

#include "base/rng.h"
#include "base/sim_time.h"

namespace legion {

// Poisson arrivals at `rate_per_second` over [start, start + horizon).
inline std::vector<SimTime> PoissonArrivals(Rng& rng, double rate_per_second,
                                            SimTime start, Duration horizon) {
  std::vector<SimTime> arrivals;
  if (rate_per_second <= 0.0) return arrivals;
  SimTime t = start;
  const SimTime end = start + horizon;
  while (true) {
    t = t + Duration::Seconds(rng.Exponential(1.0 / rate_per_second));
    if (t >= end) break;
    arrivals.push_back(t);
  }
  return arrivals;
}

}  // namespace legion
