#include "workload/executor.h"

#include <algorithm>

#include "resources/host_object.h"

namespace legion {

std::vector<Loid> HostsOfMappings(const std::vector<ObjectMapping>& mappings) {
  std::vector<Loid> hosts;
  hosts.reserve(mappings.size());
  for (const ObjectMapping& mapping : mappings) hosts.push_back(mapping.host);
  return hosts;
}

MakespanBreakdown EstimateMakespan(SimKernel& kernel,
                                   const ApplicationSpec& app,
                                   const std::vector<Loid>& instance_hosts) {
  MakespanBreakdown breakdown;
  if (instance_hosts.size() != app.instances || app.instances == 0) {
    return breakdown;
  }

  // Per-instance effective compute rate and cost.
  std::vector<double> rate(app.instances, 1.0);
  for (std::size_t i = 0; i < app.instances; ++i) {
    auto* host =
        dynamic_cast<HostObject*>(kernel.FindActor(instance_hosts[i]));
    if (host == nullptr) continue;
    rate[i] = std::max(host->EffectiveSpeedPerObject(), 1e-6);
    breakdown.max_host_load = std::max(breakdown.max_host_load,
                                       host->CurrentLoad());
    const double seconds =
        app.work[i] / rate[i] * static_cast<double>(app.iterations);
    breakdown.dollars += host->spec().cost_per_cpu_second * seconds;
  }

  // Per-iteration compute phase per instance.
  std::vector<double> compute_s(app.instances);
  for (std::size_t i = 0; i < app.instances; ++i) {
    compute_s[i] = app.work[i] / rate[i];
  }

  // Per-iteration communication phase per instance: its incident halo
  // transfers serialize through the node's network interface, so the
  // phase is the *sum* of the expected edge latencies (co-located
  // neighbours cost nothing).
  std::vector<double> comm_s(app.instances, 0.0);
  for (const CommEdge& edge : app.edges) {
    ++breakdown.total_edges;
    const Loid& from = instance_hosts[edge.from];
    const Loid& to = instance_hosts[edge.to];
    if (from == to) continue;  // same host: shared memory
    // Healthy-path estimate: this models hours of iterations, over which
    // any partition active at submit time will have healed.
    const Duration latency =
        kernel.network().HealthyPathLatency(from, to, edge.bytes);
    const double seconds = latency.seconds();
    comm_s[edge.from] += seconds;
    comm_s[edge.to] += seconds;
    auto domain_from = kernel.network().DomainOf(from);
    auto domain_to = kernel.network().DomainOf(to);
    if (domain_from.has_value() && domain_to.has_value() &&
        *domain_from != *domain_to) {
      ++breakdown.inter_domain_edges;
    }
  }
  // BSP barrier: the iteration lasts as long as its slowest instance.
  double iteration_s = 0.0;
  double max_compute = 0.0;
  double max_comm = 0.0;
  for (std::size_t i = 0; i < app.instances; ++i) {
    iteration_s = std::max(iteration_s, compute_s[i] + comm_s[i]);
    max_compute = std::max(max_compute, compute_s[i]);
    max_comm = std::max(max_comm, comm_s[i]);
  }
  const double iterations = static_cast<double>(app.iterations);
  breakdown.makespan = Duration::Seconds(iteration_s * iterations);
  breakdown.compute_time = Duration::Seconds(max_compute * iterations);
  breakdown.comm_time = Duration::Seconds(max_comm * iterations);
  return breakdown;
}

}  // namespace legion
