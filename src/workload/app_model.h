// Application models.
//
// The paper motivates its specialized schedulers with "structured
// multi-object applications.  Examples of these applications include
// MPI-based or PVM-based simulations, parameter space studies, and other
// modeling applications.  Applications in these domains quite often
// exhibit predictable communication patterns" (section 4.3).  These
// synthetic models expose exactly that structure: per-instance work, a
// communication graph with per-iteration edge volumes, and an iteration
// count -- everything a scheduler or the makespan estimator needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.h"
#include "base/sim_time.h"

namespace legion {

// One directed communication edge: instance `from` sends `bytes` to
// instance `to` every iteration.
struct CommEdge {
  std::size_t from = 0;
  std::size_t to = 0;
  std::size_t bytes = 0;
};

struct ApplicationSpec {
  std::string name;
  std::size_t instances = 1;
  // Work per instance per iteration, in MIPS-seconds (millions of
  // instructions); one entry per instance.
  std::vector<double> work;
  std::vector<CommEdge> edges;
  std::size_t iterations = 10;
  std::size_t memory_mb_per_instance = 32;
  double cpu_fraction_per_instance = 1.0;

  double total_work() const {
    double sum = 0.0;
    for (double w : work) sum += w;
    return sum * static_cast<double>(iterations);
  }
};

// A bag of independent tasks (no communication); work drawn from a heavy
// tail to exercise load balancing.
ApplicationSpec MakeBagOfTasks(std::size_t tasks, double mean_work_mips_s,
                               Rng& rng);

// A parameter-space study: n identical independent runs.
ApplicationSpec MakeParameterStudy(std::size_t points,
                                   double work_mips_s_per_point);

// A 2-D nearest-neighbour stencil (the MPI ocean-simulation shape):
// rows x cols instances, 4-neighbour halo exchange each iteration.
ApplicationSpec MakeStencil2D(std::size_t rows, std::size_t cols,
                              double work_mips_s_per_cell,
                              std::size_t halo_bytes, std::size_t iterations);

// A master/worker pipeline: instance 0 scatters to and gathers from all
// workers each iteration.
ApplicationSpec MakeMasterWorker(std::size_t workers,
                                 double work_mips_s_per_worker,
                                 std::size_t message_bytes,
                                 std::size_t iterations);

}  // namespace legion
