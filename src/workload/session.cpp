#include "workload/session.h"

#include <algorithm>

namespace legion {

WorkloadSession::WorkloadSession(Metacomputer* metacomputer,
                                 SchedulerObject* scheduler)
    : metacomputer_(metacomputer), scheduler_(scheduler) {
  obs::MetricsRegistry& metrics = metacomputer->kernel()->metrics();
  const obs::Labels labels = {{"component", "session"}};
  offered_cell_ = metrics.GetCounter("apps_offered", labels);
  placed_cell_ = metrics.GetCounter("apps_placed", labels);
  completed_cell_ = metrics.GetCounter("apps_completed", labels);
  turnaround_cell_ = metrics.GetHistogram(
      "app_turnaround_s", labels,
      {1.0, 5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1800.0, 3600.0});
}

void WorkloadSession::ScopeToDomain(DomainId domain) {
  CollectionFederation* federation = metacomputer_->federation();
  if (federation != nullptr && federation->sub(domain) != nullptr) {
    // Domain-restricted queries go straight to the owning sub-Collection:
    // intra-domain latency and push-fresh records.
    scheduler_->RouteQueries(federation->sub(domain)->loid(),
                             static_cast<std::int64_t>(domain));
    return;
  }
  // Flat topology: same semantics via the domain_scope filter.
  scheduler_->RouteQueries(metacomputer_->collection()->loid(),
                           static_cast<std::int64_t>(domain));
}

void WorkloadSession::BoundStaleness(Duration max_staleness) {
  scheduler_->SetMaxStaleness(max_staleness);
}

void WorkloadSession::Submit(const ApplicationSpec& app) {
  SimKernel* kernel = metacomputer_->kernel();
  const std::size_t app_index = results_.size();
  SessionAppResult result;
  result.app_id = app_index;
  result.arrived = kernel->Now();
  results_.push_back(result);
  offered_cell_->Add();

  ClassObject* klass = metacomputer_->MakeUniversalClass(
      app.name + "#" + std::to_string(app_index),
      app.memory_mb_per_instance, app.cpu_fraction_per_instance);
  scheduler_->ScheduleAndEnact(
      {{klass->loid(), app.instances}}, RunOptions{2, 2},
      [this, app_index, app](Result<RunOutcome> outcome) {
        if (!outcome.ok() || !outcome->success) return;  // rejected
        placed_cell_->Add();
        results_[app_index].placed = true;
        results_[app_index].placed_at = metacomputer_->kernel()->Now();
        RunApplication(app_index, app, *outcome);
      });
}

void WorkloadSession::RunApplication(std::size_t app_index,
                                     const ApplicationSpec& app,
                                     const RunOutcome& outcome) {
  SimKernel* kernel = metacomputer_->kernel();
  // Execution time under the placement, measured with the hosts in their
  // post-enactment state (this app's own load included).
  const std::vector<Loid> hosts =
      HostsOfMappings(outcome.feedback.reserved_mappings);
  const MakespanBreakdown breakdown = EstimateMakespan(*kernel, app, hosts);
  results_[app_index].dollars = breakdown.dollars;

  // Collect the started instances per host for teardown.
  std::vector<std::pair<Loid, Loid>> instance_hosts;  // (instance, host)
  for (std::size_t i = 0; i < outcome.enacted.instances.size(); ++i) {
    if (outcome.enacted.instances[i].ok()) {
      instance_hosts.emplace_back(outcome.enacted.instances[i].value(),
                                  outcome.feedback.reserved_mappings[i].host);
    }
  }
  kernel->ScheduleAfter(
      breakdown.makespan,
      [this, app_index, instance_hosts] {
        for (const auto& [instance, host_loid] : instance_hosts) {
          if (auto* host = metacomputer_->FindHost(host_loid)) {
            host->FinishObject(instance);
          }
        }
        results_[app_index].finished_at = metacomputer_->kernel()->Now();
        completed_cell_->Add();
        turnaround_cell_->Observe(results_[app_index].turnaround().seconds());
      });
}

void WorkloadSession::SubmitAt(const ApplicationSpec& app,
                               const std::vector<SimTime>& arrivals) {
  SimKernel* kernel = metacomputer_->kernel();
  for (const SimTime& when : arrivals) {
    kernel->ScheduleAt(when, [this, app] { Submit(app); });
  }
}

SessionStats WorkloadSession::Stats(Duration horizon) const {
  SessionStats stats;
  stats.offered = results_.size();
  std::vector<double> turnarounds;
  for (const SessionAppResult& result : results_) {
    if (!result.placed) continue;
    ++stats.placed;
    if (result.finished_at <= result.arrived) continue;  // still running
    ++stats.completed;
    turnarounds.push_back(result.turnaround().seconds());
    stats.mean_wait_s += result.wait().seconds();
    stats.total_dollars += result.dollars;
  }
  if (stats.completed > 0) {
    double sum = 0.0;
    for (double t : turnarounds) sum += t;
    stats.mean_turnaround_s = sum / static_cast<double>(stats.completed);
    stats.mean_wait_s /= static_cast<double>(stats.completed);
    std::sort(turnarounds.begin(), turnarounds.end());
    stats.p95_turnaround_s =
        turnarounds[static_cast<std::size_t>(
            0.95 * static_cast<double>(turnarounds.size() - 1))];
    stats.throughput_per_hour =
        static_cast<double>(stats.completed) /
        std::max(horizon.seconds() / 3600.0, 1e-9);
  }
  return stats;
}

}  // namespace legion
