#include "workload/app_model.h"

namespace legion {

ApplicationSpec MakeBagOfTasks(std::size_t tasks, double mean_work_mips_s,
                               Rng& rng) {
  ApplicationSpec spec;
  spec.name = "bag-of-tasks";
  spec.instances = tasks;
  spec.iterations = 1;
  spec.work.reserve(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    // Bounded Pareto: heavy tail without the occasional absurd outlier.
    double w = rng.Pareto(mean_work_mips_s * 0.4, 1.5);
    if (w > mean_work_mips_s * 20.0) w = mean_work_mips_s * 20.0;
    spec.work.push_back(w);
  }
  return spec;
}

ApplicationSpec MakeParameterStudy(std::size_t points,
                                   double work_mips_s_per_point) {
  ApplicationSpec spec;
  spec.name = "parameter-study";
  spec.instances = points;
  spec.iterations = 1;
  spec.work.assign(points, work_mips_s_per_point);
  return spec;
}

ApplicationSpec MakeStencil2D(std::size_t rows, std::size_t cols,
                              double work_mips_s_per_cell,
                              std::size_t halo_bytes,
                              std::size_t iterations) {
  ApplicationSpec spec;
  spec.name = "stencil2d";
  spec.instances = rows * cols;
  spec.iterations = iterations;
  spec.work.assign(spec.instances, work_mips_s_per_cell);
  auto cell = [cols](std::size_t r, std::size_t c) { return r * cols + c; };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (r + 1 < rows) {
        spec.edges.push_back({cell(r, c), cell(r + 1, c), halo_bytes});
        spec.edges.push_back({cell(r + 1, c), cell(r, c), halo_bytes});
      }
      if (c + 1 < cols) {
        spec.edges.push_back({cell(r, c), cell(r, c + 1), halo_bytes});
        spec.edges.push_back({cell(r, c + 1), cell(r, c), halo_bytes});
      }
    }
  }
  return spec;
}

ApplicationSpec MakeMasterWorker(std::size_t workers,
                                 double work_mips_s_per_worker,
                                 std::size_t message_bytes,
                                 std::size_t iterations) {
  ApplicationSpec spec;
  spec.name = "master-worker";
  spec.instances = workers + 1;
  spec.iterations = iterations;
  spec.work.assign(spec.instances, work_mips_s_per_worker);
  spec.work[0] = work_mips_s_per_worker * 0.1;  // the master mostly waits
  for (std::size_t w = 1; w <= workers; ++w) {
    spec.edges.push_back({0, w, message_bytes});
    spec.edges.push_back({w, 0, message_bytes});
  }
  return spec;
}

}  // namespace legion
