// Analytic BSP makespan estimator.
//
// Given an application model and the hosts its instances landed on, the
// estimator computes the makespan under a bulk-synchronous view: each
// iteration, every instance computes (work / effective host speed, which
// accounts for the host's background load and every co-resident object)
// and then exchanges halos with its neighbours (each off-host transfer
// pays expected network latency incl. the bandwidth-limited term, and an
// instance's transfers serialize through its network interface), and a
// barrier closes the iteration.
//
// This is the measurement stage the paper's evaluation would have used a
// real testbed for: it turns a *placement* into a *completion time*, so
// benchmarks can compare schedulers (experiment E1) by the quantity
// users actually care about.
#pragma once

#include <vector>

#include "core/schedule.h"
#include "sim/kernel.h"
#include "workload/app_model.h"

namespace legion {

struct MakespanBreakdown {
  Duration makespan;
  Duration compute_time;       // dominant compute path
  Duration comm_time;          // dominant communication path
  std::size_t inter_domain_edges = 0;
  std::size_t total_edges = 0;
  double dollars = 0.0;        // cost across all instances
  double max_host_load = 0.0;  // hottest host after placement
};

// Extracts the per-instance host LOIDs from enacted mappings (instance
// order == mapping order == row-major for Stencil2D).
std::vector<Loid> HostsOfMappings(const std::vector<ObjectMapping>& mappings);

// Estimates the makespan of `app` with instance i on instance_hosts[i].
// Host speeds reflect the hosts' *current* running sets, so call this
// after enactment.
MakespanBreakdown EstimateMakespan(SimKernel& kernel,
                                   const ApplicationSpec& app,
                                   const std::vector<Loid>& instance_hosts);

}  // namespace legion
