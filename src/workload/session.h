// Arrival-driven workload sessions.
//
// The paper's goal statement: users want to optimize "application
// throughput, turnaround time, or cost" (§1).  A WorkloadSession drives
// a stream of applications at a metacomputer: each arrival asks a
// Scheduler to place it (the full figure-3 pipeline), runs for a
// duration determined by its placement (work / effective host speed),
// then completes and frees its hosts.  The session records per-app
// turnaround and system-level throughput/utilization -- the measurements
// the paper says it was "in the process of benchmarking".
#pragma once

#include <vector>

#include "core/scheduler.h"
#include "workload/app_model.h"
#include "workload/executor.h"
#include "workload/metacomputer.h"

namespace legion {

struct SessionAppResult {
  std::size_t app_id = 0;
  SimTime arrived;
  bool placed = false;
  SimTime placed_at;
  SimTime finished_at;
  Duration turnaround() const { return finished_at - arrived; }
  Duration wait() const { return placed_at - arrived; }
  double dollars = 0.0;
};

struct SessionStats {
  std::size_t offered = 0;
  std::size_t placed = 0;
  std::size_t completed = 0;
  double mean_turnaround_s = 0.0;
  double mean_wait_s = 0.0;
  double p95_turnaround_s = 0.0;
  double total_dollars = 0.0;
  // Completed work per simulated hour.
  double throughput_per_hour = 0.0;
};

class WorkloadSession {
 public:
  // The session drives `scheduler` (which must already be wired to the
  // metacomputer's Collection/Enactor).
  WorkloadSession(Metacomputer* metacomputer, SchedulerObject* scheduler);

  // Submits one application at the current simulated time.  The class
  // is created on the fly; instances run work[i] MIPS-seconds and then
  // finish (their hosts are told via FinishObject).
  void Submit(const ApplicationSpec& app);

  // Schedules `count` submissions of `app` at the given arrival times.
  void SubmitAt(const ApplicationSpec& app,
                const std::vector<SimTime>& arrivals);

  const std::vector<SessionAppResult>& results() const { return results_; }
  SessionStats Stats(Duration horizon) const;

  // ---- Federated routing (DESIGN.md §10) ------------------------------------
  // Restricts this session's placements to one domain: the scheduler is
  // routed to the owning sub-Collection (fresh, intra-domain) when the
  // metacomputer is federated, or to the flat Collection with a
  // domain_scope filter otherwise.
  void ScopeToDomain(DomainId domain);
  // Bounds the staleness tolerated from the federation root for global
  // placements (no-op on flat topologies, where answers are push-fresh).
  void BoundStaleness(Duration max_staleness);

 private:
  void RunApplication(std::size_t app_index, const ApplicationSpec& app,
                      const RunOutcome& outcome);

  Metacomputer* metacomputer_;
  SchedulerObject* scheduler_;
  std::vector<SessionAppResult> results_;
  std::uint64_t next_class_serial_ = 5000;
  // Registry cells ({component=session}); live mirrors of the counts
  // Stats() derives from results_.
  obs::Counter* offered_cell_ = nullptr;
  obs::Counter* placed_cell_ = nullptr;
  obs::Counter* completed_cell_ = nullptr;
  obs::Histogram* turnaround_cell_ = nullptr;
};

}  // namespace legion
