#include "workload/metacomputer.h"

#include "objects/core_hierarchy.h"

namespace legion {

const std::vector<Platform>& KnownPlatforms() {
  static const std::vector<Platform> platforms = {
      {"x86", "Linux", "2.2"},
      {"sparc", "Solaris", "2.6"},
      {"alpha", "OSF1", "4.0"},
      {"mips", "IRIX", "5.3"},
  };
  return platforms;
}

Metacomputer::Metacomputer(SimKernel* kernel, MetacomputerConfig config)
    : kernel_(kernel), config_(config), rng_(config.seed) {
  // Core services live in domain 0.
  if (config_.federated) {
    FederationOptions federation_options;
    federation_options.push_period = config_.delta_push_period;
    federation_ = std::make_unique<CollectionFederation>(
        kernel_, static_cast<std::uint32_t>(config_.domains),
        federation_options);
    collection_ = federation_->root();
  } else {
    collection_ = kernel_->AddActor<CollectionObject>(
        kernel_->minter().Mint(LoidSpace::kService, 0));
    kernel_->network().RegisterEndpoint(collection_->loid(), 0);
  }
  EnactorOptions enactor_options;
  enactor_options.max_batch_size = config_.reservation_batch_cap;
  enactor_options.max_outstanding_batches = config_.max_outstanding_batches;
  enactor_ = kernel_->AddActor<EnactorObject>(
      kernel_->minter().Mint(LoidSpace::kService, 0), enactor_options);
  monitor_ = kernel_->AddActor<MonitorObject>(
      kernel_->minter().Mint(LoidSpace::kService, 0));

  for (std::size_t d = 0; d < config_.domains; ++d) {
    const auto domain = static_cast<std::uint32_t>(d);
    // The figure-1 core class objects for this naming domain.
    EnsureCoreHierarchy(kernel_, domain);
    // Vaults first so hosts can list them as compatible.
    std::vector<VaultObject*> domain_vaults;
    for (std::size_t v = 0; v < config_.vaults_per_domain; ++v) {
      VaultSpec vault_spec;
      vault_spec.name = "vault-d" + std::to_string(d) + "-" + std::to_string(v);
      vault_spec.domain = domain;
      vault_spec.capacity_mb = 64 * 1024;
      vault_spec.cost_per_mb = rng_.Uniform(0.0, 0.001);
      auto* vault = kernel_->AddActor<VaultObject>(
          kernel_->minter().Mint(LoidSpace::kVault, domain), vault_spec);
      vaults_.push_back(vault);
      domain_vaults.push_back(vault);
    }

    for (std::size_t h = 0; h < config_.hosts_per_domain; ++h) {
      const Platform& platform =
          config_.heterogeneous
              ? KnownPlatforms()[rng_.Index(KnownPlatforms().size())]
              : KnownPlatforms().front();
      HostSpec spec;
      spec.name = "host-d" + std::to_string(d) + "-" + std::to_string(h);
      spec.arch = platform.arch;
      spec.os_name = platform.os_name;
      spec.os_version = platform.os_version;
      spec.speed_mips = rng_.Uniform(50.0, 500.0);
      spec.memory_mb = static_cast<std::size_t>(rng_.UniformInt(256, 2048));
      spec.cost_per_cpu_second = rng_.Uniform(0.0, 0.01);
      spec.domain = domain;
      spec.reassess_period = config_.reassess_period;
      spec.load = config_.load;
      if (config_.randomize_load_mean) {
        spec.load.mean = rng_.Uniform(0.05, 0.95);
        spec.load.initial = spec.load.mean;
      }
      const std::uint64_t secret = rng_.Next();

      HostObject* host = nullptr;
      const double kind_draw = rng_.UniformDouble();
      const Loid host_loid = kernel_->minter().Mint(LoidSpace::kHost, domain);
      if (kind_draw < config_.maui_fraction) {
        spec.cpus = static_cast<std::uint32_t>(rng_.UniformInt(8, 32));
        auto* maui = kernel_->AddActor<MauiHost>(host_loid, spec, secret);
        maui->StartQueuePolling();
        host = maui;
      } else if (kind_draw < config_.maui_fraction + config_.batch_fraction) {
        spec.cpus = static_cast<std::uint32_t>(rng_.UniformInt(4, 16));
        std::unique_ptr<QueueSystem> queue;
        const double flavor = rng_.UniformDouble();
        const double slots = static_cast<double>(spec.cpus);
        if (flavor < 0.34) {
          queue = std::make_unique<FifoQueue>(slots);
        } else if (flavor < 0.67) {
          queue = std::make_unique<CondorLikeQueue>(slots, 0.02, rng_.Next());
        } else {
          queue = std::make_unique<LoadLevelerLikeQueue>(slots);
        }
        auto* batch = kernel_->AddActor<BatchQueueHost>(
            host_loid, spec, secret, std::move(queue));
        batch->StartQueuePolling();
        host = batch;
      } else if (kind_draw <
                 config_.maui_fraction + config_.batch_fraction +
                     config_.smp_fraction) {
        spec.cpus = static_cast<std::uint32_t>(rng_.UniformInt(4, 16));
        host = kernel_->AddActor<SmpHost>(host_loid, spec, secret);
      } else {
        spec.cpus = 1;
        host = kernel_->AddActor<HostObject>(host_loid, spec, secret);
      }

      for (VaultObject* vault : domain_vaults) {
        host->AddCompatibleVault(vault->loid());
      }
      // Federated: hosts join their domain's sub-Collection over cheap
      // intra-domain links; the sub's delta pushes carry the records to
      // the root across the WAN.
      host->AddCollection(config_.federated
                              ? federation_->sub(domain)->loid()
                              : collection_->loid());
      if (config_.start_reassessment) host->StartReassessment();
      hosts_.push_back(host);
    }
  }
}

HostObject* Metacomputer::FindHost(const Loid& loid) const {
  return dynamic_cast<HostObject*>(kernel_->FindActor(loid));
}

VaultObject* Metacomputer::FindVault(const Loid& loid) const {
  return dynamic_cast<VaultObject*>(kernel_->FindActor(loid));
}

ClassObject* Metacomputer::MakeUniversalClass(const std::string& name,
                                              std::size_t memory_mb,
                                              double cpu_fraction) {
  std::vector<Implementation> implementations;
  for (const Platform& platform : KnownPlatforms()) {
    Implementation impl;
    impl.arch = platform.arch;
    impl.os_name = platform.os_name;
    impl.memory_mb = memory_mb;
    implementations.push_back(std::move(impl));
  }
  return MakeClass(name, std::move(implementations), memory_mb, cpu_fraction);
}

ClassObject* Metacomputer::MakeClass(
    const std::string& name, std::vector<Implementation> implementations,
    std::size_t memory_mb, double cpu_fraction) {
  auto* klass = kernel_->AddActor<ClassObject>(
      Loid(LoidSpace::kClass, 0, next_class_serial_++), name,
      std::move(implementations));
  kernel_->network().RegisterEndpoint(klass->loid(), 0);
  klass->SetInstanceRequirements(memory_mb, cpu_fraction);
  // Default-placement knowledge: every (host, first compatible vault).
  std::vector<std::pair<Loid, Loid>> known;
  for (HostObject* host : hosts_) {
    if (host->spec().domain < config_.domains &&
        !vaults_.empty()) {
      // first vault of the host's domain
      const std::size_t base =
          host->spec().domain * config_.vaults_per_domain;
      if (base < vaults_.size()) {
        known.emplace_back(host->loid(), vaults_[base]->loid());
      }
    }
  }
  klass->SetKnownResources(std::move(known));
  return klass;
}

void Metacomputer::PopulateCollection() {
  for (HostObject* host : hosts_) host->ReassessState();
  // Let the join/update pushes propagate (WAN latency is tens of ms);
  // federated topologies additionally need a full delta-push period for
  // the sub-Collections to sync the root.
  Duration settle = Duration::Seconds(2);
  if (config_.federated) {
    settle = settle + config_.delta_push_period + Duration::Seconds(2);
  }
  kernel_->RunFor(settle);
}

void Metacomputer::ResetAllStats() {
  kernel_->ResetStats();
  enactor_->ResetStats();
}

}  // namespace legion
