#include "objects/opr.h"

#include "base/serialize.h"

namespace legion {

std::size_t Opr::SizeBytes() const {
  // Fixed header + attribute payload estimate + body.
  std::size_t attr_bytes = 0;
  for (const auto& [name, value] : attributes) {
    attr_bytes += name.size() + value.ToString().size() + 8;
  }
  return 64 + attr_bytes + body.size();
}

std::vector<std::uint8_t> Opr::Serialize() const {
  ByteWriter w;
  w.WriteLoid(object);
  w.WriteLoid(class_loid);
  w.WriteAttributes(attributes);
  w.WriteU32(static_cast<std::uint32_t>(body.size()));
  for (auto b : body) w.WriteU8(b);
  w.WriteTime(saved_at);
  return w.Take();
}

Result<Opr> Opr::Deserialize(const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  Opr opr;
  auto object = r.ReadLoid();
  if (!object) return object.status();
  opr.object = *object;
  auto class_loid = r.ReadLoid();
  if (!class_loid) return class_loid.status();
  opr.class_loid = *class_loid;
  auto attrs = r.ReadAttributes();
  if (!attrs) return attrs.status();
  opr.attributes = std::move(*attrs);
  auto n = r.ReadU32();
  if (!n) return n.status();
  opr.body.reserve(*n);
  for (std::uint32_t i = 0; i < *n; ++i) {
    auto b = r.ReadU8();
    if (!b) return b.status();
    opr.body.push_back(*b);
  }
  auto t = r.ReadTime();
  if (!t) return t.status();
  opr.saved_at = *t;
  return opr;
}

}  // namespace legion
