// The Reflective Graph and Event (RGE) trigger mechanism.
//
// Paper section 2.1: "Hosts also contain a mechanism for defining event
// triggers -- this allows a Host to, e.g., initiate object migration if its
// load rises above a threshold.  Conceptually, triggers are guarded
// statements which raise events if the guard evaluates to a boolean true."
// Section 3.5: the Monitor registers an *outcall* that is performed when a
// trigger's guard evaluates to true.
//
// EventManager implements the slice of RGE the RMI uses: named triggers
// with guards over an attribute database, and outcall subscriptions keyed
// by event name.  Triggers are edge-sensitive by default (the event fires
// when the guard transitions false->true and re-arms when it goes false
// again), which prevents outcall storms while a condition persists; a
// level-sensitive mode is available for callers that want every
// evaluation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "base/attributes.h"
#include "base/loid.h"
#include "base/sim_time.h"

namespace legion {

// An event raised by a trigger.
struct RgeEvent {
  std::string name;     // event name (== trigger's event_name)
  Loid source;          // object whose trigger fired
  SimTime when;         // simulated time of the firing
  AttributeDatabase payload;  // snapshot of guard-relevant attributes
};

using TriggerId = std::uint64_t;
using OutcallId = std::uint64_t;

struct TriggerSpec {
  std::string event_name;
  // Guard over the owning object's attribute database.
  std::function<bool(const AttributeDatabase&)> guard;
  bool edge_sensitive = true;
  bool one_shot = false;  // remove the trigger after its first firing
};

class EventManager {
 public:
  explicit EventManager(Loid owner) : owner_(owner) {}

  TriggerId RegisterTrigger(TriggerSpec spec);
  bool RemoveTrigger(TriggerId id);
  std::size_t trigger_count() const { return triggers_.size(); }

  // Subscribes `outcall` to every event with the given name.  An empty
  // name subscribes to all events from this manager.
  OutcallId RegisterOutcall(const std::string& event_name,
                            std::function<void(const RgeEvent&)> outcall);
  bool RemoveOutcall(OutcallId id);
  std::size_t outcall_count() const { return outcalls_.size(); }

  // Evaluates every trigger guard against `db`; dispatches outcalls for
  // each trigger that fires.  Returns the number of events raised.
  std::size_t Evaluate(const AttributeDatabase& db, SimTime now);

  std::uint64_t events_raised() const { return events_raised_; }

 private:
  struct Trigger {
    TriggerId id;
    TriggerSpec spec;
    bool was_true = false;  // edge detection state
  };
  struct Outcall {
    OutcallId id;
    std::string event_name;
    std::function<void(const RgeEvent&)> fn;
  };

  void Dispatch(const RgeEvent& event);

  Loid owner_;
  std::vector<Trigger> triggers_;
  std::vector<Outcall> outcalls_;
  TriggerId next_trigger_ = 1;
  OutcallId next_outcall_ = 1;
  std::uint64_t events_raised_ = 0;
};

}  // namespace legion
