// Object Persistent Representations (paper section 2.1).
//
// "To be executed, a Legion object must have a Vault to hold its persistent
// state in an Object Persistent Representation (OPR).  The OPR is used for
// migration and for shutdown/restart purposes."
//
// An OPR snapshot carries the object's identity, its class, its attribute
// database, and an opaque body produced by the object's own serializer.
#pragma once

#include <cstdint>
#include <vector>

#include "base/attributes.h"
#include "base/loid.h"
#include "base/result.h"
#include "base/sim_time.h"

namespace legion {

struct Opr {
  Loid object;
  Loid class_loid;
  AttributeDatabase attributes;
  std::vector<std::uint8_t> body;
  SimTime saved_at;

  // Approximate on-the-wire size; drives vault capacity accounting and
  // migration transfer times.
  std::size_t SizeBytes() const;

  // Wire form, so OPRs can be shipped between Vaults during migration.
  std::vector<std::uint8_t> Serialize() const;
  static Result<Opr> Deserialize(const std::vector<std::uint8_t>& bytes);
};

}  // namespace legion
