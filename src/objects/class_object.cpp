#include "objects/class_object.h"

namespace legion {
namespace {

// Default instance factory: a plain LegionObject.
std::unique_ptr<LegionObject> DefaultFactory(SimKernel* kernel,
                                             const Loid& instance,
                                             const Loid& class_loid) {
  return std::make_unique<LegionObject>(kernel, instance, class_loid);
}

}  // namespace

ClassObject::ClassObject(SimKernel* kernel, Loid loid, std::string name,
                         std::vector<Implementation> implementations,
                         ObjectFactory factory)
    : LegionObject(kernel, loid, Loid(LoidSpace::kClass, loid.domain(), 0)),
      name_(std::move(name)),
      implementations_(std::move(implementations)),
      factory_(std::move(factory)) {
  if (!factory_) {
    Loid class_loid = loid;
    factory_ = [class_loid](SimKernel* k, const Loid& instance) {
      return DefaultFactory(k, instance, class_loid);
    };
  }
  mutable_attributes().Set("class_name", name_);
  AttrList impl_list;
  for (const auto& impl : implementations_) {
    impl_list.push_back(AttrValue(impl.arch + "/" + impl.os_name));
  }
  mutable_attributes().Set("implementations", AttrValue(std::move(impl_list)));
}

void ClassObject::GetImplementations(
    Callback<std::vector<Implementation>> done) {
  done(implementations_);
}

void ClassObject::GetResourceRequirements(Callback<AttributeDatabase> done) {
  AttributeDatabase reqs;
  reqs.Set("memory_mb", static_cast<std::int64_t>(memory_mb_));
  reqs.Set("cpu_fraction", cpu_fraction_);
  AttrList arches;
  for (const auto& impl : implementations_) {
    arches.push_back(AttrValue(impl.arch));
  }
  reqs.Set("arches", AttrValue(std::move(arches)));
  done(std::move(reqs));
}

StartObjectRequest ClassObject::BuildRequest(
    const PlacementSuggestion& suggestion, std::size_t count) {
  StartObjectRequest request;
  request.implementation = suggestion.implementation;
  for (const Implementation& impl : implementations_) {
    if (impl.arch + "/" + impl.os_name == suggestion.implementation) {
      request.binary_bytes = impl.binary_bytes;
      break;
    }
  }
  request.class_loid = loid();
  for (std::size_t i = 0; i < count; ++i) {
    request.instances.push_back(
        kernel()->minter().Mint(LoidSpace::kObject, loid().domain()));
  }
  request.token = suggestion.token;
  request.vault = suggestion.vault;
  request.memory_mb = memory_mb_;
  request.cpu_fraction = cpu_fraction_;
  request.estimated_runtime = estimated_runtime_;
  request.factory = factory_;
  return request;
}

void ClassObject::CreateInstancesOn(const PlacementSuggestion& suggestion,
                                    std::size_t count,
                                    Callback<std::vector<Loid>> done) {
  // The Class is the final authority: a selected implementation must be
  // one of ours, and the placement must pass local policy.
  if (!suggestion.implementation.empty()) {
    bool known = false;
    for (const Implementation& impl : implementations_) {
      if (impl.arch + "/" + impl.os_name == suggestion.implementation) {
        known = true;
        break;
      }
    }
    if (!known) {
      done(Status::Error(ErrorCode::kInvalidArgument,
                         "class has no implementation '" +
                             suggestion.implementation + "'"));
      return;
    }
  }
  if (validator_) {
    Status verdict = validator_(suggestion);
    if (!verdict.ok()) {
      done(verdict);
      return;
    }
  }
  StartObjectRequest request = BuildRequest(suggestion, count);
  CallOn<std::vector<Loid>, HostInterface>(
      kernel(), loid(), suggestion.host, kMediumMessage, kSmallMessage,
      kDefaultRpcTimeout,
      [request](HostInterface& host, Callback<std::vector<Loid>> reply) {
        host.StartObject(request, std::move(reply));
      },
      [this, done = std::move(done)](Result<std::vector<Loid>> result) {
        if (result.ok()) {
          for (const auto& instance : *result) instances_.push_back(instance);
        }
        done(std::move(result));
      });
}

void ClassObject::CreateInstance(std::optional<PlacementSuggestion> suggestion,
                                 Callback<Loid> done) {
  if (suggestion.has_value()) {
    CreateInstancesOn(*suggestion, 1,
                      [done = std::move(done)](Result<std::vector<Loid>> r) {
                        if (!r.ok()) {
                          done(r.status());
                          return;
                        }
                        if (r->empty()) {
                          done(Status::Error(ErrorCode::kInternal,
                                             "host started no instances"));
                          return;
                        }
                        done(r->front());
                      });
    return;
  }
  // Quick default placement: try each known resource once, round-robin.
  if (known_resources_.empty()) {
    done(Status::Error(ErrorCode::kNoResources,
                       "class knows no resources for default placement"));
    return;
  }
  TryDefaultPlacement(known_resources_.size(), std::move(done));
}

void ClassObject::TryDefaultPlacement(std::size_t attempts_left,
                                      Callback<Loid> done) {
  if (attempts_left == 0) {
    done(Status::Error(ErrorCode::kNoResources,
                       "default placement exhausted all known resources"));
    return;
  }
  const auto& [host, vault] = known_resources_[round_robin_];
  round_robin_ = (round_robin_ + 1) % known_resources_.size();

  PlacementSuggestion suggestion;
  suggestion.host = host;
  suggestion.vault = vault;
  // No reservation token: the host applies its default admission policy.
  StartObjectRequest request = BuildRequest(suggestion, 1);
  CallOn<std::vector<Loid>, HostInterface>(
      kernel(), loid(), host, kMediumMessage, kSmallMessage,
      kDefaultRpcTimeout,
      [request](HostInterface& h, Callback<std::vector<Loid>> reply) {
        h.StartObject(request, std::move(reply));
      },
      [this, attempts_left, done = std::move(done)](
          Result<std::vector<Loid>> result) mutable {
        if (result.ok() && !result->empty()) {
          instances_.push_back(result->front());
          done(result->front());
          return;
        }
        TryDefaultPlacement(attempts_left - 1, std::move(done));
      });
}

void ClassObject::SetKnownResources(
    std::vector<std::pair<Loid, Loid>> host_vault_pairs) {
  known_resources_ = std::move(host_vault_pairs);
  round_robin_ = 0;
}

void ClassObject::ForgetInstance(const Loid& instance) {
  std::erase(instances_, instance);
}

}  // namespace legion
