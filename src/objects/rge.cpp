#include "objects/rge.h"

#include <algorithm>

namespace legion {

TriggerId EventManager::RegisterTrigger(TriggerSpec spec) {
  TriggerId id = next_trigger_++;
  triggers_.push_back(Trigger{id, std::move(spec), false});
  return id;
}

bool EventManager::RemoveTrigger(TriggerId id) {
  auto it = std::find_if(triggers_.begin(), triggers_.end(),
                         [id](const Trigger& t) { return t.id == id; });
  if (it == triggers_.end()) return false;
  triggers_.erase(it);
  return true;
}

OutcallId EventManager::RegisterOutcall(
    const std::string& event_name,
    std::function<void(const RgeEvent&)> outcall) {
  OutcallId id = next_outcall_++;
  outcalls_.push_back(Outcall{id, event_name, std::move(outcall)});
  return id;
}

bool EventManager::RemoveOutcall(OutcallId id) {
  auto it = std::find_if(outcalls_.begin(), outcalls_.end(),
                         [id](const Outcall& o) { return o.id == id; });
  if (it == outcalls_.end()) return false;
  outcalls_.erase(it);
  return true;
}

std::size_t EventManager::Evaluate(const AttributeDatabase& db, SimTime now) {
  std::size_t raised = 0;
  // Collect firings first: outcalls may add/remove triggers reentrantly.
  std::vector<RgeEvent> to_dispatch;
  std::vector<TriggerId> to_remove;
  for (auto& trigger : triggers_) {
    const bool guard = trigger.spec.guard && trigger.spec.guard(db);
    const bool fires =
        trigger.spec.edge_sensitive ? (guard && !trigger.was_true) : guard;
    trigger.was_true = guard;
    if (!fires) continue;
    RgeEvent event;
    event.name = trigger.spec.event_name;
    event.source = owner_;
    event.when = now;
    event.payload.MergeFrom(db);
    to_dispatch.push_back(std::move(event));
    if (trigger.spec.one_shot) to_remove.push_back(trigger.id);
    ++raised;
  }
  for (TriggerId id : to_remove) RemoveTrigger(id);
  for (const auto& event : to_dispatch) {
    ++events_raised_;
    Dispatch(event);
  }
  return raised;
}

void EventManager::Dispatch(const RgeEvent& event) {
  // Copy: an outcall may unsubscribe during dispatch.
  auto outcalls = outcalls_;
  for (const auto& outcall : outcalls) {
    if (outcall.event_name.empty() || outcall.event_name == event.name) {
      outcall.fn(event);
    }
  }
}

}  // namespace legion
