// Abstract interfaces between the core objects.
//
// The RMI talks to resources strictly through the interfaces the paper
// publishes: the Host resource-management interface of Table 1, the Vault
// storage interface, and the Class object's create_instance()/
// implementation-query methods.  Keeping them abstract here (a) mirrors the
// paper's "others are free to substitute their own modules" philosophy and
// (b) breaks the dependency cycle between the object model and the
// resource implementations.
//
// All methods are asynchronous: they take a completion callback, and
// callers route invocations through SimKernel::AsyncCall so that every
// interaction pays (simulated) network latency and can time out -- the
// negotiation failures the paper says Legion objects must accommodate.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "base/attributes.h"
#include "base/loid.h"
#include "base/result.h"
#include "base/sim_time.h"
#include "base/token.h"
#include "sim/kernel.h"

namespace legion {

class LegionObject;

// Creates the in-simulation object for a new instance.  Supplied by the
// ClassObject; executed by the Host at StartObject time.
using ObjectFactory = std::function<std::unique_ptr<LegionObject>(
    SimKernel* kernel, const Loid& instance_loid)>;

// ---- Reservation negotiation (paper section 3.1) -------------------------

// What the Enactor asks of a Host when it wants a reservation.
struct ReservationRequest {
  Loid vault;                  // execution vault the host must verify
  SimTime start;               // reservation window start
  Duration duration;           // window length
  Duration confirm_timeout;    // for instantaneous reservations
  ReservationType type;        // share/reuse bits (Table 2)
  Loid requester;              // who is asking (for autonomy policy)
  std::uint32_t requester_domain = 0;
  std::size_t memory_mb = 0;   // capacity the object will need
  double cpu_fraction = 1.0;   // share of one CPU the object will use
};

// ---- Batched reservation negotiation (DESIGN.md §11) ----------------------
//
// The Enactor groups a schedule's mappings by target host and sends one
// ReserveBatch RPC per host instead of one per mapping (the Nimrod/G
// amortization).  Slots keep per-mapping granularity: each carries the
// master-schedule index it reserves for, and each gets its own outcome.

// One mapping's reservation inside a batch.
struct BatchSlotRequest {
  std::size_t index = 0;  // master-schedule index (round-trips unchanged)
  ReservationRequest request;
};

struct ReservationBatchRequest {
  Loid requester;
  // At-most-once admission id: the Enactor reuses the id when it
  // retransmits the identical batch after a lost reply, and the host
  // replays the recorded reply instead of admitting twice.  0 = no dedup.
  std::uint64_t batch_id = 0;
  // Set on every resend of a batch id.  Purely observability: a flagged
  // retransmission that misses the host's replay cache means a lost
  // request (benign) or an evicted reply (possible double-admit), and
  // the host counts it either way.
  bool retransmit = false;
  std::vector<BatchSlotRequest> slots;
};

// Per-slot result.  `token` is meaningful iff `status.ok()`.
struct BatchSlotOutcome {
  std::size_t index = 0;
  Status status = Status::Ok();
  ReservationToken token;
};

struct ReservationBatchReply {
  std::vector<BatchSlotOutcome> outcomes;
};

// ---- Object startup -------------------------------------------------------

struct StartObjectRequest {
  Loid class_loid;
  // LOIDs for the instances to start.  More than one supports "efficient
  // object creation for multiprocessor systems" (paper section 3.1).
  std::vector<Loid> instances;
  // Reservation token; an invalid token means "no reservation" and the
  // host applies its default admission policy.
  ReservationToken token;
  Loid vault;
  std::size_t memory_mb = 0;
  double cpu_fraction = 1.0;
  // Runtime estimate; batch queue systems use it for backfill decisions.
  Duration estimated_runtime = Duration::Minutes(30);
  // Selected implementation as "arch/os"; the host refuses a binary it
  // cannot execute.  Empty = unconstrained.
  std::string implementation;
  // Size of that implementation's binary (for cache transfer costs).
  std::size_t binary_bytes = 1 << 20;
  ObjectFactory factory;
};

// ---- Host Object resource management interface (paper Table 1) -----------

class HostInterface {
 public:
  virtual ~HostInterface() = default;

  // Reservation management.
  virtual void MakeReservation(const ReservationRequest& request,
                               Callback<ReservationToken> done) = 0;
  // Batched admission: slots are evaluated in slot order within one
  // event-loop turn, each against the state its predecessors left
  // behind -- the same decisions the sequential MakeReservation path
  // would make -- and each is either durably admitted or reported
  // failed in its outcome.
  virtual void MakeReservationBatch(const ReservationBatchRequest& request,
                                    Callback<ReservationBatchReply> done) = 0;
  virtual void CheckReservation(const ReservationToken& token,
                                Callback<bool> done) = 0;
  virtual void CancelReservation(const ReservationToken& token,
                                 Callback<bool> done) = 0;

  // Process (object) management.
  virtual void StartObject(const StartObjectRequest& request,
                           Callback<std::vector<Loid>> done) = 0;
  virtual void KillObject(const Loid& object, Callback<bool> done) = 0;
  virtual void DeactivateObject(const Loid& object, Callback<bool> done) = 0;

  // Information reporting.
  virtual void GetCompatibleVaults(Callback<std::vector<Loid>> done) = 0;
  virtual void VaultOk(const Loid& vault, Callback<bool> done) = 0;
};

// ---- Vault Object interface ----------------------------------------------

struct Opr;

class VaultInterface {
 public:
  virtual ~VaultInterface() = default;

  virtual void StoreOpr(const Opr& opr, Callback<bool> done) = 0;
  virtual void FetchOpr(const Loid& object, Callback<Opr> done) = 0;
  virtual void DeleteOpr(const Loid& object, Callback<bool> done) = 0;

  // Compatibility probe used by Host::vault_OK(): can objects built for
  // `arch`, running in `domain`, keep their OPRs here?
  virtual void Probe(std::uint32_t domain, const std::string& arch,
                     Callback<bool> done) = 0;
};

// ---- Class Object interface (paper section 2.1 / 3.4) ---------------------

// One buildable implementation of a class.
struct Implementation {
  std::string arch;       // e.g. "x86", "sparc", "alpha"
  std::string os_name;    // e.g. "Linux", "IRIX", "Solaris"
  std::size_t memory_mb = 32;
  std::size_t binary_bytes = 1 << 20;
};

// A directed placement handed to create_instance(); carries the
// reservation token obtained by the Enactor and, optionally, the
// selected implementation ("arch/os", empty = whatever fits the host).
struct PlacementSuggestion {
  Loid host;
  Loid vault;
  ReservationToken token;
  std::string implementation;
};

class ClassInterface {
 public:
  virtual ~ClassInterface() = default;

  // create_instance(): places one instance.  With a suggestion, the class
  // validates it against local policy and performs directed placement;
  // without, it makes the paper's "quick (and almost certainly
  // non-optimal)" default decision.
  virtual void CreateInstance(std::optional<PlacementSuggestion> suggestion,
                              Callback<Loid> done) = 0;

  // Schedulers "query the class for available implementations" (Fig 7).
  virtual void GetImplementations(Callback<std::vector<Implementation>> done) = 0;

  // Resource requirements the scheduler may ask about (section 3.3).
  virtual void GetResourceRequirements(Callback<AttributeDatabase> done) = 0;
};

// ---- Implementation caches (paper section 2, service objects) ------------

// Served by implementation-cache service objects: makes the binary for
// (class, "arch/os") locally available before a host activates it.
class BinaryProvider {
 public:
  virtual ~BinaryProvider() = default;
  virtual void EnsureBinary(const Loid& class_loid,
                            const std::string& impl_key,
                            std::size_t binary_bytes, Callback<bool> done) = 0;
};

// ---- Collection push interface (paper section 3.2, figure 4) -------------

// The slice of the Collection interface that resources need in order to
// *push* descriptive data: join with initial attributes, update the
// record, and leave.  The full Collection (queries, pull, authentication)
// lives in the core RMI; resources only see this sink.
class CollectionSink {
 public:
  virtual ~CollectionSink() = default;

  virtual void JoinCollection(const Loid& joiner,
                              const AttributeDatabase& attributes,
                              Callback<bool> done) = 0;
  virtual void UpdateCollectionEntry(const Loid& member,
                                     const AttributeDatabase& attributes,
                                     Callback<bool> done) = 0;
  virtual void LeaveCollection(const Loid& leaver, Callback<bool> done) = 0;
};

// ---- Typed remote invocation helper ---------------------------------------

// Routes a method call on a remote interface through the kernel: resolves
// the target LOID at delivery time, downcasts to the expected interface,
// and invokes.  Unknown or wrong-typed targets complete with kUnavailable.
// `op` names the call in traces (static string).
template <typename T, typename Iface>
void CallOn(SimKernel* kernel, const Loid& from, const Loid& to,
            std::size_t request_bytes, std::size_t reply_bytes,
            Duration timeout,
            std::function<void(Iface&, Callback<T>)> method,
            Callback<T> done, const char* op = "rpc") {
  kernel->AsyncCall<T>(
      from, to, request_bytes, reply_bytes, timeout,
      [kernel, to, method = std::move(method)](Callback<T> reply) {
        auto* actor = kernel->FindActor(to);
        auto* iface = dynamic_cast<Iface*>(actor);
        if (iface == nullptr) {
          reply(Status::Error(ErrorCode::kUnavailable,
                              "no such object: " + to.ToString()));
          return;
        }
        method(*iface, std::move(reply));
      },
      std::move(done), op);
}

// Nominal message sizes (bytes) used for bandwidth accounting.
inline constexpr std::size_t kSmallMessage = 256;
inline constexpr std::size_t kMediumMessage = 2048;
inline constexpr std::size_t kLargeMessage = 64 * 1024;

// Marginal wire cost of one slot inside a reservation batch (request and
// reply).  A ReserveBatch RPC is size-costed as one kSmallMessage
// envelope plus these per slot, so NetworkModel charges real transfer
// time for big batches while the per-host amortization stays visible.
inline constexpr std::size_t kBatchSlotMessage = 64;
inline constexpr std::size_t kBatchSlotReplyMessage = 48;

// Default RPC timeout for control-plane calls.
inline constexpr Duration kDefaultRpcTimeout = Duration::Seconds(30);

}  // namespace legion
