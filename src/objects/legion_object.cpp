#include "objects/legion_object.h"

namespace legion {

const char* ToString(ObjectState state) {
  switch (state) {
    case ObjectState::kInactive:
      return "inactive";
    case ObjectState::kActive:
      return "active";
    case ObjectState::kDead:
      return "dead";
  }
  return "unknown";
}

LegionObject::LegionObject(SimKernel* kernel, Loid loid, Loid class_loid)
    : Actor(kernel, loid), class_loid_(class_loid), events_(loid) {}

Status LegionObject::Activate(const Loid& host, const Loid& vault) {
  if (state_ == ObjectState::kDead) {
    return Status::Error(ErrorCode::kUnavailable, "object is dead");
  }
  if (state_ == ObjectState::kActive) {
    return Status::Error(ErrorCode::kAlreadyExists, "object already active");
  }
  host_ = host;
  vault_ = vault;
  state_ = ObjectState::kActive;
  OnActivate();
  return Status::Ok();
}

Status LegionObject::Deactivate() {
  if (state_ != ObjectState::kActive) {
    return Status::Error(ErrorCode::kUnavailable, "object not active");
  }
  OnDeactivate();
  state_ = ObjectState::kInactive;
  host_ = Loid();
  return Status::Ok();
}

void LegionObject::MarkDead() {
  if (state_ == ObjectState::kActive) OnDeactivate();
  state_ = ObjectState::kDead;
  host_ = Loid();
}

Opr LegionObject::SaveState() const {
  Opr opr;
  opr.object = loid();
  opr.class_loid = class_loid_;
  opr.attributes = attributes_;
  ByteWriter writer;
  SerializeBody(writer);
  opr.body = writer.Take();
  opr.saved_at = kernel()->Now();
  return opr;
}

Status LegionObject::RestoreState(const Opr& opr) {
  if (state_ == ObjectState::kActive) {
    return Status::Error(ErrorCode::kAlreadyExists,
                         "cannot restore an active object");
  }
  if (opr.object != loid()) {
    return Status::Error(ErrorCode::kInvalidArgument, "OPR identity mismatch");
  }
  attributes_ = opr.attributes;
  ByteReader reader(opr.body);
  return DeserializeBody(reader);
}

std::size_t LegionObject::EvaluateTriggers() {
  return events_.Evaluate(attributes_, kernel()->Now());
}

}  // namespace legion
