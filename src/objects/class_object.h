// Class objects (paper section 2.1).
//
// "Class objects in Legion serve two functions.  As in other
// object-oriented systems, Classes define the types of their instances.
// In Legion, Classes are also active entities, and act as managers for
// their instances.  Thus, a Class is the final authority in matters
// pertaining to its instances, including object placement."
//
// The Class exports create_instance(), which places an instance on a
// viable host.  An optional placement-suggestion argument (host, vault,
// reservation token) supports externally computed schedules; the Class
// still checks the placement for validity and conformance to local policy
// (section 3.4).  Without the argument, the Class makes a quick,
// almost-certainly-non-optimal default decision (round-robin over the
// resources it knows about).
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "objects/interfaces.h"
#include "objects/legion_object.h"

namespace legion {

class ClassObject : public LegionObject, public ClassInterface {
 public:
  ClassObject(SimKernel* kernel, Loid loid, std::string name,
              std::vector<Implementation> implementations,
              ObjectFactory factory = nullptr);

  const std::string& name() const { return name_; }
  std::string DebugName() const override { return "class " + name_; }

  // ---- ClassInterface ----------------------------------------------------
  void CreateInstance(std::optional<PlacementSuggestion> suggestion,
                      Callback<Loid> done) override;
  void GetImplementations(Callback<std::vector<Implementation>> done) override;
  void GetResourceRequirements(Callback<AttributeDatabase> done) override;

  // Starts `count` instances on one (host, vault) with a single
  // StartObject call -- the batched path Table 1's startObject() provides
  // for "efficient object creation for multiprocessor systems".
  void CreateInstancesOn(const PlacementSuggestion& suggestion,
                         std::size_t count,
                         Callback<std::vector<Loid>> done);

  // ---- Default-placement knowledge ----------------------------------------
  // Resources the class may use when no external schedule is supplied.
  void SetKnownResources(std::vector<std::pair<Loid, Loid>> host_vault_pairs);
  std::size_t known_resource_count() const { return known_resources_.size(); }

  // ---- Local placement policy ---------------------------------------------
  // The Class is the final authority: every directed placement passes this
  // validator before the Class contacts the host.  Default: accept all.
  using PlacementValidator =
      std::function<Status(const PlacementSuggestion& suggestion)>;
  void SetPlacementValidator(PlacementValidator validator) {
    validator_ = std::move(validator);
  }

  // ---- Declared per-instance requirements ---------------------------------
  void SetInstanceRequirements(std::size_t memory_mb, double cpu_fraction) {
    memory_mb_ = memory_mb;
    cpu_fraction_ = cpu_fraction;
  }
  void SetEstimatedRuntime(Duration runtime) { estimated_runtime_ = runtime; }
  // Declares the size of every implementation's binary (drives the
  // transfer cost of cold starts / cache pulls).
  void SetBinaryBytes(std::size_t bytes) {
    for (Implementation& impl : implementations_) impl.binary_bytes = bytes;
  }
  std::size_t instance_memory_mb() const { return memory_mb_; }
  double instance_cpu_fraction() const { return cpu_fraction_; }
  Duration estimated_runtime() const { return estimated_runtime_; }

  // ---- Instance registry ---------------------------------------------------
  const std::vector<Loid>& instances() const { return instances_; }
  // Removes a dead/killed instance from the registry.
  void ForgetInstance(const Loid& instance);

  const ObjectFactory& factory() const { return factory_; }

 private:
  // Quick default placement: round-robin attempts over known resources.
  void TryDefaultPlacement(std::size_t attempts_left, Callback<Loid> done);
  StartObjectRequest BuildRequest(const PlacementSuggestion& suggestion,
                                  std::size_t count);

  std::string name_;
  std::vector<Implementation> implementations_;
  ObjectFactory factory_;
  std::vector<std::pair<Loid, Loid>> known_resources_;
  std::size_t round_robin_ = 0;
  PlacementValidator validator_;
  std::size_t memory_mb_ = 32;
  double cpu_fraction_ = 1.0;
  Duration estimated_runtime_ = Duration::Minutes(30);
  std::vector<Loid> instances_;
};

}  // namespace legion
