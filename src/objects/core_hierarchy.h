// The Legion core object hierarchy (paper figure 1).
//
//                      LegionClass
//                    .      |      .
//             MyObjClass HostClass VaultClass
//                           |    .      |   .
//                        Host1 Host2 Vault1 Vault2
//
// LegionClass is the root metaclass (its own class); HostClass and
// VaultClass are the guardian classes whose instances are the Host and
// Vault objects.  Every other object's class chain terminates at
// LegionClass.  The well-known serials here are what HostObject,
// VaultObject, and the service objects stamp into their class_loid.
#pragma once

#include "objects/class_object.h"

namespace legion {

// Well-known serials within LoidSpace::kClass (per domain).
inline constexpr std::uint64_t kLegionClassSerial = 1;
inline constexpr std::uint64_t kHostClassSerial = 2;
inline constexpr std::uint64_t kVaultClassSerial = 3;
inline constexpr std::uint64_t kCollectionClassSerial = 4;
inline constexpr std::uint64_t kServiceClassSerial = 5;

inline Loid LegionClassLoid(std::uint32_t domain) {
  return Loid(LoidSpace::kClass, domain, kLegionClassSerial);
}
inline Loid HostClassLoid(std::uint32_t domain) {
  return Loid(LoidSpace::kClass, domain, kHostClassSerial);
}
inline Loid VaultClassLoid(std::uint32_t domain) {
  return Loid(LoidSpace::kClass, domain, kVaultClassSerial);
}

// The instantiated core hierarchy for one naming domain: actual class
// objects (classes are *active entities* in Legion), wired so that the
// class chain of every core object resolves.
struct CoreHierarchy {
  ClassObject* legion_class = nullptr;
  ClassObject* host_class = nullptr;
  ClassObject* vault_class = nullptr;
};

// Creates (or returns the already-created) core class objects for a
// domain in this kernel.
CoreHierarchy EnsureCoreHierarchy(SimKernel* kernel, std::uint32_t domain);

// Walks object -> class -> class-of-class ... until LegionClass (which
// is its own class) or a dangling link.  Returns the chain including the
// starting class loid.
std::vector<Loid> ClassChainOf(SimKernel* kernel, const Loid& class_loid,
                               std::size_t max_depth = 8);

}  // namespace legion
