#include "objects/core_hierarchy.h"

namespace legion {

CoreHierarchy EnsureCoreHierarchy(SimKernel* kernel, std::uint32_t domain) {
  CoreHierarchy hierarchy;
  auto ensure = [&](std::uint64_t serial, const std::string& name,
                    Loid metaclass) -> ClassObject* {
    const Loid loid(LoidSpace::kClass, domain, serial);
    if (auto* existing = dynamic_cast<ClassObject*>(kernel->FindActor(loid))) {
      return existing;
    }
    auto* created = kernel->AddActor<ClassObject>(
        loid, name, std::vector<Implementation>{});
    kernel->network().RegisterEndpoint(loid, domain);
    (void)metaclass;  // ClassObject derives its metaclass from the loid
    return created;
  };
  // LegionClass is its own class: ClassObject's constructor stamps
  // class_loid = (kClass, domain, 0); for figure-1 fidelity what matters
  // is resolvability, so we create LegionClass at its well-known serial
  // and let the chain walker treat it as the root.
  hierarchy.legion_class =
      ensure(kLegionClassSerial, "LegionClass", LegionClassLoid(domain));
  hierarchy.host_class =
      ensure(kHostClassSerial, "HostClass", LegionClassLoid(domain));
  hierarchy.vault_class =
      ensure(kVaultClassSerial, "VaultClass", LegionClassLoid(domain));
  return hierarchy;
}

std::vector<Loid> ClassChainOf(SimKernel* kernel, const Loid& class_loid,
                               std::size_t max_depth) {
  // ClassObject stamps serial 0 as "metaclass of this domain": it
  // resolves to the domain's LegionClass at every level.
  auto normalize = [](Loid loid) {
    if (loid.space() == LoidSpace::kClass && loid.serial() == 0) {
      return LegionClassLoid(loid.domain());
    }
    return loid;
  };
  std::vector<Loid> chain;
  Loid current = normalize(class_loid);
  for (std::size_t depth = 0; depth < max_depth && current.valid(); ++depth) {
    chain.push_back(current);
    // LegionClass roots the hierarchy.
    if (current.space() == LoidSpace::kClass &&
        current.serial() == kLegionClassSerial) {
      break;
    }
    auto* object = dynamic_cast<LegionObject*>(kernel->FindActor(current));
    if (object == nullptr) break;
    const Loid next = normalize(object->class_loid());
    if (next == current) break;
    current = next;
  }
  return chain;
}

}  // namespace legion
