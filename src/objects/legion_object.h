// The Legion object base: every entity in the system -- classes, hosts,
// vaults, services, and user objects -- is a LegionObject.
//
// From the paper (section 2.1): all Legion objects automatically support
// shutdown and restart (via the OPR), carry an extensible attribute
// database, and participate in the RGE event mechanism.  Any active object
// can be migrated by shutting it down, moving the passive state to a new
// Vault if necessary, and activating the object on another host.
#pragma once

#include <string>

#include "base/attributes.h"
#include "base/loid.h"
#include "base/result.h"
#include "base/serialize.h"
#include "objects/opr.h"
#include "objects/rge.h"
#include "sim/kernel.h"

namespace legion {

enum class ObjectState {
  kInactive,  // passive; state lives in an OPR in some vault
  kActive,    // running on a host
  kDead,      // killed; cannot be reactivated
};

const char* ToString(ObjectState state);

class LegionObject : public Actor {
 public:
  LegionObject(SimKernel* kernel, Loid loid, Loid class_loid);

  Loid class_loid() const { return class_loid_; }
  ObjectState state() const { return state_; }
  bool active() const { return state_ == ObjectState::kActive; }

  // Current placement; valid only while active (host) or inactive with a
  // stored OPR (vault).
  const Loid& host() const { return host_; }
  const Loid& vault() const { return vault_; }

  const AttributeDatabase& attributes() const { return attributes_; }
  AttributeDatabase& mutable_attributes() { return attributes_; }

  EventManager& events() { return events_; }

  // ---- Lifecycle --------------------------------------------------------
  // Transitions to active on (host, vault).  Calls OnActivate().
  Status Activate(const Loid& host, const Loid& vault);
  // Transitions to inactive.  Calls OnDeactivate().  The caller (Host /
  // migration engine) is responsible for storing the OPR.
  Status Deactivate();
  // Terminal: the object cannot run again.
  void MarkDead();

  // ---- Persistence ------------------------------------------------------
  // Captures the full passive state.  Subclasses extend via SerializeBody.
  Opr SaveState() const;
  // Restores from an OPR (attributes + body).  Object must be inactive.
  Status RestoreState(const Opr& opr);

  // Evaluates this object's triggers against its own attributes.
  std::size_t EvaluateTriggers();

 protected:
  // Subclass extension points.
  virtual void OnActivate() {}
  virtual void OnDeactivate() {}
  virtual void SerializeBody(ByteWriter& writer) const { (void)writer; }
  virtual Status DeserializeBody(ByteReader& reader) {
    (void)reader;
    return Status::Ok();
  }

 private:
  Loid class_loid_;
  ObjectState state_ = ObjectState::kInactive;
  Loid host_;
  Loid vault_;
  AttributeDatabase attributes_;
  EventManager events_;
};

}  // namespace legion
