// The query planner: turns a compiled query's AST into an *index plan*
// that a Collection can answer from its attribute indexes instead of a
// full scan.
//
// A predicate is *sargable* (search-argument-able) when it constrains a
// single attribute against a literal in a way an index can answer:
//
//   * equality:      $attr == <string|bool|number literal>
//   * numeric range: $attr < n, <= n, > n, >= n   (n a number literal)
//   * presence:      defined($attr)
//
// Flipped comparisons (`0.5 > $host_load`) are normalized.  `!=`,
// match(), contains(), injected calls, and `not (...)` are never
// sargable -- records matching them cannot be enumerated from an index
// without scanning.
//
// Plans compose through the boolean structure of the query:
//
//   * and: candidates of ANY sargable conjunct form a superset of the
//     matches, so the evaluator may pick the cheapest child.
//   * or:  a plan exists only when EVERY branch is sargable; the
//     candidate set is the union of the branches.
//
// The contract is one-sided: a plan's candidate set must contain every
// record that matches the full query (no false negatives); it may
// contain extras.  The Collection re-evaluates the complete query over
// the candidates (the residual pass) unless the index evaluation reports
// the set as exact.  Whole-query fallback to a scan -- when nothing is
// sargable -- is byte-identical to the plan path; the planner-equivalence
// property test enforces this.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "base/attributes.h"
#include "query/ast.h"

namespace legion::query {

enum class PredicateOp { kEq, kLt, kLe, kGt, kGe, kDefined };

const char* ToString(PredicateOp op);

// One index-answerable predicate: `$attr op literal` (literal unused for
// kDefined).
struct SargablePredicate {
  std::string attr;
  PredicateOp op = PredicateOp::kEq;
  AttrValue literal;

  std::string ToString() const;
};

// A tree of sargable predicates mirroring the query's and/or structure.
struct IndexPlan {
  enum class Kind { kPredicate, kAnd, kOr };

  Kind kind = Kind::kPredicate;
  SargablePredicate pred;          // kPredicate only
  std::vector<IndexPlan> children; // kAnd / kOr only
  // True when this plan's candidate set equals the match set of the
  // *entire* subexpression it was derived from, so the residual pass can
  // be skipped.  False whenever anything was approximated: a dropped
  // non-sargable conjunct, an `and` (whose evaluation prunes through one
  // child only), or numeric keys (the ordered index compares as double;
  // equality on huge int64s and range boundaries are widened to stay
  // superset-safe).
  bool exact = false;

  std::string ToString() const;
};

// Walks the AST and extracts the index plan, or nullptr when nothing in
// the query is sargable (the Collection then falls back to a full scan).
// The plan is immutable and shared by every copy of the CompiledQuery.
std::shared_ptr<const IndexPlan> PlanQuery(const Expr& root);

}  // namespace legion::query
