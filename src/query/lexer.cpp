#include "query/lexer.h"

#include <cctype>

namespace legion::query {

const char* ToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kEnd: return "<end>";
    case TokenKind::kAttr: return "attribute";
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kInt: return "integer";
    case TokenKind::kDouble: return "number";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kComma: return ",";
    case TokenKind::kEq: return "==";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
  }
  return "?";
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentBody(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

Status LexError(std::size_t offset, const std::string& what) {
  return Status::Error(ErrorCode::kInvalidArgument,
                       "query lex error at offset " + std::to_string(offset) +
                           ": " + what);
}

}  // namespace

Result<std::vector<Token>> Lex(const std::string& text) {
  std::vector<Token> tokens;
  std::size_t i = 0;
  const std::size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.offset = i;
    if (c == '(') {
      token.kind = TokenKind::kLParen;
      ++i;
    } else if (c == ')') {
      token.kind = TokenKind::kRParen;
      ++i;
    } else if (c == ',') {
      token.kind = TokenKind::kComma;
      ++i;
    } else if (c == '=') {
      // Both '==' and the lone '=' mean equality.
      token.kind = TokenKind::kEq;
      i += (i + 1 < n && text[i + 1] == '=') ? 2 : 1;
    } else if (c == '!') {
      if (i + 1 >= n || text[i + 1] != '=') {
        return LexError(i, "expected '=' after '!'");
      }
      token.kind = TokenKind::kNe;
      i += 2;
    } else if (c == '<') {
      if (i + 1 < n && text[i + 1] == '=') {
        token.kind = TokenKind::kLe;
        i += 2;
      } else {
        token.kind = TokenKind::kLt;
        ++i;
      }
    } else if (c == '>') {
      if (i + 1 < n && text[i + 1] == '=') {
        token.kind = TokenKind::kGe;
        i += 2;
      } else {
        token.kind = TokenKind::kGt;
        ++i;
      }
    } else if (c == '$') {
      ++i;
      if (i >= n || !IsIdentStart(text[i])) {
        return LexError(token.offset, "'$' must begin an attribute name");
      }
      std::size_t start = i;
      while (i < n && IsIdentBody(text[i])) ++i;
      token.kind = TokenKind::kAttr;
      token.text = text.substr(start, i - start);
    } else if (c == '"') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n) {
          const char esc = text[i + 1];
          switch (esc) {
            case 'n': value.push_back('\n'); break;
            case 't': value.push_back('\t'); break;
            case '\\': value.push_back('\\'); break;
            case '"': value.push_back('"'); break;
            default:
              // Unknown escapes pass through verbatim so regex escapes
              // like "\." survive ("5\..*" in the paper's example).
              value.push_back('\\');
              value.push_back(esc);
          }
          i += 2;
          continue;
        }
        if (text[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        value.push_back(text[i]);
        ++i;
      }
      if (!closed) return LexError(token.offset, "unterminated string");
      token.kind = TokenKind::kString;
      token.text = std::move(value);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      std::size_t start = i;
      if (c == '-') ++i;
      bool is_double = false;
      while (i < n && (std::isdigit(static_cast<unsigned char>(text[i])) ||
                       text[i] == '.' || text[i] == 'e' || text[i] == 'E' ||
                       ((text[i] == '+' || text[i] == '-') && i > start &&
                        (text[i - 1] == 'e' || text[i - 1] == 'E')))) {
        if (text[i] == '.' || text[i] == 'e' || text[i] == 'E') {
          is_double = true;
        }
        ++i;
      }
      const std::string number = text.substr(start, i - start);
      try {
        if (is_double) {
          token.kind = TokenKind::kDouble;
          token.double_value = std::stod(number);
        } else {
          token.kind = TokenKind::kInt;
          token.int_value = std::stoll(number);
        }
      } catch (...) {
        return LexError(start, "bad numeric literal '" + number + "'");
      }
    } else if (IsIdentStart(c)) {
      std::size_t start = i;
      while (i < n && IsIdentBody(text[i])) ++i;
      token.kind = TokenKind::kIdent;
      token.text = text.substr(start, i - start);
    } else {
      return LexError(i, std::string("unexpected character '") + c + "'");
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace legion::query
