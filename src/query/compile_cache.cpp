#include "query/compile_cache.h"

namespace legion::query {

Result<CompiledQuery> CompileCache::Get(const std::string& text, bool* hit) {
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(text);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      if (hit != nullptr) *hit = true;
      return it->second->second;
    }
  }
  // Compile outside the lock; parsing is pure.
  auto compiled = CompiledQuery::Compile(text);
  if (hit != nullptr) *hit = false;
  if (!compiled) return compiled;

  std::lock_guard lock(mutex_);
  if (entries_.count(text) == 0) {
    lru_.emplace_front(text, *compiled);
    entries_[text] = lru_.begin();
    if (entries_.size() > capacity_) {
      entries_.erase(lru_.back().first);
      lru_.pop_back();
    }
  }
  return *compiled;
}

}  // namespace legion::query
