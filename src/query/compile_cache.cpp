#include "query/compile_cache.h"

namespace legion::query {

Result<CompiledQuery> CompileCache::Get(const std::string& text, bool* hit) {
  {
    std::lock_guard lock(mutex_);
    auto it = entries_.find(text);
    if (it != entries_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      if (hit != nullptr) *hit = true;
      return it->second->second;
    }
  }
  // Compile outside the lock; parsing is pure.
  auto compiled = CompiledQuery::Compile(text);
  if (hit != nullptr) *hit = false;
  if (!compiled) return compiled;

  if (capacity_ == 0) return *compiled;  // caching disabled
  std::lock_guard lock(mutex_);
  if (entries_.count(text) == 0) {
    // Evict the LRU entry *before* inserting: the cache never holds
    // capacity_+1 entries, and a fresh entry can never be chosen as its
    // own victim.
    if (entries_.size() >= capacity_) {
      entries_.erase(lru_.back().first);
      lru_.pop_back();
    }
    lru_.emplace_front(text, *compiled);
    entries_[text] = lru_.begin();
  }
  return *compiled;
}

}  // namespace legion::query
