// Recursive-descent parser for the Collection query language.
//
// Grammar (precedence low to high):
//   query      := or_expr
//   or_expr    := and_expr ( "or" and_expr )*
//   and_expr   := not_expr ( "and" not_expr )*
//   not_expr   := "not" not_expr | comparison
//   comparison := value ( ("=="|"="|"!="|"<"|"<="|">"|">=") value )?
//   value      := literal | $attr | call | "(" query ")"
//   call       := ident "(" [ query ("," query)* ] ")"
//   literal    := string | int | double | "true" | "false"
//
// Builtin calls: match(a, b), defined($a), contains(list, v).  Any other
// call parses into an InjectedCallExpr resolved at evaluation time
// against the Collection's FunctionRegistry.
#pragma once

#include <string>

#include "base/result.h"
#include "query/ast.h"

namespace legion::query {

// Parses a query; the returned expression is immutable and thread-safe
// to evaluate.
Result<ExprPtr> Parse(const std::string& text);

}  // namespace legion::query
