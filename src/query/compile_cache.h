// An LRU cache of compiled queries keyed by query text.
//
// The Collection's string entry points (QueryCollection and the network
// path behind every scheduler round) historically re-ran
// lexer+parser+planner on each call even though schedulers issue the
// same handful of query strings forever.  A small LRU in front of
// Compile() turns that into a hash lookup.  CompiledQuery is cheap to
// copy (two shared_ptrs and the text), so Get() hands out copies.
//
// Thread-safe: the Collection's parallel query path may race string
// queries from worker threads.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "base/result.h"
#include "query/query.h"

namespace legion::query {

class CompileCache {
 public:
  // capacity 0 disables caching entirely: every Get() compiles, nothing
  // is retained, size() stays 0.
  explicit CompileCache(std::size_t capacity = 128) : capacity_(capacity) {}

  // Compile-through lookup.  On success `*hit` (when given) reports
  // whether the query was served from cache.  Failed compiles are not
  // cached: they are rare and the error message must stay fresh.
  Result<CompiledQuery> Get(const std::string& text, bool* hit = nullptr);

  std::size_t size() const {
    std::lock_guard lock(mutex_);
    return entries_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  using LruList = std::list<std::pair<std::string, CompiledQuery>>;

  mutable std::mutex mutex_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> entries_;
};

}  // namespace legion::query
