#include "query/query.h"

namespace legion::query {

Result<CompiledQuery> CompiledQuery::Compile(const std::string& text) {
  auto expr = Parse(text);
  if (!expr) return expr.status();
  return CompiledQuery(text, std::shared_ptr<const Expr>(std::move(*expr)));
}

bool CompiledQuery::Matches(const AttributeDatabase& record,
                            const FunctionRegistry* functions,
                            Status* error_out) const {
  EvalContext ctx{record, functions};
  auto value = expr_->Eval(ctx);
  if (!value) {
    if (error_out != nullptr) *error_out = value.status();
    return false;
  }
  return value->Truthy();
}

}  // namespace legion::query
