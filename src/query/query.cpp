#include "query/query.h"

namespace legion::query {

Result<CompiledQuery> CompiledQuery::Compile(const std::string& text) {
  auto expr = Parse(text);
  if (!expr) return expr.status();
  std::shared_ptr<const Expr> root(std::move(*expr));
  // Plan once at compile time; every evaluation (and every copy of this
  // query) reuses the same immutable plan.
  auto plan = PlanQuery(*root);
  return CompiledQuery(text, std::move(root), std::move(plan));
}

bool CompiledQuery::Matches(const AttributeDatabase& record,
                            const FunctionRegistry* functions,
                            Status* error_out) const {
  EvalContext ctx{record, functions};
  auto value = expr_->Eval(ctx);
  if (!value) {
    if (error_out != nullptr) *error_out = value.status();
    return false;
  }
  return value->Truthy();
}

}  // namespace legion::query
