#include "query/parser.h"

#include <algorithm>

#include "query/lexer.h"

namespace legion::query {
namespace {

std::string Lowered(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ExprPtr> Run() {
    auto expr = ParseOr();
    if (!expr) return expr;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("trailing input after expression");
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }
  bool PeekKeyword(const char* kw) const {
    return Peek().kind == TokenKind::kIdent && Lowered(Peek().text) == kw;
  }

  Status Error(const std::string& what) const {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "query parse error at offset " +
                             std::to_string(Peek().offset) + ": " + what);
  }

  Result<ExprPtr> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs) return lhs;
    while (PeekKeyword("or")) {
      Take();
      auto rhs = ParseAnd();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_unique<BoolExpr>(
          BoolExpr::Op::kOr, std::move(*lhs), std::move(*rhs)));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    auto lhs = ParseNot();
    if (!lhs) return lhs;
    while (PeekKeyword("and")) {
      Take();
      auto rhs = ParseNot();
      if (!rhs) return rhs;
      lhs = ExprPtr(std::make_unique<BoolExpr>(
          BoolExpr::Op::kAnd, std::move(*lhs), std::move(*rhs)));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (PeekKeyword("not")) {
      Take();
      auto operand = ParseNot();
      if (!operand) return operand;
      return ExprPtr(std::make_unique<NotExpr>(std::move(*operand)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    auto lhs = ParseValue();
    if (!lhs) return lhs;
    CompareExpr::Op op;
    switch (Peek().kind) {
      case TokenKind::kEq: op = CompareExpr::Op::kEq; break;
      case TokenKind::kNe: op = CompareExpr::Op::kNe; break;
      case TokenKind::kLt: op = CompareExpr::Op::kLt; break;
      case TokenKind::kLe: op = CompareExpr::Op::kLe; break;
      case TokenKind::kGt: op = CompareExpr::Op::kGt; break;
      case TokenKind::kGe: op = CompareExpr::Op::kGe; break;
      default:
        return lhs;  // bare value (e.g. a boolean attribute or call)
    }
    Take();
    auto rhs = ParseValue();
    if (!rhs) return rhs;
    return ExprPtr(std::make_unique<CompareExpr>(op, std::move(*lhs),
                                                 std::move(*rhs)));
  }

  Result<ExprPtr> ParseValue() {
    const Token& token = Peek();
    switch (token.kind) {
      case TokenKind::kLParen: {
        Take();
        auto inner = ParseOr();
        if (!inner) return inner;
        if (Peek().kind != TokenKind::kRParen) return Error("expected ')'");
        Take();
        return inner;
      }
      case TokenKind::kAttr: {
        Token attr = Take();
        return ExprPtr(std::make_unique<AttrRefExpr>(std::move(attr.text)));
      }
      case TokenKind::kString: {
        Token s = Take();
        return ExprPtr(
            std::make_unique<LiteralExpr>(AttrValue(std::move(s.text))));
      }
      case TokenKind::kInt: {
        Token v = Take();
        return ExprPtr(std::make_unique<LiteralExpr>(AttrValue(v.int_value)));
      }
      case TokenKind::kDouble: {
        Token v = Take();
        return ExprPtr(
            std::make_unique<LiteralExpr>(AttrValue(v.double_value)));
      }
      case TokenKind::kIdent: {
        const std::string lowered = Lowered(token.text);
        if (lowered == "true" || lowered == "false") {
          Take();
          return ExprPtr(
              std::make_unique<LiteralExpr>(AttrValue(lowered == "true")));
        }
        return ParseCall();
      }
      default:
        return Error(std::string("unexpected ") + ToString(token.kind));
    }
  }

  Result<ExprPtr> ParseCall() {
    Token name = Take();
    if (Peek().kind != TokenKind::kLParen) {
      return Error("expected '(' after '" + name.text + "'");
    }
    Take();
    std::vector<ExprPtr> args;
    if (Peek().kind != TokenKind::kRParen) {
      while (true) {
        auto arg = ParseOr();
        if (!arg) return arg;
        args.push_back(std::move(*arg));
        if (Peek().kind == TokenKind::kComma) {
          Take();
          continue;
        }
        break;
      }
    }
    if (Peek().kind != TokenKind::kRParen) {
      return Error("expected ')' in call to '" + name.text + "'");
    }
    Take();

    const std::string lowered = Lowered(name.text);
    if (lowered == "match") {
      if (args.size() != 2) return Error("match() takes two arguments");
      // Argument-order reconciliation (paper footnote 5): the pattern is
      // the string-literal side.  With two literals the first is the
      // pattern (the corrected order); with two non-literals we also
      // treat the first as the pattern.
      const bool first_is_literal =
          dynamic_cast<LiteralExpr*>(args[0].get()) != nullptr;
      const bool second_is_literal =
          dynamic_cast<LiteralExpr*>(args[1].get()) != nullptr;
      ExprPtr pattern, subject;
      if (!first_is_literal && second_is_literal) {
        pattern = std::move(args[1]);
        subject = std::move(args[0]);
      } else {
        pattern = std::move(args[0]);
        subject = std::move(args[1]);
      }
      return ExprPtr(std::make_unique<MatchExpr>(std::move(pattern),
                                                 std::move(subject)));
    }
    if (lowered == "defined" || lowered == "exists") {
      if (args.size() != 1) return Error("defined() takes one argument");
      auto* ref = dynamic_cast<AttrRefExpr*>(args[0].get());
      if (ref == nullptr) {
        return Error("defined() takes an attribute reference");
      }
      return ExprPtr(std::make_unique<DefinedExpr>(ref->name()));
    }
    if (lowered == "contains") {
      if (args.size() != 2) return Error("contains() takes two arguments");
      return ExprPtr(std::make_unique<ContainsExpr>(std::move(args[0]),
                                                    std::move(args[1])));
    }
    return ExprPtr(
        std::make_unique<InjectedCallExpr>(name.text, std::move(args)));
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<ExprPtr> Parse(const std::string& text) {
  auto tokens = Lex(text);
  if (!tokens) return tokens.status();
  Parser parser(std::move(*tokens));
  return parser.Run();
}

}  // namespace legion::query
