// Lexer for the Collection query language.
//
// "A Collection query is a logical expression conforming to the grammar
// described in our earlier work [MESSIAHS].  This grammar allows typical
// operations (field matching, semantic comparisons, and boolean
// combinations of terms).  Identifiers refer to attribute names within a
// particular record, and are of the form $AttributeName."  (paper 3.2)
//
// Token inventory: $attrs, identifiers (function names and the keywords
// and/or/not/true/false), string literals with C-style escapes, integer
// and floating literals, comparison operators, parentheses, and commas.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/result.h"

namespace legion::query {

enum class TokenKind {
  kEnd,
  kAttr,     // $name
  kIdent,    // bare identifier / keyword
  kString,   // "..."
  kInt,
  kDouble,
  kLParen,
  kRParen,
  kComma,
  kEq,       // == (and = as a synonym)
  kNe,       // !=
  kLt,
  kLe,
  kGt,
  kGe,
};

const char* ToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // attr/ident/string payload
  std::int64_t int_value = 0;
  double double_value = 0.0;
  std::size_t offset = 0;  // position in the query, for error messages
};

// Tokenizes the whole query; fails on unterminated strings or stray
// characters.
Result<std::vector<Token>> Lex(const std::string& text);

}  // namespace legion::query
