#include "query/ast.h"

#include <sstream>

namespace legion::query {

Result<AttrValue> NotExpr::Eval(const EvalContext& ctx) const {
  auto v = operand_->Eval(ctx);
  if (!v) return v;
  return AttrValue(!v->Truthy());
}

Result<AttrValue> BoolExpr::Eval(const EvalContext& ctx) const {
  auto lhs = lhs_->Eval(ctx);
  if (!lhs) return lhs;
  const bool left = lhs->Truthy();
  // Short-circuit like the C family.
  if (op_ == Op::kAnd && !left) return AttrValue(false);
  if (op_ == Op::kOr && left) return AttrValue(true);
  auto rhs = rhs_->Eval(ctx);
  if (!rhs) return rhs;
  return AttrValue(rhs->Truthy());
}

std::string BoolExpr::ToString() const {
  return "(" + lhs_->ToString() + (op_ == Op::kAnd ? " and " : " or ") +
         rhs_->ToString() + ")";
}

Result<AttrValue> CompareExpr::Eval(const EvalContext& ctx) const {
  auto lhs = lhs_->Eval(ctx);
  if (!lhs) return lhs;
  auto rhs = rhs_->Eval(ctx);
  if (!rhs) return rhs;
  // Equality works on any pair; the inequality of incomparable values is
  // true only for kNe.
  if (op_ == Op::kEq) return AttrValue(*lhs == *rhs);
  if (op_ == Op::kNe) return AttrValue(*lhs != *rhs);
  auto cmp = CompareAttrValues(*lhs, *rhs);
  if (!cmp.has_value()) return AttrValue(false);  // incomparable: not an error
  switch (op_) {
    case Op::kLt: return AttrValue(*cmp < 0);
    case Op::kLe: return AttrValue(*cmp <= 0);
    case Op::kGt: return AttrValue(*cmp > 0);
    case Op::kGe: return AttrValue(*cmp >= 0);
    default: break;
  }
  return Status::Error(ErrorCode::kInternal, "bad comparison op");
}

std::string CompareExpr::ToString() const {
  const char* op = "?";
  switch (op_) {
    case Op::kEq: op = "=="; break;
    case Op::kNe: op = "!="; break;
    case Op::kLt: op = "<"; break;
    case Op::kLe: op = "<="; break;
    case Op::kGt: op = ">"; break;
    case Op::kGe: op = ">="; break;
  }
  return "(" + lhs_->ToString() + " " + op + " " + rhs_->ToString() + ")";
}

MatchExpr::MatchExpr(ExprPtr pattern, ExprPtr subject)
    : pattern_(std::move(pattern)), subject_(std::move(subject)) {
  // Precompile literal patterns (the overwhelmingly common case) so
  // evaluation is thread-safe and fast.
  if (auto* literal = dynamic_cast<const LiteralExpr*>(pattern_.get());
      literal != nullptr && literal->value().is_string()) {
    try {
      compiled_.emplace(literal->value().as_string(),
                        std::regex::ECMAScript | std::regex::optimize);
    } catch (const std::regex_error&) {
      // Leave uncompiled; evaluation reports the error with context.
    }
  }
}

Result<AttrValue> MatchExpr::Eval(const EvalContext& ctx) const {
  auto subject = subject_->Eval(ctx);
  if (!subject) return subject;
  if (subject->is_null()) return AttrValue(false);  // missing attribute
  if (!subject->is_string()) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "match() subject is not a string");
  }
  if (compiled_.has_value()) {
    return AttrValue(std::regex_search(subject->as_string(), *compiled_));
  }
  auto pattern = pattern_->Eval(ctx);
  if (!pattern) return pattern;
  if (!pattern->is_string()) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         "match() pattern is not a string");
  }
  try {
    std::regex re(pattern->as_string(), std::regex::ECMAScript);
    return AttrValue(std::regex_search(subject->as_string(), re));
  } catch (const std::regex_error& e) {
    return Status::Error(ErrorCode::kInvalidArgument,
                         std::string("bad regular expression: ") + e.what());
  }
}

std::string MatchExpr::ToString() const {
  return "match(" + pattern_->ToString() + ", " + subject_->ToString() + ")";
}

Result<AttrValue> ContainsExpr::Eval(const EvalContext& ctx) const {
  auto list = list_->Eval(ctx);
  if (!list) return list;
  auto needle = needle_->Eval(ctx);
  if (!needle) return needle;
  if (list->is_null()) return AttrValue(false);
  if (!list->is_list()) {
    // Scalars degrade to equality, which makes contains() usable on
    // attributes that may be single- or multi-valued.
    return AttrValue(*list == *needle);
  }
  for (const auto& element : list->as_list()) {
    if (element == *needle) return AttrValue(true);
  }
  return AttrValue(false);
}

Result<AttrValue> InjectedCallExpr::Eval(const EvalContext& ctx) const {
  if (ctx.functions == nullptr || !ctx.functions->Has(name_)) {
    return Status::Error(ErrorCode::kNotFound,
                         "unknown query function '" + name_ + "'");
  }
  std::vector<AttrValue> args;
  args.reserve(args_.size());
  for (const auto& arg : args_) {
    auto v = arg->Eval(ctx);
    if (!v) return v;
    args.push_back(std::move(*v));
  }
  return (*ctx.functions->Find(name_))(ctx.record, args);
}

std::string InjectedCallExpr::ToString() const {
  std::ostringstream os;
  os << name_ << '(';
  for (std::size_t i = 0; i < args_.size(); ++i) {
    if (i != 0) os << ", ";
    os << args_[i]->ToString();
  }
  os << ')';
  return os.str();
}

}  // namespace legion::query
