// CompiledQuery: the user-facing facade over lex/parse/eval.
#pragma once

#include <memory>
#include <string>

#include "base/attributes.h"
#include "base/result.h"
#include "query/ast.h"
#include "query/parser.h"
#include "query/planner.h"

namespace legion::query {

// A parsed query, immutable and shareable across threads.
class CompiledQuery {
 public:
  static Result<CompiledQuery> Compile(const std::string& text);

  // True iff the record satisfies the query.  Evaluation errors (bad
  // injected function, type misuse) count as non-matches but are
  // surfaced through `error_out` when provided.
  bool Matches(const AttributeDatabase& record,
               const FunctionRegistry* functions = nullptr,
               Status* error_out = nullptr) const;

  const std::string& text() const { return text_; }
  std::string Canonical() const { return expr_->ToString(); }

  // The index plan extracted at compile time, or nullptr when nothing in
  // the query is sargable (evaluators then scan).  See planner.h.
  const IndexPlan* plan() const { return plan_.get(); }

 private:
  CompiledQuery(std::string text, std::shared_ptr<const Expr> expr,
                std::shared_ptr<const IndexPlan> plan)
      : text_(std::move(text)),
        expr_(std::move(expr)),
        plan_(std::move(plan)) {}

  std::string text_;
  std::shared_ptr<const Expr> expr_;
  std::shared_ptr<const IndexPlan> plan_;
};

}  // namespace legion::query
