// AST and evaluation for the Collection query language.
//
// Expressions evaluate against a single attribute record.  Evaluation is
// const and thread-safe (regexes over literal patterns are compiled at
// parse time), so the Collection's parallel query path can share one
// compiled query across worker threads.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <regex>
#include <string>
#include <vector>

#include "base/attributes.h"
#include "base/result.h"

namespace legion::query {

// User-injected derived-attribute functions (the "function injection"
// extension of paper section 3.2): name -> fn(record, args) -> value.
class FunctionRegistry {
 public:
  using Fn = std::function<AttrValue(const AttributeDatabase& record,
                                     const std::vector<AttrValue>& args)>;

  void Register(const std::string& name, Fn fn) { fns_[name] = std::move(fn); }
  bool Has(const std::string& name) const { return fns_.count(name) != 0; }
  const Fn* Find(const std::string& name) const {
    auto it = fns_.find(name);
    return it == fns_.end() ? nullptr : &it->second;
  }
  std::size_t size() const { return fns_.size(); }

  template <typename Visitor>
  void ForEach(Visitor&& visit) const {
    for (const auto& [name, fn] : fns_) visit(name, fn);
  }

 private:
  std::map<std::string, Fn> fns_;
};

struct EvalContext {
  const AttributeDatabase& record;
  const FunctionRegistry* functions = nullptr;  // optional injection
};

class Expr {
 public:
  virtual ~Expr() = default;
  // Evaluates to a value; attribute references to missing attributes
  // yield null (comparisons against null are false, not errors).
  virtual Result<AttrValue> Eval(const EvalContext& ctx) const = 0;
  virtual std::string ToString() const = 0;
};

using ExprPtr = std::unique_ptr<Expr>;

class LiteralExpr final : public Expr {
 public:
  explicit LiteralExpr(AttrValue value) : value_(std::move(value)) {}
  Result<AttrValue> Eval(const EvalContext&) const override { return value_; }
  std::string ToString() const override { return value_.ToString(); }
  const AttrValue& value() const { return value_; }

 private:
  AttrValue value_;
};

class AttrRefExpr final : public Expr {
 public:
  explicit AttrRefExpr(std::string name) : name_(std::move(name)) {}
  Result<AttrValue> Eval(const EvalContext& ctx) const override {
    const AttrValue* v = ctx.record.Get(name_);
    return v != nullptr ? *v : AttrValue();
  }
  std::string ToString() const override { return "$" + name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class NotExpr final : public Expr {
 public:
  explicit NotExpr(ExprPtr operand) : operand_(std::move(operand)) {}
  Result<AttrValue> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override {
    return "not (" + operand_->ToString() + ")";
  }
  const Expr& operand() const { return *operand_; }

 private:
  ExprPtr operand_;
};

class BoolExpr final : public Expr {
 public:
  enum class Op { kAnd, kOr };
  BoolExpr(Op op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<AttrValue> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  Op op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  Op op_;
  ExprPtr lhs_, rhs_;
};

class CompareExpr final : public Expr {
 public:
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  CompareExpr(Op op, ExprPtr lhs, ExprPtr rhs)
      : op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}
  Result<AttrValue> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;
  Op op() const { return op_; }
  const Expr& lhs() const { return *lhs_; }
  const Expr& rhs() const { return *rhs_; }

 private:
  Op op_;
  ExprPtr lhs_, rhs_;
};

// match(pattern, subject): true iff the regular expression occurs in the
// subject string (regexp() search semantics, per the paper's footnote the
// first argument is the pattern; when the first argument is an attribute
// reference and the second a literal -- the paper's own first example --
// the literal is taken as the pattern).
class MatchExpr final : public Expr {
 public:
  MatchExpr(ExprPtr pattern, ExprPtr subject);
  Result<AttrValue> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  ExprPtr pattern_;
  ExprPtr subject_;
  std::optional<std::regex> compiled_;  // literal patterns precompile
};

// defined($attr): true iff the record carries the attribute (non-null).
class DefinedExpr final : public Expr {
 public:
  explicit DefinedExpr(std::string name) : name_(std::move(name)) {}
  Result<AttrValue> Eval(const EvalContext& ctx) const override {
    const AttrValue* v = ctx.record.Get(name_);
    return AttrValue(v != nullptr && !v->is_null());
  }
  std::string ToString() const override { return "defined($" + name_ + ")"; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

// contains($listattr, value): membership test for list attributes.
class ContainsExpr final : public Expr {
 public:
  ContainsExpr(ExprPtr list, ExprPtr needle)
      : list_(std::move(list)), needle_(std::move(needle)) {}
  Result<AttrValue> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override {
    return "contains(" + list_->ToString() + ", " + needle_->ToString() + ")";
  }

 private:
  ExprPtr list_, needle_;
};

// An injected function call resolved through the FunctionRegistry.
class InjectedCallExpr final : public Expr {
 public:
  InjectedCallExpr(std::string name, std::vector<ExprPtr> args)
      : name_(std::move(name)), args_(std::move(args)) {}
  Result<AttrValue> Eval(const EvalContext& ctx) const override;
  std::string ToString() const override;

 private:
  std::string name_;
  std::vector<ExprPtr> args_;
};

}  // namespace legion::query
