#include "query/planner.h"

#include <cmath>
#include <optional>
#include <utility>

namespace legion::query {

const char* ToString(PredicateOp op) {
  switch (op) {
    case PredicateOp::kEq: return "==";
    case PredicateOp::kLt: return "<";
    case PredicateOp::kLe: return "<=";
    case PredicateOp::kGt: return ">";
    case PredicateOp::kGe: return ">=";
    case PredicateOp::kDefined: return "defined";
  }
  return "?";
}

std::string SargablePredicate::ToString() const {
  if (op == PredicateOp::kDefined) return "defined($" + attr + ")";
  return "$" + attr + " " + query::ToString(op) + " " + literal.ToString();
}

std::string IndexPlan::ToString() const {
  if (kind == Kind::kPredicate) return pred.ToString();
  std::string joiner = kind == Kind::kAnd ? " and " : " or ";
  std::string out = "(";
  for (std::size_t i = 0; i < children.size(); ++i) {
    if (i != 0) out += joiner;
    out += children[i].ToString();
  }
  return out + ")";
}

namespace {

std::optional<PredicateOp> Sargable(CompareExpr::Op op) {
  switch (op) {
    case CompareExpr::Op::kEq: return PredicateOp::kEq;
    case CompareExpr::Op::kLt: return PredicateOp::kLt;
    case CompareExpr::Op::kLe: return PredicateOp::kLe;
    case CompareExpr::Op::kGt: return PredicateOp::kGt;
    case CompareExpr::Op::kGe: return PredicateOp::kGe;
    case CompareExpr::Op::kNe: return std::nullopt;
  }
  return std::nullopt;
}

// `5 > $a` is `$a < 5`.
PredicateOp Flip(PredicateOp op) {
  switch (op) {
    case PredicateOp::kLt: return PredicateOp::kGt;
    case PredicateOp::kLe: return PredicateOp::kGe;
    case PredicateOp::kGt: return PredicateOp::kLt;
    case PredicateOp::kGe: return PredicateOp::kLe;
    default: return op;
  }
}

std::optional<IndexPlan> PlanExpr(const Expr& expr);

std::optional<IndexPlan> PlanCompare(const CompareExpr& cmp) {
  auto op = Sargable(cmp.op());
  if (!op.has_value()) return std::nullopt;

  const auto* attr = dynamic_cast<const AttrRefExpr*>(&cmp.lhs());
  const auto* literal = dynamic_cast<const LiteralExpr*>(&cmp.rhs());
  if (attr == nullptr || literal == nullptr) {
    // Try the flipped orientation: literal op $attr.
    attr = dynamic_cast<const AttrRefExpr*>(&cmp.rhs());
    literal = dynamic_cast<const LiteralExpr*>(&cmp.lhs());
    if (attr == nullptr || literal == nullptr) return std::nullopt;
    op = Flip(*op);
  }

  const AttrValue& value = literal->value();
  if (*op == PredicateOp::kEq) {
    // Equality is index-answerable for scalar literals; NaN never
    // equals anything and a null/list literal cannot be written, so
    // leave those to the scan.
    if (value.is_string() || value.is_bool()) {
      // exactly answerable
    } else if (value.is_numeric()) {
      if (std::isnan(value.as_double())) return std::nullopt;
    } else {
      return std::nullopt;
    }
  } else {
    // Ranges come from the ordered numeric index only.  (String
    // ordering exists in the language but is rare on the hot path.)
    if (!value.is_numeric() || std::isnan(value.as_double())) {
      return std::nullopt;
    }
  }

  IndexPlan plan;
  plan.kind = IndexPlan::Kind::kPredicate;
  plan.pred = SargablePredicate{attr->name(), *op, value};
  // String/bool equality is answered by exact-key lookup; numeric
  // predicates go through the double-keyed ordered index, whose
  // candidate sets are supersets (see planner.h), so they keep the
  // residual pass.
  plan.exact = *op == PredicateOp::kEq && (value.is_string() || value.is_bool());
  return plan;
}

// Appends `child` to an n-ary node of `kind`, flattening same-kind
// children so `a and b and c` is one 3-way node.
void Absorb(IndexPlan& parent, IndexPlan child) {
  if (child.kind == parent.kind) {
    for (auto& grandchild : child.children) {
      parent.children.push_back(std::move(grandchild));
    }
    return;
  }
  parent.children.push_back(std::move(child));
}

std::optional<IndexPlan> PlanBool(const BoolExpr& expr) {
  auto lhs = PlanExpr(expr.lhs());
  auto rhs = PlanExpr(expr.rhs());
  if (expr.op() == BoolExpr::Op::kAnd) {
    // Any sargable conjunct prunes: matches of `a and b` are a subset of
    // the matches of each side.  A one-sided plan is no longer exact --
    // the dropped conjunct goes unchecked until the residual pass.
    if (!lhs.has_value()) {
      if (rhs.has_value()) rhs->exact = false;
      return rhs;
    }
    if (!rhs.has_value()) {
      lhs->exact = false;
      return lhs;
    }
    IndexPlan plan;
    plan.kind = IndexPlan::Kind::kAnd;
    plan.exact = false;  // evaluation prunes through one child only
    Absorb(plan, std::move(*lhs));
    Absorb(plan, std::move(*rhs));
    return plan;
  }
  // Or: a record may match through either side, so pruning is only
  // sound when both sides are sargable.
  if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
  IndexPlan plan;
  plan.kind = IndexPlan::Kind::kOr;
  plan.exact = lhs->exact && rhs->exact;
  Absorb(plan, std::move(*lhs));
  Absorb(plan, std::move(*rhs));
  return plan;
}

std::optional<IndexPlan> PlanExpr(const Expr& expr) {
  if (const auto* cmp = dynamic_cast<const CompareExpr*>(&expr)) {
    return PlanCompare(*cmp);
  }
  if (const auto* boolean = dynamic_cast<const BoolExpr*>(&expr)) {
    return PlanBool(*boolean);
  }
  if (const auto* defined = dynamic_cast<const DefinedExpr*>(&expr)) {
    IndexPlan plan;
    plan.kind = IndexPlan::Kind::kPredicate;
    plan.pred = SargablePredicate{defined->name(), PredicateOp::kDefined, {}};
    plan.exact = true;  // the presence index is the defined() semantics
    return plan;
  }
  // not(...), match(), contains(), injected calls, bare attributes and
  // literals: not index-answerable.
  return std::nullopt;
}

}  // namespace

std::shared_ptr<const IndexPlan> PlanQuery(const Expr& root) {
  auto plan = PlanExpr(root);
  if (!plan.has_value()) return nullptr;
  return std::make_shared<const IndexPlan>(std::move(*plan));
}

}  // namespace legion::query
