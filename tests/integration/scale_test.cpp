// Scale: the paper's vision is "many thousands, perhaps millions, of
// hosts".  We check that the RMI machinery stays correct (and tolerably
// fast) on a metacomputer three orders of magnitude smaller than the
// vision but two larger than the other tests.
#include <gtest/gtest.h>

#include "core/schedulers/irs_scheduler.h"
#include "core/schedulers/ranked_scheduler.h"
#include "workload/metacomputer.h"

namespace legion {
namespace {

NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.05;
  return params;
}

class ScaleTest : public ::testing::Test {
 protected:
  ScaleTest() : kernel_(QuietNet()) {
    MetacomputerConfig config;
    config.domains = 20;
    config.hosts_per_domain = 50;  // 1000 hosts
    config.vaults_per_domain = 4;
    config.seed = 2024;
    config.load.volatility = 0.1;
    metacomputer_ = std::make_unique<Metacomputer>(&kernel_, config);
    metacomputer_->PopulateCollection();
  }

  SimKernel kernel_;
  std::unique_ptr<Metacomputer> metacomputer_;
};

TEST_F(ScaleTest, ThousandHostsPopulateTheCollection) {
  EXPECT_EQ(metacomputer_->hosts().size(), 1000u);
  EXPECT_EQ(metacomputer_->collection()->record_count(), 1000u);
}

TEST_F(ScaleTest, QueriesFilterAtScale) {
  auto idle = metacomputer_->collection()->QueryLocal(
      "$host_load < 0.4 and $host_arch == \"x86\"");
  ASSERT_TRUE(idle.ok());
  EXPECT_GT(idle->size(), 0u);
  EXPECT_LT(idle->size(), 1000u);
  // Serial and parallel paths agree at this size.
  auto query = query::CompiledQuery::Compile(
      "$host_load < 0.4 and $host_arch == \"x86\"");
  auto parallel =
      metacomputer_->collection()->QueryLocalParallel(*query, 4);
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->size(), idle->size());
}

TEST_F(ScaleTest, PlacementAcrossThousandHosts) {
  ClassObject* klass = metacomputer_->MakeUniversalClass("wide", 16, 0.25);
  auto* scheduler = kernel_.AddActor<LoadAwareScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid());
  bool success = false;
  std::size_t placed = 0;
  scheduler->ScheduleAndEnact(
      {{klass->loid(), 64}}, RunOptions{2, 2},
      [&](Result<RunOutcome> outcome) {
        success = outcome.ok() && outcome->success;
        if (success) placed = outcome->feedback.reserved_mappings.size();
      });
  kernel_.RunFor(Duration::Minutes(5));
  EXPECT_TRUE(success);
  EXPECT_EQ(placed, 64u);
}

TEST_F(ScaleTest, IrsWorksAtScaleWithContention) {
  // A tenth of the hosts refuse; IRS still succeeds via variants.
  Rng rng(5);
  for (auto* host : metacomputer_->hosts()) {
    if (rng.Bernoulli(0.1)) {
      host->SetPolicy(std::make_unique<DomainRefusalPolicy>(
          std::vector<std::uint32_t>{0}));
    }
  }
  ClassObject* klass = metacomputer_->MakeUniversalClass("contended");
  auto* scheduler = kernel_.AddActor<IrsScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      4, 99);
  bool success = false;
  scheduler->ScheduleAndEnact({{klass->loid(), 16}}, RunOptions{3, 2},
                              [&](Result<RunOutcome> outcome) {
                                success = outcome.ok() && outcome->success;
                              });
  kernel_.RunFor(Duration::Minutes(5));
  EXPECT_TRUE(success);
}

}  // namespace
}  // namespace legion
