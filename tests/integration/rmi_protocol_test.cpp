// Integration: the full figure-3 RMI protocol, steps 1-13.
//
//   1     Hosts populate the Collection.
//   2-3   The Scheduler acquires application knowledge from the classes.
//   4-6   The Enactor obtains reservations from Hosts/Vaults.
//   7-9   After confirmation, the Enactor instantiates through the class
//         objects.
//   10-11 Success/failure codes flow back to the Scheduler.
//   12-13 A resource raises a trigger; the Monitor notifies and a
//         reschedule (migration) follows.
#include <gtest/gtest.h>

#include "core/migration.h"
#include "core/monitor.h"
#include "core/schedulers/irs_scheduler.h"
#include "core/schedulers/ranked_scheduler.h"
#include "workload/executor.h"
#include "workload/metacomputer.h"

namespace legion {
namespace {

NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.0;
  return params;
}

class RmiProtocolTest : public ::testing::Test {
 protected:
  RmiProtocolTest() : kernel_(QuietNet()) {
    MetacomputerConfig config;
    config.domains = 2;
    config.hosts_per_domain = 4;
    config.vaults_per_domain = 2;
    config.seed = 9;
    config.load.initial = 0.1;
    config.load.mean = 0.1;
    config.load.volatility = 0.0;
    metacomputer_ = std::make_unique<Metacomputer>(&kernel_, config);
    klass_ = metacomputer_->MakeUniversalClass("app", 64, 1.0);
  }

  SimKernel kernel_;
  std::unique_ptr<Metacomputer> metacomputer_;
  ClassObject* klass_;
};

TEST_F(RmiProtocolTest, FullPlacementPipeline) {
  // Step 1: populate.
  metacomputer_->PopulateCollection();
  ASSERT_EQ(metacomputer_->collection()->record_count(), 8u);

  // Steps 2-11 via the IRS scheduler.
  auto* scheduler = kernel_.AddActor<IrsScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      /*nsched=*/4, /*seed=*/41);
  RunOutcome outcome;
  bool finished = false;
  scheduler->ScheduleAndEnact({{klass_->loid(), 4}}, RunOptions{3, 2},
                              [&](Result<RunOutcome> r) {
                                finished = true;
                                if (r.ok()) outcome = *r;
                              });
  kernel_.RunFor(Duration::Minutes(2));
  ASSERT_TRUE(finished);
  ASSERT_TRUE(outcome.success);
  ASSERT_EQ(outcome.enacted.instances.size(), 4u);

  // The objects really run where the schedule says.
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(outcome.enacted.instances[i].ok());
    auto* object = dynamic_cast<LegionObject*>(
        kernel_.FindActor(outcome.enacted.instances[i].value()));
    ASSERT_NE(object, nullptr);
    EXPECT_TRUE(object->active());
    EXPECT_EQ(object->host(), outcome.feedback.reserved_mappings[i].host);
  }
  // Reservation bookkeeping: each mapping's host holds a confirmed
  // reservation.
  for (const auto& mapping : outcome.feedback.reserved_mappings) {
    auto* host = metacomputer_->FindHost(mapping.host);
    ASSERT_NE(host, nullptr);
    EXPECT_GE(host->reservations().size(), 1u);
  }
}

TEST_F(RmiProtocolTest, Steps12And13RescheduleOnTrigger) {
  metacomputer_->PopulateCollection();
  auto* scheduler = kernel_.AddActor<LoadAwareScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid());
  RunOutcome outcome;
  scheduler->ScheduleAndEnact({{klass_->loid(), 1}}, RunOptions{2, 2},
                              [&](Result<RunOutcome> r) {
                                if (r.ok()) outcome = *r;
                              });
  kernel_.RunFor(Duration::Minutes(2));
  ASSERT_TRUE(outcome.success);
  const Loid object = outcome.enacted.instances[0].value();
  auto* origin_host =
      metacomputer_->FindHost(outcome.feedback.reserved_mappings[0].host);
  ASSERT_NE(origin_host, nullptr);

  // Step 12: the host's trigger fires an outcall to the Monitor.
  MonitorObject* monitor = metacomputer_->monitor();
  monitor->WatchLoadThreshold(origin_host, 2.0);
  // Step 13: the Monitor's reschedule handler migrates the object to the
  // least-loaded other host.
  bool migrated = false;
  monitor->SetRescheduleHandler([&](const RgeEvent& event) {
    HostObject* target = nullptr;
    for (auto* candidate : metacomputer_->hosts()) {
      if (candidate->loid() == event.source) continue;
      if (target == nullptr ||
          candidate->CurrentLoad() < target->CurrentLoad()) {
        target = candidate;
      }
    }
    ASSERT_NE(target, nullptr);
    MigrateObject(&kernel_, monitor->loid(), object, target->loid(),
                  target->spec().domain == 0
                      ? metacomputer_->vaults()[0]->loid()
                      : metacomputer_->vaults()[2]->loid(),
                  [&](Result<MigrationOutcome> r) {
                    migrated = r.ok() && r->success;
                  });
  });
  origin_host->SpikeLoad(3.0);
  kernel_.RunFor(Duration::Minutes(2));
  EXPECT_GE(monitor->events_received(), 1u);
  EXPECT_TRUE(migrated);
  auto* moved = dynamic_cast<LegionObject*>(kernel_.FindActor(object));
  ASSERT_NE(moved, nullptr);
  EXPECT_TRUE(moved->active());
  EXPECT_NE(moved->host(), origin_host->loid());
}

TEST_F(RmiProtocolTest, SurvivesMessageLoss) {
  // "our Legion objects are built to accommodate failure at any step in
  // the scheduling process": with 20% WAN loss the retry structure still
  // places the application most of the time.
  NetworkParams lossy = QuietNet();
  lossy.inter_domain_loss = 0.2;
  SimKernel kernel(lossy);
  MetacomputerConfig config;
  config.domains = 2;
  config.hosts_per_domain = 4;
  config.seed = 10;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  auto* klass = metacomputer.MakeUniversalClass("app");
  auto* scheduler = kernel.AddActor<IrsScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid(), 4,
      51);
  // Use a short RPC timeout so retries happen quickly.
  metacomputer.enactor()->options().rpc_timeout = Duration::Seconds(5);

  int successes = 0;
  for (int trial = 0; trial < 5; ++trial) {
    bool success = false;
    scheduler->ScheduleAndEnact({{klass->loid(), 2}}, RunOptions{4, 3},
                                [&](Result<RunOutcome> r) {
                                  success = r.ok() && r->success;
                                });
    kernel.RunFor(Duration::Minutes(10));
    if (success) ++successes;
  }
  EXPECT_GE(successes, 3);
  EXPECT_GT(kernel.stats().messages_dropped, 0u);
}

TEST_F(RmiProtocolTest, PartitionHealsAndPlacementProceeds) {
  metacomputer_->PopulateCollection();
  // Partition domain 0 from domain 1 for the first simulated hour.
  kernel_.network().AddPartition(0, 1, kernel_.Now(),
                                 kernel_.Now() + Duration::Hours(1));
  metacomputer_->enactor()->options().rpc_timeout = Duration::Seconds(10);
  auto* scheduler = kernel_.AddActor<IrsScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      6, 61);
  // During the partition, domain-1 hosts are unreachable, but IRS's
  // variants usually find domain-0 hosts.
  bool success = false;
  scheduler->ScheduleAndEnact({{klass_->loid(), 2}}, RunOptions{4, 2},
                              [&](Result<RunOutcome> r) {
                                success = r.ok() && r->success;
                              });
  kernel_.RunFor(Duration::Minutes(20));
  EXPECT_TRUE(success);
}

}  // namespace
}  // namespace legion
