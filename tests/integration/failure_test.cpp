// Failure injection: "our Legion objects are built to accommodate
// failure at any step in the scheduling process" (paper §3.1).  Each
// test breaks one step and checks the system degrades, reports, and
// recovers rather than wedging.
#include <gtest/gtest.h>


#include "core/migration.h"
#include "core/schedulers/irs_scheduler.h"
#include "core/schedulers/random_scheduler.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class FailureTest : public ::testing::Test {
 protected:
  FailureTest() : world_(testing::TestWorldConfig{.hosts = 4}) {
    world_.Populate();
    klass_ = world_.MakeClass("app");
  }

  ObjectMapping MappingTo(std::size_t index) {
    ObjectMapping mapping;
    mapping.class_loid = klass_->loid();
    mapping.host = world_.hosts[index]->loid();
    mapping.vault = world_.vaults[index]->loid();
    return mapping;
  }

  TestWorld world_;
  ClassObject* klass_;
};

TEST_F(FailureTest, HostCrashMidNegotiationTimesOutAndVariantsRecover) {
  world_.enactor->options().rpc_timeout = Duration::Seconds(5);
  const Loid dead_host = world_.hosts[1]->loid();

  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  VariantSchedule variant;
  variant.replaces.Resize(2);
  variant.replaces.Set(1);
  variant.mappings.emplace_back(1, MappingTo(2));
  master.variants.push_back(variant);
  request.masters.push_back(master);

  // Host 1 vanishes (crash) before the negotiation starts; the RPC to it
  // times out and the variant machinery routes around the corpse.
  // (Removing the actor frees it, so the schedule was built first.)
  world_.kernel.RemoveActor(dead_host);

  Await<ScheduleFeedback> feedback;
  world_.enactor->MakeReservations(request, feedback.Sink());
  world_.Run();
  ASSERT_TRUE(feedback.Ready());
  ASSERT_TRUE(feedback.Get()->success);
  EXPECT_EQ(feedback.Get()->reserved_mappings[1].host,
            world_.hosts[2]->loid());
}

TEST_F(FailureTest, HostCrashAfterReservationFailsEnactmentCleanly) {
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  request.masters.push_back(master);
  Await<ScheduleFeedback> feedback;
  world_.enactor->MakeReservations(request, feedback.Sink());
  world_.Run();
  ASSERT_TRUE(feedback.Get()->success);
  // Host 1 dies between reservation and enactment.
  world_.kernel.RemoveActor(world_.hosts[1]->loid());
  Await<EnactResult> enacted;
  world_.enactor->EnactSchedule(*feedback.Get(), enacted.Sink());
  world_.Run();
  ASSERT_TRUE(enacted.Ready());
  EXPECT_FALSE(enacted.Get()->success);
  // The mapping to the live host still started; the dead one reports.
  EXPECT_TRUE(enacted.Get()->instances[0].ok());
  EXPECT_FALSE(enacted.Get()->instances[1].ok());
  EXPECT_EQ(world_.hosts[0]->running_count(), 1u);
}

TEST_F(FailureTest, FullVaultFailsDeactivationButObjectKeepsRunning) {
  // A tiny vault that one foreign OPR fills completely.
  VaultSpec tiny_spec;
  tiny_spec.name = "tiny";
  tiny_spec.capacity_mb = 1;
  auto* tiny = world_.kernel.AddActor<VaultObject>(
      world_.kernel.minter().Mint(LoidSpace::kVault, 0), tiny_spec);
  world_.hosts[0]->AddCompatibleVault(tiny->loid());
  PlacementSuggestion suggestion;
  suggestion.host = world_.hosts[0]->loid();
  suggestion.vault = tiny->loid();
  Await<Loid> placed;
  klass_->CreateInstance(suggestion, placed.Sink());
  world_.Run();
  ASSERT_TRUE(placed.Get().ok());
  // Stuff the vault to capacity with a foreign OPR.
  Opr filler;
  filler.object = Loid(LoidSpace::kObject, 0, 9999);
  filler.class_loid = klass_->loid();
  filler.body.assign(tiny->capacity_bytes() - 128, 0x7F);
  Await<bool> stuffed;
  tiny->StoreOpr(filler, stuffed.Sink());
  ASSERT_TRUE(*stuffed.Get());

  Await<bool> deactivated;
  world_.hosts[0]->DeactivateObject(*placed.Get(), deactivated.Sink());
  world_.Run();
  ASSERT_TRUE(deactivated.Ready());
  EXPECT_FALSE(deactivated.Get().ok() && *deactivated.Get());
  // The object was NOT torn down: it still runs where it was.
  auto* object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(*placed.Get()));
  ASSERT_NE(object, nullptr);
  EXPECT_TRUE(object->active());
  EXPECT_EQ(world_.hosts[0]->running_count(), 1u);
}

TEST_F(FailureTest, MigrationToDeadHostReportsAndPreservesNothingLost) {
  PlacementSuggestion suggestion;
  suggestion.host = world_.hosts[0]->loid();
  suggestion.vault = world_.vaults[0]->loid();
  Await<Loid> placed;
  klass_->CreateInstance(suggestion, placed.Sink());
  world_.Run();
  ASSERT_TRUE(placed.Get().ok());
  const Loid ghost(LoidSpace::kHost, 0, 31337);
  Await<MigrationOutcome> outcome;
  MigrateObject(&world_.kernel, world_.enactor->loid(), *placed.Get(),
                ghost, world_.vaults[1]->loid(), outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Ready());
  EXPECT_FALSE(outcome.Get()->success);
  // The object was deactivated and its OPR moved, but reactivation
  // failed; the passive state survives in the target vault.
  EXPECT_EQ(world_.vaults[1]->stored_count(), 1u);
  auto* object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(*placed.Get()));
  ASSERT_NE(object, nullptr);
  EXPECT_EQ(object->state(), ObjectState::kInactive);
  // Recovery: reactivate by hand on a live host.
  Await<bool> recovered;
  world_.hosts[1]->ReactivateObject(*placed.Get(), world_.vaults[1]->loid(),
                                    recovered.Sink());
  world_.Run();
  EXPECT_TRUE(*recovered.Get());
  EXPECT_TRUE(object->active());
}

TEST_F(FailureTest, CollectionUnreachableFailsSchedulingWithTimeout) {
  world_.kernel.RemoveActor(world_.collection->loid());
  auto* scheduler = world_.kernel.AddActor<IrsScheduler>(
      world_.kernel.minter().Mint(LoidSpace::kService, 0),
      Loid(LoidSpace::kService, 0, 424242),  // nothing there
      world_.enactor->loid(), 4, 3);
  Await<ScheduleRequestList> schedule;
  scheduler->ComputeSchedule({{klass_->loid(), 2}}, schedule.Sink());
  world_.Run();
  ASSERT_TRUE(schedule.Ready());
  EXPECT_FALSE(schedule.Get().ok());
  EXPECT_EQ(schedule.Get().code(), ErrorCode::kUnavailable);
}

TEST_F(FailureTest, KilledInstanceVanishesFromItsClassPerspective) {
  Await<Loid> placed;
  klass_->CreateInstance(std::nullopt, placed.Sink());
  world_.Run();
  ASSERT_TRUE(placed.Get().ok());
  auto* object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(*placed.Get()));
  const Loid host_loid = object->host();
  auto* host = dynamic_cast<HostObject*>(world_.kernel.FindActor(host_loid));
  Await<bool> killed;
  host->KillObject(*placed.Get(), killed.Sink());
  EXPECT_TRUE(*killed.Get());
  EXPECT_EQ(world_.kernel.FindActor(*placed.Get()), nullptr);
  klass_->ForgetInstance(*placed.Get());
  EXPECT_TRUE(klass_->instances().empty());
}

// ---- Resilience layer (DESIGN.md §9) ----------------------------------------

TEST_F(FailureTest, TransientTimeoutRecoveredWithinMaxAttempts) {
  // Two domains, the target behind a 5-second partition.  The first
  // reservation attempt times out; the deterministic backoff lands the
  // retry after the partition heals, so the same mapping recovers in
  // place -- no variant, no wholesale cancel.
  TestWorld world(testing::TestWorldConfig{.hosts = 4, .domains = 2});
  world.Populate();
  ClassObject* klass = world.MakeClass("app");
  EnactorOptions& opts = world.enactor->options();
  opts.rpc_timeout = Duration::Seconds(2);
  opts.retry.max_attempts = 3;
  opts.retry.base_delay = Duration::Seconds(4);
  opts.retry.jitter_fraction = 0.0;
  world.kernel.network().AddPartition(
      0, 1, world.kernel.Now(), world.kernel.Now() + Duration::Seconds(5));

  ScheduleRequestList request;
  MasterSchedule master;
  ObjectMapping mapping;
  mapping.class_loid = klass->loid();
  mapping.host = world.hosts[1]->loid();  // domain 1, behind the partition
  mapping.vault = world.vaults[1]->loid();
  master.mappings.push_back(mapping);
  request.masters.push_back(master);

  Await<ScheduleFeedback> feedback;
  world.enactor->MakeReservations(request, feedback.Sink());
  world.Run();
  ASSERT_TRUE(feedback.Ready());
  ASSERT_TRUE(feedback.Get()->success);
  EXPECT_EQ(feedback.Get()->reserved_mappings[0].host,
            world.hosts[1]->loid());
  EXPECT_GE(world.enactor->stats().retries, 1u);
  EXPECT_GE(world.enactor->stats().partial_recoveries, 1u);
}

TEST_F(FailureTest, BreakerOpensAfterRepeatedTimeoutsAndSchedulerAvoidsHost) {
  TestWorld world(testing::TestWorldConfig{.hosts = 4});
  world.Populate();
  ClassObject* klass = world.MakeClass("app");
  EnactorOptions& opts = world.enactor->options();
  opts.rpc_timeout = Duration::Seconds(2);
  opts.retry.max_attempts = 1;  // isolate the breaker from the retry path
  world.enactor->health().options().host_failure_threshold = 2;
  // Long cooldown so the breaker stays kOpen (not half-open) across the
  // scheduler rounds and the fail-fast check below.
  world.enactor->health().options().host_cooldown = Duration::Minutes(30);
  // Host 3 crashes, but its Collection record lingers: without health
  // tracking every placement would keep negotiating with the corpse.
  const Loid dead = world.hosts[3]->loid();
  world.kernel.RemoveActor(dead);

  ScheduleRequestList request;
  MasterSchedule master;
  ObjectMapping mapping;
  mapping.class_loid = klass->loid();
  mapping.host = dead;
  mapping.vault = world.vaults[3]->loid();
  master.mappings.push_back(mapping);
  request.masters.push_back(master);
  for (int round = 0; round < 2; ++round) {
    Await<ScheduleFeedback> feedback;
    world.enactor->MakeReservations(request, feedback.Sink());
    world.kernel.RunFor(Duration::Seconds(5));
    ASSERT_TRUE(feedback.Ready());
    EXPECT_FALSE(feedback.Get()->success);
  }
  EXPECT_FALSE(world.enactor->health().Healthy(dead));
  EXPECT_EQ(world.enactor->health().HostState(dead), BreakerState::kOpen);
  EXPECT_TRUE(world.enactor->health().SuspectUntil(dead).has_value());

  // The scheduler consults the same tracker: with three healthy hosts
  // available, the suspect never enters a computed schedule.
  auto* scheduler = world.kernel.AddActor<RandomScheduler>(
      world.kernel.minter().Mint(LoidSpace::kService, 0),
      world.collection->loid(), world.enactor->loid(), 7);
  for (int round = 0; round < 5; ++round) {
    Await<ScheduleRequestList> schedule;
    scheduler->ComputeSchedule({{klass->loid(), 3}}, schedule.Sink());
    world.kernel.RunFor(Duration::Seconds(5));
    ASSERT_TRUE(schedule.Ready());
    ASSERT_TRUE(schedule.Get().ok());
    for (const ObjectMapping& m : schedule.Get()->masters[0].mappings) {
      EXPECT_NE(m.host, dead);
    }
  }
  // Further negotiations fail fast (no RPC round trip) while open.
  const std::uint64_t failed_before =
      world.enactor->stats().reservations_failed;
  Await<ScheduleFeedback> fast;
  world.enactor->MakeReservations(request, fast.Sink());
  world.kernel.RunFor(Duration::Seconds(1));
  ASSERT_TRUE(fast.Ready());
  EXPECT_FALSE(fast.Get()->success);
  EXPECT_GE(world.enactor->stats().breaker_open, 1u);
  EXPECT_EQ(world.enactor->stats().reservations_failed, failed_before);
}

TEST_F(FailureTest, BreakerReProbeRestoresPartitionedHost) {
  TestWorld world(testing::TestWorldConfig{.hosts = 4, .domains = 2});
  world.Populate();
  ClassObject* klass = world.MakeClass("app");
  EnactorOptions& opts = world.enactor->options();
  opts.rpc_timeout = Duration::Seconds(2);
  opts.retry.max_attempts = 1;
  world.enactor->health().options().host_failure_threshold = 2;
  world.enactor->health().options().host_cooldown = Duration::Seconds(30);
  const Loid target = world.hosts[1]->loid();  // domain 1
  world.kernel.network().AddPartition(
      0, 1, world.kernel.Now(), world.kernel.Now() + Duration::Seconds(60));

  ScheduleRequestList request;
  MasterSchedule master;
  ObjectMapping mapping;
  mapping.class_loid = klass->loid();
  mapping.host = target;
  mapping.vault = world.vaults[1]->loid();
  master.mappings.push_back(mapping);
  request.masters.push_back(master);
  for (int round = 0; round < 2; ++round) {
    Await<ScheduleFeedback> feedback;
    world.enactor->MakeReservations(request, feedback.Sink());
    world.kernel.RunFor(Duration::Seconds(5));
    ASSERT_TRUE(feedback.Ready());
    EXPECT_FALSE(feedback.Get()->success);
  }
  ASSERT_EQ(world.enactor->health().HostState(target), BreakerState::kOpen);

  // Past the partition AND the cooldown, the breaker is half-open; the
  // next reservation is the probe that closes it.
  world.kernel.RunFor(Duration::Seconds(70));
  ASSERT_EQ(world.enactor->health().HostState(target),
            BreakerState::kHalfOpen);
  EXPECT_TRUE(world.enactor->health().Healthy(target));
  Await<ScheduleFeedback> probe;
  world.enactor->MakeReservations(request, probe.Sink());
  world.Run();
  ASSERT_TRUE(probe.Ready());
  EXPECT_TRUE(probe.Get()->success);
  EXPECT_GE(world.enactor->stats().breaker_probes, 1u);
  EXPECT_EQ(world.enactor->health().HostState(target), BreakerState::kClosed);
}

TEST_F(FailureTest, SameSeedChaosRunsAreDeterministic) {
  // The chaos harness's core guarantee: an identical seeded world under
  // loss + partition + retries produces identical outcomes and an
  // identical metrics snapshot, run to run.
  auto run_once = []() {
    NetworkParams net;
    net.inter_domain_loss = 0.1;
    net.seed = 4242;
    TestWorld world(
        testing::TestWorldConfig{.hosts = 6, .domains = 2, .net = net});
    world.kernel.network().AddPartition(
        0, 1, world.kernel.Now() + Duration::Seconds(30),
        world.kernel.Now() + Duration::Seconds(60));
    world.Populate();
    ClassObject* klass = world.MakeClass("app");
    world.enactor->options().rpc_timeout = Duration::Seconds(2);
    world.enactor->options().retry.max_attempts = 3;
    auto* scheduler = world.kernel.AddActor<IrsScheduler>(
        world.kernel.minter().Mint(LoidSpace::kService, 0),
        world.collection->loid(), world.enactor->loid(), 4, 11);
    std::string outcomes;
    for (int round = 0; round < 4; ++round) {
      scheduler->ScheduleAndEnact({{klass->loid(), 2}}, RunOptions{2, 2},
                                  [&](Result<RunOutcome> outcome) {
                                    outcomes +=
                                        outcome.ok() && outcome->success
                                            ? 'S'
                                            : 'F';
                                  });
      world.kernel.RunFor(Duration::Seconds(30));
    }
    // No exclusions: wall time routes through the kernel's WallClock,
    // which is pinned by default, so even collection_query_wall_us is
    // byte-identical across same-seed runs.
    return outcomes + "\n" + world.kernel.metrics().SnapshotJson();
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST_F(FailureTest, PartitionDuringPushHealsOnNextReassessment) {
  // Split the collection (domain 0) from a 2-domain world's domain 1.
  TestWorld world(testing::TestWorldConfig{.hosts = 4, .domains = 2});
  world.kernel.network().AddPartition(0, 1, world.kernel.Now(),
                                      world.kernel.Now() +
                                          Duration::Minutes(5));
  world.Populate();
  // Only the domain-0 hosts' records arrived.
  EXPECT_EQ(world.collection->record_count(), 2u);
  // The partition heals; the next reassessment pushes the missing two.
  world.kernel.RunFor(Duration::Minutes(6));
  for (auto* host : world.hosts) host->ReassessState();
  world.kernel.RunFor(Duration::Minutes(1));
  EXPECT_EQ(world.collection->record_count(), 4u);
}

}  // namespace
}  // namespace legion
