// Flight-recorder acceptance (ISSUE 6): a chaos scenario whose breaker
// opens mid-run must leave a decision-audit trail from which
// ExplainMapping reconstructs the full placement story -- the
// suspect-skip, the transient-timeout retry, and the final grant -- and
// every observability export must be byte-identical across same-seed
// runs and must not perturb the simulation it observes.
//
// The scenario (all timing deterministic):
//   domain 0: collection + enactor + scheduler     (control plane)
//   domain 1: host GOOD                            (briefly partitioned)
//   domain 2: host BAD                             (partitioned for good)
// Phase A partitions d0<->d2 and drives reservations at BAD until its
// breaker opens.  Phase B briefly partitions d0<->d1 and schedules one
// instance: the scheduler suspect-skips BAD, aims GOOD, the first
// reservation attempt times out inside the partition window, and the
// retry lands after it heals.
#include <gtest/gtest.h>

#include "core/schedulers/ranked_scheduler.h"
#include "test_world.h"

namespace legion::testing {
namespace {

struct ChaosArtifacts {
  bool phase_a_failed = false;
  bool phase_b_success = false;
  std::uint64_t nid = 0;
  std::uint64_t events = 0;
  std::string metrics;
  std::string timeline;
  std::string trace;
  std::string audit;
  std::string explain;
  std::string good_host;
  std::string bad_host;
};

ChaosArtifacts RunChaos(bool observe) {
  SimKernel kernel;
  auto* collection = kernel.AddActor<CollectionObject>(
      kernel.minter().Mint(LoidSpace::kService, 0));
  kernel.network().RegisterEndpoint(collection->loid(), 0);
  auto* enactor = kernel.AddActor<EnactorObject>(
      kernel.minter().Mint(LoidSpace::kService, 0));

  // Tight, jitter-free timeouts so the phase windows are exact.
  EnactorOptions& opts = enactor->options();
  opts.rpc_timeout = Duration::Seconds(2);
  opts.retry.max_attempts = 3;
  opts.retry.base_delay = Duration::Seconds(2);
  opts.retry.multiplier = 1.0;
  opts.retry.jitter_fraction = 0.0;
  HealthOptions& health = enactor->health().options();
  health.host_failure_threshold = 3;
  health.domain_failure_threshold = 100;  // host breaker tells the story
  health.host_cooldown = Duration::Minutes(30);

  HostObject* hosts[2];
  VaultObject* vaults[2];
  for (int i = 0; i < 2; ++i) {
    const auto domain = static_cast<std::uint32_t>(i + 1);
    VaultSpec vault_spec;
    vault_spec.name = i == 0 ? "vault_good" : "vault_bad";
    vault_spec.domain = domain;
    vaults[i] = kernel.AddActor<VaultObject>(
        kernel.minter().Mint(LoidSpace::kVault, domain), vault_spec);
    HostSpec host_spec;
    host_spec.name = i == 0 ? "GOOD" : "BAD";
    host_spec.cpus = 4;
    host_spec.oversubscription = 2.0;
    host_spec.memory_mb = 1024;
    host_spec.domain = domain;
    host_spec.load.initial = 0.0;
    host_spec.load.mean = 0.0;
    host_spec.load.volatility = 0.0;
    hosts[i] = kernel.AddActor<HostObject>(
        kernel.minter().Mint(LoidSpace::kHost, domain), host_spec,
        /*secret=*/2000 + i);
    hosts[i]->AddCompatibleVault(vaults[i]->loid());
    hosts[i]->AddCollection(collection->loid());
  }
  HostObject* good = hosts[0];
  HostObject* bad = hosts[1];

  std::vector<Implementation> impls;
  Implementation impl;
  impl.arch = "x86";
  impl.os_name = "Linux";
  impls.push_back(impl);
  auto* klass = kernel.AddActor<ClassObject>(Loid(LoidSpace::kClass, 0, 100),
                                             "chaos_app", std::move(impls));
  kernel.network().RegisterEndpoint(klass->loid(), 0);
  klass->SetInstanceRequirements(32, 0.5);
  klass->SetKnownResources({{good->loid(), vaults[0]->loid()},
                            {bad->loid(), vaults[1]->loid()}});

  if (observe) {
    kernel.audit().Enable();
    kernel.profiler().Enable();
    obs::TimeSeriesRecorder& recorder = kernel.recorder();
    recorder.options().sample_period = Duration::Seconds(1);
    recorder.WatchCounter("kernel/messages_sent",
                          kernel.metrics().GetCounter(
                              "messages_sent", {{"component", "kernel"}}));
    recorder.Watch("kernel/queue_depth",
                   [&kernel] { return static_cast<double>(kernel.queue_size()); },
                   /*cumulative=*/false);
    recorder.Start(kernel.Now());
  }

  // Populate the Collection before any partition.
  good->ReassessState();
  bad->ReassessState();
  kernel.RunFor(Duration::Seconds(2));

  // Phase A: cut off BAD and fail reservations at it until the breaker
  // opens (3 attempts x kTimeout = host_failure_threshold).
  kernel.network().AddPartition(0, 2, kernel.Now() + Duration::Seconds(1),
                                kernel.Now() + Duration::Minutes(10));
  kernel.RunFor(Duration::Seconds(2));

  ScheduleRequestList phase_a;
  MasterSchedule master;
  ObjectMapping mapping;
  mapping.class_loid = klass->loid();
  mapping.host = bad->loid();
  mapping.vault = vaults[1]->loid();
  master.mappings.push_back(mapping);
  phase_a.masters.push_back(master);
  Await<ScheduleFeedback> feedback;
  enactor->MakeReservations(phase_a, feedback.Sink());
  kernel.RunFor(Duration::Seconds(20));

  ChaosArtifacts result;
  result.phase_a_failed =
      feedback.Ready() && feedback.Get().ok() && !feedback.Get()->success;

  // Phase B: GOOD briefly unreachable, so the chosen mapping's first
  // attempt times out and the retry lands after the window heals.
  kernel.network().AddPartition(0, 1, kernel.Now() + Duration::Seconds(1),
                                kernel.Now() + Duration::Seconds(5));
  kernel.RunFor(Duration::Seconds(2));
  auto* scheduler = kernel.AddActor<LoadAwareScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0), collection->loid(),
      enactor->loid());
  Await<RunOutcome> outcome;
  scheduler->ScheduleAndEnact({{klass->loid(), 1}}, RunOptions{},
                              outcome.Sink());
  kernel.RunFor(Duration::Seconds(30));

  result.phase_b_success = outcome.Ready() && outcome.Get().ok() &&
                           outcome.Get()->success;
  if (outcome.Ready() && outcome.Get().ok()) {
    result.nid = outcome.Get()->feedback.negotiation_id;
  }
  result.events = kernel.stats().events_run;
  result.metrics = kernel.metrics().SnapshotJson();
  result.timeline = kernel.recorder().ToJson();
  result.trace = kernel.recorder().ToChromeJson();
  result.audit = kernel.audit().ToJsonl();
  result.explain = kernel.audit().ExplainMapping(result.nid, 0);
  result.good_host = good->loid().ToString();
  result.bad_host = bad->loid().ToString();
  return result;
}

TEST(FlightRecorder, ExplainReconstructsPlacementStory) {
  const ChaosArtifacts run = RunChaos(/*observe=*/true);
  ASSERT_TRUE(run.phase_a_failed);
  ASSERT_TRUE(run.phase_b_success);
  ASSERT_NE(run.nid, 0u);

  // The story names the suspect-skip of the breaker-open host...
  EXPECT_NE(run.explain.find("sched_suspect_skip scheduler=load-aware host=" +
                             run.bad_host + " reason=breaker_open"),
            std::string::npos)
      << run.explain;
  // ...the choice of the healthy host with the policy's rationale...
  EXPECT_NE(run.explain.find("sched_choice"), std::string::npos);
  EXPECT_NE(run.explain.find("host=" + run.good_host), std::string::npos);
  // ...the transient-timeout retry and the final grant, in order...
  const std::size_t requested = run.explain.find("reserve_requested");
  const std::size_t retry = run.explain.find("reserve_retry");
  const std::size_t granted = run.explain.find("reserve_granted");
  ASSERT_NE(requested, std::string::npos) << run.explain;
  ASSERT_NE(retry, std::string::npos) << run.explain;
  ASSERT_NE(granted, std::string::npos) << run.explain;
  EXPECT_LT(requested, retry);
  EXPECT_LT(retry, granted);
  // ...and the outcome.
  EXPECT_NE(run.explain.find("slot 0: granted on " + run.good_host),
            std::string::npos)
      << run.explain;
  EXPECT_NE(run.explain.find("negotiation_success"), std::string::npos);

  // Phase A's breaker history is in the raw audit (separate negotiation).
  EXPECT_NE(run.audit.find("reserve_failed"), std::string::npos);
  EXPECT_NE(run.audit.find("negotiation_failed"), std::string::npos);
}

TEST(FlightRecorder, ExportsAreByteIdenticalAcrossSameSeedRuns) {
  const ChaosArtifacts a = RunChaos(/*observe=*/true);
  const ChaosArtifacts b = RunChaos(/*observe=*/true);
  EXPECT_EQ(a.timeline, b.timeline);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.audit, b.audit);
  EXPECT_EQ(a.explain, b.explain);
  EXPECT_EQ(a.metrics, b.metrics);
  EXPECT_FALSE(a.timeline.find("\"series\"") == std::string::npos);
  EXPECT_NE(a.audit.find("\"kind\":\"sched_suspect_skip\""),
            std::string::npos);
}

TEST(FlightRecorder, ObservabilityDoesNotPerturbTheSimulation) {
  const ChaosArtifacts observed = RunChaos(/*observe=*/true);
  const ChaosArtifacts plain = RunChaos(/*observe=*/false);
  // Recorder + profiler + audit on: identical event count and identical
  // metrics fingerprint (the registry is untouched by all three).
  EXPECT_EQ(observed.events, plain.events);
  EXPECT_EQ(observed.metrics, plain.metrics);
  EXPECT_EQ(observed.phase_b_success, plain.phase_b_success);
  EXPECT_EQ(observed.nid, plain.nid);
  // And the plain run recorded nothing.
  EXPECT_EQ(plain.audit, "");
  EXPECT_EQ(plain.timeline.find("\"t\":"), std::string::npos);
}

}  // namespace
}  // namespace legion::testing
