// Federation properties (DESIGN.md §10): after the deltas quiesce, the
// hierarchy is transparent -- a domain-scoped query against the owning
// sub-Collection answers exactly what a global query filtered to that
// domain answers -- and same-seed federated universes are bit-identical.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "workload/metacomputer.h"

namespace legion {
namespace {

NetworkParams Net(std::uint64_t seed) {
  NetworkParams params;
  params.jitter_fraction = 0.1;  // jitter on: properties must survive it
  params.seed = seed;
  return params;
}

MetacomputerConfig FederatedConfig(std::uint64_t seed, std::size_t domains) {
  MetacomputerConfig config;
  config.domains = domains;
  config.hosts_per_domain = 5;
  config.heterogeneous = true;
  config.seed = seed;
  config.load.volatility = 0.2;
  config.start_reassessment = true;
  config.federated = true;
  config.delta_push_period = Duration::Seconds(3);
  return config;
}

std::string Render(const CollectionData& records) {
  std::ostringstream out;
  for (const CollectionRecord& record : records) {
    out << record.member.ToString() << " => "
        << record.attributes.ToString() << '\n';
  }
  return out.str();
}

class FederationEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FederationEquivalenceTest, ScopedSubEqualsGlobalFilteredToDomain) {
  const std::uint64_t seed = GetParam();
  SimKernel kernel(Net(seed));
  MetacomputerConfig config = FederatedConfig(seed, 4);
  // Freeze the world after populate so sub and root converge: once the
  // journals drain, both views describe the same records.
  config.start_reassessment = false;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  kernel.RunFor(config.delta_push_period * 2 + Duration::Seconds(2));

  CollectionFederation* federation = metacomputer.federation();
  ASSERT_NE(federation, nullptr);
  CollectionObject* root = federation->root();
  ASSERT_EQ(root->record_count(), config.domains * config.hosts_per_domain);

  std::size_t scoped_total = 0;
  for (const auto& [domain, sub] : federation->subs()) {
    auto local = sub->QueryLocal("true");
    ASSERT_TRUE(local.ok());
    QueryOptions scoped;
    scoped.domain_scope = static_cast<std::int64_t>(domain);
    auto global = root->QueryLocal("true", scoped);
    ASSERT_TRUE(global.ok());
    EXPECT_EQ(Render(*local), Render(*global)) << "domain " << domain;
    scoped_total += global->size();
  }
  // The domain scopes partition the aggregate: nothing lost, nothing
  // double-counted.
  EXPECT_EQ(scoped_total, root->record_count());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederationEquivalenceTest,
                         ::testing::Values(5, 23, 404));

// Full federated universe fingerprint: membership views, delta-machinery
// counters, and kernel totals.
std::string RunFederatedScenario(std::uint64_t seed) {
  SimKernel kernel(Net(seed));
  Metacomputer metacomputer(&kernel, FederatedConfig(seed, 3));
  metacomputer.PopulateCollection();
  kernel.RunFor(Duration::Minutes(2));

  CollectionFederation* federation = metacomputer.federation();
  std::ostringstream fingerprint;
  auto aggregate = federation->root()->QueryLocal("true");
  fingerprint << "root:\n" << Render(*aggregate);
  for (const auto& [domain, sub] : federation->subs()) {
    fingerprint << "sub" << domain << ":\n" << Render(*sub->QueryLocal("true"));
  }
  fingerprint << "pushes:" << federation->root()->delta_pushes()
              << " records:" << federation->root()->delta_records()
              << " pulls:" << federation->root()->refresh_pulls()
              << " stale:" << federation->root()->stale_answers() << '\n';
  const KernelStats& stats = kernel.stats();
  fingerprint << "events:" << stats.events_run
              << " msgs:" << stats.messages_sent
              << " bytes:" << stats.bytes_sent << '\n';
  return fingerprint.str();
}

class FederationDeterminismTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FederationDeterminismTest, SameSeedSameFederation) {
  EXPECT_EQ(RunFederatedScenario(GetParam()),
            RunFederatedScenario(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FederationDeterminismTest,
                         ::testing::Values(2, 11, 1999));

}  // namespace
}  // namespace legion
