// Property tests: Enactor negotiation invariants across random refusal
// patterns and schedule shapes.
#include <gtest/gtest.h>

#include "core/schedulers/irs_scheduler.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

struct Scenario {
  std::uint64_t seed;
  std::size_t instances;
  std::size_t nsched;
};

class EnactorPropertyTest : public ::testing::TestWithParam<Scenario> {};

TEST_P(EnactorPropertyTest, NegotiationInvariants) {
  const Scenario scenario = GetParam();
  TestWorld world(testing::TestWorldConfig{.hosts = 8});
  Rng rng(scenario.seed);
  // A random subset of hosts refuses our domain.
  std::vector<bool> refusing(world.hosts.size(), false);
  for (std::size_t i = 0; i < world.hosts.size(); ++i) {
    if (rng.Bernoulli(0.3)) {
      refusing[i] = true;
      world.hosts[i]->SetPolicy(std::make_unique<DomainRefusalPolicy>(
          std::vector<std::uint32_t>{0}));
    }
  }
  world.Populate();
  auto* klass = world.MakeClass("app", 32, 0.5);
  auto* scheduler = world.kernel.AddActor<IrsScheduler>(
      world.kernel.minter().Mint(LoidSpace::kService, 0),
      world.collection->loid(), world.enactor->loid(), scenario.nsched,
      scenario.seed * 7 + 1);

  Await<ScheduleRequestList> schedule;
  scheduler->ComputeSchedule({{klass->loid(), scenario.instances}},
                             schedule.Sink());
  world.Run();
  ASSERT_TRUE(schedule.Ready());
  if (!schedule.Get().ok()) GTEST_SKIP() << "no schedule generated";

  Await<ScheduleFeedback> feedback;
  world.enactor->MakeReservations(*schedule.Get(), feedback.Sink());
  world.Run();
  ASSERT_TRUE(feedback.Ready());
  ASSERT_TRUE(feedback.Get().ok());
  const ScheduleFeedback& result = *feedback.Get();

  // INVARIANT: without variants there is nothing to thrash.  (With
  // random IRS variants a later variant may legitimately reintroduce a
  // mapping an earlier variant displaced -- avoiding that requires the
  // Scheduler to "structure the variant schedules", which k-of-n does
  // and plain IRS does not; see k_of_n_scheduler_test for the
  // zero-thrash guarantee on structured variants.)
  if (scenario.nsched == 1) {
    EXPECT_EQ(world.enactor->stats().rereservations, 0u);
  }

  if (result.success) {
    // INVARIANT: mappings and tokens agree in shape.
    ASSERT_EQ(result.reserved_mappings.size(), scenario.instances);
    ASSERT_EQ(result.tokens.size(), scenario.instances);
    for (std::size_t i = 0; i < scenario.instances; ++i) {
      // Tokens name the host they came from and verify there.
      EXPECT_EQ(result.tokens[i].host, result.reserved_mappings[i].host);
      auto* host = dynamic_cast<HostObject*>(
          world.kernel.FindActor(result.reserved_mappings[i].host));
      ASSERT_NE(host, nullptr);
      Await<bool> check;
      host->CheckReservation(result.tokens[i], check.Sink());
      EXPECT_TRUE(*check.Get()) << "token " << i << " not live at its host";
      // No refusing host ever appears in a successful schedule.
      for (std::size_t h = 0; h < world.hosts.size(); ++h) {
        if (world.hosts[h]->loid() == result.reserved_mappings[i].host) {
          EXPECT_FALSE(refusing[h]) << "placed on a refusing host";
        }
      }
    }
    // Accounting: granted = held + cancelled-along-the-way.
    const EnactorStats& stats = world.enactor->stats();
    EXPECT_EQ(stats.reservations_granted,
              scenario.instances + stats.reservations_cancelled);
  } else {
    // INVARIANT: failure leaks no reservations anywhere.
    for (auto* host : world.hosts) {
      EXPECT_EQ(host->reservations().live_count(), 0u)
          << "leaked reservation on " << host->spec().name;
    }
  }
}

std::vector<Scenario> MakeScenarios() {
  std::vector<Scenario> scenarios;
  std::uint64_t seed = 1;
  for (std::size_t instances : {1UL, 3UL, 6UL}) {
    for (std::size_t nsched : {1UL, 3UL, 6UL}) {
      for (int repeat = 0; repeat < 3; ++repeat) {
        scenarios.push_back({seed++, instances, nsched});
      }
    }
  }
  return scenarios;
}

INSTANTIATE_TEST_SUITE_P(
    Scenarios, EnactorPropertyTest, ::testing::ValuesIn(MakeScenarios()),
    [](const ::testing::TestParamInfo<Scenario>& info) {
      return "seed" + std::to_string(info.param.seed) + "_k" +
             std::to_string(info.param.instances) + "_n" +
             std::to_string(info.param.nsched);
    });

}  // namespace
}  // namespace legion
