// Property tests: ReservationTable invariants under random operation
// sequences (paper Table 2 semantics must hold for every interleaving).
#include <gtest/gtest.h>

#include <vector>

#include "base/rng.h"
#include "resources/reservation.h"

namespace legion {
namespace {

constexpr std::uint32_t kCpus = 4;
constexpr double kOversub = 2.0;
constexpr std::size_t kMemory = 1024;

struct Issued {
  ReservationToken token;
  double cpu;
  std::size_t memory;
};

class ReservationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReservationPropertyTest, InvariantsHoldUnderRandomOperations) {
  Rng rng(GetParam());
  TokenAuthority authority(GetParam() ^ 0xABCD);
  ReservationTable table(HostCapacity{kCpus, kMemory, kOversub});
  std::vector<Issued> live;  // tokens we believe to be live
  SimTime now(0);

  for (int step = 0; step < 400; ++step) {
    now = now + Duration::Seconds(rng.Uniform(0.0, 30.0));
    const double op = rng.UniformDouble();
    if (op < 0.5) {
      // Admit a random reservation.
      ReservationType type;
      type.share = rng.Bernoulli(0.7);
      type.reuse = rng.Bernoulli(0.5);
      const SimTime start = now + Duration::Seconds(rng.Uniform(0.0, 600.0));
      const Duration duration = Duration::Seconds(rng.Uniform(1.0, 1800.0));
      const double cpu = rng.Uniform(0.1, 2.0);
      const auto memory = static_cast<std::size_t>(rng.UniformInt(8, 512));
      ReservationToken token = authority.Issue(
          Loid(LoidSpace::kHost, 0, 1), Loid(LoidSpace::kVault, 0, 2), start,
          duration, Duration::Zero(), type);
      if (table.Admit(token, Loid(LoidSpace::kService, 0, 9), memory, cpu,
                      now)
              .ok()) {
        live.push_back({token, cpu, memory});
      }
    } else if (op < 0.7 && !live.empty()) {
      // Cancel a random live reservation.
      const std::size_t i = rng.Index(live.size());
      table.Cancel(live[i].token, now);
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(i));
    } else if (op < 0.9 && !live.empty()) {
      // Redeem a random one.
      const std::size_t i = rng.Index(live.size());
      (void)table.Redeem(live[i].token, now);
    } else {
      table.ExpireStale(now);
    }

    // INVARIANT 1: shared CPU admitted at any sampled instant never
    // exceeds capacity * oversubscription.
    for (int probe = 0; probe < 4; ++probe) {
      const SimTime t =
          now + Duration::Seconds(rng.Uniform(0.0, 2400.0));
      EXPECT_LE(table.SharedCpuLoadAt(t),
                kCpus * kOversub + 1e-6)
          << "at step " << step;
    }

    // INVARIANT 2: a live unshared reservation never overlaps any other
    // live reservation.
    std::vector<const ReservationRecord*> records;
    for (const Issued& issued : live) {
      const ReservationRecord* record = table.Find(issued.token.serial);
      if (record != nullptr &&
          (record->state == ReservationState::kPending ||
           record->state == ReservationState::kConfirmed)) {
        records.push_back(record);
      }
    }
    for (const auto* a : records) {
      if (a->token.type.share) continue;
      for (const auto* b : records) {
        if (a == b) continue;
        const SimTime a_end = a->token.start + a->token.duration;
        const SimTime b_end = b->token.start + b->token.duration;
        const bool overlap =
            a->token.start < b_end && b->token.start < a_end;
        EXPECT_FALSE(overlap)
            << "unshared #" << a->token.serial << " overlaps #"
            << b->token.serial << " at step " << step;
      }
    }
  }

  // INVARIANT 3: accounting identity.
  EXPECT_EQ(table.size(), table.admitted());
  EXPECT_GE(table.admitted(), table.live_count());
}

TEST_P(ReservationPropertyTest, OneShotNeverRedeemsTwice) {
  Rng rng(GetParam() * 3 + 1);
  TokenAuthority authority(GetParam());
  ReservationTable table(HostCapacity{kCpus, kMemory, kOversub});
  for (int i = 0; i < 50; ++i) {
    ReservationType type;
    type.share = true;
    type.reuse = false;
    const SimTime now(i * 1000000);
    ReservationToken token = authority.Issue(
        Loid(LoidSpace::kHost, 0, 1), Loid(LoidSpace::kVault, 0, 2), now,
        Duration::Minutes(5), Duration::Zero(), type);
    if (!table.Admit(token, Loid(), 8, 0.1, now).ok()) continue;
    int redeems = 0;
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (table.Redeem(token, now + Duration::Seconds(attempt)).ok()) {
        ++redeems;
      }
    }
    EXPECT_EQ(redeems, 1);
  }
}

TEST_P(ReservationPropertyTest, ExpiryIsMonotone) {
  // Once Check() reports false for a token, it never reports true again.
  Rng rng(GetParam() ^ 0x77);
  TokenAuthority authority(GetParam());
  ReservationTable table(HostCapacity{kCpus, kMemory, kOversub});
  std::vector<ReservationToken> tokens;
  for (int i = 0; i < 30; ++i) {
    ReservationToken token = authority.Issue(
        Loid(LoidSpace::kHost, 0, 1), Loid(LoidSpace::kVault, 0, 2),
        SimTime(rng.UniformInt(0, 1000000)),
        Duration::Seconds(rng.Uniform(1.0, 100.0)), Duration::Zero(),
        ReservationType::OneShotTimesharing());
    if (table.Admit(token, Loid(), 8, 0.1, SimTime(0)).ok()) {
      tokens.push_back(token);
    }
  }
  std::vector<bool> dead(tokens.size(), false);
  for (std::int64_t t = 0; t < 2000000; t += 100000) {
    for (std::size_t i = 0; i < tokens.size(); ++i) {
      const bool alive = table.Check(tokens[i], SimTime(t));
      if (dead[i]) {
        EXPECT_FALSE(alive) << "token resurrected at t=" << t;
      }
      if (!alive) dead[i] = true;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReservationPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 13));

// ---- Boundary-instant regression tests (ISSUE 4 satellite) -----------------
//
// The window is half-open [start, start + duration): at the exact instant
// now == start + duration the reservation is dead, and every entry point
// must agree -- Check, Redeem, ExpireStale, Cancel, and Admit.

TEST(ReservationBoundaryTest, WindowEdgeIsConsistentAcrossOperations) {
  TokenAuthority authority(11);
  ReservationTable table(HostCapacity{kCpus, kMemory, kOversub});
  const SimTime start(0);
  const Duration duration = Duration::Seconds(10);
  const SimTime edge = start + duration;
  ReservationToken token = authority.Issue(
      Loid(LoidSpace::kHost, 0, 1), Loid(LoidSpace::kVault, 0, 2), start,
      duration, Duration::Zero(), ReservationType::ReusableTimesharing());
  ASSERT_TRUE(table.Admit(token, Loid(), 8, 0.1, start).ok());

  // One tick before the edge: alive everywhere.
  EXPECT_TRUE(table.Check(token, edge - Duration::Micros(1)));
  // At the edge, every operation classifies the reservation as dead.
  EXPECT_FALSE(table.Check(token, edge));
  EXPECT_EQ(table.Redeem(token, edge).code(), ErrorCode::kExpired);
  EXPECT_FALSE(table.Cancel(token, edge));
  const ReservationRecord* record = table.Find(token.serial);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, ReservationState::kExpired);
}

TEST(ReservationBoundaryTest, CancelAtWindowEndCountsExpiredNotCancelled) {
  // Regression: Cancel used to be time-unaware, so cancelling a
  // reservation whose window had already passed flipped it to kCancelled
  // and bumped cancelled(), contradicting what ExpireStale would have
  // said one call earlier.
  TokenAuthority authority(12);
  ReservationTable table(HostCapacity{kCpus, kMemory, kOversub});
  ReservationToken token = authority.Issue(
      Loid(LoidSpace::kHost, 0, 1), Loid(LoidSpace::kVault, 0, 2), SimTime(0),
      Duration::Seconds(5), Duration::Zero(),
      ReservationType::OneShotTimesharing());
  ASSERT_TRUE(table.Admit(token, Loid(), 8, 0.1, SimTime(0)).ok());
  EXPECT_FALSE(table.Cancel(token, SimTime(0) + Duration::Seconds(5)));
  EXPECT_EQ(table.cancelled(), 0u);
  EXPECT_EQ(table.expired(), 1u);
  const ReservationRecord* record = table.Find(token.serial);
  ASSERT_NE(record, nullptr);
  EXPECT_EQ(record->state, ReservationState::kExpired);
}

TEST(ReservationBoundaryTest, DeadOnArrivalWindowRefused) {
  // Regression: Admit accepted a window whose end coincided with (or
  // preceded) `now`; the record was born dead and expired on the next
  // ExpireStale pass, inflating admitted() with corpses.
  TokenAuthority authority(13);
  ReservationTable table(HostCapacity{kCpus, kMemory, kOversub});
  ReservationToken token = authority.Issue(
      Loid(LoidSpace::kHost, 0, 1), Loid(LoidSpace::kVault, 0, 2), SimTime(0),
      Duration::Seconds(10), Duration::Zero(),
      ReservationType::ReusableTimesharing());
  const SimTime edge = SimTime(0) + Duration::Seconds(10);
  Status at_edge = table.Admit(token, Loid(), 8, 0.1, edge);
  EXPECT_EQ(at_edge.code(), ErrorCode::kInvalidArgument);
  Status long_gone = table.Admit(token, Loid(), 8, 0.1,
                                 edge + Duration::Hours(1));
  EXPECT_EQ(long_gone.code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.rejected(), 2u);
  // One tick before the edge the same window is still admissible.
  EXPECT_TRUE(
      table.Admit(token, Loid(), 8, 0.1, edge - Duration::Micros(1)).ok());
}

}  // namespace
}  // namespace legion
