// Planner equivalence (the query engine's core contract): for any
// record population and any query, the indexed path returns exactly what
// the full scan returns -- same records, same order, same bytes -- and
// top-k options take a prefix of that order.  Queries are generated to
// cover every planner shape: sargable, partially sargable, and the
// whole-scan fallback.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "core/collection.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

Loid M(std::uint64_t serial) { return Loid(LoidSpace::kHost, 0, 500 + serial); }

AttributeDatabase RandomRecord(Rng& rng) {
  AttributeDatabase db;
  const char* arches[] = {"x86", "sparc", "alpha", "mips"};
  const char* oses[] = {"Linux", "Solaris", "OSF1", "IRIX"};
  db.Set("host_arch", arches[rng.Index(4)]);
  db.Set("host_os_name", oses[rng.Index(4)]);
  db.Set("host_load", rng.Uniform(0.0, 3.0));
  db.Set("host_cpus", rng.UniformInt(1, 16));
  if (rng.Bernoulli(0.5)) db.Set("optional_attr", rng.UniformInt(0, 100));
  if (rng.Bernoulli(0.3)) db.Set("flag", rng.Bernoulli(0.5));
  return db;
}

std::string RandomPredicate(Rng& rng) {
  const char* arches[] = {"x86", "sparc", "alpha", "mips"};
  switch (rng.Index(8)) {
    case 0:
      return "$host_arch == \"" + std::string(arches[rng.Index(4)]) + "\"";
    case 1: {
      const char* ops[] = {"<", "<=", ">", ">="};
      return "$host_load " + std::string(ops[rng.Index(4)]) + " " +
             std::to_string(rng.Uniform(0.0, 3.0));
    }
    case 2:
      return "$host_cpus == " + std::to_string(rng.UniformInt(1, 16));
    case 3:
      return "$host_cpus != " + std::to_string(rng.UniformInt(1, 16));
    case 4:
      return "defined($optional_attr)";
    case 5:
      return "match($host_os_name, \"(Li|IR)\")";
    case 6:
      return "$flag";
    default:
      return std::to_string(rng.Uniform(0.0, 100.0)) + " > $optional_attr";
  }
}

// Random boolean combinations: every planner shape from fully sargable
// through partially sargable to nothing-sargable.
std::string RandomQuery(Rng& rng, int depth = 2) {
  if (depth == 0 || rng.Bernoulli(0.4)) return RandomPredicate(rng);
  switch (rng.Index(3)) {
    case 0:
      return "(" + RandomQuery(rng, depth - 1) + " and " +
             RandomQuery(rng, depth - 1) + ")";
    case 1:
      return "(" + RandomQuery(rng, depth - 1) + " or " +
             RandomQuery(rng, depth - 1) + ")";
    default:
      return "not (" + RandomQuery(rng, depth - 1) + ")";
  }
}

// Byte-level fingerprint of a result set: member, update count, and the
// full attribute rendering of every record, in order.
std::string Fingerprint(const CollectionData& data) {
  std::string out;
  for (const CollectionRecord& record : data) {
    out += record.member.ToString();
    out += '#';
    out += std::to_string(record.update_count);
    out += '{';
    out += record.attributes.ToString();
    out += "}\n";
  }
  return out;
}

class PlannerEquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(PlannerEquivalenceTest, IndexedEqualsScan) {
  TestWorld world;
  Rng rng(GetParam());
  const std::size_t records = 50 + rng.Index(150);
  for (std::size_t i = 0; i < records; ++i) {
    Await<bool> joined;
    world.collection->JoinCollection(M(i), RandomRecord(rng), joined.Sink());
  }
  QueryOptions force;
  force.force_scan = true;
  for (int q = 0; q < 60; ++q) {
    const std::string text = RandomQuery(rng);
    auto indexed = world.collection->QueryLocal(text);
    auto scanned = world.collection->QueryLocal(text, force);
    ASSERT_TRUE(indexed.ok()) << text;
    ASSERT_TRUE(scanned.ok()) << text;
    EXPECT_EQ(Fingerprint(*indexed), Fingerprint(*scanned)) << text;
  }
}

TEST_P(PlannerEquivalenceTest, EquivalenceSurvivesUpdateChurn) {
  // Index maintenance under churn: records join, update, and leave
  // between queries; the indexed result must track the store exactly.
  TestWorld world;
  Rng rng(GetParam() ^ 0xabcd);
  QueryOptions force;
  force.force_scan = true;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 10; ++i) {
      const Loid member = M(rng.Index(60));
      switch (rng.Index(3)) {
        case 0: {
          Await<bool> done;
          world.collection->JoinCollection(member, RandomRecord(rng),
                                           done.Sink());
          break;
        }
        case 1: {
          Await<bool> done;
          world.collection->UpdateCollectionEntry(member, RandomRecord(rng),
                                                  done.Sink());
          break;
        }
        default: {
          Await<bool> done;
          world.collection->LeaveCollection(member, done.Sink());
          break;
        }
      }
    }
    const std::string text = RandomQuery(rng);
    auto indexed = world.collection->QueryLocal(text);
    auto scanned = world.collection->QueryLocal(text, force);
    ASSERT_TRUE(indexed.ok()) << text;
    EXPECT_EQ(Fingerprint(*indexed), Fingerprint(*scanned)) << text;
  }
}

TEST_P(PlannerEquivalenceTest, TopKIsAPrefixOfTheFullOrder) {
  TestWorld world;
  Rng rng(GetParam() ^ 0x7777);
  for (std::size_t i = 0; i < 80; ++i) {
    Await<bool> joined;
    world.collection->JoinCollection(M(i), RandomRecord(rng), joined.Sink());
  }
  for (int q = 0; q < 30; ++q) {
    const std::string text = RandomQuery(rng);
    for (const char* order_by : {"", "host_load"}) {
      QueryOptions full;
      full.order_by = order_by;
      auto all = world.collection->QueryLocal(text, full);
      ASSERT_TRUE(all.ok()) << text;
      QueryOptions topk = full;
      topk.max_results = 1 + rng.Index(8);
      auto top = world.collection->QueryLocal(text, topk);
      ASSERT_TRUE(top.ok()) << text;
      ASSERT_EQ(top->size(), std::min(topk.max_results, all->size())) << text;
      for (std::size_t i = 0; i < top->size(); ++i) {
        EXPECT_EQ((*top)[i].member, (*all)[i].member) << text;
      }
    }
  }
}

TEST_P(PlannerEquivalenceTest, SameSeedIsByteStable) {
  // Two independently built worlds with the same seed serve byte-equal
  // results for the same query stream (the repo-wide determinism rule;
  // the index path must not leak container iteration order).
  auto run = [seed = GetParam()]() {
    TestWorld world;
    Rng rng(seed ^ 0x5e5e);
    const std::size_t records = 100;
    for (std::size_t i = 0; i < records; ++i) {
      Await<bool> joined;
      world.collection->JoinCollection(M(i), RandomRecord(rng), joined.Sink());
    }
    std::string transcript;
    for (int q = 0; q < 25; ++q) {
      const std::string text = RandomQuery(rng);
      auto result = world.collection->QueryLocal(text);
      if (result.ok()) {
        transcript += text + "\n" + Fingerprint(*result);
      } else {
        transcript += text + "\nERROR\n";
      }
    }
    return transcript;
  };
  EXPECT_EQ(run(), run());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerEquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace legion
