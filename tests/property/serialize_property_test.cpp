// Property tests: serialization round trips and adversarial decoding.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/serialize.h"
#include "objects/opr.h"

namespace legion {
namespace {

AttrValue RandomValue(Rng& rng, int depth = 0) {
  const double pick = rng.UniformDouble();
  if (pick < 0.15) return AttrValue();
  if (pick < 0.30) return AttrValue(rng.Bernoulli(0.5));
  if (pick < 0.50) return AttrValue(rng.UniformInt(-1000000, 1000000));
  if (pick < 0.65) return AttrValue(rng.Uniform(-1e6, 1e6));
  if (pick < 0.85 || depth >= 2) {
    std::string s;
    const auto len = static_cast<std::size_t>(rng.UniformInt(0, 40));
    for (std::size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>(rng.UniformInt(32, 126)));
    }
    return AttrValue(std::move(s));
  }
  AttrList list;
  const auto n = static_cast<std::size_t>(rng.UniformInt(0, 5));
  for (std::size_t i = 0; i < n; ++i) {
    list.push_back(RandomValue(rng, depth + 1));
  }
  return AttrValue(std::move(list));
}

AttributeDatabase RandomDb(Rng& rng) {
  AttributeDatabase db;
  const auto n = static_cast<std::size_t>(rng.UniformInt(0, 20));
  for (std::size_t i = 0; i < n; ++i) {
    db.Set("attr" + std::to_string(rng.UniformInt(0, 30)), RandomValue(rng));
  }
  return db;
}

class SerializePropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SerializePropertyTest, AttributeDatabaseRoundTrips) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    AttributeDatabase db = RandomDb(rng);
    ByteWriter writer;
    writer.WriteAttributes(db);
    ByteReader reader(writer.bytes());
    auto restored = reader.ReadAttributes();
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(restored->size(), db.size());
    for (const auto& [name, value] : db) {
      const AttrValue* restored_value = restored->Get(name);
      ASSERT_NE(restored_value, nullptr) << name;
      EXPECT_EQ(*restored_value, value) << name;
    }
    EXPECT_TRUE(reader.exhausted());
  }
}

TEST_P(SerializePropertyTest, OprRoundTrips) {
  Rng rng(GetParam() ^ 0xBEEF);
  for (int i = 0; i < 30; ++i) {
    Opr opr;
    opr.object = Loid(LoidSpace::kObject,
                      static_cast<std::uint32_t>(rng.UniformInt(0, 9)),
                      rng.Next() % 100000);
    opr.class_loid = Loid(LoidSpace::kClass, 0, rng.Next() % 1000);
    opr.attributes = RandomDb(rng);
    const auto body_len = static_cast<std::size_t>(rng.UniformInt(0, 2000));
    opr.body.resize(body_len);
    for (auto& b : opr.body) b = static_cast<std::uint8_t>(rng.Next());
    opr.saved_at = SimTime(rng.UniformInt(0, 1000000000));

    auto decoded = Opr::Deserialize(opr.Serialize());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->object, opr.object);
    EXPECT_EQ(decoded->class_loid, opr.class_loid);
    EXPECT_EQ(decoded->body, opr.body);
    EXPECT_EQ(decoded->saved_at, opr.saved_at);
    EXPECT_EQ(decoded->attributes.size(), opr.attributes.size());
  }
}

TEST_P(SerializePropertyTest, TruncationAlwaysFailsCleanly) {
  // Every proper prefix of a valid encoding decodes to an error (never a
  // crash, never a bogus success with trailing garbage semantics).
  Rng rng(GetParam() ^ 0xCAFE);
  Opr opr;
  opr.object = Loid(LoidSpace::kObject, 0, 1);
  opr.class_loid = Loid(LoidSpace::kClass, 0, 2);
  opr.attributes = RandomDb(rng);
  opr.body = {1, 2, 3, 4, 5};
  auto bytes = opr.Serialize();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> prefix(bytes.begin(),
                                     bytes.begin() + static_cast<long>(cut));
    auto decoded = Opr::Deserialize(prefix);
    EXPECT_FALSE(decoded.ok()) << "prefix length " << cut << " decoded";
  }
}

TEST_P(SerializePropertyTest, RandomBytesNeverCrashTheDecoder) {
  Rng rng(GetParam() ^ 0xD00D);
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.UniformInt(0, 300)));
    for (auto& b : garbage) b = static_cast<std::uint8_t>(rng.Next());
    // Either outcome is fine; not crashing is the property.
    auto decoded = Opr::Deserialize(garbage);
    (void)decoded;
    ByteReader reader(garbage);
    auto attrs = reader.ReadAttributes();
    (void)attrs;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializePropertyTest,
                         ::testing::Range<std::uint64_t>(1, 7));

}  // namespace
}  // namespace legion
