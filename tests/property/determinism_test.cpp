// Reproducibility: identical seeds give bit-identical simulations --
// the property every experiment table relies on.
#include <gtest/gtest.h>

#include <sstream>

#include "core/schedulers/irs_scheduler.h"
#include "workload/executor.h"
#include "workload/metacomputer.h"

namespace legion {
namespace {

NetworkParams Net(std::uint64_t seed) {
  NetworkParams params;
  params.jitter_fraction = 0.1;  // jitter on: determinism must survive it
  params.seed = seed;
  return params;
}

// Runs a full scenario and produces a fingerprint of everything
// observable: placements, host states, kernel counters.
std::string RunScenario(std::uint64_t seed) {
  SimKernel kernel(Net(seed));
  MetacomputerConfig config;
  config.domains = 3;
  config.hosts_per_domain = 5;
  config.heterogeneous = true;
  config.seed = seed;
  config.load.volatility = 0.2;
  config.start_reassessment = true;
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  ClassObject* klass = metacomputer.MakeUniversalClass("app", 32, 0.5);
  auto* scheduler = kernel.AddActor<IrsScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid(), 4,
      seed * 13 + 1);
  std::ostringstream fingerprint;
  for (int round = 0; round < 3; ++round) {
    scheduler->ScheduleAndEnact(
        {{klass->loid(), 4}}, RunOptions{3, 2},
        [&](Result<RunOutcome> outcome) {
          fingerprint << "round" << round << ":"
                      << (outcome.ok() && outcome->success ? "ok" : "fail");
          if (outcome.ok() && outcome->success) {
            for (const auto& mapping : outcome->feedback.reserved_mappings) {
              fingerprint << ' ' << mapping.ToString();
            }
          }
          fingerprint << '\n';
        });
    kernel.RunFor(Duration::Minutes(3));
  }
  for (auto* host : metacomputer.hosts()) {
    fingerprint << host->spec().name << "=load:" << host->CurrentLoad()
                << ",running:" << host->running_count()
                << ",reservations:" << host->reservations().size() << '\n';
  }
  const KernelStats& stats = kernel.stats();
  fingerprint << "events:" << stats.events_run
              << " msgs:" << stats.messages_sent
              << " bytes:" << stats.bytes_sent
              << " rpcs:" << stats.rpcs_started << '\n';
  return fingerprint.str();
}

class DeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeterminismTest, SameSeedSameUniverse) {
  EXPECT_EQ(RunScenario(GetParam()), RunScenario(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeterminismTest,
                         ::testing::Values(1, 7, 42, 1999));

TEST(DeterminismTest, DifferentSeedsDiverge) {
  EXPECT_NE(RunScenario(3), RunScenario(4));
}

}  // namespace
}  // namespace legion
