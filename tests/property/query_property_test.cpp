// Property tests: algebraic laws of the query language over randomly
// generated records.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "query/query.h"

namespace legion::query {
namespace {

AttributeDatabase RandomRecord(Rng& rng) {
  AttributeDatabase db;
  const char* arches[] = {"x86", "sparc", "alpha", "mips"};
  const char* oses[] = {"Linux", "Solaris", "OSF1", "IRIX"};
  db.Set("host_arch", arches[rng.Index(4)]);
  db.Set("host_os_name", oses[rng.Index(4)]);
  db.Set("host_load", rng.Uniform(0.0, 3.0));
  db.Set("host_cpus", rng.UniformInt(1, 16));
  if (rng.Bernoulli(0.5)) db.Set("optional_attr", rng.UniformInt(0, 100));
  if (rng.Bernoulli(0.3)) db.Set("flag", rng.Bernoulli(0.5));
  return db;
}

bool Eval(const std::string& text, const AttributeDatabase& db) {
  auto query = CompiledQuery::Compile(text);
  EXPECT_TRUE(query.ok()) << text;
  return query->Matches(db);
}

class QueryPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QueryPropertyTest, DoubleNegationIsIdentity) {
  Rng rng(GetParam());
  const char* predicates[] = {
      "$host_load < 1.5",
      "$host_arch == \"x86\"",
      "defined($optional_attr)",
      "match(\"Li\", $host_os_name)",
      "$flag",
  };
  for (int i = 0; i < 40; ++i) {
    AttributeDatabase db = RandomRecord(rng);
    for (const char* p : predicates) {
      EXPECT_EQ(Eval(p, db), Eval("not (not (" + std::string(p) + "))", db))
          << p;
    }
  }
}

TEST_P(QueryPropertyTest, DeMorganLaws) {
  Rng rng(GetParam() ^ 0x1111);
  const std::string a = "$host_load < 1.5";
  const std::string b = "$host_cpus >= 4";
  for (int i = 0; i < 40; ++i) {
    AttributeDatabase db = RandomRecord(rng);
    EXPECT_EQ(Eval("not (" + a + " and " + b + ")", db),
              Eval("not (" + a + ") or not (" + b + ")", db));
    EXPECT_EQ(Eval("not (" + a + " or " + b + ")", db),
              Eval("not (" + a + ") and not (" + b + ")", db));
  }
}

TEST_P(QueryPropertyTest, ComparisonTrichotomy) {
  Rng rng(GetParam() ^ 0x2222);
  for (int i = 0; i < 40; ++i) {
    AttributeDatabase db = RandomRecord(rng);
    const double threshold = rng.Uniform(0.0, 3.0);
    const std::string t = std::to_string(threshold);
    const int below = Eval("$host_load < " + t, db) ? 1 : 0;
    const int equal = Eval("$host_load == " + t, db) ? 1 : 0;
    const int above = Eval("$host_load > " + t, db) ? 1 : 0;
    EXPECT_EQ(below + equal + above, 1);
    // <= is < or ==; >= is > or ==.
    EXPECT_EQ(Eval("$host_load <= " + t, db), below + equal == 1);
    EXPECT_EQ(Eval("$host_load >= " + t, db), above + equal == 1);
  }
}

TEST_P(QueryPropertyTest, EqualityAgreesWithNegatedInequality) {
  Rng rng(GetParam() ^ 0x3333);
  for (int i = 0; i < 40; ++i) {
    AttributeDatabase db = RandomRecord(rng);
    for (const char* attr : {"$host_arch", "$host_cpus", "$optional_attr"}) {
      const std::string a(attr);
      EXPECT_EQ(Eval(a + " == " + a, db), !Eval("not (" + a + " == " + a + ")", db));
      EXPECT_EQ(Eval(a + " != 42", db), Eval("not (" + a + " == 42)", db));
    }
  }
}

TEST_P(QueryPropertyTest, CanonicalFormReparsesToSameSemantics) {
  // ToString() output is itself a valid query with identical results.
  Rng rng(GetParam() ^ 0x4444);
  const char* queries[] = {
      "$host_load < 1.0 and ($host_arch == \"x86\" or $host_cpus > 8)",
      "not defined($optional_attr) or $flag",
      "match($host_os_name, \"IRIX\") and match(\"5\\..*\", $host_os_name)",
      "contains($host_arch, \"mips\") or $host_load >= 2.5",
  };
  for (const char* text : queries) {
    auto original = CompiledQuery::Compile(text);
    ASSERT_TRUE(original.ok()) << text;
    auto reparsed = CompiledQuery::Compile(original->Canonical());
    ASSERT_TRUE(reparsed.ok()) << original->Canonical();
    for (int i = 0; i < 30; ++i) {
      AttributeDatabase db = RandomRecord(rng);
      EXPECT_EQ(original->Matches(db), reparsed->Matches(db))
          << text << "  vs  " << original->Canonical();
    }
  }
}

TEST_P(QueryPropertyTest, MatchIsSubsetOfDefined) {
  // Any record where match() on an attribute holds also has it defined.
  Rng rng(GetParam() ^ 0x5555);
  for (int i = 0; i < 40; ++i) {
    AttributeDatabase db = RandomRecord(rng);
    if (Eval("match(\".\", $host_os_name)", db)) {
      EXPECT_TRUE(Eval("defined($host_os_name)", db));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace legion::query
