// Batched-negotiation properties (DESIGN.md §11).
//
// 1. Equivalence: the batch cap is a wire-level optimization only.  For
//    the same seed and schedule, the legacy per-mapping path (cap 1) and
//    any batched cap decide identically -- same winner, same reserved
//    mappings, same token serials, same per-host admission counters,
//    same Collection contents.
// 2. At-most-once under chaos: a batch whose reply is lost in a
//    partition is retransmitted with the same batch id, and the host
//    replays its cached decision instead of admitting the slots twice.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/enactor.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;
using testing::TestWorldConfig;

// A deterministic world for the equivalence property: zero jitter so the
// legacy path's concurrent per-slot RPCs arrive in send order, making
// token serials comparable slot-for-slot against the batched path.
TestWorldConfig QuietConfig() {
  TestWorldConfig config;
  config.hosts = 4;
  config.net.jitter_fraction = 0.0;
  return config;
}

std::string TokenFingerprint(const ReservationToken& token) {
  std::ostringstream out;
  // start/mac are timing-dependent (a batch request is bigger on the
  // wire, so it lands microseconds later); everything decision-level
  // must match exactly.
  out << token.host.ToString() << '/' << token.vault.ToString() << " #"
      << token.serial << " dur=" << token.duration.micros()
      << " type=" << static_cast<int>(token.type.bits());
  return out.str();
}

// One negotiation exercising grants, a capacity rejection, a policy
// refusal, and two repairing variants, fingerprinted decision-by-decision.
std::string NegotiationFingerprint(std::size_t batch_cap) {
  TestWorld world(QuietConfig());
  world.Populate();
  ClassObject* klass = world.MakeClass("app", 16, 1.0);
  world.enactor->options().max_batch_size = batch_cap;
  // Host 1 refuses domain 0 (the enactor's domain).
  world.hosts[1]->SetPolicy(
      std::make_unique<DomainRefusalPolicy>(std::vector<std::uint32_t>{0}));

  auto mapping_to = [&](std::size_t host_index) {
    ObjectMapping mapping;
    mapping.class_loid = klass->loid();
    mapping.host = world.hosts[host_index]->loid();
    mapping.vault = world.vaults[host_index]->loid();
    return mapping;
  };

  // Master: nine 1.0-cpu slots against host 0's eight units (slot 8
  // overflows), slot 9 against the refusing host 1, slots 10-11 on
  // host 2.  Variants move the two failures to hosts 2 and 3.
  ScheduleRequestList request;
  MasterSchedule master;
  for (std::size_t i = 0; i < 9; ++i) master.mappings.push_back(mapping_to(0));
  master.mappings.push_back(mapping_to(1));
  master.mappings.push_back(mapping_to(2));
  master.mappings.push_back(mapping_to(2));
  const std::size_t width = master.mappings.size();
  VariantSchedule fix_capacity;
  fix_capacity.replaces.Resize(width);
  fix_capacity.replaces.Set(8);
  fix_capacity.mappings.emplace_back(8, mapping_to(2));
  master.variants.push_back(fix_capacity);
  VariantSchedule fix_refusal;
  fix_refusal.replaces.Resize(width);
  fix_refusal.replaces.Set(9);
  fix_refusal.mappings.emplace_back(9, mapping_to(3));
  master.variants.push_back(fix_refusal);
  request.masters.push_back(master);

  Await<ScheduleFeedback> feedback;
  world.enactor->MakeReservations(request, feedback.Sink());
  world.Run();
  EXPECT_TRUE(feedback.Ready());
  EXPECT_TRUE(feedback.Get().ok());
  const ScheduleFeedback& result = *feedback.Get();

  std::ostringstream fingerprint;
  fingerprint << "success:" << result.success << '\n';
  if (result.winner.has_value()) {
    fingerprint << "winner:" << result.winner->master_index << " variants:";
    for (std::size_t v : result.winner->variant_indices) fingerprint << v << ',';
    fingerprint << '\n';
  }
  for (std::size_t i = 0; i < result.reserved_mappings.size(); ++i) {
    fingerprint << i << ": " << result.reserved_mappings[i].ToString()
                << " token " << TokenFingerprint(result.tokens[i]) << '\n';
  }
  const EnactorStats& stats = world.enactor->stats();
  fingerprint << "granted:" << stats.reservations_granted
              << " failed:" << stats.reservations_failed
              << " cancelled:" << stats.reservations_cancelled
              << " rereservations:" << stats.rereservations << '\n';
  for (std::size_t h = 0; h < world.hosts.size(); ++h) {
    const ReservationTable& table = world.hosts[h]->reservations();
    fingerprint << "host" << h << " admitted:" << table.admitted()
                << " rejected:" << table.rejected()
                << " cancelled:" << table.cancelled()
                << " live:" << table.live_count() << '\n';
  }
  auto records = world.collection->QueryLocal("true");
  EXPECT_TRUE(records.ok());
  for (const CollectionRecord& record : *records) {
    fingerprint << record.member.ToString() << " => "
                << record.attributes.ToString() << '\n';
  }
  return fingerprint.str();
}

TEST(BatchEquivalence, AnyCapDecidesLikeTheLegacyPath) {
  const std::string legacy = NegotiationFingerprint(1);
  EXPECT_NE(legacy.find("success:1"), std::string::npos);
  EXPECT_EQ(legacy, NegotiationFingerprint(8));
  // A cap that forces chunking (9 host-0 slots in chunks of 4) must not
  // change decisions either.
  EXPECT_EQ(legacy, NegotiationFingerprint(4));
}

TEST(BatchEquivalence, SameSeedSameBatchedNegotiation) {
  EXPECT_EQ(NegotiationFingerprint(8), NegotiationFingerprint(8));
}

TEST(BatchEquivalence, LostReplyRetransmitsWithoutDoubleAdmit) {
  // Enactor (domain 0) negotiates with a host across a WAN that eats the
  // batch reply: the request lands and admits, the reply dies in a
  // partition, the enactor times out and retransmits the same batch id,
  // and the host replays its cached reply.  The slots are admitted once.
  TestWorldConfig config;
  config.hosts = 2;
  config.domains = 2;
  config.net.jitter_fraction = 0.0;
  TestWorld world(config);
  world.Populate();
  ClassObject* klass = world.MakeClass("app", 16, 1.0);
  world.enactor->options().rpc_timeout = Duration::Seconds(2);
  // Keep the breaker out of the way: one lost reply fails all three
  // slots at once, which must not trip health (threshold 3 would).
  world.enactor->health().options().host_failure_threshold = 10;

  const SimTime t0 = world.kernel.Now();
  // Loss is decided at send time, so the request (sent at t0, before the
  // partition opens) gets through and admits, while the reply (sent on
  // arrival at ~t0+30 ms, inside the window) is dropped.  The window
  // closes before the retry fires (timeout 2 s + backoff >= 150 ms).
  world.kernel.network().AddPartition(0, 1, t0 + Duration::Millis(10),
                                      t0 + Duration::Seconds(2) +
                                          Duration::Millis(100));

  ScheduleRequestList request;
  MasterSchedule master;
  for (int i = 0; i < 3; ++i) {
    ObjectMapping mapping;
    mapping.class_loid = klass->loid();
    mapping.host = world.hosts[1]->loid();  // domain 1: crosses the WAN
    mapping.vault = world.vaults[1]->loid();
    master.mappings.push_back(mapping);
  }
  request.masters.push_back(master);

  Await<ScheduleFeedback> feedback;
  world.enactor->MakeReservations(request, feedback.Sink());
  world.Run();
  ASSERT_TRUE(feedback.Ready());
  ASSERT_TRUE(feedback.Get().ok());
  EXPECT_TRUE(feedback.Get()->success);
  ASSERT_EQ(feedback.Get()->tokens.size(), 3u);

  // The retry happened, and the host decided each slot exactly once.
  EXPECT_GE(world.enactor->stats().retries, 3u);
  const ReservationTable& table = world.hosts[1]->reservations();
  EXPECT_EQ(table.admitted(), 3u);
  EXPECT_EQ(table.live_count(), 3u);
  // Every returned token is the one the first (lost-reply) admission
  // created: serials 1..3, all verifiable at the host.
  for (const ReservationToken& token : feedback.Get()->tokens) {
    EXPECT_LE(token.serial, 3u);
    Await<bool> check;
    world.hosts[1]->CheckReservation(token, check.Sink());
    EXPECT_TRUE(*check.Get());
  }
}

TEST(BatchEquivalence, PartialRetryRetransmitsOriginalBatchAndCancelsStrays) {
  // A 5-slot batch is admitted but its reply is lost.  At the timeout
  // the per-slot health bookkeeping opens the host breaker mid-loop:
  // slots 0-1 are judged retryable before it opens, slots 2-4 are
  // abandoned after it.  The retransmission must go out under the
  // ORIGINAL batch id with the original 5-slot payload so the host
  // replays its cached decisions instead of double-admitting the
  // retried slots; the stray grants for the abandoned slots are
  // cancelled, and variants re-aim those mappings at the local host.
  TestWorldConfig config;
  config.hosts = 2;
  config.domains = 2;
  config.net.jitter_fraction = 0.0;
  TestWorld world(config);
  world.Populate();
  ClassObject* klass = world.MakeClass("app", 16, 1.0);
  world.enactor->options().rpc_timeout = Duration::Seconds(2);
  world.enactor->options().retry.base_delay = Duration::Seconds(1);
  world.enactor->options().retry.jitter_fraction = 0.0;
  // Threshold 3 against 5 recorded failures opens the breaker while the
  // timed-out batch is being processed, splitting it into retryable and
  // abandoned slots; the short cooldown lets the retransmission through
  // as a half-open probe after the 1 s backoff.
  world.enactor->health().options().host_failure_threshold = 3;
  world.enactor->health().options().host_cooldown = Duration::Millis(500);
  world.enactor->health().options().domain_failure_threshold = 100;

  const SimTime t0 = world.kernel.Now();
  // The request (sent at t0) lands and admits; the reply dies in the
  // partition, which heals before the retransmission fires at ~t0+3s.
  world.kernel.network().AddPartition(0, 1, t0 + Duration::Millis(10),
                                      t0 + Duration::Seconds(1));

  auto mapping_to = [&](std::size_t host_index) {
    ObjectMapping mapping;
    mapping.class_loid = klass->loid();
    mapping.host = world.hosts[host_index]->loid();
    mapping.vault = world.vaults[host_index]->loid();
    return mapping;
  };
  ScheduleRequestList request;
  MasterSchedule master;
  for (int i = 0; i < 5; ++i) master.mappings.push_back(mapping_to(1));
  const std::size_t width = master.mappings.size();
  // One variant per abandoned slot, re-aiming it at host 0 (domain 0,
  // unaffected by the partition or the breaker).
  for (std::size_t i = 2; i < 5; ++i) {
    VariantSchedule variant;
    variant.replaces.Resize(width);
    variant.replaces.Set(i);
    variant.mappings.emplace_back(i, mapping_to(0));
    master.variants.push_back(variant);
  }
  request.masters.push_back(master);

  Await<ScheduleFeedback> feedback;
  world.enactor->MakeReservations(request, feedback.Sink());
  world.Run();
  ASSERT_TRUE(feedback.Ready());
  ASSERT_TRUE(feedback.Get().ok());
  EXPECT_TRUE(feedback.Get()->success);

  // The host admitted each slot exactly once (on the first, lost-reply
  // transmission) and served the retransmission from the replay cache.
  const ReservationTable& table = world.hosts[1]->reservations();
  EXPECT_EQ(table.admitted(), 5u);
  EXPECT_EQ(world.hosts[1]->batch_replay_hits(), 1u);
  EXPECT_EQ(world.hosts[1]->batch_replay_misses(), 0u);
  // The stray grants for the three abandoned slots were cancelled,
  // leaving exactly the two retried slots live there; the variants
  // placed the other three on host 0.
  EXPECT_EQ(table.cancelled(), 3u);
  EXPECT_EQ(table.live_count(), 2u);
  EXPECT_EQ(world.hosts[0]->reservations().live_count(), 3u);
}

}  // namespace
}  // namespace legion
