// Tracing invariants: same seed => byte-identical exports; a disabled
// sink records (and allocates) nothing; and the causal span tree links a
// negotiation's innermost reservation RPC back to its schedule root.
#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_map>

#include "core/schedulers/random_scheduler.h"
#include "obs/trace.h"
#include "test_world.h"

namespace legion::testing {
namespace {

struct TraceRun {
  std::string chrome;
  std::string jsonl;
  std::vector<obs::TraceEvent> events;
};

// One full negotiation (schedule -> query -> reserve -> enact) in a
// small deterministic world, with tracing on unless told otherwise.
TraceRun RunTracedPlacement(bool enable_trace = true) {
  TestWorld world;
  if (enable_trace) world.kernel.trace().Enable();
  world.Populate();
  ClassObject* klass = world.MakeClass("app");
  auto* scheduler = world.kernel.AddActor<RandomScheduler>(
      world.kernel.minter().Mint(LoidSpace::kService, 0),
      world.collection->loid(), world.enactor->loid(), /*seed=*/7);
  Await<RunOutcome> outcome;
  scheduler->ScheduleAndEnact({{klass->loid(), 2}}, RunOptions{3, 2},
                              outcome.Sink());
  world.Run();
  EXPECT_TRUE(outcome.Ready());

  TraceRun run;
  run.chrome = world.kernel.trace().ToChromeJson();
  run.jsonl = world.kernel.trace().ToJsonl();
  run.events = world.kernel.trace().events();
  return run;
}

TEST(TraceDeterminism, SameSeedProducesByteIdenticalExports) {
  TraceRun first = RunTracedPlacement();
  TraceRun second = RunTracedPlacement();
  ASSERT_FALSE(first.events.empty());
  EXPECT_EQ(first.jsonl, second.jsonl);
  EXPECT_EQ(first.chrome, second.chrome);
}

TEST(TraceDeterminism, DisabledSinkRecordsNothing) {
  TraceRun run = RunTracedPlacement(/*enable_trace=*/false);
  EXPECT_TRUE(run.events.empty());
  EXPECT_TRUE(run.chrome.find("\"name\"") == std::string::npos);
  EXPECT_TRUE(run.jsonl.empty());
}

TEST(TraceDeterminism, DisabledSinkNeverAllocates) {
  obs::TraceLog log;  // never enabled
  (void)log.BeginSpan(SimTime(), "x", "t", obs::kNoSpan);
  log.Instant(SimTime(), "y", "t", obs::kNoSpan);
  EXPECT_TRUE(log.events().empty());
  EXPECT_EQ(log.events().capacity(), 0u);
}

TEST(TraceCausality, ReservationRpcLinksBackToScheduleRoot) {
  TraceRun run = RunTracedPlacement();

  // Index the begin events: span id -> (name, parent).
  struct SpanInfo {
    std::string name;
    obs::SpanId parent;
  };
  std::unordered_map<obs::SpanId, SpanInfo> spans;
  for (const obs::TraceEvent& event : run.events) {
    if (event.phase == obs::TraceEvent::Phase::kBegin) {
      spans[event.span] = {event.name, event.parent};
    }
  }

  // At least one per-host reservation RPC (per-mapping make_reservation,
  // or the coalesced reserve_batch when batching is on) must chain, via
  // parent links, through the make_reservations RPC up to the
  // scheduler's schedule_and_enact root.
  bool found_chain = false;
  for (const auto& [span, info] : spans) {
    if (info.name != "make_reservation" && info.name != "reserve_batch") {
      continue;
    }
    std::vector<std::string> ancestry;
    obs::SpanId cursor = info.parent;
    for (int hops = 0; cursor != obs::kNoSpan && hops < 32; ++hops) {
      auto it = spans.find(cursor);
      if (it == spans.end()) break;
      ancestry.push_back(it->second.name);
      cursor = it->second.parent;
    }
    const bool has_batch_rpc =
        std::find(ancestry.begin(), ancestry.end(), "make_reservations") !=
        ancestry.end();
    const bool has_root =
        std::find(ancestry.begin(), ancestry.end(), "schedule_and_enact") !=
        ancestry.end();
    if (has_batch_rpc && has_root) {
      found_chain = true;
      break;
    }
  }
  EXPECT_TRUE(found_chain)
      << "no make_reservation span chains back to schedule_and_enact; "
      << "trace has " << run.events.size() << " events";
}

}  // namespace
}  // namespace legion::testing
