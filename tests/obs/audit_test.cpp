#include "obs/audit.h"

#include <gtest/gtest.h>

namespace legion::obs {
namespace {

SimTime At(std::int64_t secs) { return SimTime::Zero() + Duration::Seconds(secs); }

TEST(DecisionLog, DisabledLogRecordsNothing) {
  DecisionLog log;
  EXPECT_FALSE(log.enabled());
  log.Record(At(1), "reserve_requested", {{"nid", "1"}});
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.ToJsonl(), "");
}

TEST(DecisionLog, RecordsCarrySequenceAndOrder) {
  DecisionLog log;
  log.Enable();
  log.Record(At(1), "a", {});
  log.Record(At(1), "b", {});
  log.Record(At(2), "c", {});
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log.records()[0].seq, 1u);
  EXPECT_EQ(log.records()[2].seq, 3u);
  EXPECT_STREQ(log.records()[1].kind, "b");
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  log.Record(At(3), "d", {});
  EXPECT_EQ(log.records()[0].seq, 1u);  // sequence restarts after Clear
}

TEST(DecisionLog, JsonlKeepsFieldOrderAndEscapes) {
  DecisionLog log;
  log.Enable();
  log.Record(At(1), "sched_choice",
             {{"scheduler", "irs"}, {"host", "loid<1.2.3>"}, {"reason", "a\"b"}});
  const std::string jsonl = log.ToJsonl();
  EXPECT_EQ(jsonl, log.ToJsonl());  // deterministic
  EXPECT_NE(jsonl.find("\"seq\":1"), std::string::npos);
  EXPECT_NE(jsonl.find("\"t\":1000000"), std::string::npos);
  EXPECT_NE(jsonl.find("\"kind\":\"sched_choice\""), std::string::npos);
  // Fields in record order, values escaped.
  EXPECT_LT(jsonl.find("\"scheduler\""), jsonl.find("\"host\""));
  EXPECT_NE(jsonl.find("a\\\"b"), std::string::npos);
  EXPECT_EQ(jsonl.back(), '\n');
}

// A hand-built negotiation story: scheduler skips a suspect host, picks
// another; the Enactor requests, suffers a transient failure, retries,
// and finally lands the grant.  ExplainMapping must stitch all of it
// together for the one slot.
DecisionLog StoryLog() {
  DecisionLog log;
  log.Enable();
  log.Record(At(1), "sched_query",
             {{"scheduler", "irs"}, {"query", "cpus >= 1"}, {"candidates", "4"}});
  log.Record(At(1), "sched_suspect_skip",
             {{"scheduler", "irs"}, {"host", "H_BAD"}, {"reason", "breaker_open"}});
  log.Record(At(1), "sched_filter",
             {{"scheduler", "irs"}, {"pool", "4"}, {"healthy", "3"}, {"skipped", "1"}});
  log.Record(At(1), "sched_choice",
             {{"scheduler", "irs"}, {"slot", "0"}, {"class", "app"},
              {"host", "H_GOOD"}, {"reason", "random draw"}});
  log.Record(At(1), "sched_choice",
             {{"scheduler", "irs"}, {"slot", "1"}, {"class", "app"},
              {"host", "H_OTHER"}, {"reason", "random draw"}});
  log.Record(At(2), "negotiation_begin", {{"nid", "7"}, {"masters", "1"}});
  log.Record(At(2), "reserve_requested",
             {{"nid", "7"}, {"slot", "0"}, {"host", "H_GOOD"}, {"batch", "1"},
              {"attempt", "1"}});
  log.Record(At(3), "reserve_retry",
             {{"nid", "7"}, {"slot", "0"}, {"host", "H_GOOD"}, {"attempt", "2"}});
  log.Record(At(4), "reserve_granted",
             {{"nid", "7"}, {"slot", "0"}, {"host", "H_GOOD"}});
  log.Record(At(4), "negotiation_success",
             {{"nid", "7"}, {"master", "0"}, {"variants", "0"}});
  // A different negotiation that must not leak into the story.
  log.Record(At(5), "reserve_failed",
             {{"nid", "8"}, {"slot", "0"}, {"host", "H_OTHER"}, {"code", "TIMEOUT"}});
  return log;
}

TEST(DecisionLog, ExplainMappingReconstructsSlotStory) {
  const DecisionLog log = StoryLog();
  const std::string report = log.ExplainMapping(7, 0);

  EXPECT_NE(report.find("== negotiation 7 slot 0 =="), std::string::npos);
  // Scheduler context: the suspect skip and the choice that aimed slot 0.
  EXPECT_NE(report.find(
                "sched_suspect_skip scheduler=irs host=H_BAD "
                "reason=breaker_open"),
            std::string::npos);
  EXPECT_NE(report.find("sched_choice"), std::string::npos);
  EXPECT_NE(report.find("host=H_GOOD"), std::string::npos);
  // The slot-1 choice (H_OTHER) is noise for slot 0 and must be elided.
  EXPECT_EQ(report.find("host=H_OTHER"), std::string::npos);
  // Lifecycle in order: requested -> retry -> granted.
  const std::size_t requested = report.find("reserve_requested");
  const std::size_t retry = report.find("reserve_retry");
  const std::size_t granted = report.find("reserve_granted");
  ASSERT_NE(requested, std::string::npos);
  ASSERT_NE(retry, std::string::npos);
  ASSERT_NE(granted, std::string::npos);
  EXPECT_LT(requested, retry);
  EXPECT_LT(retry, granted);
  // Final status.
  EXPECT_NE(report.find("slot 0: granted on H_GOOD"), std::string::npos);
  EXPECT_NE(report.find("negotiation_success"), std::string::npos);
  // Negotiation 8's failure stays out.
  EXPECT_EQ(report.find("code=TIMEOUT"), std::string::npos);
  // The correlation id is in the header, not repeated per line.
  EXPECT_EQ(report.find("nid=7"), std::string::npos);
}

TEST(DecisionLog, ExplainMappingUnscopedCoversAllSlots) {
  const DecisionLog log = StoryLog();
  const std::string report = log.ExplainMapping(7);
  EXPECT_NE(report.find("== negotiation 7 =="), std::string::npos);
  // Unscoped: both choices show (no host-set pruning of sched_choice).
  EXPECT_NE(report.find("host=H_OTHER"), std::string::npos);
  EXPECT_NE(report.find("reserve_granted"), std::string::npos);
}

TEST(DecisionLog, ExplainMappingTracksFailureOutcome) {
  const DecisionLog log = StoryLog();
  const std::string report = log.ExplainMapping(8, 0);
  EXPECT_NE(report.find("slot 0: failed (TIMEOUT) on H_OTHER"),
            std::string::npos);
}

TEST(AuditField, FindsFirstMatchingKey) {
  AuditRecord record;
  record.fields = {{"a", "1"}, {"b", "2"}};
  ASSERT_NE(AuditField(record, "b"), nullptr);
  EXPECT_EQ(*AuditField(record, "b"), "2");
  EXPECT_EQ(AuditField(record, "missing"), nullptr);
}

}  // namespace
}  // namespace legion::obs
