#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace legion::obs {
namespace {

TEST(Counter, AddsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, SetAndAdd) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketsAreInclusiveUpperBounds) {
  Histogram h({10.0, 100.0});
  h.Observe(10.0);   // lands in the <=10 bucket (inclusive)
  h.Observe(10.1);   // <=100
  h.Observe(1000.0); // +inf
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);  // implicit +inf bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 1020.1);
  EXPECT_DOUBLE_EQ(h.mean(), 1020.1 / 3.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.bucket_count(2), 0u);
}

TEST(Histogram, ExactUpperBoundHitsLandInTheirBucket) {
  // Every bound is an inclusive upper edge: a value exactly equal to
  // bounds[i] lands in bucket i, never in i+1.
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(1.0);
  h.Observe(10.0);
  h.Observe(100.0);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 0u);  // nothing leaked into +inf

  // Just past an edge goes to the next bucket; just below stays.
  h.Observe(std::nextafter(10.0, 11.0));
  EXPECT_EQ(h.bucket_count(2), 2u);
  h.Observe(std::nextafter(10.0, 0.0));
  EXPECT_EQ(h.bucket_count(1), 2u);
}

TEST(Histogram, InfCatchAllAndExtremes) {
  Histogram h({0.0, 50.0});
  // Negative and zero observations land in the first bucket (<= 0).
  h.Observe(-5.0);
  h.Observe(0.0);
  EXPECT_EQ(h.bucket_count(0), 2u);
  // Anything beyond the last bound -- including the largest finite
  // double -- lands in the implicit +inf catch-all.
  h.Observe(50.000001);
  h.Observe(std::numeric_limits<double>::max());
  EXPECT_EQ(h.bucket_count(2), 2u);
  EXPECT_EQ(h.count(), 4u);
  // Bucket counts always sum to count(): nothing dropped at the edges.
  std::uint64_t total = 0;
  for (std::size_t i = 0; i <= h.bounds().size(); ++i) {
    total += h.bucket_count(i);
  }
  EXPECT_EQ(total, h.count());
}

TEST(Histogram, LatencyBucketEdgesAreInclusive) {
  // The shared latency buckets behave the same way: an RPC that takes
  // exactly a bucket edge (e.g. 100us) must not be counted as slower.
  Histogram h(LatencyBucketsUs());
  const double first_edge = h.bounds().front();
  h.Observe(first_edge);
  EXPECT_EQ(h.bucket_count(0), 1u);
  EXPECT_EQ(h.bucket_count(1), 0u);
}

TEST(MetricsRegistry, SameNameAndLabelsResolveToSameCell) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("hits", {{"component", "x"}});
  Counter* b = registry.GetCounter("hits", {{"component", "x"}});
  Counter* other = registry.GetCounter("hits", {{"component", "y"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
}

TEST(MetricsRegistry, LabelOrderIsCanonicalized) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("hits", {{"a", "1"}, {"b", "2"}});
  Counter* b = registry.GetCounter("hits", {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(a, b);
  EXPECT_EQ(MetricsRegistry::CellKey("hits", {{"b", "2"}, {"a", "1"}}),
            "hits{a=1,b=2}");
  EXPECT_EQ(MetricsRegistry::CellKey("hits", {}), "hits");
}

TEST(MetricsRegistry, SnapshotCarriesAllKinds) {
  MetricsRegistry registry;
  registry.GetCounter("events", {{"component", "kernel"}})->Add(7);
  registry.GetGauge("load")->Set(0.5);
  Histogram* h = registry.GetHistogram("lat_us", {}, {10.0, 100.0});
  h->Observe(5.0);
  h->Observe(50.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("events{component=kernel}"), 7u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("load"), 0.5);
  const HistogramValue& hv = snapshot.histograms.at("lat_us");
  EXPECT_EQ(hv.count, 2u);
  EXPECT_DOUBLE_EQ(hv.sum, 55.0);
  ASSERT_EQ(hv.buckets.size(), 3u);  // 2 bounds + inf
  EXPECT_EQ(hv.buckets[0], 1u);
  EXPECT_EQ(hv.buckets[1], 1u);
  EXPECT_EQ(hv.buckets[2], 0u);
}

TEST(MetricsRegistry, JsonIsDeterministicAndStructured) {
  MetricsRegistry registry;
  // Register in non-sorted order; JSON keys must come out sorted.
  registry.GetCounter("zeta")->Add(1);
  registry.GetCounter("alpha")->Add(2);
  registry.GetGauge("g")->Set(3.0);
  registry.GetHistogram("h", {}, {1.0})->Observe(0.5);

  const std::string json = registry.SnapshotJson();
  EXPECT_EQ(json, registry.SnapshotJson());  // stable across snapshots
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+inf\""), std::string::npos);
}

TEST(MetricsRegistry, ResetZeroesCellsButKeepsPointers) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("n");
  Histogram* h = registry.GetHistogram("h", {}, {1.0});
  c->Add(5);
  h->Observe(0.5);
  registry.Reset();
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
  // Same cells still resolve; the old pointers still work.
  EXPECT_EQ(registry.GetCounter("n"), c);
  c->Add(1);
  EXPECT_EQ(registry.Snapshot().counters.at("n"), 1u);
}

}  // namespace
}  // namespace legion::obs
