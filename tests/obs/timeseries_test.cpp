#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace legion::obs {
namespace {

SimTime At(std::int64_t secs) { return SimTime::Zero() + Duration::Seconds(secs); }

TEST(TimeSeriesRecorder, CounterDeltasAndRates) {
  Counter c;
  TimeSeriesRecorder recorder;
  recorder.WatchCounter("c", &c);
  recorder.Start(SimTime::Zero());

  c.Add(10);
  recorder.SampleAt(At(1));
  c.Add(5);
  recorder.SampleAt(At(2));
  recorder.SampleAt(At(3));  // idle window

  const auto& samples = recorder.samples("c");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples[0].ts, At(1));
  EXPECT_DOUBLE_EQ(samples[0].value, 10.0);
  EXPECT_DOUBLE_EQ(samples[0].delta, 10.0);  // first window: delta = value
  EXPECT_DOUBLE_EQ(samples[0].rate, 10.0);
  EXPECT_DOUBLE_EQ(samples[1].delta, 5.0);
  EXPECT_DOUBLE_EQ(samples[1].rate, 5.0);
  EXPECT_DOUBLE_EQ(samples[2].delta, 0.0);
  EXPECT_DOUBLE_EQ(samples[2].rate, 0.0);
}

TEST(TimeSeriesRecorder, CounterResetClampsDeltaToValue) {
  Counter c;
  TimeSeriesRecorder recorder;
  recorder.WatchCounter("c", &c);
  recorder.Start(SimTime::Zero());

  c.Add(100);
  recorder.SampleAt(At(1));
  c.Reset();   // mid-window reset (e.g. Metacomputer::ResetAllStats)
  c.Add(3);
  recorder.SampleAt(At(2));

  const auto& samples = recorder.samples("c");
  ASSERT_EQ(samples.size(), 2u);
  // A cumulative series must never report a negative window; the delta
  // clamps to the observed value (everything since the reset).
  EXPECT_DOUBLE_EQ(samples[1].value, 3.0);
  EXPECT_DOUBLE_EQ(samples[1].delta, 3.0);
}

TEST(TimeSeriesRecorder, GaugeReportsSignedDeltas) {
  Gauge g;
  TimeSeriesRecorder recorder;
  recorder.WatchGauge("g", &g);
  recorder.Start(SimTime::Zero());

  g.Set(5.0);
  recorder.SampleAt(At(1));
  g.Set(2.0);
  recorder.SampleAt(At(2));

  const auto& samples = recorder.samples("g");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[1].delta, -3.0);  // gauges may go down
  EXPECT_DOUBLE_EQ(samples[1].rate, -3.0);
}

TEST(TimeSeriesRecorder, RingCapacityDropsOldestWindow) {
  Counter c;
  RecorderOptions options;
  options.ring_capacity = 3;
  TimeSeriesRecorder recorder(options);
  recorder.WatchCounter("c", &c);
  recorder.Start(SimTime::Zero());

  for (int i = 1; i <= 5; ++i) {
    c.Add(1);
    recorder.SampleAt(At(i));
  }
  const auto& samples = recorder.samples("c");
  ASSERT_EQ(samples.size(), 3u);
  EXPECT_EQ(samples.front().ts, At(3));  // windows 1 and 2 fell off
  EXPECT_EQ(samples.back().ts, At(5));
  // Deltas stay correct across the drop: last_ is per-series state, not
  // derived from the ring.
  EXPECT_DOUBLE_EQ(samples.back().delta, 1.0);
}

TEST(TimeSeriesRecorder, MaybeSampleClosesWindowsStrictlyBefore) {
  Counter c;
  TimeSeriesRecorder recorder;  // period = 1s
  recorder.WatchCounter("c", &c);
  recorder.Start(SimTime::Zero());

  // An event AT the window boundary belongs inside the window: the
  // kernel calls MaybeSample(next_event_ts) before running the event, so
  // t == boundary must NOT close it yet.
  recorder.MaybeSample(At(1));
  EXPECT_EQ(recorder.samples("c").size(), 0u);
  c.Add(7);  // the boundary event
  recorder.MaybeSample(At(1) + Duration::Micros(1));
  ASSERT_EQ(recorder.samples("c").size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.samples("c")[0].value, 7.0);

  // A jump over several periods back-fills every due window on time.
  recorder.MaybeSample(At(4) + Duration::Micros(1));
  ASSERT_EQ(recorder.samples("c").size(), 4u);
  EXPECT_EQ(recorder.samples("c")[3].ts, At(4));
  EXPECT_DOUBLE_EQ(recorder.samples("c")[3].delta, 0.0);
}

TEST(TimeSeriesRecorder, FlushThroughClosesInclusiveBoundary) {
  Counter c;
  TimeSeriesRecorder recorder;
  recorder.WatchCounter("c", &c);
  recorder.Start(SimTime::Zero());
  recorder.FlushThrough(At(2));  // end of a bounded run at exactly t=2
  EXPECT_EQ(recorder.samples("c").size(), 2u);
}

TEST(TimeSeriesRecorder, InactiveAndStoppedRecorderSamplesNothing) {
  Counter c;
  TimeSeriesRecorder recorder;
  recorder.WatchCounter("c", &c);
  recorder.MaybeSample(At(10));  // never started
  EXPECT_EQ(recorder.samples("c").size(), 0u);

  recorder.Start(SimTime::Zero());
  recorder.Stop();
  recorder.MaybeSample(At(10));
  EXPECT_EQ(recorder.samples("c").size(), 0u);
  EXPECT_FALSE(recorder.active());
}

TEST(TimeSeriesRecorder, CustomSamplerWatchesArbitraryState) {
  double depth = 0.0;
  TimeSeriesRecorder recorder;
  recorder.Watch("queue_depth", [&depth] { return depth; },
                 /*cumulative=*/false);
  recorder.Start(SimTime::Zero());
  depth = 12.0;
  recorder.SampleAt(At(1));
  depth = 4.0;
  recorder.SampleAt(At(2));
  const auto& samples = recorder.samples("queue_depth");
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_DOUBLE_EQ(samples[1].value, 4.0);
  EXPECT_DOUBLE_EQ(samples[1].delta, -8.0);
}

TEST(TimeSeriesRecorder, JsonExportIsDeterministicAndSorted) {
  Counter a, z;
  TimeSeriesRecorder recorder;
  // Register out of order; the export must sort by series name.
  recorder.WatchCounter("zeta", &z);
  recorder.WatchCounter("alpha", &a);
  recorder.Start(SimTime::Zero());
  a.Add(1);
  z.Add(2);
  recorder.SampleAt(At(1));

  const std::string json = recorder.ToJson();
  EXPECT_EQ(json, recorder.ToJson());  // stable across exports
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
  EXPECT_NE(json.find("\"sample_period_us\""), std::string::npos);

  const std::string chrome = recorder.ToChromeJson();
  EXPECT_EQ(chrome, recorder.ToChromeJson());
  EXPECT_NE(chrome.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(chrome.find("\"alpha\""), std::string::npos);
}

TEST(TimeSeriesRecorder, ClearDropsSamplesButKeepsSeries) {
  Counter c;
  TimeSeriesRecorder recorder;
  recorder.WatchCounter("c", &c);
  recorder.Start(SimTime::Zero());
  c.Add(1);
  recorder.SampleAt(At(1));
  recorder.Clear();
  EXPECT_EQ(recorder.samples("c").size(), 0u);
  EXPECT_EQ(recorder.series_count(), 1u);
  // After Clear the next window's delta is value again (no stale last_).
  c.Add(2);
  recorder.Start(At(1));
  recorder.SampleAt(At(2));
  ASSERT_EQ(recorder.samples("c").size(), 1u);
  EXPECT_DOUBLE_EQ(recorder.samples("c")[0].delta, 3.0);
}

}  // namespace
}  // namespace legion::obs
