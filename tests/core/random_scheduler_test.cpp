// The Random Scheduling Policy (paper figure 7).
#include "core/schedulers/random_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class RandomSchedulerTest : public ::testing::Test {
 protected:
  RandomSchedulerTest() : world_(testing::TestWorldConfig{.hosts = 4}) {
    world_.Populate();
    klass_ = world_.MakeClass("app");
    scheduler_ = world_.kernel.AddActor<RandomScheduler>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0),
        world_.collection->loid(), world_.enactor->loid(), /*seed=*/3);
  }

  Result<ScheduleRequestList> Compute(const PlacementRequest& request) {
    Await<ScheduleRequestList> schedule;
    scheduler_->ComputeSchedule(request, schedule.Sink());
    world_.Run();
    EXPECT_TRUE(schedule.Ready());
    return std::move(schedule.Get());
  }

  TestWorld world_;
  ClassObject* klass_;
  RandomScheduler* scheduler_;
};

TEST_F(RandomSchedulerTest, GeneratesOneMappingPerInstance) {
  auto schedule = Compute({{klass_->loid(), 5}});
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->masters.size(), 1u);
  EXPECT_EQ(schedule->masters[0].mappings.size(), 5u);
  // Figure 7 generates a single master with no variants.
  EXPECT_TRUE(schedule->masters[0].variants.empty());
  EXPECT_TRUE(schedule->masters[0].Validate().ok());
}

TEST_F(RandomSchedulerTest, MappingsNameRealHostsAndTheirVaults) {
  auto schedule = Compute({{klass_->loid(), 8}});
  ASSERT_TRUE(schedule.ok());
  for (const ObjectMapping& mapping : schedule->masters[0].mappings) {
    EXPECT_EQ(mapping.class_loid, klass_->loid());
    auto* host =
        dynamic_cast<HostObject*>(world_.kernel.FindActor(mapping.host));
    ASSERT_NE(host, nullptr);
    // The chosen vault came from that host's compatible list.
    Await<std::vector<Loid>> vaults;
    host->GetCompatibleVaults(vaults.Sink());
    const auto& list = *vaults.Get();
    EXPECT_NE(std::find(list.begin(), list.end(), mapping.vault), list.end());
  }
}

TEST_F(RandomSchedulerTest, MultiClassRequestsConcatenate) {
  auto* other = world_.MakeClass("other");
  auto schedule = Compute({{klass_->loid(), 2}, {other->loid(), 3}});
  ASSERT_TRUE(schedule.ok());
  const auto& mappings = schedule->masters[0].mappings;
  ASSERT_EQ(mappings.size(), 5u);
  EXPECT_EQ(mappings[0].class_loid, klass_->loid());
  EXPECT_EQ(mappings[1].class_loid, klass_->loid());
  for (std::size_t i = 2; i < 5; ++i) {
    EXPECT_EQ(mappings[i].class_loid, other->loid());
  }
}

TEST_F(RandomSchedulerTest, RandomnessSpreadsAcrossHosts) {
  auto schedule = Compute({{klass_->loid(), 40}});
  ASSERT_TRUE(schedule.ok());
  std::set<Loid> hosts;
  for (const auto& mapping : schedule->masters[0].mappings) {
    hosts.insert(mapping.host);
  }
  // 40 draws over 4 hosts: overwhelmingly likely to touch all of them.
  EXPECT_EQ(hosts.size(), 4u);
}

TEST_F(RandomSchedulerTest, IgnoresLoadEntirely) {
  // "There is no consideration of load" -- a pathologically loaded host
  // is still drawn.
  world_.hosts[0]->SpikeLoad(4.0);
  world_.Populate();
  auto schedule = Compute({{klass_->loid(), 40}});
  ASSERT_TRUE(schedule.ok());
  bool drew_loaded_host = false;
  for (const auto& mapping : schedule->masters[0].mappings) {
    if (mapping.host == world_.hosts[0]->loid()) drew_loaded_host = true;
  }
  EXPECT_TRUE(drew_loaded_host);
}

TEST_F(RandomSchedulerTest, FailsWhenNoHostMatchesImplementations) {
  std::vector<Implementation> impls;
  Implementation impl;
  impl.arch = "cray";  // nothing in the world runs this
  impl.os_name = "UNICOS";
  impls.push_back(impl);
  auto* exotic = world_.kernel.AddActor<ClassObject>(
      Loid(LoidSpace::kClass, 0, 300), "exotic", impls);
  world_.kernel.network().RegisterEndpoint(exotic->loid(), 0);
  auto schedule = Compute({{exotic->loid(), 1}});
  EXPECT_FALSE(schedule.ok());
  EXPECT_EQ(schedule.code(), ErrorCode::kNoResources);
}

TEST_F(RandomSchedulerTest, EmptyCollectionFails) {
  TestWorld empty_world;
  auto* scheduler = empty_world.kernel.AddActor<RandomScheduler>(
      empty_world.kernel.minter().Mint(LoidSpace::kService, 0),
      empty_world.collection->loid(), empty_world.enactor->loid());
  auto* klass = empty_world.MakeClass("app");
  Await<ScheduleRequestList> schedule;
  scheduler->ComputeSchedule({{klass->loid(), 1}}, schedule.Sink());
  empty_world.Run();
  EXPECT_FALSE(schedule.Get().ok());
}

TEST_F(RandomSchedulerTest, FullPipelinePlacesInstances) {
  Await<RunOutcome> outcome;
  scheduler_->ScheduleAndEnact({{klass_->loid(), 3}}, RunOptions{3, 2},
                               outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Ready());
  ASSERT_TRUE(outcome.Get().ok());
  EXPECT_TRUE(outcome.Get()->success);
  EXPECT_EQ(klass_->instances().size(), 3u);
}

TEST_F(RandomSchedulerTest, CountsCollectionLookups) {
  EXPECT_EQ(scheduler_->collection_lookups(), 0u);
  Compute({{klass_->loid(), 4}});
  EXPECT_EQ(scheduler_->collection_lookups(), 1u);
  Compute({{klass_->loid(), 4}});
  EXPECT_EQ(scheduler_->collection_lookups(), 2u);
}

}  // namespace
}  // namespace legion
