// Resource-management layering (paper figure 2): all four layerings
// deliver the same placement; the separation costs messages.
#include "core/layering.h"

#include <gtest/gtest.h>

#include "core/schedulers/random_scheduler.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class LayeringTest : public ::testing::Test {
 protected:
  LayeringTest() : world_(testing::TestWorldConfig{.hosts = 4}) {
    world_.Populate();
    klass_ = world_.MakeClass("app");
    scheduler_ = world_.kernel.AddActor<RandomScheduler>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0),
        world_.collection->loid(), world_.enactor->loid(), /*seed=*/31);
    // The combined (c) module is a coordinator running mode (a) remotely.
    combined_ = MakeCoordinator(Layering::kApplicationDoesAll);
  }

  ApplicationCoordinator* MakeCoordinator(Layering layering) {
    ApplicationCoordinator::Wiring wiring;
    wiring.collection = world_.collection->loid();
    wiring.enactor = world_.enactor->loid();
    wiring.scheduler = scheduler_->loid();
    wiring.combined_service = combined_ != nullptr ? combined_->loid() : Loid();
    return world_.kernel.AddActor<ApplicationCoordinator>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0), layering,
        wiring, /*seed=*/17);
  }

  PlacementTrace Place(Layering layering, std::size_t count = 2) {
    auto* app = MakeCoordinator(layering);
    Await<PlacementTrace> trace;
    app->Place({{klass_->loid(), count}}, trace.Sink());
    world_.Run();
    EXPECT_TRUE(trace.Ready()) << ToString(layering);
    return trace.Ready() && trace.Get().ok() ? *trace.Get()
                                             : PlacementTrace{};
  }

  TestWorld world_;
  ClassObject* klass_;
  RandomScheduler* scheduler_;
  ApplicationCoordinator* combined_ = nullptr;
};

TEST_F(LayeringTest, AllFourLayeringsPlaceSuccessfully) {
  for (Layering layering :
       {Layering::kApplicationDoesAll, Layering::kApplicationPlusRm,
        Layering::kCombinedModule, Layering::kSeparateModules}) {
    PlacementTrace trace = Place(layering);
    EXPECT_TRUE(trace.success) << ToString(layering);
    EXPECT_EQ(trace.instances_started, 2u) << ToString(layering);
    EXPECT_GT(trace.latency, Duration::Zero()) << ToString(layering);
  }
  EXPECT_EQ(klass_->instances().size(), 8u);
}

TEST_F(LayeringTest, SeparationCostsMessages) {
  // C1: "cost that scales with capability" -- each extra module adds
  // messages for the same logical placement.
  auto messages_for = [&](Layering layering) -> std::uint64_t {
    world_.kernel.ResetStats();
    PlacementTrace trace = Place(layering);
    EXPECT_TRUE(trace.success) << ToString(layering);
    return world_.kernel.stats().messages_sent;
  };
  const std::uint64_t does_all =
      messages_for(Layering::kApplicationDoesAll);
  const std::uint64_t combined = messages_for(Layering::kCombinedModule);
  const std::uint64_t separate =
      messages_for(Layering::kSeparateModules);
  // (c) = (a) plus the app<->service round trip.
  EXPECT_GT(combined, does_all);
  // (d) adds the scheduler and enactor hops on top.
  EXPECT_GT(separate, does_all);
}

TEST_F(LayeringTest, DoesAllNegotiatesDirectlyWithHosts) {
  world_.enactor->ResetStats();
  PlacementTrace trace = Place(Layering::kApplicationDoesAll);
  EXPECT_TRUE(trace.success);
  // The Enactor was never involved.
  EXPECT_EQ(world_.enactor->stats().negotiations, 0u);
}

TEST_F(LayeringTest, PlusRmDelegatesNegotiationToEnactor) {
  world_.enactor->ResetStats();
  PlacementTrace trace = Place(Layering::kApplicationPlusRm);
  EXPECT_TRUE(trace.success);
  EXPECT_EQ(world_.enactor->stats().negotiations, 1u);
}

TEST_F(LayeringTest, SeparateModulesGoThroughScheduler) {
  const auto lookups = scheduler_->collection_lookups();
  PlacementTrace trace = Place(Layering::kSeparateModules);
  EXPECT_TRUE(trace.success);
  EXPECT_GT(scheduler_->collection_lookups(), lookups);
}

TEST_F(LayeringTest, FailureSurfacesAsUnsuccessfulTrace) {
  for (auto* host : world_.hosts) {
    host->SetPolicy(std::make_unique<DomainRefusalPolicy>(
        std::vector<std::uint32_t>{0}));
  }
  PlacementTrace trace = Place(Layering::kApplicationDoesAll);
  EXPECT_FALSE(trace.success);
}

}  // namespace
}  // namespace legion
