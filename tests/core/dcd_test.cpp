// The Data Collection Daemon (paper 3.2 footnote): pull from hosts, push
// into collections; plus the function-injection forecast demo.
#include "core/dcd.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class DcdTest : public ::testing::Test {
 protected:
  DcdTest() : world_() {
    DcdOptions options;
    options.poll_period = Duration::Seconds(10);
    options.history_length = 16;
    dcd_ = world_.kernel.AddActor<DataCollectionDaemon>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0), options);
    for (auto* host : world_.hosts) dcd_->WatchResource(host->loid());
    dcd_->AddCollection(world_.collection);
  }

  TestWorld world_;
  DataCollectionDaemon* dcd_;
};

TEST_F(DcdTest, PullPushPopulatesCollection) {
  EXPECT_EQ(world_.collection->record_count(), 0u);
  dcd_->PollNow();
  world_.Run();
  EXPECT_EQ(world_.collection->record_count(), world_.hosts.size());
  auto result = world_.collection->QueryLocal("$host_arch == \"x86\"");
  EXPECT_EQ(result->size(), world_.hosts.size());
}

TEST_F(DcdTest, DaemonIsTrustedThirdParty) {
  // The DCD's pushes are third-party updates; AddCollection trusted it.
  dcd_->PollNow();
  world_.Run();
  EXPECT_EQ(world_.collection->updates_rejected(), 0u);
  EXPECT_GE(world_.collection->updates_applied(), world_.hosts.size());
}

TEST_F(DcdTest, PeriodicPollingRefreshes) {
  dcd_->Start();
  world_.kernel.RunFor(Duration::Minutes(1));
  dcd_->Stop();
  EXPECT_GE(dcd_->polls_completed(), 5u);
  // Stale data ages only between polls.
  EXPECT_LT(world_.collection->MeanRecordAge(), Duration::Seconds(15));
}

TEST_F(DcdTest, StopActuallyStops) {
  dcd_->Start();
  world_.kernel.RunFor(Duration::Seconds(25));
  dcd_->Stop();
  const auto polls = dcd_->polls_completed();
  world_.kernel.RunFor(Duration::Minutes(5));
  EXPECT_EQ(dcd_->polls_completed(), polls);
}

TEST_F(DcdTest, BuildsLoadHistory) {
  for (int i = 0; i < 6; ++i) {
    dcd_->PollNow();
    world_.Run();
  }
  const auto* history = dcd_->HistoryFor(world_.hosts[0]->loid());
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->size(), 6u);
}

TEST_F(DcdTest, HistoryIsBounded) {
  for (int i = 0; i < 30; ++i) {
    dcd_->PollNow();
    world_.Run();
  }
  const auto* history = dcd_->HistoryFor(world_.hosts[0]->loid());
  ASSERT_NE(history, nullptr);
  EXPECT_EQ(history->size(), 16u);  // options.history_length
}

TEST_F(DcdTest, ForecastFallsBackGracefully) {
  // No history at all: 0.  Short history: last observation.
  EXPECT_DOUBLE_EQ(dcd_->ForecastLoad(world_.hosts[0]->loid()), 0.0);
  world_.hosts[0]->SpikeLoad(1.5);
  dcd_->PollNow();
  world_.Run();
  EXPECT_NEAR(dcd_->ForecastLoad(world_.hosts[0]->loid()), 1.5, 0.01);
}

TEST_F(DcdTest, ForecastTracksPersistentLoad) {
  // Under a constant load the AR(1) forecast converges to that load.
  world_.hosts[0]->SpikeLoad(2.0);
  for (int i = 0; i < 12; ++i) {
    world_.hosts[0]->mutable_attributes().Set("host_load", 2.0);
    dcd_->PollNow();
    world_.Run();
  }
  EXPECT_NEAR(dcd_->ForecastLoad(world_.hosts[0]->loid()), 2.0, 0.1);
}

TEST_F(DcdTest, ForecastFunctionInjection) {
  // The NWS-style hook: forecast_load() usable inside queries.
  dcd_->InstallForecastFunction(world_.collection);
  world_.hosts[0]->SpikeLoad(3.0);
  for (int i = 0; i < 8; ++i) {
    world_.hosts[0]->mutable_attributes().Set("host_load", 3.0);
    dcd_->PollNow();
    world_.Run();
  }
  auto hot = world_.collection->QueryLocal("forecast_load() > 2.0");
  ASSERT_TRUE(hot.ok());
  ASSERT_EQ(hot->size(), 1u);
  EXPECT_EQ((*hot)[0].member, world_.hosts[0]->loid());
  auto cool = world_.collection->QueryLocal("forecast_load() <= 2.0");
  EXPECT_EQ(cool->size(), world_.hosts.size() - 1);
}

TEST_F(DcdTest, DeadResourceSkippedDuringPoll) {
  dcd_->WatchResource(Loid(LoidSpace::kHost, 0, 4242));
  dcd_->PollNow();
  world_.Run();
  // The live hosts still made it in.
  EXPECT_EQ(world_.collection->record_count(), world_.hosts.size());
}

}  // namespace
}  // namespace legion
