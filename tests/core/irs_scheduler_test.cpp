// Improved Random Scheduling (paper figures 8 and 9).
#include "core/schedulers/irs_scheduler.h"

#include <gtest/gtest.h>

#include "core/schedulers/random_scheduler.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class IrsSchedulerTest : public ::testing::Test {
 protected:
  IrsSchedulerTest() : world_(testing::TestWorldConfig{.hosts = 6}) {
    world_.Populate();
    klass_ = world_.MakeClass("app");
    scheduler_ = world_.kernel.AddActor<IrsScheduler>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0),
        world_.collection->loid(), world_.enactor->loid(), /*nsched=*/4,
        /*seed=*/13);
  }

  Result<ScheduleRequestList> Compute(const PlacementRequest& request) {
    Await<ScheduleRequestList> schedule;
    scheduler_->ComputeSchedule(request, schedule.Sink());
    world_.Run();
    EXPECT_TRUE(schedule.Ready());
    return std::move(schedule.Get());
  }

  TestWorld world_;
  ClassObject* klass_;
  IrsScheduler* scheduler_;
};

TEST_F(IrsSchedulerTest, ProducesMasterPlusVariants) {
  auto schedule = Compute({{klass_->loid(), 5}});
  ASSERT_TRUE(schedule.ok());
  ASSERT_EQ(schedule->masters.size(), 1u);
  const MasterSchedule& master = schedule->masters[0];
  EXPECT_EQ(master.mappings.size(), 5u);
  // n-1 variants (some may collapse if the draw repeats the master).
  EXPECT_GE(master.variants.size(), 1u);
  EXPECT_LE(master.variants.size(), 3u);
  EXPECT_TRUE(master.Validate().ok());
}

TEST_F(IrsSchedulerTest, VariantsOnlyContainDifferences) {
  // "construct a list of all that do not appear in the master list".
  auto schedule = Compute({{klass_->loid(), 6}});
  ASSERT_TRUE(schedule.ok());
  const MasterSchedule& master = schedule->masters[0];
  for (const VariantSchedule& variant : master.variants) {
    for (const auto& [index, mapping] : variant.mappings) {
      EXPECT_FALSE(mapping == master.mappings[index])
          << "variant entry equals the master mapping";
    }
  }
}

TEST_F(IrsSchedulerTest, FewerCollectionLookupsThanRepeatedRandom) {
  // "IRS does fewer lookups in the Collection" than generating the same
  // n schedules through the figure-7 generator.
  auto* random = world_.kernel.AddActor<RandomScheduler>(
      world_.kernel.minter().Mint(LoidSpace::kService, 0),
      world_.collection->loid(), world_.enactor->loid(), /*seed=*/5);
  // IRS: n=4 candidate schedules, one lookup.
  Compute({{klass_->loid(), 4}});
  EXPECT_EQ(scheduler_->collection_lookups(), 1u);
  // Random x4: four lookups.
  for (int i = 0; i < 4; ++i) {
    Await<ScheduleRequestList> schedule;
    random->ComputeSchedule({{klass_->loid(), 4}}, schedule.Sink());
    world_.Run();
    ASSERT_TRUE(schedule.Get().ok());
  }
  EXPECT_EQ(random->collection_lookups(), 4u);
}

TEST_F(IrsSchedulerTest, SurvivesHostFailuresThatDefeatRandom) {
  // Make half the hosts refuse: the master will often hit one, and the
  // variants recover within a single negotiation.
  for (std::size_t i = 0; i < 3; ++i) {
    world_.hosts[i]->SetPolicy(std::make_unique<DomainRefusalPolicy>(
        std::vector<std::uint32_t>{0}));
  }
  int successes = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Await<RunOutcome> outcome;
    scheduler_->ScheduleAndEnact({{klass_->loid(), 2}}, RunOptions{2, 2},
                                 outcome.Sink());
    world_.Run();
    if (outcome.Ready() && outcome.Get().ok() && outcome.Get()->success) {
      ++successes;
    }
  }
  // Refusing hosts still appear in the Collection, so the master often
  // names them; the variant machinery must recover most of the time.
  EXPECT_GE(successes, 8);
}

TEST_F(IrsSchedulerTest, WrapperRespectsTryLimits) {
  // With every host refusing, the wrapper gives up after
  // SchedTryLimit x EnactTryLimit attempts.
  for (auto* host : world_.hosts) {
    host->SetPolicy(std::make_unique<DomainRefusalPolicy>(
        std::vector<std::uint32_t>{0}));
  }
  Await<RunOutcome> outcome;
  scheduler_->ScheduleAndEnact({{klass_->loid(), 2}}, RunOptions{3, 2},
                               outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Ready());
  EXPECT_FALSE(outcome.Get()->success);
  EXPECT_EQ(outcome.Get()->sched_attempts, 3);
  EXPECT_EQ(outcome.Get()->enact_attempts, 6);
}

TEST_F(IrsSchedulerTest, NschedOneDegeneratesToRandom) {
  auto* degenerate = world_.kernel.AddActor<IrsScheduler>(
      world_.kernel.minter().Mint(LoidSpace::kService, 0),
      world_.collection->loid(), world_.enactor->loid(), /*nsched=*/1,
      /*seed=*/17);
  Await<ScheduleRequestList> schedule;
  degenerate->ComputeSchedule({{klass_->loid(), 3}}, schedule.Sink());
  world_.Run();
  ASSERT_TRUE(schedule.Get().ok());
  EXPECT_TRUE(schedule.Get()->masters[0].variants.empty());
}

TEST_F(IrsSchedulerTest, MultiClassKeepsInstanceOrder) {
  auto* other = world_.MakeClass("other");
  auto schedule = Compute({{klass_->loid(), 2}, {other->loid(), 2}});
  ASSERT_TRUE(schedule.ok());
  const auto& mappings = schedule->masters[0].mappings;
  ASSERT_EQ(mappings.size(), 4u);
  EXPECT_EQ(mappings[0].class_loid, klass_->loid());
  EXPECT_EQ(mappings[3].class_loid, other->loid());
}

TEST_F(IrsSchedulerTest, NoVaultsMeansNoSchedule) {
  TestWorld bare;
  // Hosts with no compatible vaults: join the collection but unusable.
  for (auto* host : bare.hosts) host->ReassessState();
  bare.kernel.RunFor(Duration::Seconds(2));
  auto* klass = bare.MakeClass("app");
  auto* scheduler = bare.kernel.AddActor<IrsScheduler>(
      bare.kernel.minter().Mint(LoidSpace::kService, 0),
      bare.collection->loid(), bare.enactor->loid(), 4, 1);
  (void)scheduler;
  (void)klass;
  // TestWorld always wires vaults; strip them by rebuilding records with
  // an empty vault list.
  for (auto* host : bare.hosts) {
    AttributeDatabase attrs = host->attributes();
    attrs.Set("compatible_vaults", AttrValue(AttrList{}));
    Await<bool> updated;
    bare.collection->UpdateEntryAs(host->loid(), host->loid(), attrs,
                                   updated.Sink());
  }
  Await<ScheduleRequestList> schedule;
  scheduler->ComputeSchedule({{klass->loid(), 1}}, schedule.Sink());
  bare.Run();
  EXPECT_FALSE(schedule.Get().ok());
}

}  // namespace
}  // namespace legion
