// Ranked schedulers: load-aware, cost-aware, round-robin.
#include "core/schedulers/ranked_scheduler.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class RankedSchedulerTest : public ::testing::Test {
 protected:
  RankedSchedulerTest() : world_(testing::TestWorldConfig{.hosts = 4}) {
    klass_ = world_.MakeClass("app", /*memory_mb=*/64);
  }

  template <typename SchedulerT, typename... Args>
  SchedulerT* Make(Args&&... args) {
    return world_.kernel.AddActor<SchedulerT>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0),
        world_.collection->loid(), world_.enactor->loid(),
        std::forward<Args>(args)...);
  }

  Result<ScheduleRequestList> Compute(SchedulerObject* scheduler,
                                      const PlacementRequest& request) {
    Await<ScheduleRequestList> schedule;
    scheduler->ComputeSchedule(request, schedule.Sink());
    world_.Run();
    EXPECT_TRUE(schedule.Ready());
    return std::move(schedule.Get());
  }

  TestWorld world_;
  ClassObject* klass_;
};

TEST_F(RankedSchedulerTest, LoadAwarePrefersIdleHosts) {
  world_.hosts[0]->SpikeLoad(3.0);
  world_.hosts[1]->SpikeLoad(2.0);
  world_.Populate();
  auto* scheduler = Make<LoadAwareScheduler>();
  auto schedule = Compute(scheduler, {{klass_->loid(), 2}});
  ASSERT_TRUE(schedule.ok());
  const auto& mappings = schedule->masters[0].mappings;
  ASSERT_EQ(mappings.size(), 2u);
  // The two idle hosts (2 and 3) get the work.
  std::set<Loid> used{mappings[0].host, mappings[1].host};
  EXPECT_TRUE(used.count(world_.hosts[2]->loid()));
  EXPECT_TRUE(used.count(world_.hosts[3]->loid()));
}

TEST_F(RankedSchedulerTest, LoadAwareSpreadsRatherThanPiles) {
  world_.Populate();
  auto* scheduler = Make<LoadAwareScheduler>();
  auto schedule = Compute(scheduler, {{klass_->loid(), 4}});
  ASSERT_TRUE(schedule.ok());
  std::map<Loid, int> counts;
  for (const auto& mapping : schedule->masters[0].mappings) {
    counts[mapping.host]++;
  }
  // With equal loads, four instances land on four distinct hosts.
  EXPECT_EQ(counts.size(), 4u);
}

TEST_F(RankedSchedulerTest, FeasibilityFilterAvoidsNonfeasibleSchedules) {
  // Claim C6: rich attributes let the scheduler skip hosts that would
  // fail later.  Fill host 0's memory and note its absence.
  auto* fat = world_.MakeClass("fat", /*memory_mb=*/1000);
  PlacementSuggestion suggestion;
  suggestion.host = world_.hosts[0]->loid();
  suggestion.vault = world_.vaults[0]->loid();
  Await<Loid> placed;
  fat->CreateInstance(suggestion, placed.Sink());
  world_.Run();
  ASSERT_TRUE(placed.Get().ok());
  world_.Populate();

  auto* scheduler = Make<LoadAwareScheduler>();
  auto* big = world_.MakeClass("big", /*memory_mb=*/512);
  auto schedule = Compute(scheduler, {{big->loid(), 6}});
  ASSERT_TRUE(schedule.ok());
  for (const auto& mapping : schedule->masters[0].mappings) {
    EXPECT_NE(mapping.host, world_.hosts[0]->loid())
        << "scheduled onto a host without memory";
  }
}

TEST_F(RankedSchedulerTest, RankedVariantsNameAlternatives) {
  world_.Populate();
  auto* scheduler = Make<LoadAwareScheduler>(false, /*nvariants=*/2);
  auto schedule = Compute(scheduler, {{klass_->loid(), 2}});
  ASSERT_TRUE(schedule.ok());
  const MasterSchedule& master = schedule->masters[0];
  EXPECT_GE(master.variants.size(), 1u);
  EXPECT_TRUE(master.Validate().ok());
  for (const auto& variant : master.variants) {
    for (const auto& [index, mapping] : variant.mappings) {
      EXPECT_FALSE(mapping == master.mappings[index]);
    }
  }
}

TEST_F(RankedSchedulerTest, CostAwarePicksCheapestPerWork) {
  // Re-spec hosts with distinct costs via a fresh world: the cheapest
  // per unit of work must win.
  TestWorld world(testing::TestWorldConfig{.hosts = 3});
  // hosts all speed 100 (default); charge them differently.
  // HostSpec is fixed post-construction, so craft records through the
  // collection directly.
  world.Populate();
  auto* klass = world.MakeClass("app");
  // Overwrite cost attributes in the collection (scheduler reads records,
  // not live hosts).
  const double costs[3] = {0.010, 0.001, 0.005};
  for (int i = 0; i < 3; ++i) {
    AttributeDatabase attrs = world.hosts[i]->attributes();
    attrs.Set("host_cost_per_cpu_second", costs[i]);
    Await<bool> updated;
    world.collection->UpdateEntryAs(world.hosts[i]->loid(),
                                    world.hosts[i]->loid(), attrs,
                                    updated.Sink());
    ASSERT_TRUE(*updated.Get());
  }
  auto* scheduler = world.kernel.AddActor<CostAwareScheduler>(
      world.kernel.minter().Mint(LoidSpace::kService, 0),
      world.collection->loid(), world.enactor->loid());
  Await<ScheduleRequestList> schedule;
  scheduler->ComputeSchedule({{klass->loid(), 1}}, schedule.Sink());
  world.Run();
  ASSERT_TRUE(schedule.Get().ok());
  EXPECT_EQ(schedule.Get()->masters[0].mappings[0].host,
            world.hosts[1]->loid());
}

TEST_F(RankedSchedulerTest, RoundRobinUsesEveryHostEvenly) {
  world_.Populate();
  auto* scheduler = Make<RoundRobinScheduler>();
  auto schedule = Compute(scheduler, {{klass_->loid(), 8}});
  ASSERT_TRUE(schedule.ok());
  std::map<Loid, int> counts;
  for (const auto& mapping : schedule->masters[0].mappings) {
    counts[mapping.host]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [host, count] : counts) EXPECT_EQ(count, 2);
}

TEST_F(RankedSchedulerTest, EndToEndPlacementWorks) {
  world_.Populate();
  auto* scheduler = Make<LoadAwareScheduler>();
  Await<RunOutcome> outcome;
  scheduler->ScheduleAndEnact({{klass_->loid(), 3}}, RunOptions{2, 2},
                              outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Ready());
  EXPECT_TRUE(outcome.Get()->success);
  EXPECT_EQ(klass_->instances().size(), 3u);
}

TEST_F(RankedSchedulerTest, NoFeasibleHostsFails) {
  world_.Populate();
  auto* scheduler = Make<LoadAwareScheduler>();
  auto* monster = world_.MakeClass("monster", /*memory_mb=*/999999);
  auto schedule = Compute(scheduler, {{monster->loid(), 1}});
  EXPECT_EQ(schedule.code(), ErrorCode::kNoResources);
}

}  // namespace
}  // namespace legion
