// Object migration (paper section 2.1): shutdown, move the OPR, restart
// on another host.
#include "core/migration.h"

#include <gtest/gtest.h>

#include "core/monitor.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() : world_(testing::TestWorldConfig{.hosts = 3}) {
    klass_ = world_.MakeClass("app", 64, 1.0);
    agent_ = world_.kernel.minter().Mint(LoidSpace::kService, 0);
  }

  Loid PlaceOn(std::size_t host_index) {
    PlacementSuggestion suggestion;
    suggestion.host = world_.hosts[host_index]->loid();
    suggestion.vault = world_.vaults[host_index]->loid();
    Await<Loid> placed;
    klass_->CreateInstance(suggestion, placed.Sink());
    world_.Run();
    EXPECT_TRUE(placed.Get().ok());
    return *placed.Get();
  }

  TestWorld world_;
  ClassObject* klass_;
  Loid agent_;
};

TEST_F(MigrationTest, MovesObjectBetweenHostsAndVaults) {
  const Loid object = PlaceOn(0);
  EXPECT_EQ(world_.hosts[0]->running_count(), 1u);

  Await<MigrationOutcome> outcome;
  MigrateObject(&world_.kernel, agent_, object, world_.hosts[1]->loid(),
                world_.vaults[1]->loid(), outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Ready());
  ASSERT_TRUE(outcome.Get().ok());
  EXPECT_TRUE(outcome.Get()->success) << outcome.Get()->detail;
  EXPECT_EQ(outcome.Get()->from_host, world_.hosts[0]->loid());
  EXPECT_GT(outcome.Get()->elapsed, Duration::Zero());

  auto* migrated =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(object));
  ASSERT_NE(migrated, nullptr);
  EXPECT_TRUE(migrated->active());
  EXPECT_EQ(migrated->host(), world_.hosts[1]->loid());
  EXPECT_EQ(migrated->vault(), world_.vaults[1]->loid());
  EXPECT_EQ(world_.hosts[0]->running_count(), 0u);
  EXPECT_EQ(world_.hosts[1]->running_count(), 1u);
  // The OPR moved: old vault empty, new vault holds it.
  EXPECT_EQ(world_.vaults[0]->stored_count(), 0u);
  EXPECT_EQ(world_.vaults[1]->stored_count(), 1u);
}

TEST_F(MigrationTest, PreservesObjectState) {
  const Loid object = PlaceOn(0);
  auto* legion_object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(object));
  legion_object->mutable_attributes().Set("progress", 42);

  Await<MigrationOutcome> outcome;
  MigrateObject(&world_.kernel, agent_, object, world_.hosts[2]->loid(),
                world_.vaults[2]->loid(), outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Get()->success);
  auto* migrated =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(object));
  EXPECT_EQ(migrated->attributes().Get("progress")->as_int(), 42);
}

TEST_F(MigrationTest, SameVaultSkipsTheCopy) {
  // Hosts 0 and 1 can both reach vault 0?  Wire it so.
  world_.hosts[1]->AddCompatibleVault(world_.vaults[0]->loid());
  const Loid object = PlaceOn(0);
  Await<MigrationOutcome> outcome;
  MigrateObject(&world_.kernel, agent_, object, world_.hosts[1]->loid(),
                world_.vaults[0]->loid(), outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Get()->success);
  EXPECT_EQ(world_.vaults[0]->stored_count(), 1u);  // OPR stays put
  auto* migrated =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(object));
  EXPECT_EQ(migrated->host(), world_.hosts[1]->loid());
}

TEST_F(MigrationTest, InactiveObjectCannotMigrate) {
  const Loid object = PlaceOn(0);
  Await<bool> deactivated;
  world_.hosts[0]->DeactivateObject(object, deactivated.Sink());
  world_.Run();
  ASSERT_TRUE(*deactivated.Get());
  Await<MigrationOutcome> outcome;
  MigrateObject(&world_.kernel, agent_, object, world_.hosts[1]->loid(),
                world_.vaults[1]->loid(), outcome.Sink());
  world_.Run();
  EXPECT_FALSE(outcome.Get()->success);
}

TEST_F(MigrationTest, UnknownObjectFailsCleanly) {
  Await<MigrationOutcome> outcome;
  MigrateObject(&world_.kernel, agent_, Loid(LoidSpace::kObject, 0, 999),
                world_.hosts[1]->loid(), world_.vaults[1]->loid(),
                outcome.Sink());
  world_.Run();
  EXPECT_FALSE(outcome.Get()->success);
}

TEST_F(MigrationTest, TargetWithoutCapacityRefuses) {
  // Fill host 1 completely, then try to migrate into it.
  auto* hog = world_.MakeClass("hog", /*memory_mb=*/1000);
  PlacementSuggestion suggestion;
  suggestion.host = world_.hosts[1]->loid();
  suggestion.vault = world_.vaults[1]->loid();
  Await<Loid> hog_instance;
  hog->CreateInstance(suggestion, hog_instance.Sink());
  world_.Run();
  ASSERT_TRUE(hog_instance.Get().ok());

  const Loid object = PlaceOn(0);
  Await<MigrationOutcome> outcome;
  MigrateObject(&world_.kernel, agent_, object, world_.hosts[1]->loid(),
                world_.vaults[1]->loid(), outcome.Sink());
  world_.Run();
  EXPECT_FALSE(outcome.Get()->success);
}

TEST_F(MigrationTest, MonitorDrivenMigrationOnLoadSpike) {
  // The full steps-12-13 loop: trigger -> outcall -> monitor -> migrate.
  auto* monitor = world_.kernel.AddActor<MonitorObject>(
      world_.kernel.minter().Mint(LoidSpace::kService, 0));
  const Loid object = PlaceOn(0);
  monitor->WatchLoadThreshold(world_.hosts[0], 2.0);
  bool migrated = false;
  monitor->SetRescheduleHandler([&](const RgeEvent& event) {
    // Reschedule: move our object off the hot host.
    (void)event;
    MigrateObject(&world_.kernel, monitor->loid(), object,
                  world_.hosts[1]->loid(), world_.vaults[1]->loid(),
                  [&](Result<MigrationOutcome> outcome) {
                    migrated = outcome.ok() && outcome->success;
                  });
  });
  world_.hosts[0]->SpikeLoad(3.0);
  world_.Run();
  EXPECT_TRUE(migrated);
  auto* legion_object =
      dynamic_cast<LegionObject*>(world_.kernel.FindActor(object));
  EXPECT_EQ(legion_object->host(), world_.hosts[1]->loid());
}

}  // namespace
}  // namespace legion
