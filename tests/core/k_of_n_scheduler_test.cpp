// "k out of n" scheduling (paper section 3.3 future work, implemented).
#include "core/schedulers/k_of_n_scheduler.h"

#include <gtest/gtest.h>

#include <set>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class KOfNSchedulerTest : public ::testing::Test {
 protected:
  KOfNSchedulerTest() : world_(testing::TestWorldConfig{.hosts = 6}) {
    world_.Populate();
    klass_ = world_.MakeClass("replica");
  }

  KOfNScheduler* Make(std::size_t n) {
    return world_.kernel.AddActor<KOfNScheduler>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0),
        world_.collection->loid(), world_.enactor->loid(), n);
  }

  Result<ScheduleRequestList> Compute(KOfNScheduler* scheduler,
                                      std::size_t k) {
    Await<ScheduleRequestList> schedule;
    scheduler->ComputeSchedule({{klass_->loid(), k}}, schedule.Sink());
    world_.Run();
    EXPECT_TRUE(schedule.Ready());
    return std::move(schedule.Get());
  }

  TestWorld world_;
  ClassObject* klass_;
};

TEST_F(KOfNSchedulerTest, MasterHasKMappingsOnDistinctHosts) {
  auto schedule = Compute(Make(5), 3);
  ASSERT_TRUE(schedule.ok());
  const MasterSchedule& master = schedule->masters[0];
  ASSERT_EQ(master.mappings.size(), 3u);
  std::set<Loid> hosts;
  for (const auto& mapping : master.mappings) hosts.insert(mapping.host);
  EXPECT_EQ(hosts.size(), 3u);
}

TEST_F(KOfNSchedulerTest, VariantsCoverEveryPositionWithEverySpare) {
  auto schedule = Compute(Make(5), 3);
  ASSERT_TRUE(schedule.ok());
  const MasterSchedule& master = schedule->masters[0];
  // (n-k) spares x k positions single-bit variants.
  EXPECT_EQ(master.variants.size(), (5 - 3) * 3u);
  for (const auto& variant : master.variants) {
    EXPECT_EQ(variant.replaces.Count(), 1u);
    EXPECT_EQ(variant.mappings.size(), 1u);
  }
  EXPECT_TRUE(master.Validate().ok());
}

TEST_F(KOfNSchedulerTest, RejectsBadK) {
  auto zero = Compute(Make(5), 0);
  EXPECT_EQ(zero.code(), ErrorCode::kInvalidArgument);
  auto too_many = Compute(Make(3), 4);
  EXPECT_EQ(too_many.code(), ErrorCode::kInvalidArgument);
}

TEST_F(KOfNSchedulerTest, RejectsMultiClassRequests) {
  auto* other = world_.MakeClass("other");
  auto* scheduler = Make(5);
  Await<ScheduleRequestList> schedule;
  scheduler->ComputeSchedule({{klass_->loid(), 1}, {other->loid(), 1}},
                             schedule.Sink());
  world_.Run();
  EXPECT_EQ(schedule.Get().code(), ErrorCode::kInvalidArgument);
}

TEST_F(KOfNSchedulerTest, FailsWhenFewerThanKHosts) {
  TestWorld small(testing::TestWorldConfig{.hosts = 2});
  small.Populate();
  auto* klass = small.MakeClass("replica");
  auto* scheduler = small.kernel.AddActor<KOfNScheduler>(
      small.kernel.minter().Mint(LoidSpace::kService, 0),
      small.collection->loid(), small.enactor->loid(), 5);
  Await<ScheduleRequestList> schedule;
  scheduler->ComputeSchedule({{klass->loid(), 3}}, schedule.Sink());
  small.Run();
  EXPECT_EQ(schedule.Get().code(), ErrorCode::kNoResources);
}

TEST_F(KOfNSchedulerTest, AnyKOfNHostsSatisfyTheSchedule) {
  // Break two of the three hosts the master picked: the enactor must
  // land on spares and still deliver k instances.
  auto* scheduler = Make(6);
  auto schedule = Compute(scheduler, 3);
  ASSERT_TRUE(schedule.ok());
  const auto& master = schedule->masters[0];
  for (std::size_t i = 0; i < 2; ++i) {
    auto* host = dynamic_cast<HostObject*>(
        world_.kernel.FindActor(master.mappings[i].host));
    ASSERT_NE(host, nullptr);
    host->SetPolicy(std::make_unique<DomainRefusalPolicy>(
        std::vector<std::uint32_t>{0}));
  }
  Await<ScheduleFeedback> feedback;
  world_.enactor->MakeReservations(schedule.value(), feedback.Sink());
  world_.Run();
  ASSERT_TRUE(feedback.Get().ok());
  ASSERT_TRUE(feedback.Get()->success);
  EXPECT_EQ(feedback.Get()->reserved_mappings.size(), 3u);
  // Positions 0 and 1 moved to spare hosts.
  EXPECT_FALSE(feedback.Get()->reserved_mappings[0].host ==
               master.mappings[0].host);
  EXPECT_FALSE(feedback.Get()->reserved_mappings[1].host ==
               master.mappings[1].host);
  // No thrashing: position 2's reservation survived.
  EXPECT_EQ(world_.enactor->stats().rereservations, 0u);
}

TEST_F(KOfNSchedulerTest, EndToEndReplicaPlacement) {
  auto* scheduler = Make(6);
  Await<RunOutcome> outcome;
  scheduler->ScheduleAndEnact({{klass_->loid(), 4}}, RunOptions{2, 2},
                              outcome.Sink());
  world_.Run();
  ASSERT_TRUE(outcome.Ready());
  EXPECT_TRUE(outcome.Get()->success);
  EXPECT_EQ(klass_->instances().size(), 4u);
}

TEST_F(KOfNSchedulerTest, NEqualsKMeansNoVariants) {
  auto schedule = Compute(Make(3), 3);
  ASSERT_TRUE(schedule.ok());
  EXPECT_TRUE(schedule->masters[0].variants.empty());
}

}  // namespace
}  // namespace legion
