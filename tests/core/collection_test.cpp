// The Collection (paper figure 4): join/leave/update/query, the push and
// pull models, authentication, staleness, and the parallel query path.
#include "core/collection.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class CollectionTest : public ::testing::Test {
 protected:
  CollectionTest() : world_() {}

  AttributeDatabase HostRecord(const std::string& arch, double load) {
    AttributeDatabase db;
    db.Set("host_arch", arch);
    db.Set("host_load", load);
    return db;
  }

  Loid Member(std::uint64_t serial) {
    return Loid(LoidSpace::kHost, 0, 1000 + serial);
  }

  TestWorld world_;
};

TEST_F(CollectionTest, JoinWithAttributesCreatesRecord) {
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  EXPECT_TRUE(*joined.Get());
  EXPECT_EQ(world_.collection->record_count(), 1u);
  auto result = world_.collection->QueryLocal("$host_arch == \"x86\"");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].member, Member(1));
}

TEST_F(CollectionTest, JoinWithoutAttributesCreatesEmptyRecord) {
  // The figure-4 overload without the initial installment.
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), joined.Sink());
  EXPECT_TRUE(*joined.Get());
  EXPECT_EQ(world_.collection->record_count(), 1u);
  // The record exists but matches nothing substantive yet.
  auto result = world_.collection->QueryLocal("defined($host_arch)");
  EXPECT_TRUE(result->empty());
}

TEST_F(CollectionTest, LeaveRemovesRecord) {
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  Await<bool> left;
  world_.collection->LeaveCollection(Member(1), left.Sink());
  EXPECT_TRUE(*left.Get());
  EXPECT_EQ(world_.collection->record_count(), 0u);
  Await<bool> again;
  world_.collection->LeaveCollection(Member(1), again.Sink());
  EXPECT_FALSE(*again.Get());
}

TEST_F(CollectionTest, UpdateReplacesAttributes) {
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.9),
                                    joined.Sink());
  Await<bool> updated;
  world_.collection->UpdateCollectionEntry(Member(1), HostRecord("x86", 0.1),
                                           updated.Sink());
  EXPECT_TRUE(*updated.Get());
  auto result = world_.collection->QueryLocal("$host_load < 0.5");
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(CollectionTest, AuthRejectsUntrustedThirdParty) {
  // "The security facilities of Legion authenticate the caller to be
  // sure that it is allowed to update the data in the Collection."
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  const Loid stranger(LoidSpace::kService, 3, 99);
  Await<bool> rejected;
  world_.collection->UpdateEntryAs(stranger, Member(1),
                                   HostRecord("x86", 0.0), rejected.Sink());
  EXPECT_EQ(rejected.Get().code(), ErrorCode::kRefused);
  EXPECT_EQ(world_.collection->updates_rejected(), 1u);
  // Trusting the agent fixes it.
  world_.collection->AddTrustedUpdater(stranger);
  Await<bool> accepted;
  world_.collection->UpdateEntryAs(stranger, Member(1),
                                   HostRecord("x86", 0.0), accepted.Sink());
  EXPECT_TRUE(*accepted.Get());
}

TEST_F(CollectionTest, QueryCollectionReturnsMatches) {
  for (int i = 0; i < 10; ++i) {
    Await<bool> joined;
    world_.collection->JoinCollection(
        Member(i), HostRecord(i % 2 == 0 ? "x86" : "sparc", 0.1 * i),
        joined.Sink());
  }
  Await<CollectionData> result;
  world_.collection->QueryCollection(
      "$host_arch == \"sparc\" and $host_load < 0.5", result.Sink());
  ASSERT_TRUE(result.Get().ok());
  EXPECT_EQ(result.Get()->size(), 2u);  // i = 1, 3
}

TEST_F(CollectionTest, QueryBadSyntaxFails) {
  Await<CollectionData> result;
  world_.collection->QueryCollection("$a ==", result.Sink());
  EXPECT_FALSE(result.Get().ok());
}

TEST_F(CollectionTest, QueryResultsAreDeterministicallyOrdered) {
  for (int i = 9; i >= 0; --i) {
    Await<bool> joined;
    world_.collection->JoinCollection(Member(i), HostRecord("x86", 0.1),
                                      joined.Sink());
  }
  auto result = world_.collection->QueryLocal("true");
  ASSERT_TRUE(result.ok());
  for (std::size_t i = 1; i < result->size(); ++i) {
    EXPECT_LT((*result)[i - 1].member, (*result)[i].member);
  }
}

TEST_F(CollectionTest, RecordsCarryMemberAndFreshness) {
  world_.kernel.RunFor(Duration::Seconds(5));
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  auto result = world_.collection->QueryLocal("true");
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].updated_at, world_.kernel.Now());
  EXPECT_EQ((*result)[0].attributes.Get("member")->as_string(),
            Member(1).ToString());
  world_.kernel.RunFor(Duration::Seconds(10));
  EXPECT_EQ(world_.collection->MeanRecordAge(), Duration::Seconds(10));
}

TEST_F(CollectionTest, PullRefreshesFromLiveResources) {
  // "Collections may also pull data from resources."
  world_.Populate();
  const auto record_count = world_.collection->record_count();
  ASSERT_EQ(record_count, world_.hosts.size());
  // Host state changes; the collection is stale until a pull.
  world_.hosts[0]->SpikeLoad(3.5);
  auto stale = world_.collection->QueryLocal("$host_load > 3.0");
  EXPECT_TRUE(stale->empty());
  std::vector<Loid> members;
  for (auto* host : world_.hosts) members.push_back(host->loid());
  Await<std::size_t> pulled;
  world_.collection->PullFrom(members, pulled.Sink());
  world_.Run();
  ASSERT_TRUE(pulled.Ready());
  EXPECT_EQ(*pulled.Get(), world_.hosts.size());
  auto fresh = world_.collection->QueryLocal("$host_load > 3.0");
  EXPECT_EQ(fresh->size(), 1u);
}

TEST_F(CollectionTest, PullFromDeadResourceSkips) {
  Await<std::size_t> pulled;
  world_.collection->PullFrom({Loid(LoidSpace::kHost, 0, 4242)},
                              pulled.Sink());
  world_.Run();
  ASSERT_TRUE(pulled.Ready());
  EXPECT_EQ(*pulled.Get(), 0u);
}

TEST_F(CollectionTest, FunctionInjectionVisibleInQueries) {
  world_.collection->functions().Register(
      "always_42", [](const AttributeDatabase&,
                      const std::vector<AttrValue>&) -> AttrValue {
        return AttrValue(42);
      });
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  auto result = world_.collection->QueryLocal("always_42() == 42");
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(CollectionTest, ParallelQueryMatchesSerial) {
  for (int i = 0; i < 500; ++i) {
    Await<bool> joined;
    world_.collection->JoinCollection(
        Member(i), HostRecord(i % 3 == 0 ? "x86" : "sparc", 0.01 * i),
        joined.Sink());
  }
  auto query = query::CompiledQuery::Compile(
      "$host_arch == \"x86\" and $host_load < 3.0");
  ASSERT_TRUE(query.ok());
  auto serial = world_.collection->QueryLocal(*query);
  auto parallel = world_.collection->QueryLocalParallel(*query, 4);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(parallel.ok());
  ASSERT_EQ(serial->size(), parallel->size());
  for (std::size_t i = 0; i < serial->size(); ++i) {
    EXPECT_EQ((*serial)[i].member, (*parallel)[i].member);
  }
}

TEST_F(CollectionTest, ParallelQuerySmallStoreFallsBack) {
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  auto query = query::CompiledQuery::Compile("true");
  ASSERT_TRUE(query.ok());
  auto result = world_.collection->QueryLocalParallel(*query, 8);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->size(), 1u);
}

TEST_F(CollectionTest, StatsCount) {
  Await<bool> joined;
  world_.collection->JoinCollection(Member(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  world_.collection->QueryLocal("true");
  world_.collection->QueryLocal("false");
  EXPECT_EQ(world_.collection->queries_served(), 2u);
  EXPECT_EQ(world_.collection->updates_applied(), 1u);
}

}  // namespace
}  // namespace legion
