// Schedule data structures (paper figure 5).
#include "core/schedule.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

ObjectMapping Mapping(std::uint64_t klass, std::uint64_t host,
                      std::uint64_t vault) {
  ObjectMapping mapping;
  mapping.class_loid = Loid(LoidSpace::kClass, 0, klass);
  mapping.host = Loid(LoidSpace::kHost, 0, host);
  mapping.vault = Loid(LoidSpace::kVault, 0, vault);
  return mapping;
}

MasterSchedule SimpleMaster(std::size_t n) {
  MasterSchedule master;
  for (std::size_t i = 0; i < n; ++i) {
    master.mappings.push_back(Mapping(1, 10 + i, 20 + i));
  }
  return master;
}

VariantSchedule Variant(std::size_t width,
                        std::vector<std::pair<std::size_t, ObjectMapping>>
                            mappings) {
  VariantSchedule variant;
  variant.replaces.Resize(width);
  for (const auto& [index, mapping] : mappings) {
    variant.replaces.Set(index);
    variant.mappings.emplace_back(index, mapping);
  }
  return variant;
}

TEST(ScheduleTest, MappingEqualityAndToString) {
  EXPECT_EQ(Mapping(1, 2, 3), Mapping(1, 2, 3));
  EXPECT_FALSE(Mapping(1, 2, 3) == Mapping(1, 2, 4));
  EXPECT_EQ(Mapping(1, 2, 3).ToString(),
            "class:0/1 -> (host:0/2, vault:0/3)");
}

TEST(ScheduleTest, ValidMasterValidates) {
  MasterSchedule master = SimpleMaster(3);
  master.variants.push_back(Variant(3, {{1, Mapping(1, 99, 98)}}));
  EXPECT_TRUE(master.Validate().ok());
}

TEST(ScheduleTest, EmptyMasterIsMalformed) {
  MasterSchedule master;
  EXPECT_EQ(master.Validate().code(), ErrorCode::kMalformedSchedule);
}

TEST(ScheduleTest, InvalidLoidIsMalformed) {
  MasterSchedule master = SimpleMaster(2);
  master.mappings[1].vault = Loid();
  EXPECT_EQ(master.Validate().code(), ErrorCode::kMalformedSchedule);
}

TEST(ScheduleTest, VariantBitmapWidthMustMatch) {
  MasterSchedule master = SimpleMaster(3);
  master.variants.push_back(Variant(2, {{1, Mapping(1, 99, 98)}}));
  EXPECT_EQ(master.Validate().code(), ErrorCode::kMalformedSchedule);
}

TEST(ScheduleTest, VariantIndexOutOfRangeIsMalformed) {
  MasterSchedule master = SimpleMaster(2);
  VariantSchedule bad;
  bad.replaces.Resize(2);
  bad.mappings.emplace_back(5, Mapping(1, 99, 98));
  // Manually mis-set the bitmap so the population check passes.
  bad.replaces.Set(0);
  master.variants.push_back(bad);
  EXPECT_EQ(master.Validate().code(), ErrorCode::kMalformedSchedule);
}

TEST(ScheduleTest, VariantBitPopulationMustMatchMappings) {
  MasterSchedule master = SimpleMaster(3);
  VariantSchedule bad;
  bad.replaces.Resize(3);
  bad.replaces.Set(0);
  bad.replaces.Set(1);  // two bits, one mapping
  bad.mappings.emplace_back(0, Mapping(1, 99, 98));
  master.variants.push_back(bad);
  EXPECT_EQ(master.Validate().code(), ErrorCode::kMalformedSchedule);
}

TEST(ScheduleTest, VariantMappingMustBeInBitmap) {
  MasterSchedule master = SimpleMaster(3);
  VariantSchedule bad;
  bad.replaces.Resize(3);
  bad.replaces.Set(0);
  bad.mappings.emplace_back(1, Mapping(1, 99, 98));  // bit 1 not set
  master.variants.push_back(bad);
  EXPECT_EQ(master.Validate().code(), ErrorCode::kMalformedSchedule);
}

TEST(ScheduleTest, WithVariantAppliesReplacements) {
  // "Each entry in the variant schedule is a single-object mapping, and
  // replaces one entry in the master schedule."
  MasterSchedule master = SimpleMaster(3);
  master.variants.push_back(
      Variant(3, {{0, Mapping(1, 50, 51)}, {2, Mapping(1, 60, 61)}}));
  auto applied = master.WithVariant(0);
  EXPECT_EQ(applied[0], Mapping(1, 50, 51));
  EXPECT_EQ(applied[1], master.mappings[1]);  // untouched
  EXPECT_EQ(applied[2], Mapping(1, 60, 61));
}

TEST(ScheduleTest, RequestListValidation) {
  ScheduleRequestList list;
  EXPECT_EQ(list.Validate().code(), ErrorCode::kMalformedSchedule);
  list.masters.push_back(SimpleMaster(2));
  EXPECT_TRUE(list.Validate().ok());
  list.masters.push_back(MasterSchedule{});  // empty master
  EXPECT_FALSE(list.Validate().ok());
}

TEST(ScheduleTest, ToStringRendersStructure) {
  MasterSchedule master = SimpleMaster(2);
  master.variants.push_back(Variant(2, {{1, Mapping(1, 99, 98)}}));
  const std::string rendered = master.ToString();
  EXPECT_NE(rendered.find("master{"), std::string::npos);
  EXPECT_NE(rendered.find("variant[01]"), std::string::npos);
  ScheduleRequestList list;
  list.masters.push_back(master);
  EXPECT_NE(list.ToString().find("[0] master{"), std::string::npos);
}

TEST(ScheduleTest, EnactResultToString) {
  EnactResult result;
  result.success = true;
  result.instances.emplace_back(Loid(LoidSpace::kObject, 0, 5));
  result.instances.emplace_back(
      Status::Error(ErrorCode::kRefused, "nope"));
  const std::string rendered = result.ToString();
  EXPECT_NE(rendered.find("object:0/5"), std::string::npos);
  EXPECT_NE(rendered.find("REFUSED"), std::string::npos);
}

}  // namespace
}  // namespace legion
