// Implementation-cache service objects (paper §2) and implementation
// selection in schedules (§3.3 future work, implemented).
#include "core/impl_cache.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class ImplCacheTest : public ::testing::Test {
 protected:
  ImplCacheTest() : world_() {
    cache_ = world_.kernel.AddActor<ImplementationCacheObject>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0), /*domain=*/0);
    klass_ = world_.MakeClass("app");
  }

  TestWorld world_;
  ImplementationCacheObject* cache_;
  ClassObject* klass_;
};

TEST_F(ImplCacheTest, MissThenHit) {
  EXPECT_FALSE(cache_->Cached(klass_->loid(), "x86/Linux"));
  Await<bool> first;
  cache_->EnsureBinary(klass_->loid(), "x86/Linux", 1 << 20, first.Sink());
  world_.Run();
  ASSERT_TRUE(first.Ready());
  EXPECT_TRUE(*first.Get());
  EXPECT_TRUE(cache_->Cached(klass_->loid(), "x86/Linux"));
  EXPECT_EQ(cache_->misses(), 1u);
  // The second request is a hit and completes synchronously.
  Await<bool> second;
  cache_->EnsureBinary(klass_->loid(), "x86/Linux", 1 << 20, second.Sink());
  EXPECT_TRUE(second.Ready());
  EXPECT_EQ(cache_->hits(), 1u);
  EXPECT_EQ(cache_->bytes_cached(), 1u << 20);
}

TEST_F(ImplCacheTest, ConcurrentMissesShareOnePull) {
  Await<bool> a, b, c;
  cache_->EnsureBinary(klass_->loid(), "x86/Linux", 1 << 20, a.Sink());
  cache_->EnsureBinary(klass_->loid(), "x86/Linux", 1 << 20, b.Sink());
  cache_->EnsureBinary(klass_->loid(), "x86/Linux", 1 << 20, c.Sink());
  world_.Run();
  EXPECT_TRUE(*a.Get());
  EXPECT_TRUE(*b.Get());
  EXPECT_TRUE(*c.Get());
  EXPECT_EQ(cache_->misses(), 3u);       // three requests missed
  EXPECT_EQ(cache_->cached_count(), 1u); // one pull, one entry
}

TEST_F(ImplCacheTest, DifferentImplementationsAreSeparateEntries) {
  Await<bool> a, b;
  cache_->EnsureBinary(klass_->loid(), "x86/Linux", 1 << 20, a.Sink());
  cache_->EnsureBinary(klass_->loid(), "sparc/Solaris", 1 << 20, b.Sink());
  world_.Run();
  EXPECT_EQ(cache_->cached_count(), 2u);
}

TEST_F(ImplCacheTest, MissingClassFails) {
  Await<bool> fetched;
  cache_->EnsureBinary(Loid(LoidSpace::kClass, 0, 31337), "x86/Linux",
                       1 << 20, fetched.Sink());
  world_.Run();
  ASSERT_TRUE(fetched.Ready());
  EXPECT_FALSE(fetched.Get().ok() && *fetched.Get());
  EXPECT_FALSE(cache_->Cached(Loid(LoidSpace::kClass, 0, 31337), "x86/Linux"));
}

TEST_F(ImplCacheTest, ColdStartSlowerThanWarmStart) {
  world_.hosts[0]->SetImplementationCache(cache_->loid());
  auto start_once = [&]() -> Duration {
    StartObjectRequest request;
    request.class_loid = klass_->loid();
    request.instances.push_back(
        world_.kernel.minter().Mint(LoidSpace::kObject, 0));
    request.vault = world_.vaults[0]->loid();
    request.memory_mb = 16;
    request.cpu_fraction = 0.1;
    request.implementation = "x86/Linux";
    request.binary_bytes = 8 << 20;  // 8 MiB binary
    request.factory = klass_->factory();
    const SimTime begun = world_.kernel.Now();
    SimTime finished = begun;
    world_.hosts[0]->StartObject(request,
                                 [&](Result<std::vector<Loid>> started) {
                                   EXPECT_TRUE(started.ok());
                                   finished = world_.kernel.Now();
                                 });
    world_.Run();
    return finished - begun;
  };
  const Duration cold = start_once();
  const Duration warm = start_once();
  // The cold start shipped 8 MiB across the LAN; the warm one didn't.
  EXPECT_GT(cold, warm + Duration::Millis(100));
}

TEST_F(ImplCacheTest, HostWithoutImplementationSkipsCache) {
  world_.hosts[0]->SetImplementationCache(cache_->loid());
  StartObjectRequest request;
  request.class_loid = klass_->loid();
  request.instances.push_back(
      world_.kernel.minter().Mint(LoidSpace::kObject, 0));
  request.vault = world_.vaults[0]->loid();
  request.memory_mb = 16;
  request.cpu_fraction = 0.1;
  request.factory = klass_->factory();  // no implementation selected
  Await<std::vector<Loid>> started;
  world_.hosts[0]->StartObject(request, started.Sink());
  world_.Run();
  EXPECT_TRUE(started.Get().ok());
  EXPECT_EQ(cache_->misses() + cache_->hits(), 0u);
}

// ---- Implementation selection (§3.3) ----------------------------------------

TEST_F(ImplCacheTest, HostRefusesForeignImplementation) {
  StartObjectRequest request;
  request.class_loid = klass_->loid();
  request.instances.push_back(
      world_.kernel.minter().Mint(LoidSpace::kObject, 0));
  request.vault = world_.vaults[0]->loid();
  request.implementation = "sparc/Solaris";  // host is x86/Linux
  request.factory = klass_->factory();
  Await<std::vector<Loid>> started;
  world_.hosts[0]->StartObject(request, started.Sink());
  world_.Run();
  EXPECT_EQ(started.Get().code(), ErrorCode::kRefused);
}

TEST_F(ImplCacheTest, ClassRejectsUnknownImplementation) {
  PlacementSuggestion suggestion;
  suggestion.host = world_.hosts[0]->loid();
  suggestion.vault = world_.vaults[0]->loid();
  suggestion.implementation = "vax/VMS";  // not among the class's impls
  Await<Loid> placed;
  klass_->CreateInstance(suggestion, placed.Sink());
  world_.Run();
  EXPECT_EQ(placed.Get().code(), ErrorCode::kInvalidArgument);
}

TEST_F(ImplCacheTest, MatchingImplementationAccepted) {
  PlacementSuggestion suggestion;
  suggestion.host = world_.hosts[0]->loid();
  suggestion.vault = world_.vaults[0]->loid();
  suggestion.implementation = "x86/Linux";
  Await<Loid> placed;
  klass_->CreateInstance(suggestion, placed.Sink());
  world_.Run();
  EXPECT_TRUE(placed.Get().ok());
}

}  // namespace
}  // namespace legion
