// Network Objects (paper §6 future work, implemented).
#include "core/network_object.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class NetworkObjectTest : public ::testing::Test {
 protected:
  NetworkObjectTest() {
    testing::TestWorldConfig config;
    config.hosts = 4;
    config.domains = 2;
    config.net.jitter_fraction = 0.0;
    config.net.intra_domain_latency = Duration::Micros(300);
    config.net.inter_domain_latency = Duration::Millis(40);
    world_ = std::make_unique<TestWorld>(config);
    net_ = world_->kernel.AddActor<NetworkObject>(
        world_->kernel.minter().Mint(LoidSpace::kService, 0));
    // One beacon per domain: hosts 0 (domain 0) and 1 (domain 1).
    net_->AddBeacon(0, world_->hosts[0]->loid());
    net_->AddBeacon(1, world_->hosts[1]->loid());
  }

  std::unique_ptr<TestWorld> world_;
  NetworkObject* net_;
};

TEST_F(NetworkObjectTest, MeasuresInterDomainLatency) {
  Await<std::size_t> probed;
  net_->ProbeAll(probed.Sink());
  world_->Run();
  ASSERT_TRUE(probed.Ready());
  EXPECT_EQ(*probed.Get(), 1u);
  auto latency = net_->MeasuredLatency(0, 1);
  ASSERT_TRUE(latency.has_value());
  // The a->b leg crosses the WAN: ~40 ms (plus the small-message
  // bandwidth term).
  EXPECT_NEAR(latency->millis(), 40.0, 2.0);
}

TEST_F(NetworkObjectTest, SameDomainIsZeroAndUnmeasuredPairsEmpty) {
  EXPECT_EQ(net_->MeasuredLatency(0, 0), Duration::Zero());
  EXPECT_FALSE(net_->MeasuredLatency(0, 1).has_value());  // not probed yet
  EXPECT_FALSE(net_->MeasuredLatency(1, 7).has_value());
}

TEST_F(NetworkObjectTest, OrderIndependentLookup) {
  Await<std::size_t> probed;
  net_->ProbeAll(probed.Sink());
  world_->Run();
  EXPECT_EQ(net_->MeasuredLatency(0, 1), net_->MeasuredLatency(1, 0));
}

TEST_F(NetworkObjectTest, PublishesMatrixIntoCollection) {
  net_->AddCollection(world_->collection->loid());
  Await<std::size_t> probed;
  net_->ProbeAll(probed.Sink());
  world_->Run();
  auto records = world_->collection->QueryLocal(
      "defined($net_latency_us_0_1)");
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  const std::int64_t us =
      (*records)[0].attributes.Get("net_latency_us_0_1")->as_int();
  EXPECT_NEAR(static_cast<double>(us) / 1000.0, 40.0, 2.0);
  // The matrix is queryable like any other resource description.
  auto fast = world_->collection->QueryLocal("$net_latency_us_0_1 < 10000");
  EXPECT_TRUE(fast->empty());
}

TEST_F(NetworkObjectTest, PartitionLeavesPairUnmeasured) {
  world_->kernel.network().AddPartition(
      0, 1, world_->kernel.Now(), world_->kernel.Now() + Duration::Hours(1));
  Await<std::size_t> probed;
  net_->ProbeAll(probed.Sink());
  world_->Run();
  ASSERT_TRUE(probed.Ready());
  EXPECT_EQ(*probed.Get(), 0u);
  EXPECT_FALSE(net_->MeasuredLatency(0, 1).has_value());
}

TEST_F(NetworkObjectTest, PeriodicProbingRefreshes) {
  net_->Start(Duration::Seconds(10));
  world_->kernel.RunFor(Duration::Minutes(1));
  net_->Stop();
  // Drain the probe that may still be in flight from the last firing.
  world_->kernel.RunFor(Duration::Seconds(2));
  EXPECT_TRUE(net_->MeasuredLatency(0, 1).has_value());
  const auto t1 =
      net_->attributes().Get("net_probe_time")->as_int();
  world_->kernel.RunFor(Duration::Minutes(1));
  // Stopped: no further refresh.
  EXPECT_EQ(net_->attributes().Get("net_probe_time")->as_int(), t1);
}

TEST_F(NetworkObjectTest, ThreeDomainsMeasureAllPairs) {
  testing::TestWorldConfig config;
  config.hosts = 3;
  config.domains = 3;
  config.net.jitter_fraction = 0.0;
  TestWorld world(config);
  auto* net = world.kernel.AddActor<NetworkObject>(
      world.kernel.minter().Mint(LoidSpace::kService, 0));
  for (std::size_t i = 0; i < 3; ++i) {
    net->AddBeacon(static_cast<std::uint32_t>(i), world.hosts[i]->loid());
  }
  Await<std::size_t> probed;
  net->ProbeAll(probed.Sink());
  world.Run();
  EXPECT_EQ(*probed.Get(), 3u);  // (0,1) (0,2) (1,2)
  EXPECT_EQ(net->measurement_count(), 3u);
}

TEST_F(NetworkObjectTest, SingleBeaconMeasuresNothing) {
  auto* lonely = world_->kernel.AddActor<NetworkObject>(
      world_->kernel.minter().Mint(LoidSpace::kService, 0));
  lonely->AddBeacon(0, world_->hosts[0]->loid());
  Await<std::size_t> probed;
  lonely->ProbeAll(probed.Sink());
  world_->Run();
  ASSERT_TRUE(probed.Ready());
  EXPECT_EQ(*probed.Get(), 0u);
}

}  // namespace
}  // namespace legion
