// The Enactor (paper figure 6): reservation negotiation, bitmap-guided
// variant selection, thrash avoidance, and enactment.
#include "core/enactor.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class EnactorTest : public ::testing::Test {
 protected:
  EnactorTest() : world_(testing::TestWorldConfig{.hosts = 4}) {
    klass_ = world_.MakeClass("app", 64, 1.0);
  }

  ObjectMapping MappingTo(std::size_t host_index) {
    ObjectMapping mapping;
    mapping.class_loid = klass_->loid();
    mapping.host = world_.hosts[host_index]->loid();
    mapping.vault = world_.vaults[host_index]->loid();
    return mapping;
  }

  VariantSchedule Variant(std::size_t width,
                          std::vector<std::pair<std::size_t, std::size_t>>
                              index_to_host) {
    VariantSchedule variant;
    variant.replaces.Resize(width);
    for (const auto& [index, host] : index_to_host) {
      variant.replaces.Set(index);
      variant.mappings.emplace_back(index, MappingTo(host));
    }
    return variant;
  }

  // Makes host `index` refuse everything (the enactor is in domain 0).
  void BlockHost(std::size_t index) {
    world_.hosts[index]->SetPolicy(std::make_unique<DomainRefusalPolicy>(
        std::vector<std::uint32_t>{0}));
  }

  ScheduleFeedback Negotiate(const ScheduleRequestList& request) {
    Await<ScheduleFeedback> feedback;
    world_.enactor->MakeReservations(request, feedback.Sink());
    world_.Run();
    EXPECT_TRUE(feedback.Ready());
    EXPECT_TRUE(feedback.Get().ok());
    return *feedback.Get();
  }

  TestWorld world_;
  ClassObject* klass_;
};

TEST_F(EnactorTest, MasterSucceedsWhenAllHostsGrant) {
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1), MappingTo(2)};
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  ASSERT_TRUE(feedback.winner.has_value());
  EXPECT_EQ(feedback.winner->master_index, 0u);
  EXPECT_TRUE(feedback.winner->variant_indices.empty());
  ASSERT_EQ(feedback.tokens.size(), 3u);
  // Every token checks out at its host.
  for (std::size_t i = 0; i < 3; ++i) {
    Await<bool> check;
    world_.hosts[i]->CheckReservation(feedback.tokens[i], check.Sink());
    EXPECT_TRUE(*check.Get());
  }
  EXPECT_EQ(world_.enactor->stats().reservations_granted, 3u);
  EXPECT_EQ(world_.enactor->stats().rereservations, 0u);
}

TEST_F(EnactorTest, MalformedScheduleReportedAsSuch) {
  // "the Enactor may report whether the failure was due to ... a
  // malformed schedule".
  ScheduleRequestList request;  // no masters at all
  ScheduleFeedback feedback = Negotiate(request);
  EXPECT_FALSE(feedback.success);
  EXPECT_EQ(feedback.failure, ErrorCode::kMalformedSchedule);
}

TEST_F(EnactorTest, VariantRepairsSingleFailure) {
  BlockHost(1);
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  master.variants.push_back(Variant(2, {{1, 3}}));  // host 3 replaces
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(feedback.winner->variant_indices,
            (std::vector<std::size_t>{0}));
  EXPECT_EQ(feedback.reserved_mappings[1].host, world_.hosts[3]->loid());
  // The reservation on host 0 was kept, not remade: no thrashing.
  EXPECT_EQ(world_.enactor->stats().rereservations, 0u);
  EXPECT_EQ(world_.enactor->stats().reservations_cancelled, 0u);
}

TEST_F(EnactorTest, VariantReplacingSucceededMappingCancelsIt) {
  // "This variant may also have different mappings for other instances,
  // which may have succeeded in the master schedule."
  BlockHost(1);
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  // The only covering variant also moves index 0 (which succeeded).
  master.variants.push_back(Variant(2, {{0, 2}, {1, 3}}));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(feedback.reserved_mappings[0].host, world_.hosts[2]->loid());
  EXPECT_EQ(feedback.reserved_mappings[1].host, world_.hosts[3]->loid());
  // Host 0's reservation was cancelled when the variant replaced it.
  EXPECT_EQ(world_.enactor->stats().reservations_cancelled, 1u);
  // But the new mapping differs, so it is not a *re*-reservation.
  EXPECT_EQ(world_.enactor->stats().rereservations, 0u);
}

TEST_F(EnactorTest, MultipleVariantsComposeToCoverMultipleFailures) {
  BlockHost(0);
  BlockHost(1);
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  // Single-bit variants (the k-of-n shape): the Enactor must apply two.
  master.variants.push_back(Variant(2, {{0, 2}}));
  master.variants.push_back(Variant(2, {{1, 3}}));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(feedback.winner->variant_indices,
            (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(feedback.reserved_mappings[0].host, world_.hosts[2]->loid());
  EXPECT_EQ(feedback.reserved_mappings[1].host, world_.hosts[3]->loid());
}

TEST_F(EnactorTest, FallsBackToNextMasterWhenVariantsExhausted) {
  BlockHost(0);
  ScheduleRequestList request;
  MasterSchedule first;
  first.mappings = {MappingTo(0)};  // fails, no variants
  request.masters.push_back(first);
  MasterSchedule second;
  second.mappings = {MappingTo(1)};
  request.masters.push_back(second);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(feedback.winner->master_index, 1u);
}

TEST_F(EnactorTest, TotalFailureReportsReason) {
  for (std::size_t i = 0; i < world_.hosts.size(); ++i) BlockHost(i);
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0)};
  master.variants.push_back(Variant(1, {{0, 1}}));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  EXPECT_FALSE(feedback.success);
  EXPECT_EQ(feedback.failure, ErrorCode::kRefused);
  EXPECT_FALSE(feedback.failure_detail.empty());
}

TEST_F(EnactorTest, NaiveModeThrashes) {
  // E2's baseline: without bitmap guidance the Enactor cancels and
  // remakes the same reservations.
  world_.enactor->options().use_variant_bitmaps = false;
  BlockHost(1);
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  // Variant 0 does not fix the failure; variant 1 does.
  master.variants.push_back(Variant(2, {{0, 2}}));
  master.variants.push_back(Variant(2, {{1, 3}}));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  // The mapping for index 0 was granted, cancelled, and remade at least
  // once: thrashing observed.
  EXPECT_GT(world_.enactor->stats().rereservations, 0u);
  EXPECT_GT(world_.enactor->stats().reservations_cancelled, 0u);
}

TEST_F(EnactorTest, BitmapModeSameScenarioDoesNotThrash) {
  BlockHost(1);
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  master.variants.push_back(Variant(2, {{0, 2}}));
  master.variants.push_back(Variant(2, {{1, 3}}));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(world_.enactor->stats().rereservations, 0u);
}

TEST_F(EnactorTest, EnactScheduleStartsInstances) {
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  request.masters.push_back(master);
  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);

  Await<EnactResult> enacted;
  world_.enactor->EnactSchedule(feedback, enacted.Sink());
  world_.Run();
  ASSERT_TRUE(enacted.Ready());
  ASSERT_TRUE(enacted.Get().ok());
  EXPECT_TRUE(enacted.Get()->success);
  ASSERT_EQ(enacted.Get()->instances.size(), 2u);
  EXPECT_EQ(world_.hosts[0]->running_count(), 1u);
  EXPECT_EQ(world_.hosts[1]->running_count(), 1u);
  EXPECT_EQ(klass_->instances().size(), 2u);
}

TEST_F(EnactorTest, EnactWithoutSuccessfulFeedbackFails) {
  ScheduleFeedback feedback;
  feedback.success = false;
  Await<EnactResult> enacted;
  world_.enactor->EnactSchedule(feedback, enacted.Sink());
  world_.Run();
  EXPECT_FALSE(enacted.Get()->success);
}

TEST_F(EnactorTest, CancelReservationsReleasesTokens) {
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1)};
  request.masters.push_back(master);
  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);

  Await<std::size_t> cancelled;
  world_.enactor->CancelReservations(feedback, cancelled.Sink());
  world_.Run();
  EXPECT_EQ(*cancelled.Get(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    Await<bool> check;
    world_.hosts[i]->CheckReservation(feedback.tokens[i], check.Sink());
    EXPECT_FALSE(*check.Get());
  }
}

TEST_F(EnactorTest, UnknownHostCountsAsFailure) {
  ScheduleRequestList request;
  MasterSchedule master;
  ObjectMapping ghost = MappingTo(0);
  ghost.host = Loid(LoidSpace::kHost, 0, 31337);
  master.mappings = {ghost};
  request.masters.push_back(master);
  ScheduleFeedback feedback = Negotiate(request);
  EXPECT_FALSE(feedback.success);
}

// ---- The batched pipeline (DESIGN.md §11) -----------------------------------

TEST_F(EnactorTest, BatchingGroupsRequestsByHost) {
  // 8 mappings over 4 hosts with a generous cap: one ReserveBatch RPC
  // per host, all slots granted.
  world_.enactor->options().max_batch_size = 8;
  ScheduleRequestList request;
  MasterSchedule master;
  for (std::size_t i = 0; i < 8; ++i) master.mappings.push_back(MappingTo(i % 4));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(world_.enactor->stats().batches_sent, 4u);
  EXPECT_EQ(world_.enactor->stats().batched_slots, 8u);
  EXPECT_EQ(world_.enactor->stats().reservations_granted, 8u);
  EXPECT_EQ(world_.enactor->stats().reservations_requested, 8u);
}

TEST_F(EnactorTest, BatchingChunksAtTheCap) {
  // 5 same-host mappings with cap 2: chunks of 2 + 2 + 1.
  world_.enactor->options().max_batch_size = 2;
  ScheduleRequestList request;
  MasterSchedule master;
  for (std::size_t i = 0; i < 5; ++i) master.mappings.push_back(MappingTo(0));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(world_.enactor->stats().batches_sent, 3u);
  EXPECT_EQ(world_.enactor->stats().batched_slots, 5u);
}

TEST_F(EnactorTest, BackpressureParksOverflowAndStillSucceeds) {
  // Cap 2 keeps the batched path (1 is the legacy per-mapping path);
  // four single-slot host groups against a window of one in-flight batch.
  world_.enactor->options().max_batch_size = 2;
  world_.enactor->options().max_outstanding_batches = 1;
  ScheduleRequestList request;
  MasterSchedule master;
  for (std::size_t i = 0; i < 4; ++i) master.mappings.push_back(MappingTo(i));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  ASSERT_EQ(feedback.tokens.size(), 4u);
  // Only one batch may be in flight: the other three parked first.
  EXPECT_EQ(world_.enactor->stats().requests_parked, 3u);
  EXPECT_EQ(world_.enactor->stats().batches_sent, 4u);
}

TEST_F(EnactorTest, PartialBatchFailureFeedsVariantMachinery) {
  // Nine 1.0-cpu mappings against host 0's 8 units: one ReserveBatch
  // grants eight slots and refuses the ninth; the variant moves it.
  ScheduleRequestList request;
  MasterSchedule master;
  for (std::size_t i = 0; i < 9; ++i) master.mappings.push_back(MappingTo(0));
  master.variants.push_back(Variant(9, {{8, 1}}));
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_TRUE(feedback.success);
  EXPECT_EQ(feedback.reserved_mappings[8].host, world_.hosts[1]->loid());
  EXPECT_EQ(world_.enactor->stats().reservations_granted, 9u);
  EXPECT_EQ(world_.enactor->stats().reservations_failed, 1u);
  // Round 1: one batch of 9 to host 0.  Round 2: one batch of 1 to
  // host 1.  No thrashing.
  EXPECT_EQ(world_.enactor->stats().batches_sent, 2u);
  EXPECT_EQ(world_.enactor->stats().rereservations, 0u);
}

TEST_F(EnactorTest, FailedIndicesReportedOnTotalFailure) {
  for (std::size_t i = 0; i < world_.hosts.size(); ++i) BlockHost(i);
  ScheduleRequestList request;
  MasterSchedule master;
  master.mappings = {MappingTo(0), MappingTo(1), MappingTo(2)};
  request.masters.push_back(master);

  ScheduleFeedback feedback = Negotiate(request);
  ASSERT_FALSE(feedback.success);
  EXPECT_EQ(feedback.failed_indices, (std::vector<std::size_t>{0, 1, 2}));
}

class CoAllocationTest : public ::testing::Test {
 protected:
  CoAllocationTest()
      : world_(testing::TestWorldConfig{.hosts = 4, .domains = 2}) {
    klass_ = world_.MakeClass("app");
  }
  TestWorld world_;
  ClassObject* klass_;
};

TEST_F(CoAllocationTest, ReservesAcrossDomainsAtomically) {
  // "this may require the Enactor to negotiate with several resources
  // from different administrative domains to perform co-allocation."
  ScheduleRequestList request;
  MasterSchedule master;
  for (std::size_t i = 0; i < 4; ++i) {
    ObjectMapping mapping;
    mapping.class_loid = klass_->loid();
    mapping.host = world_.hosts[i]->loid();
    mapping.vault = world_.vaults[i]->loid();
    master.mappings.push_back(mapping);
  }
  request.masters.push_back(master);
  Await<ScheduleFeedback> feedback;
  world_.enactor->MakeReservations(request, feedback.Sink());
  world_.Run();
  ASSERT_TRUE(feedback.Get().ok());
  ASSERT_TRUE(feedback.Get()->success);
  // Hosts 1 and 3 are in domain 1, the enactor in domain 0: their
  // reservations crossed the WAN.
  EXPECT_EQ(feedback.Get()->tokens.size(), 4u);
}

}  // namespace
}  // namespace legion
