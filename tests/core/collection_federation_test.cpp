// Federated Collection hierarchy (DESIGN.md §10): delta propagation,
// version reconciliation, bounded staleness, and scoped query routing.
#include "core/collection_federation.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/schedulers/random_scheduler.h"
#include "workload/metacomputer.h"
#include "workload/session.h"

namespace legion {
namespace {

NetworkParams QuietNet() {
  NetworkParams params;
  params.jitter_fraction = 0.05;
  params.seed = 7;
  return params;
}

AttributeDatabase Attrs(const std::string& name, double load) {
  AttributeDatabase attrs;
  attrs.Set("host_name", name);
  attrs.Set("host_load", load);
  return attrs;
}

// A federation over a bare kernel: two domains, members joined directly.
class FederationFixture : public ::testing::Test {
 protected:
  FederationFixture() : kernel_(QuietNet()) {
    FederationOptions options;
    options.push_period = Duration::Seconds(2);
    federation_ =
        std::make_unique<CollectionFederation>(&kernel_, 2, options);
  }

  Loid JoinMember(DomainId domain, const std::string& name, double load) {
    const Loid member = kernel_.minter().Mint(LoidSpace::kHost, domain);
    kernel_.network().RegisterEndpoint(member, domain);
    federation_->sub(domain)->JoinCollection(member, Attrs(name, load),
                                             [](Result<bool>) {});
    return member;
  }

  SimKernel kernel_;
  std::unique_ptr<CollectionFederation> federation_;
};

TEST_F(FederationFixture, DeltasReachRootWithinPushPeriod) {
  const Loid a = JoinMember(0, "a", 0.25);
  const Loid b = JoinMember(1, "b", 0.5);
  EXPECT_EQ(federation_->root()->record_count(), 0u);  // nothing pushed yet
  // One push period plus WAN slack carries both joins to the root.
  kernel_.RunFor(Duration::Seconds(3));
  EXPECT_EQ(federation_->root()->record_count(), 2u);
  EXPECT_GE(federation_->root()->delta_pushes(), 2u);
  EXPECT_GE(federation_->root()->delta_records(), 2u);

  auto result = federation_->root()->QueryLocal("true");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ((*result)[0].member, std::min(a, b));
  EXPECT_EQ((*result)[1].member, std::max(a, b));
}

TEST_F(FederationFixture, LeavesPropagateAsDeltas) {
  const Loid a = JoinMember(0, "a", 0.25);
  kernel_.RunFor(Duration::Seconds(3));
  ASSERT_EQ(federation_->root()->record_count(), 1u);
  federation_->sub(0)->LeaveCollection(a, [](Result<bool>) {});
  kernel_.RunFor(Duration::Seconds(3));
  EXPECT_EQ(federation_->root()->record_count(), 0u);
}

TEST_F(FederationFixture, UpdatesCoalescePerMemberLatestWins) {
  const Loid a = JoinMember(0, "a", 0.1);
  // Several updates inside one push period coalesce into one delta
  // carrying the newest attributes.
  for (int i = 1; i <= 4; ++i) {
    federation_->sub(0)->UpdateCollectionEntry(a, Attrs("a", 0.1 * i),
                                               [](Result<bool>) {});
  }
  DeltaBatch pending = federation_->sub(0)->PendingDeltas();
  ASSERT_EQ(pending.deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(pending.deltas[0].attributes.Get("host_load")->as_double(),
                   0.4);
  kernel_.RunFor(Duration::Seconds(3));
  auto result = federation_->root()->QueryLocal("true");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_DOUBLE_EQ((*result)[0].attributes.Get("host_load")->as_double(),
                   0.4);
  // Acked journal entries are pruned: nothing left to retransmit.
  EXPECT_TRUE(federation_->sub(0)->PendingDeltas().deltas.empty());
}

// Version reconciliation at a bare root, batches crafted by hand so the
// test controls ordering exactly.
class VersioningFixture : public ::testing::Test {
 protected:
  VersioningFixture() : kernel_(QuietNet()) {
    root_ = kernel_.AddActor<CollectionObject>(
        kernel_.minter().Mint(LoidSpace::kService, 0));
    sub_loid_ = kernel_.minter().Mint(LoidSpace::kService, 1);
    root_->AddChild(1, sub_loid_);
    member_ = Loid(LoidSpace::kHost, 1, 77);
  }

  DeltaBatch Batch(std::vector<CollectionDelta> deltas) {
    DeltaBatch batch;
    batch.source = sub_loid_;
    batch.domain = 1;
    batch.deltas = std::move(deltas);
    return batch;
  }

  CollectionDelta Upsert(std::uint64_t version, double load) {
    CollectionDelta delta;
    delta.kind = CollectionDelta::Kind::kUpsert;
    delta.member = member_;
    delta.version = version;
    delta.attributes = Attrs("m", load);
    return delta;
  }

  CollectionDelta Leave(std::uint64_t version) {
    CollectionDelta delta;
    delta.kind = CollectionDelta::Kind::kLeave;
    delta.member = member_;
    delta.version = version;
    return delta;
  }

  double RootLoad() {
    auto result = root_->QueryLocal("true");
    EXPECT_TRUE(result.ok());
    EXPECT_EQ(result->size(), 1u);
    return (*result)[0].attributes.Get("host_load")->as_double();
  }

  SimKernel kernel_;
  CollectionObject* root_ = nullptr;
  Loid sub_loid_;
  Loid member_;
};

TEST_F(VersioningFixture, LateDeltaWithOlderVersionIsIgnored) {
  std::uint64_t acked = 0;
  root_->ApplyDeltaBatch(Batch({Upsert(2, 0.8)}),
                         [&](Result<std::uint64_t> v) { acked = *v; });
  EXPECT_EQ(acked, 2u);
  // The version-1 update was sent earlier but arrives later (reordered
  // on the wire): it must not clobber the newer state.
  root_->ApplyDeltaBatch(Batch({Upsert(1, 0.2)}),
                         [&](Result<std::uint64_t> v) { acked = *v; });
  EXPECT_EQ(acked, 1u);
  EXPECT_DOUBLE_EQ(RootLoad(), 0.8);
}

TEST_F(VersioningFixture, RetransmittedBatchIsIdempotent) {
  DeltaBatch batch = Batch({Upsert(1, 0.3), Upsert(2, 0.6)});
  root_->ApplyDeltaBatch(batch, [](Result<std::uint64_t>) {});
  const std::uint64_t updates_once = root_->updates_applied();
  // A lost ack makes the sub retransmit the same batch; the version
  // check must turn the replay into a no-op.
  root_->ApplyDeltaBatch(batch, [](Result<std::uint64_t>) {});
  EXPECT_EQ(root_->updates_applied(), updates_once);
  EXPECT_DOUBLE_EQ(RootLoad(), 0.6);
}

TEST_F(VersioningFixture, LeaveTombstoneBlocksResurrection) {
  root_->ApplyDeltaBatch(Batch({Upsert(1, 0.3)}),
                         [](Result<std::uint64_t>) {});
  root_->ApplyDeltaBatch(Batch({Leave(3)}), [](Result<std::uint64_t>) {});
  EXPECT_EQ(root_->record_count(), 0u);
  // An upsert sent before the leave but delivered after it must not
  // resurrect the departed member.
  root_->ApplyDeltaBatch(Batch({Upsert(2, 0.9)}),
                         [](Result<std::uint64_t>) {});
  EXPECT_EQ(root_->record_count(), 0u);
}

TEST_F(VersioningFixture, UnenrolledSourceIsRefused) {
  DeltaBatch rogue = Batch({Upsert(1, 0.5)});
  rogue.source = Loid(LoidSpace::kService, 3, 999);
  rogue.domain = 3;
  Status status = Status::Ok();
  root_->ApplyDeltaBatch(rogue, [&](Result<std::uint64_t> v) {
    status = v.status();
  });
  EXPECT_EQ(status.code(), ErrorCode::kRefused);
  EXPECT_EQ(root_->record_count(), 0u);
}

TEST_F(FederationFixture, RefreshPullBoundsStaleness) {
  // A push period far longer than the test horizon: organic deltas never
  // arrive, so a bounded-staleness query must pull them.
  FederationOptions slow;
  slow.push_period = Duration::Seconds(500);
  SimKernel kernel(QuietNet());
  CollectionFederation federation(&kernel, 2, slow);
  const Loid member = kernel.minter().Mint(LoidSpace::kHost, 1);
  kernel.network().RegisterEndpoint(member, 1);
  federation.sub(1)->JoinCollection(member, Attrs("m", 0.4),
                                    [](Result<bool>) {});
  kernel.RunFor(Duration::Seconds(30));
  ASSERT_EQ(federation.root()->record_count(), 0u);  // no push yet

  QueryOptions bounded;
  bounded.max_staleness = Duration::Seconds(10);
  CollectionData answer;
  federation.root()->QueryCollection(
      "true", bounded, [&](Result<CollectionData> result) {
        ASSERT_TRUE(result.ok());
        answer = std::move(*result);
      });
  kernel.RunFor(Duration::Seconds(10));
  ASSERT_EQ(answer.size(), 1u);
  EXPECT_EQ(answer[0].member, member);
  EXPECT_GE(federation.root()->refresh_pulls(), 2u);  // both domains stale
  EXPECT_EQ(federation.root()->stale_answers(), 0u);  // pulls succeeded
}

TEST_F(FederationFixture, LostPushesRetransmitAfterPartitionHeals) {
  // Sever domain 0 (the root) from domain 1 before the first push fires;
  // every delta batch in the window is lost.  The journal must survive
  // and retransmit once the partition heals.
  kernel_.network().AddPartition(0, 1,
                                 kernel_.Now(),
                                 kernel_.Now() + Duration::Seconds(20));
  const Loid b = JoinMember(1, "b", 0.5);
  kernel_.RunFor(Duration::Seconds(15));
  EXPECT_EQ(federation_->root()->record_count(), 0u);
  EXPECT_FALSE(federation_->sub(1)->PendingDeltas().deltas.empty());
  // Heal; the next periodic push carries the whole backlog.
  kernel_.RunFor(Duration::Seconds(15));
  EXPECT_EQ(federation_->root()->record_count(), 1u);
  auto result = federation_->root()->QueryLocal("true");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 1u);
  EXPECT_EQ((*result)[0].member, b);
}

TEST(FederatedMetacomputerTest, ScopedSchedulerPlacesInItsDomain) {
  NetworkParams net = QuietNet();
  SimKernel kernel(net);
  MetacomputerConfig config;
  config.domains = 3;
  config.hosts_per_domain = 4;
  config.heterogeneous = false;
  config.seed = 21;
  config.load.volatility = 0.0;
  config.federated = true;
  config.delta_push_period = Duration::Seconds(2);
  Metacomputer metacomputer(&kernel, config);
  metacomputer.PopulateCollection();
  ASSERT_NE(metacomputer.federation(), nullptr);
  EXPECT_EQ(metacomputer.collection(), metacomputer.federation()->root());
  EXPECT_EQ(metacomputer.collection()->record_count(), 12u);

  ClassObject* klass = metacomputer.MakeUniversalClass("scoped_app", 16, 0.1);
  auto* scheduler = kernel.AddActor<RandomScheduler>(
      kernel.minter().Mint(LoidSpace::kService, 0),
      metacomputer.collection()->loid(), metacomputer.enactor()->loid(), 5);
  WorkloadSession session(&metacomputer, scheduler);
  session.ScopeToDomain(1);

  bool success = false;
  std::vector<Loid> placed_hosts;
  scheduler->ScheduleAndEnact(
      {{klass->loid(), 3}}, RunOptions{},
      [&](Result<RunOutcome> outcome) {
        success = outcome.ok() && outcome->success;
        if (!outcome.ok()) return;
        for (const auto& mapping : outcome->feedback.reserved_mappings) {
          placed_hosts.push_back(mapping.host);
        }
      });
  kernel.RunFor(Duration::Minutes(2));
  ASSERT_TRUE(success);
  ASSERT_EQ(placed_hosts.size(), 3u);
  for (const Loid& host : placed_hosts) {
    EXPECT_EQ(host.domain(), 1u) << host.ToString();
  }
}

}  // namespace
}  // namespace legion
