// The execution Monitor and RGE outcalls (paper section 3.5, protocol
// steps 12-13).
#include "core/monitor.h"

#include <gtest/gtest.h>

#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

class MonitorTest : public ::testing::Test {
 protected:
  MonitorTest() : world_() {
    monitor_ = world_.kernel.AddActor<MonitorObject>(
        world_.kernel.minter().Mint(LoidSpace::kService, 0));
  }

  TestWorld world_;
  MonitorObject* monitor_;
};

TEST_F(MonitorTest, LoadThresholdTriggerFiresOutcall) {
  monitor_->WatchLoadThreshold(world_.hosts[0], 2.0);
  int reschedules = 0;
  RgeEvent last;
  monitor_->SetRescheduleHandler([&](const RgeEvent& event) {
    ++reschedules;
    last = event;
  });
  // Below the threshold: nothing.
  world_.hosts[0]->ReassessState();
  world_.Run();
  EXPECT_EQ(monitor_->events_received(), 0u);
  // Load spike above the threshold: the outcall crosses the network and
  // the monitor notifies its handler.
  world_.hosts[0]->SpikeLoad(3.0);
  world_.Run();
  EXPECT_EQ(monitor_->events_received(), 1u);
  EXPECT_EQ(reschedules, 1);
  EXPECT_EQ(last.source, world_.hosts[0]->loid());
  EXPECT_GT(last.payload.Get("host_load")->as_double(), 2.0);
}

TEST_F(MonitorTest, EdgeTriggerDoesNotStorm) {
  monitor_->WatchLoadThreshold(world_.hosts[0], 2.0);
  world_.hosts[0]->SpikeLoad(3.0);
  world_.Run();
  // Re-evaluating while still loaded does not re-fire.
  for (int i = 0; i < 5; ++i) {
    world_.hosts[0]->mutable_attributes().Set("host_load", 3.0);
    world_.hosts[0]->EvaluateTriggers();
  }
  world_.Run();
  EXPECT_EQ(monitor_->events_received(), 1u);
}

TEST_F(MonitorTest, RearmsAfterLoadDrops) {
  monitor_->WatchLoadThreshold(world_.hosts[0], 2.0);
  world_.hosts[0]->SpikeLoad(3.0);
  world_.Run();
  world_.hosts[0]->SpikeLoad(0.1);  // back below
  world_.Run();
  world_.hosts[0]->SpikeLoad(3.5);  // spike again
  world_.Run();
  EXPECT_EQ(monitor_->events_received(), 2u);
}

TEST_F(MonitorTest, WatchesSeveralHostsIndependently) {
  monitor_->WatchLoadThreshold(world_.hosts[0], 2.0);
  monitor_->WatchLoadThreshold(world_.hosts[1], 2.0);
  std::vector<Loid> sources;
  monitor_->SetRescheduleHandler(
      [&](const RgeEvent& event) { sources.push_back(event.source); });
  world_.hosts[1]->SpikeLoad(4.0);
  world_.Run();
  world_.hosts[0]->SpikeLoad(4.0);
  world_.Run();
  ASSERT_EQ(sources.size(), 2u);
  EXPECT_EQ(sources[0], world_.hosts[1]->loid());
  EXPECT_EQ(sources[1], world_.hosts[0]->loid());
}

TEST_F(MonitorTest, CustomEventWatch) {
  // Register a bespoke trigger on the host and watch its event by name.
  TriggerSpec spec;
  spec.event_name = "memory_pressure";
  spec.guard = [](const AttributeDatabase& attrs) {
    const AttrValue* available = attrs.Get("host_available_memory_mb");
    return available != nullptr && available->as_int() < 100;
  };
  world_.hosts[0]->events().RegisterTrigger(std::move(spec));
  monitor_->WatchHost(world_.hosts[0], "memory_pressure");
  // Eat nearly all memory.
  auto* klass = world_.MakeClass("hog", /*memory_mb=*/1000);
  PlacementSuggestion suggestion;
  suggestion.host = world_.hosts[0]->loid();
  suggestion.vault = world_.vaults[0]->loid();
  Await<Loid> placed;
  klass->CreateInstance(suggestion, placed.Sink());
  world_.Run();
  ASSERT_TRUE(placed.Get().ok());
  world_.hosts[0]->ReassessState();
  world_.Run();
  EXPECT_EQ(monitor_->events_received(), 1u);
}

TEST_F(MonitorTest, SustainedFlappingSpikeDispatchesOnce) {
  // Regression: an edge-sensitive load trigger on a flapping host re-fires
  // on every threshold crossing.  Before the debounce each firing invoked
  // the reschedule handler, so one sustained spike requested N migrations
  // while the first was still in flight.
  monitor_->WatchLoadThreshold(world_.hosts[0], 2.0);
  int reschedules = 0;
  monitor_->SetRescheduleHandler([&](const RgeEvent&) { ++reschedules; });
  // Five spike/dip cycles a second apart: the guard crosses false->true
  // five times, so five outcalls arrive within the debounce window.
  // (Short drains, not world_.Run() -- that advances two sim minutes and
  // would step right over the 30s debounce window.)
  for (int i = 0; i < 5; ++i) {
    world_.hosts[0]->SpikeLoad(3.0 + i);
    world_.kernel.RunFor(Duration::Millis(500));
    world_.hosts[0]->SpikeLoad(0.1);
    world_.kernel.RunFor(Duration::Millis(500));
  }
  EXPECT_EQ(monitor_->events_received(), 5u);
  EXPECT_EQ(reschedules, 1);
  EXPECT_EQ(monitor_->events_suppressed(), 4u);
  // Once the interval elapses the next crossing dispatches again.
  world_.Run();  // two sim minutes >> 30s debounce
  world_.hosts[0]->SpikeLoad(4.0);
  world_.kernel.RunFor(Duration::Millis(500));
  EXPECT_EQ(reschedules, 2);
}

TEST_F(MonitorTest, NoHandlerIsHarmless) {
  monitor_->WatchLoadThreshold(world_.hosts[0], 2.0);
  world_.hosts[0]->SpikeLoad(3.0);
  world_.Run();
  EXPECT_EQ(monitor_->events_received(), 1u);  // no crash without handler
}

}  // namespace
}  // namespace legion
