// Attribute indexes (collection_index.h): candidate soundness,
// boundary handling, and the join/update/leave maintenance that keeps
// them in lockstep with the Collection's record store.
#include "core/collection_index.h"

#include <gtest/gtest.h>

#include "core/collection.h"
#include "test_world.h"

namespace legion {
namespace {

using testing::Await;
using testing::TestWorld;

Loid M(std::uint64_t serial) { return Loid(LoidSpace::kHost, 0, serial); }

query::IndexPlan Pred(const std::string& attr, query::PredicateOp op,
                      AttrValue literal = {}) {
  query::IndexPlan plan;
  plan.kind = query::IndexPlan::Kind::kPredicate;
  plan.pred = query::SargablePredicate{attr, op, std::move(literal)};
  return plan;
}

TEST(AttributeIndexesTest, EqualityLookup) {
  AttributeIndexes indexes;
  AttributeDatabase a;
  a.Set("arch", "x86");
  AttributeDatabase b;
  b.Set("arch", "sparc");
  indexes.Add(M(1), a);
  indexes.Add(M(2), b);
  indexes.Add(M(3), a);

  auto result =
      indexes.Eval(Pred("arch", query::PredicateOp::kEq, AttrValue("x86")));
  EXPECT_EQ(result.members, (std::vector<Loid>{M(1), M(3)}));
  auto miss =
      indexes.Eval(Pred("arch", query::PredicateOp::kEq, AttrValue("vax")));
  EXPECT_TRUE(miss.members.empty());
}

TEST(AttributeIndexesTest, RangeBoundariesAreInclusiveSupersets) {
  // The candidate contract is superset-only: a strict `< 1.0` must still
  // return the record at exactly 1.0 (the residual pass trims it).
  AttributeIndexes indexes;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    AttributeDatabase db;
    db.Set("load", 0.5 * static_cast<double>(i));  // 0.5 .. 2.5
    indexes.Add(M(i), db);
  }
  auto lt = indexes.Eval(Pred("load", query::PredicateOp::kLt, AttrValue(1.0)));
  EXPECT_EQ(lt.members, (std::vector<Loid>{M(1), M(2)}));  // 0.5 and 1.0
  EXPECT_FALSE(lt.exact);
  auto gt = indexes.Eval(Pred("load", query::PredicateOp::kGt, AttrValue(2.0)));
  EXPECT_EQ(gt.members, (std::vector<Loid>{M(4), M(5)}));  // 2.0 and 2.5
}

TEST(AttributeIndexesTest, IntAndDoubleShareTheNumericIndex) {
  // CompareAttrValues compares across the int/double divide; so does the
  // index, which keys everything as double.
  AttributeIndexes indexes;
  AttributeDatabase ints;
  ints.Set("cpus", 4);
  AttributeDatabase doubles;
  doubles.Set("cpus", 4.0);
  indexes.Add(M(1), ints);
  indexes.Add(M(2), doubles);
  auto result =
      indexes.Eval(Pred("cpus", query::PredicateOp::kEq, AttrValue(4)));
  EXPECT_EQ(result.members, (std::vector<Loid>{M(1), M(2)}));
}

TEST(AttributeIndexesTest, DefinedUsesPresence) {
  AttributeIndexes indexes;
  AttributeDatabase with;
  with.Set("gpu", true);
  AttributeDatabase with_null;
  with_null.Set("gpu", AttrValue());  // null: not defined
  indexes.Add(M(1), with);
  indexes.Add(M(2), with_null);
  auto result = indexes.Eval(Pred("gpu", query::PredicateOp::kDefined));
  EXPECT_EQ(result.members, (std::vector<Loid>{M(1)}));
  EXPECT_TRUE(
      indexes.Eval(Pred("none", query::PredicateOp::kDefined)).members.empty());
}

TEST(AttributeIndexesTest, RemoveErasesEveryTrace) {
  AttributeIndexes indexes;
  AttributeDatabase db;
  db.Set("arch", "x86");
  db.Set("load", 0.5);
  db.Set("up", true);
  indexes.Add(M(1), db);
  EXPECT_EQ(indexes.attribute_count(), 3u);
  indexes.Remove(M(1), db);
  EXPECT_EQ(indexes.attribute_count(), 0u);  // empty structures pruned
}

TEST(AttributeIndexesTest, OrUnionsAndDeduplicates) {
  AttributeIndexes indexes;
  AttributeDatabase db;
  db.Set("arch", "x86");
  db.Set("load", 0.1);
  indexes.Add(M(1), db);
  query::IndexPlan plan;
  plan.kind = query::IndexPlan::Kind::kOr;
  plan.children.push_back(
      Pred("arch", query::PredicateOp::kEq, AttrValue("x86")));
  plan.children.push_back(
      Pred("load", query::PredicateOp::kLt, AttrValue(1.0)));
  auto result = indexes.Eval(plan);
  EXPECT_EQ(result.members, (std::vector<Loid>{M(1)}));  // once, not twice
}

TEST(AttributeIndexesTest, AndPrunesThroughCheapestChild) {
  AttributeIndexes indexes;
  for (std::uint64_t i = 1; i <= 100; ++i) {
    AttributeDatabase db;
    db.Set("arch", i == 7 ? "alpha" : "x86");
    db.Set("load", 0.5);
    indexes.Add(M(i), db);
  }
  query::IndexPlan plan;
  plan.kind = query::IndexPlan::Kind::kAnd;
  plan.children.push_back(
      Pred("arch", query::PredicateOp::kEq, AttrValue("alpha")));
  plan.children.push_back(
      Pred("load", query::PredicateOp::kLe, AttrValue(1.0)));
  auto result = indexes.Eval(plan);
  // The arch child (1 candidate) wins over the load child (100).
  EXPECT_EQ(result.members, (std::vector<Loid>{M(7)}));
  EXPECT_LE(indexes.Estimate(plan, 1000), 1u);
}

TEST(AttributeIndexesTest, EstimateHonorsTheCap) {
  AttributeIndexes indexes;
  for (std::uint64_t i = 1; i <= 50; ++i) {
    AttributeDatabase db;
    db.Set("load", static_cast<double>(i));
    indexes.Add(M(i), db);
  }
  const auto plan = Pred("load", query::PredicateOp::kLe, AttrValue(1e9));
  EXPECT_EQ(indexes.Estimate(plan, 1000), 50u);
  // Capped: stops counting shortly past the cap instead of walking all.
  EXPECT_GT(indexes.Estimate(plan, 10), 10u);
}

// ---- Maintenance through the Collection ------------------------------------

class CollectionIndexTest : public ::testing::Test {
 protected:
  AttributeDatabase HostRecord(const std::string& arch, double load) {
    AttributeDatabase db;
    db.Set("host_arch", arch);
    db.Set("host_load", load);
    return db;
  }

  TestWorld world_;
};

TEST_F(CollectionIndexTest, JoinUpdateLeaveKeepIndexConsistent) {
  Await<bool> joined;
  world_.collection->JoinCollection(M(1), HostRecord("x86", 0.9),
                                    joined.Sink());
  auto x86 = world_.collection->QueryLocal("$host_arch == \"x86\"");
  ASSERT_EQ(x86->size(), 1u);
  EXPECT_GE(world_.collection->index_hits(), 1u);

  // Update flips the arch; the old index entry must be gone.
  Await<bool> updated;
  world_.collection->UpdateCollectionEntry(M(1), HostRecord("sparc", 0.1),
                                           updated.Sink());
  EXPECT_TRUE(world_.collection->QueryLocal("$host_arch == \"x86\"")->empty());
  EXPECT_EQ(world_.collection->QueryLocal("$host_arch == \"sparc\"")->size(),
            1u);

  Await<bool> left;
  world_.collection->LeaveCollection(M(1), left.Sink());
  EXPECT_TRUE(
      world_.collection->QueryLocal("$host_arch == \"sparc\"")->empty());
}

TEST_F(CollectionIndexTest, IndexAndScanCountersSplitTraffic) {
  Await<bool> joined;
  world_.collection->JoinCollection(M(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  const auto hits = world_.collection->index_hits();
  const auto fallbacks = world_.collection->planner_fallbacks();
  (void)world_.collection->QueryLocal("$host_arch == \"x86\"");  // sargable
  (void)world_.collection->QueryLocal("match($host_arch, \"x\")");  // not
  QueryOptions force;
  force.force_scan = true;
  (void)world_.collection->QueryLocal("$host_arch == \"x86\"", force);
  EXPECT_EQ(world_.collection->index_hits(), hits + 1);
  EXPECT_EQ(world_.collection->planner_fallbacks(), fallbacks + 2);
}

TEST_F(CollectionIndexTest, CompileCacheCountsHitsAndMisses) {
  Await<bool> joined;
  world_.collection->JoinCollection(M(1), HostRecord("x86", 0.5),
                                    joined.Sink());
  const std::string text = "$host_load < 1.0";
  (void)world_.collection->QueryLocal(text);
  (void)world_.collection->QueryLocal(text);
  (void)world_.collection->QueryLocal(text);
  EXPECT_EQ(world_.collection->compile_cache_misses(), 1u);
  EXPECT_EQ(world_.collection->compile_cache_hits(), 2u);
}

TEST_F(CollectionIndexTest, MaxResultsAndOrderByPrune) {
  for (std::uint64_t i = 1; i <= 10; ++i) {
    Await<bool> joined;
    world_.collection->JoinCollection(
        M(i), HostRecord("x86", 1.0 - 0.1 * static_cast<double>(i)),
        joined.Sink());
  }
  QueryOptions top3;
  top3.max_results = 3;
  top3.order_by = "host_load";
  auto result = world_.collection->QueryLocal("$host_arch == \"x86\"", top3);
  ASSERT_EQ(result->size(), 3u);
  // Least-loaded first: members 10, 9, 8 carry loads 0.0, 0.1, 0.2.
  EXPECT_EQ((*result)[0].member, M(10));
  EXPECT_EQ((*result)[1].member, M(9));
  EXPECT_EQ((*result)[2].member, M(8));

  QueryOptions worst;
  worst.max_results = 1;
  worst.order_by = "host_load";
  worst.descending = true;
  auto high = world_.collection->QueryLocal("$host_arch == \"x86\"", worst);
  ASSERT_EQ(high->size(), 1u);
  EXPECT_EQ((*high)[0].member, M(1));

  QueryOptions member_order;
  member_order.max_results = 2;
  auto first_two =
      world_.collection->QueryLocal("$host_arch == \"x86\"", member_order);
  ASSERT_EQ(first_two->size(), 2u);
  EXPECT_EQ((*first_two)[0].member, M(1));
  EXPECT_EQ((*first_two)[1].member, M(2));
}

TEST_F(CollectionIndexTest, DerivedAttributesMaterializeOnEmittedOnly) {
  // The injected function runs once per *emitted* record: with top-k
  // pruning the pruned matches never pay for materialization.
  int calls = 0;
  world_.collection->functions().Register(
      "expensive", [&calls](const AttributeDatabase&,
                            const std::vector<AttrValue>&) -> AttrValue {
        ++calls;
        return AttrValue(1);
      });
  for (std::uint64_t i = 1; i <= 20; ++i) {
    Await<bool> joined;
    world_.collection->JoinCollection(M(i), HostRecord("x86", 0.5),
                                      joined.Sink());
  }
  QueryOptions top2;
  top2.max_results = 2;
  auto result = world_.collection->QueryLocal("$host_arch == \"x86\"", top2);
  ASSERT_EQ(result->size(), 2u);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ((*result)[0].attributes.Get("expensive")->as_int(), 1);
}

}  // namespace
}  // namespace legion
