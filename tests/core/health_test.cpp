// HealthTracker: the circuit breaker over reservation outcomes
// (DESIGN.md §9).  State machine coverage on a bare kernel clock.
#include "core/health.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

class HealthTest : public ::testing::Test {
 protected:
  HealthTest() : kernel_(NetworkParams{}), tracker_(&kernel_) {}

  static Loid Host(std::uint32_t domain, std::uint64_t serial) {
    return Loid(LoidSpace::kHost, domain, serial);
  }

  SimKernel kernel_;
  HealthTracker tracker_;
};

TEST_F(HealthTest, UnknownHostIsHealthyAndClosed) {
  const Loid host = Host(0, 1);
  EXPECT_TRUE(tracker_.Healthy(host));
  EXPECT_EQ(tracker_.HostState(host), BreakerState::kClosed);
  EXPECT_EQ(tracker_.DomainState(0), BreakerState::kClosed);
  EXPECT_FALSE(tracker_.SuspectUntil(host).has_value());
  EXPECT_FALSE(tracker_.IsProbe(host));
}

TEST_F(HealthTest, BreakerOpensAtConsecutiveFailureThreshold) {
  const Loid host = Host(0, 1);
  const int threshold = tracker_.options().host_failure_threshold;
  for (int i = 0; i < threshold - 1; ++i) {
    tracker_.RecordFailure(host);
    EXPECT_TRUE(tracker_.Healthy(host)) << "opened early at failure " << i;
  }
  tracker_.RecordFailure(host);
  EXPECT_FALSE(tracker_.Healthy(host));
  EXPECT_EQ(tracker_.HostState(host), BreakerState::kOpen);
  ASSERT_TRUE(tracker_.SuspectUntil(host).has_value());
  EXPECT_EQ(*tracker_.SuspectUntil(host),
            kernel_.Now() + tracker_.options().host_cooldown);
}

TEST_F(HealthTest, SuccessResetsTheFailureCount) {
  const Loid host = Host(0, 1);
  const int threshold = tracker_.options().host_failure_threshold;
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < threshold - 1; ++i) tracker_.RecordFailure(host);
    tracker_.RecordSuccess(host);
  }
  EXPECT_TRUE(tracker_.Healthy(host));
  EXPECT_EQ(tracker_.HostState(host), BreakerState::kClosed);
}

TEST_F(HealthTest, HalfOpenAfterCooldownCountsAsHealthyProbe) {
  const Loid host = Host(0, 1);
  for (int i = 0; i < tracker_.options().host_failure_threshold; ++i) {
    tracker_.RecordFailure(host);
  }
  ASSERT_EQ(tracker_.HostState(host), BreakerState::kOpen);
  kernel_.RunFor(tracker_.options().host_cooldown + Duration::Seconds(1));
  EXPECT_EQ(tracker_.HostState(host), BreakerState::kHalfOpen);
  EXPECT_TRUE(tracker_.Healthy(host));
  EXPECT_TRUE(tracker_.IsProbe(host));
  EXPECT_FALSE(tracker_.SuspectUntil(host).has_value());
}

TEST_F(HealthTest, FailedProbeReopensWithEscalatedCooldown) {
  const Loid host = Host(0, 1);
  for (int i = 0; i < tracker_.options().host_failure_threshold; ++i) {
    tracker_.RecordFailure(host);
  }
  kernel_.RunFor(tracker_.options().host_cooldown + Duration::Seconds(1));
  ASSERT_EQ(tracker_.HostState(host), BreakerState::kHalfOpen);
  // One failure re-trips immediately (no re-count to the threshold),
  // with the cooldown scaled by the multiplier.
  tracker_.RecordFailure(host);
  EXPECT_EQ(tracker_.HostState(host), BreakerState::kOpen);
  ASSERT_TRUE(tracker_.SuspectUntil(host).has_value());
  EXPECT_EQ(*tracker_.SuspectUntil(host),
            kernel_.Now() + tracker_.options().host_cooldown *
                                tracker_.options().cooldown_multiplier);
}

TEST_F(HealthTest, EscalationIsCappedAtMaxCooldown) {
  const Loid host = Host(0, 1);
  tracker_.options().max_cooldown = Duration::Seconds(90);
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < tracker_.options().host_failure_threshold; ++i) {
      tracker_.RecordFailure(host);
    }
    kernel_.RunFor(Duration::Minutes(20));
  }
  for (int i = 0; i < tracker_.options().host_failure_threshold; ++i) {
    tracker_.RecordFailure(host);
  }
  ASSERT_TRUE(tracker_.SuspectUntil(host).has_value());
  EXPECT_LE(*tracker_.SuspectUntil(host),
            kernel_.Now() + Duration::Seconds(90));
}

TEST_F(HealthTest, SuccessfulProbeClosesTheBreaker) {
  const Loid host = Host(0, 1);
  for (int i = 0; i < tracker_.options().host_failure_threshold; ++i) {
    tracker_.RecordFailure(host);
  }
  kernel_.RunFor(tracker_.options().host_cooldown + Duration::Seconds(1));
  tracker_.RecordSuccess(host);
  EXPECT_EQ(tracker_.HostState(host), BreakerState::kClosed);
  EXPECT_TRUE(tracker_.Healthy(host));
  EXPECT_FALSE(tracker_.IsProbe(host));
}

TEST_F(HealthTest, DomainBreakerAggregatesAcrossHosts) {
  tracker_.options().host_failure_threshold = 10;  // keep hosts closed
  tracker_.options().domain_failure_threshold = 4;
  for (std::uint64_t serial = 1; serial <= 4; ++serial) {
    tracker_.RecordFailure(Host(1, serial));
  }
  // No individual host tripped, but the domain did: every domain-1 host
  // is now suspect, including one never seen before.
  EXPECT_EQ(tracker_.HostState(Host(1, 1)), BreakerState::kClosed);
  EXPECT_EQ(tracker_.DomainState(1), BreakerState::kOpen);
  EXPECT_FALSE(tracker_.Healthy(Host(1, 99)));
  ASSERT_TRUE(tracker_.SuspectUntil(Host(1, 99)).has_value());
  // Other domains are unaffected.
  EXPECT_TRUE(tracker_.Healthy(Host(2, 1)));
}

TEST_F(HealthTest, SuccessInDomainResetsTheDomainCount) {
  tracker_.options().host_failure_threshold = 10;
  tracker_.options().domain_failure_threshold = 4;
  for (std::uint64_t serial = 1; serial <= 3; ++serial) {
    tracker_.RecordFailure(Host(1, serial));
  }
  tracker_.RecordSuccess(Host(1, 4));  // one good answer from the domain
  tracker_.RecordFailure(Host(1, 5));
  EXPECT_EQ(tracker_.DomainState(1), BreakerState::kClosed);
}

}  // namespace
}  // namespace legion
