// The specialized 2-D stencil placement policy (paper section 4.3).
#include "core/schedulers/stencil_scheduler.h"

#include <gtest/gtest.h>

#include "core/schedulers/random_scheduler.h"
#include "workload/app_model.h"
#include "workload/executor.h"
#include "workload/metacomputer.h"

namespace legion {
namespace {

class StencilSchedulerTest : public ::testing::Test {
 protected:
  StencilSchedulerTest() : kernel_(QuietNet()) {
    MetacomputerConfig config;
    config.domains = 3;
    config.hosts_per_domain = 6;
    config.vaults_per_domain = 2;
    config.heterogeneous = false;  // every host runs the class
    config.seed = 21;
    config.load.initial = 0.2;
    config.load.mean = 0.2;
    config.load.volatility = 0.0;
    metacomputer_ = std::make_unique<Metacomputer>(&kernel_, config);
    metacomputer_->PopulateCollection();
    klass_ = metacomputer_->MakeUniversalClass("ocean", 32, 1.0);
  }

  static NetworkParams QuietNet() {
    NetworkParams params;
    params.jitter_fraction = 0.0;
    return params;
  }

  SimKernel kernel_;
  std::unique_ptr<Metacomputer> metacomputer_;
  ClassObject* klass_;
};

TEST_F(StencilSchedulerTest, RejectsMismatchedRequests) {
  auto* scheduler = kernel_.AddActor<StencilScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      4, 4);
  Result<ScheduleRequestList> got(ScheduleRequestList{});
  bool fired = false;
  scheduler->ComputeSchedule({{klass_->loid(), 7}},
                             [&](Result<ScheduleRequestList> r) {
                               fired = true;
                               got = std::move(r);
                             });
  kernel_.RunFor(Duration::Minutes(1));
  ASSERT_TRUE(fired);
  EXPECT_EQ(got.code(), ErrorCode::kInvalidArgument);
}

TEST_F(StencilSchedulerTest, ProducesFullGridOfMappings) {
  auto* scheduler = kernel_.AddActor<StencilScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      6, 6);
  Result<ScheduleRequestList> got(ScheduleRequestList{});
  scheduler->ComputeSchedule({{klass_->loid(), 36}},
                             [&](Result<ScheduleRequestList> r) {
                               got = std::move(r);
                             });
  kernel_.RunFor(Duration::Minutes(1));
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(got->masters.size(), 1u);
  EXPECT_EQ(got->masters[0].mappings.size(), 36u);
  EXPECT_TRUE(got->masters[0].Validate().ok());
}

TEST_F(StencilSchedulerTest, RowsStayWithinOneDomain) {
  // The band partition: every grid row lives in a single administrative
  // domain, so east-west halo edges never cross the WAN.
  const std::size_t rows = 6, cols = 6;
  auto* scheduler = kernel_.AddActor<StencilScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      rows, cols);
  Result<ScheduleRequestList> got(ScheduleRequestList{});
  scheduler->ComputeSchedule({{klass_->loid(), rows * cols}},
                             [&](Result<ScheduleRequestList> r) {
                               got = std::move(r);
                             });
  kernel_.RunFor(Duration::Minutes(1));
  ASSERT_TRUE(got.ok());
  const auto& mappings = got->masters[0].mappings;
  for (std::size_t r = 0; r < rows; ++r) {
    auto domain0 = kernel_.network().DomainOf(mappings[r * cols].host);
    ASSERT_TRUE(domain0.has_value());
    for (std::size_t c = 1; c < cols; ++c) {
      auto domain = kernel_.network().DomainOf(mappings[r * cols + c].host);
      ASSERT_TRUE(domain.has_value());
      EXPECT_EQ(*domain, *domain0) << "row " << r << " spans domains";
    }
  }
}

TEST_F(StencilSchedulerTest, FarFewerInterDomainEdgesThanRandom) {
  // The headline claim (C2): application-structure knowledge beats the
  // random default.  Count stencil edges that cross domains.
  const std::size_t rows = 6, cols = 6;
  ApplicationSpec app = MakeStencil2D(rows, cols, 1000.0, 64 * 1024, 10);

  auto* stencil = kernel_.AddActor<StencilScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      rows, cols);
  auto* random = kernel_.AddActor<RandomScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      /*seed=*/99);

  auto edges_of = [&](SchedulerObject* scheduler) -> std::size_t {
    Result<ScheduleRequestList> got(ScheduleRequestList{});
    scheduler->ComputeSchedule({{klass_->loid(), rows * cols}},
                               [&](Result<ScheduleRequestList> r) {
                                 got = std::move(r);
                               });
    kernel_.RunFor(Duration::Minutes(1));
    EXPECT_TRUE(got.ok());
    if (!got.ok()) return 0;
    auto hosts = HostsOfMappings(got->masters[0].mappings);
    return EstimateMakespan(kernel_, app, hosts).inter_domain_edges;
  };

  const std::size_t stencil_edges = edges_of(stencil);
  const std::size_t random_edges = edges_of(random);
  EXPECT_LT(stencil_edges, random_edges / 2)
      << "stencil=" << stencil_edges << " random=" << random_edges;
}

TEST_F(StencilSchedulerTest, StencilBeatsRandomOnMakespan) {
  const std::size_t rows = 6, cols = 6;
  // Communication-heavy configuration: small per-cell work, fat halos.
  ApplicationSpec app = MakeStencil2D(rows, cols, /*work=*/10.0,
                                      /*halo=*/256 * 1024, /*iters=*/20);
  auto* stencil = kernel_.AddActor<StencilScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      rows, cols);
  auto* random = kernel_.AddActor<RandomScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      /*seed=*/123);
  auto makespan_of = [&](SchedulerObject* scheduler) -> double {
    Result<ScheduleRequestList> got(ScheduleRequestList{});
    scheduler->ComputeSchedule({{klass_->loid(), rows * cols}},
                               [&](Result<ScheduleRequestList> r) {
                                 got = std::move(r);
                               });
    kernel_.RunFor(Duration::Minutes(1));
    EXPECT_TRUE(got.ok());
    auto hosts = HostsOfMappings(got->masters[0].mappings);
    return EstimateMakespan(kernel_, app, hosts).makespan.seconds();
  };
  const double stencil_makespan = makespan_of(stencil);
  const double random_makespan = makespan_of(random);
  EXPECT_LT(stencil_makespan, random_makespan);
}

TEST_F(StencilSchedulerTest, VariantOffersSameDomainAlternates) {
  auto* scheduler = kernel_.AddActor<StencilScheduler>(
      kernel_.minter().Mint(LoidSpace::kService, 0),
      metacomputer_->collection()->loid(), metacomputer_->enactor()->loid(),
      4, 4);
  Result<ScheduleRequestList> got(ScheduleRequestList{});
  scheduler->ComputeSchedule({{klass_->loid(), 16}},
                             [&](Result<ScheduleRequestList> r) {
                               got = std::move(r);
                             });
  kernel_.RunFor(Duration::Minutes(1));
  ASSERT_TRUE(got.ok());
  const MasterSchedule& master = got->masters[0];
  ASSERT_EQ(master.variants.size(), 1u);
  for (const auto& [index, mapping] : master.variants[0].mappings) {
    auto master_domain =
        kernel_.network().DomainOf(master.mappings[index].host);
    auto variant_domain = kernel_.network().DomainOf(mapping.host);
    ASSERT_TRUE(master_domain.has_value() && variant_domain.has_value());
    EXPECT_EQ(*master_domain, *variant_domain);
  }
}

}  // namespace
}  // namespace legion
