// Shared fixtures: small deterministic worlds for unit and integration
// tests.  TestWorld wires one kernel with a handful of hosts/vaults, a
// Collection, and an Enactor -- the minimum the RMI protocol needs.
#pragma once

#include <gtest/gtest.h>

#include "core/collection.h"
#include "core/enactor.h"
#include "objects/class_object.h"
#include "resources/host_object.h"
#include "resources/vault_object.h"
#include "sim/kernel.h"

namespace legion::testing {

struct TestWorldConfig {
  std::size_t hosts = 3;
  std::size_t domains = 1;
  std::uint32_t cpus = 4;
  double oversubscription = 2.0;
  NetworkParams net;
  bool quiet_load = true;  // zero background load for determinism
};

class TestWorld {
 public:
  explicit TestWorld(TestWorldConfig config = {})
      : kernel(config.net), config_(config) {
    collection = kernel.AddActor<CollectionObject>(
        kernel.minter().Mint(LoidSpace::kService, 0));
    kernel.network().RegisterEndpoint(collection->loid(), 0);
    enactor = kernel.AddActor<EnactorObject>(
        kernel.minter().Mint(LoidSpace::kService, 0));
    for (std::size_t i = 0; i < config.hosts; ++i) {
      const auto domain =
          static_cast<std::uint32_t>(i % std::max<std::size_t>(1, config.domains));
      VaultSpec vault_spec;
      vault_spec.name = "vault" + std::to_string(i);
      vault_spec.domain = domain;
      auto* vault = kernel.AddActor<VaultObject>(
          kernel.minter().Mint(LoidSpace::kVault, domain), vault_spec);
      vaults.push_back(vault);

      HostSpec host_spec;
      host_spec.name = "host" + std::to_string(i);
      host_spec.cpus = config.cpus;
      host_spec.oversubscription = config.oversubscription;
      host_spec.memory_mb = 1024;
      host_spec.domain = domain;
      if (config.quiet_load) {
        host_spec.load.initial = 0.0;
        host_spec.load.mean = 0.0;
        host_spec.load.volatility = 0.0;
      }
      auto* host = kernel.AddActor<HostObject>(
          kernel.minter().Mint(LoidSpace::kHost, domain), host_spec,
          /*secret=*/1000 + i);
      host->AddCompatibleVault(vault->loid());
      host->AddCollection(collection->loid());
      hosts.push_back(host);
    }
  }

  // Pushes all host records and delivers the messages.
  void Populate() {
    for (auto* host : hosts) host->ReassessState();
    kernel.RunFor(Duration::Seconds(2));
  }

  ClassObject* MakeClass(const std::string& name, std::size_t memory_mb = 32,
                         double cpu_fraction = 1.0) {
    std::vector<Implementation> impls;
    Implementation impl;
    impl.arch = "x86";
    impl.os_name = "Linux";
    impls.push_back(impl);
    auto* klass = kernel.AddActor<ClassObject>(
        Loid(LoidSpace::kClass, 0, next_class_serial_++), name,
        std::move(impls));
    kernel.network().RegisterEndpoint(klass->loid(), 0);
    klass->SetInstanceRequirements(memory_mb, cpu_fraction);
    std::vector<std::pair<Loid, Loid>> known;
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      known.emplace_back(hosts[i]->loid(), vaults[i]->loid());
    }
    klass->SetKnownResources(std::move(known));
    return klass;
  }

  // Drains in-flight control messages (a couple of simulated minutes is
  // plenty for any RPC chain, and short enough that reservations granted
  // during the test do not hit their confirmation timeouts).
  void Run() { kernel.RunFor(Duration::Minutes(2)); }

  SimKernel kernel;
  CollectionObject* collection = nullptr;
  EnactorObject* enactor = nullptr;
  std::vector<HostObject*> hosts;
  std::vector<VaultObject*> vaults;

 private:
  TestWorldConfig config_;
  std::uint64_t next_class_serial_ = 100;
};

// Synchronously drains a callback-style call: runs the kernel until the
// callback fires or the horizon passes.
template <typename T>
class Await {
 public:
  Callback<T> Sink() {
    return [this](Result<T> r) {
      result_ = std::make_unique<Result<T>>(std::move(r));
    };
  }
  bool Ready() const { return result_ != nullptr; }
  Result<T>& Get() {
    EXPECT_TRUE(Ready()) << "callback never fired";
    return *result_;
  }

 private:
  std::unique_ptr<Result<T>> result_;
};

}  // namespace legion::testing
