#include "sim/profiler.h"

#include <gtest/gtest.h>

#include "sim/kernel.h"

namespace legion {
namespace {

TEST(KernelProfiler, DisabledByDefaultAndTogglable) {
  // Call sites guard with enabled() (Record* itself is unguarded so the
  // hot path pays exactly one branch), so the flag is the contract.
  KernelProfiler profiler;
  EXPECT_FALSE(profiler.enabled());
  profiler.Enable();
  EXPECT_EQ(profiler.enabled(), KernelProfiler::CompiledIn());
  profiler.Disable();
  EXPECT_FALSE(profiler.enabled());
  EXPECT_TRUE(profiler.entries().empty());
}

TEST(KernelProfiler, AccumulatesByLabel) {
  KernelProfiler profiler;
  profiler.Enable();
  if (!KernelProfiler::CompiledIn()) {
    EXPECT_FALSE(profiler.enabled());  // LEGION_PROFILE=0: Enable is a no-op
    return;
  }
  profiler.RecordHandler("net/msg", Duration::Millis(5), 3);
  profiler.RecordHandler("net/msg", Duration::Millis(7), 2);
  profiler.RecordHandler("enactor/backoff", Duration::Seconds(1), 0);
  const ProfileEntry* msg = profiler.Find("net/msg");
  ASSERT_NE(msg, nullptr);
  EXPECT_EQ(msg->count, 2u);
  EXPECT_EQ(msg->queue_us, 12000);
  EXPECT_EQ(msg->wall_us, 5);
  const ProfileEntry* backoff = profiler.Find("enactor/backoff");
  ASSERT_NE(backoff, nullptr);
  EXPECT_EQ(backoff->queue_us, 1000000);
  EXPECT_EQ(profiler.Find("missing"), nullptr);
}

TEST(KernelProfiler, RpcAccountsSimOccupancy) {
  KernelProfiler profiler;
  profiler.Enable();
  if (!KernelProfiler::CompiledIn()) return;
  profiler.RecordRpc("make_reservation", Duration::Millis(40));
  const ProfileEntry* rpc = profiler.Find("rpc/make_reservation");
  ASSERT_NE(rpc, nullptr);
  EXPECT_EQ(rpc->count, 1u);
  EXPECT_EQ(rpc->sim_busy_us, 40000);
}

TEST(KernelProfiler, HighWaterMarks) {
  KernelProfiler profiler;
  profiler.RecordQueueDepth(3);
  profiler.RecordQueueDepth(10);
  profiler.RecordQueueDepth(5);
  EXPECT_EQ(profiler.queue_depth_high_water(), 10u);
  profiler.RpcStarted();
  profiler.RpcStarted();
  profiler.RpcFinished();
  profiler.RpcStarted();
  EXPECT_EQ(profiler.rpc_inflight_high_water(), 2u);
}

TEST(KernelProfiler, JsonIsDeterministicAndReset) {
  KernelProfiler profiler;
  profiler.Enable();
  if (!KernelProfiler::CompiledIn()) return;
  profiler.RecordHandler("z/last", Duration::Zero(), 0);
  profiler.RecordHandler("a/first", Duration::Zero(), 0);
  profiler.RecordQueueDepth(4);
  const std::string json = profiler.ToJson();
  EXPECT_EQ(json, profiler.ToJson());
  EXPECT_LT(json.find("a/first"), json.find("z/last"));
  EXPECT_NE(json.find("queue_depth_high_water"), std::string::npos);
  profiler.Reset();
  EXPECT_TRUE(profiler.entries().empty());
  EXPECT_EQ(profiler.queue_depth_high_water(), 0u);
}

// The profiler observes the kernel without perturbing it: same workload,
// profiler on vs off, identical events/messages/metrics fingerprint.
std::uint64_t RunPingPong(SimKernel& kernel) {
  const Loid a = kernel.minter().Mint(LoidSpace::kService, 0);
  const Loid b = kernel.minter().Mint(LoidSpace::kService, 1);
  kernel.network().RegisterEndpoint(a, 0);
  kernel.network().RegisterEndpoint(b, 0);
  for (int i = 0; i < 20; ++i) {
    kernel.ScheduleAfter(Duration::Millis(10 * i), [&kernel, a, b] {
      kernel.Send(a, b, 64, [] {});
    });
  }
  return kernel.RunFor(Duration::Seconds(5));
}

TEST(KernelProfiler, ObserverDoesNotPerturbKernel) {
  SimKernel plain;
  const std::uint64_t plain_events = RunPingPong(plain);
  const std::string plain_metrics = plain.metrics().SnapshotJson();

  SimKernel profiled;
  profiled.profiler().Enable();
  const std::uint64_t profiled_events = RunPingPong(profiled);

  EXPECT_EQ(profiled_events, plain_events);
  EXPECT_EQ(profiled.metrics().SnapshotJson(), plain_metrics);
  if (KernelProfiler::CompiledIn()) {
    // The kernel labeled its events: messages under net/msg, the rest
    // under the unlabeled bucket.
    const ProfileEntry* msg = profiled.profiler().Find("net/msg");
    ASSERT_NE(msg, nullptr);
    EXPECT_EQ(msg->count, 20u);
    EXPECT_NE(profiled.profiler().Find("kernel/event"), nullptr);
    EXPECT_GT(profiled.profiler().queue_depth_high_water(), 0u);
    // Pinned wall clock: profiling must not leak real time into the dump.
    EXPECT_EQ(msg->wall_us, 0);
  }
}

TEST(WallClock, PinnedByDefaultAndOptInRealTime) {
  obs::WallClock clock;
  EXPECT_FALSE(clock.real_time());
  const std::int64_t a = clock.Micros();
  const std::int64_t b = clock.Micros();
  EXPECT_EQ(a, b);  // pinned: no wall time observable
  clock.UseRealTime();
  EXPECT_TRUE(clock.real_time());
  clock.Pin(42);
  EXPECT_FALSE(clock.real_time());
  EXPECT_EQ(clock.Micros(), 42);
  clock.Pin(0);
  EXPECT_EQ(clock.Micros(), a);
}

}  // namespace
}  // namespace legion
