#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

TEST(EventQueueTest, OrdersByTime) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(SimTime(30), [&] { order.push_back(3); });
  q.Schedule(SimTime(10), [&] { order.push_back(1); });
  q.Schedule(SimTime(20), [&] { order.push_back(2); });
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(SimTime(5), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.Pop().fn();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  EventId id = q.Schedule(SimTime(10), [&] { ran = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(SimTime(10), [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelAfterRunFails) {
  EventQueue q;
  EventId id = q.Schedule(SimTime(10), [] {});
  q.Pop().fn();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueueTest, CancelBogusIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
  EXPECT_FALSE(q.Cancel(999));
}

TEST(EventQueueTest, NextTimeSkipsCancelled) {
  EventQueue q;
  EventId early = q.Schedule(SimTime(10), [] {});
  q.Schedule(SimTime(20), [] {});
  q.Cancel(early);
  EXPECT_EQ(q.NextTime(), SimTime(20));
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueueTest, EmptyNextTimeIsMax) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), SimTime::Max());
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  EventId a = q.Schedule(SimTime(1), [] {});
  q.Schedule(SimTime(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.Pop();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  int run_count = 0;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(q.Schedule(SimTime(i % 50), [&] { ++run_count; }));
  }
  // Cancel every third event.
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 3) {
    if (q.Cancel(ids[i])) ++cancelled;
  }
  while (!q.empty()) q.Pop().fn();
  EXPECT_EQ(run_count + cancelled, 1000);
}

}  // namespace
}  // namespace legion
