#include "sim/network.h"

#include <gtest/gtest.h>

namespace legion {
namespace {

Loid Endpoint(std::uint64_t serial) {
  return Loid(LoidSpace::kHost, 0, serial);
}

NetworkParams QuietParams() {
  NetworkParams params;
  params.jitter_fraction = 0.0;
  params.intra_domain_latency = Duration::Micros(300);
  params.inter_domain_latency = Duration::Millis(30);
  return params;
}

TEST(NetworkTest, EndpointRegistration) {
  NetworkModel net(QuietParams());
  EXPECT_FALSE(net.HasEndpoint(Endpoint(1)));
  net.RegisterEndpoint(Endpoint(1), 3);
  EXPECT_TRUE(net.HasEndpoint(Endpoint(1)));
  EXPECT_EQ(net.DomainOf(Endpoint(1)), 3u);
  net.UnregisterEndpoint(Endpoint(1));
  EXPECT_FALSE(net.HasEndpoint(Endpoint(1)));
  EXPECT_FALSE(net.DomainOf(Endpoint(1)).has_value());
}

TEST(NetworkTest, UnregisteredEndpointsAreLocal) {
  NetworkModel net(QuietParams());
  auto latency = net.Latency(Endpoint(1), Endpoint(2), 100, SimTime::Zero());
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, Duration::Zero());
}

TEST(NetworkTest, SelfSendIsFree) {
  NetworkModel net(QuietParams());
  net.RegisterEndpoint(Endpoint(1), 0);
  auto latency = net.Latency(Endpoint(1), Endpoint(1), 100, SimTime::Zero());
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, Duration::Zero());
}

TEST(NetworkTest, IntraVsInterDomainLatency) {
  NetworkModel net(QuietParams());
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 0);
  net.RegisterEndpoint(Endpoint(3), 1);
  auto intra = net.Latency(Endpoint(1), Endpoint(2), 0, SimTime::Zero());
  auto inter = net.Latency(Endpoint(1), Endpoint(3), 0, SimTime::Zero());
  ASSERT_TRUE(intra.has_value());
  ASSERT_TRUE(inter.has_value());
  EXPECT_EQ(*intra, Duration::Micros(300));
  EXPECT_EQ(*inter, Duration::Millis(30));
}

TEST(NetworkTest, BandwidthScalesWithPayload) {
  NetworkParams params = QuietParams();
  params.intra_domain_bandwidth_bps = 8e6;  // 1 MB/s
  NetworkModel net(params);
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 0);
  auto small = net.Latency(Endpoint(1), Endpoint(2), 0, SimTime::Zero());
  auto big = net.Latency(Endpoint(1), Endpoint(2), 1 << 20, SimTime::Zero());
  ASSERT_TRUE(small && big);
  // 1 MiB at 1 MB/s is about a second more than the empty message.
  EXPECT_NEAR((*big - *small).seconds(), 1.05, 0.05);
}

TEST(NetworkTest, PairLatencyOverride) {
  NetworkModel net(QuietParams());
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 5);
  net.SetPairLatency(0, 5, Duration::Millis(120));
  auto latency = net.Latency(Endpoint(1), Endpoint(2), 0, SimTime::Zero());
  ASSERT_TRUE(latency.has_value());
  EXPECT_EQ(*latency, Duration::Millis(120));
  // Order-independent.
  auto reverse = net.Latency(Endpoint(2), Endpoint(1), 0, SimTime::Zero());
  EXPECT_EQ(*reverse, Duration::Millis(120));
}

TEST(NetworkTest, LossDropsMessages) {
  NetworkParams params = QuietParams();
  params.inter_domain_loss = 1.0;
  NetworkModel net(params);
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 1);
  EXPECT_FALSE(
      net.Latency(Endpoint(1), Endpoint(2), 0, SimTime::Zero()).has_value());
  EXPECT_EQ(net.messages_lost(), 1u);
  // Intra-domain traffic is unaffected.
  net.RegisterEndpoint(Endpoint(3), 0);
  EXPECT_TRUE(
      net.Latency(Endpoint(1), Endpoint(3), 0, SimTime::Zero()).has_value());
}

TEST(NetworkTest, PartitionWindows) {
  NetworkModel net(QuietParams());
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 1);
  net.AddPartition(0, 1, SimTime(1000), SimTime(2000));
  EXPECT_TRUE(net.Latency(Endpoint(1), Endpoint(2), 0, SimTime(999)).has_value());
  EXPECT_FALSE(net.Latency(Endpoint(1), Endpoint(2), 0, SimTime(1000)).has_value());
  EXPECT_FALSE(net.Latency(Endpoint(2), Endpoint(1), 0, SimTime(1500)).has_value());
  EXPECT_TRUE(net.Latency(Endpoint(1), Endpoint(2), 0, SimTime(2000)).has_value());
  EXPECT_EQ(net.messages_partitioned(), 2u);
}

TEST(NetworkTest, JitterStaysWithinFraction) {
  NetworkParams params = QuietParams();
  params.jitter_fraction = 0.1;
  NetworkModel net(params);
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 1);
  for (int i = 0; i < 200; ++i) {
    auto latency = net.Latency(Endpoint(1), Endpoint(2), 0, SimTime::Zero());
    ASSERT_TRUE(latency.has_value());
    EXPECT_GE(latency->micros(), 27000);
    EXPECT_LE(latency->micros(), 33000);
  }
}

TEST(NetworkTest, ExpectedLatencyIsDeterministic) {
  NetworkParams params = QuietParams();
  params.jitter_fraction = 0.25;
  NetworkModel net(params);
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 1);
  const auto first =
      net.ExpectedLatency(Endpoint(1), Endpoint(2), 1024, SimTime::Zero());
  ASSERT_TRUE(first.has_value());
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(
        net.ExpectedLatency(Endpoint(1), Endpoint(2), 1024, SimTime::Zero()),
        first);
  }
  EXPECT_GT(*first, Duration::Millis(29));
}

// Regression: ExpectedLatency used to ignore partitions entirely, so a
// ranker could score a host by its healthy-path ETA while the pair was
// unreachable.  It must agree with Latency's partition window.
TEST(NetworkTest, ExpectedLatencyHonorsPartitions) {
  NetworkModel net(QuietParams());
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 1);
  net.AddPartition(0, 1, SimTime(1000), SimTime(2000));
  EXPECT_TRUE(
      net.ExpectedLatency(Endpoint(1), Endpoint(2), 0, SimTime(999))
          .has_value());
  EXPECT_FALSE(
      net.ExpectedLatency(Endpoint(1), Endpoint(2), 0, SimTime(1000))
          .has_value());
  EXPECT_FALSE(
      net.ExpectedLatency(Endpoint(2), Endpoint(1), 0, SimTime(1500))
          .has_value());
  EXPECT_TRUE(
      net.ExpectedLatency(Endpoint(1), Endpoint(2), 0, SimTime(2000))
          .has_value());
  // The healthy-path variant deliberately ignores the window, and the
  // estimate itself is unaffected: no counters, no loss draw.
  EXPECT_EQ(net.HealthyPathLatency(Endpoint(1), Endpoint(2), 0),
            Duration::Millis(30));
  EXPECT_EQ(net.messages_offered(), 0u);
  EXPECT_EQ(net.messages_partitioned(), 0u);
}

TEST(NetworkTest, OfferedCounterCounts) {
  NetworkModel net(QuietParams());
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 0);
  for (int i = 0; i < 5; ++i) {
    net.Latency(Endpoint(1), Endpoint(2), 0, SimTime::Zero());
  }
  EXPECT_EQ(net.messages_offered(), 5u);
}

// Regression: offered_ used to increment before the local/self-send
// early-out, so loss rate (lost/offered) was diluted by traffic that
// never touched the wire.
TEST(NetworkTest, LocalTrafficIsNotOffered) {
  NetworkModel net(QuietParams());
  net.RegisterEndpoint(Endpoint(1), 0);
  // Unregistered peer: local, free, not wire traffic.
  net.Latency(Endpoint(1), Endpoint(99), 100, SimTime::Zero());
  net.Latency(Endpoint(98), Endpoint(1), 100, SimTime::Zero());
  // Self-send: also local.
  net.Latency(Endpoint(1), Endpoint(1), 100, SimTime::Zero());
  EXPECT_EQ(net.messages_offered(), 0u);
  // A real wire message still counts.
  net.RegisterEndpoint(Endpoint(2), 1);
  net.Latency(Endpoint(1), Endpoint(2), 100, SimTime::Zero());
  EXPECT_EQ(net.messages_offered(), 1u);
}

TEST(NetworkTest, UplinkSerializationQueuesSameSenderBursts) {
  NetworkParams params = QuietParams();
  params.serialize_uplink = true;
  params.intra_domain_bandwidth_bps = 8e6;  // 1 MB/s
  NetworkModel net(params);
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 0);
  net.RegisterEndpoint(Endpoint(3), 0);
  const std::size_t megabyte = 1 << 20;
  // Two messages leave Endpoint(1) at t=0: the second queues behind the
  // first's ~1s transfer.
  auto first = net.Latency(Endpoint(1), Endpoint(2), megabyte, SimTime::Zero());
  auto second =
      net.Latency(Endpoint(1), Endpoint(2), megabyte, SimTime::Zero());
  ASSERT_TRUE(first && second);
  EXPECT_NEAR((*second - *first).seconds(), 1.05, 0.05);
  // A different sender's uplink is idle: no queueing.
  auto other = net.Latency(Endpoint(3), Endpoint(2), megabyte, SimTime::Zero());
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(*other, *first);
  // After the uplink drains, a later send from Endpoint(1) pays no queue
  // delay either.
  auto later = net.Latency(Endpoint(1), Endpoint(2), megabyte,
                           SimTime::Zero() + Duration::Seconds(10));
  ASSERT_TRUE(later.has_value());
  EXPECT_EQ(*later, *first);
}

TEST(NetworkTest, UplinkSerializationOffByDefault) {
  NetworkParams params = QuietParams();
  params.intra_domain_bandwidth_bps = 8e6;
  NetworkModel net(params);
  net.RegisterEndpoint(Endpoint(1), 0);
  net.RegisterEndpoint(Endpoint(2), 0);
  const std::size_t megabyte = 1 << 20;
  auto first = net.Latency(Endpoint(1), Endpoint(2), megabyte, SimTime::Zero());
  auto second =
      net.Latency(Endpoint(1), Endpoint(2), megabyte, SimTime::Zero());
  ASSERT_TRUE(first && second);
  EXPECT_EQ(*first, *second);
}

}  // namespace
}  // namespace legion
